//! `Random` baseline (§IV): `B` questions drawn uniformly from *all*
//! tuple comparisons in `T_K`, including questions whose answer is already
//! certain — the weakest sensible baseline.

use super::{all_tree_pairs, OfflineSelector};
use crate::residual::ResidualCtx;
use ctk_crowd::Question;
use ctk_tpo::PathSet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Uniformly random distinct comparisons.
#[derive(Debug, Clone)]
pub struct RandomSelector {
    rng: StdRng,
}

impl RandomSelector {
    /// Creates a seeded random selector.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl OfflineSelector for RandomSelector {
    fn name(&self) -> &'static str {
        "random"
    }

    fn select(&mut self, ps: &PathSet, budget: usize, _ctx: &ResidualCtx<'_>) -> Vec<Question> {
        let mut pool = all_tree_pairs(ps);
        pool.shuffle(&mut self.rng);
        pool.truncate(budget);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{assert_valid_selection, fixture};
    use super::*;
    use crate::measures::Entropy;

    #[test]
    fn selects_distinct_questions_within_budget() {
        let (_, pw, ps) = fixture();
        let ctx = ResidualCtx {
            measure: &Entropy,
            pairwise: &pw,
        };
        let mut s = RandomSelector::new(1);
        let qs = s.select(&ps, 4, &ctx);
        assert_eq!(qs.len(), 4);
        assert_valid_selection(&qs, &ps, 4);
    }

    #[test]
    fn budget_larger_than_pool_returns_pool() {
        let (_, pw, ps) = fixture();
        let ctx = ResidualCtx {
            measure: &Entropy,
            pairwise: &pw,
        };
        let pool = all_tree_pairs(&ps).len();
        let mut s = RandomSelector::new(2);
        let qs = s.select(&ps, 10_000, &ctx);
        assert_eq!(qs.len(), pool);
    }

    #[test]
    fn seeded_and_distinct_across_seeds() {
        let (_, pw, ps) = fixture();
        let ctx = ResidualCtx {
            measure: &Entropy,
            pairwise: &pw,
        };
        let a = RandomSelector::new(7).select(&ps, 5, &ctx);
        let b = RandomSelector::new(7).select(&ps, 5, &ctx);
        assert_eq!(a, b, "same seed, same selection");
        let c = RandomSelector::new(8).select(&ps, 5, &ctx);
        assert!(
            a != c || a.len() < 5,
            "different seed should usually differ"
        );
        assert_eq!(RandomSelector::new(7).name(), "random");
    }
}
