//! T-hetero (§IV prose): “the proposed algorithms have been shown to work
//! also with non-uniform tuple score distributions.” Runs T1-on and naive
//! across four pdf-family variants at several budgets.
//!
//! `cargo run --release -p ctk-bench --bin table_hetero [runs]`

use ctk_bench::{emit_tsv, evaluate, fmt, runs_from_args, EvalOpts};
use ctk_core::session::Algorithm;
use ctk_datagen::{scenarios, HeteroVariant};

fn main() {
    let runs = runs_from_args(8);
    let opts = EvalOpts {
        runs,
        worlds: 4_000,
        ..EvalOpts::default()
    };
    let budgets = [5usize, 15, 30];

    eprintln!("# T-hetero: D vs pdf family — N=20, K=5, {runs} runs");
    let mut rows = Vec::new();
    for variant in HeteroVariant::all() {
        for algorithm in [Algorithm::T1On, Algorithm::Naive] {
            for &b in &budgets {
                let s = evaluate(
                    |seed| scenarios::hetero(variant, seed),
                    algorithm.clone(),
                    b,
                    &opts,
                );
                rows.push(vec![
                    variant.name().to_string(),
                    s.algorithm.to_string(),
                    b.to_string(),
                    fmt(s.avg_distance),
                ]);
                eprintln!(
                    "#   {:21} {:6} B={:2}  D={:.4}",
                    variant.name(),
                    s.algorithm,
                    b,
                    s.avg_distance
                );
            }
        }
    }
    emit_tsv("table_hetero", &["family", "algorithm", "B", "D"], &rows);
}
