#![forbid(unsafe_code)]
#![deny(warnings)]
//! # ctk-service — multi-session query serving
//!
//! Serving layer of the `crowd-topk` workspace (reproduction of
//! *“Crowdsourcing for Top-K Query Processing over Uncertain Data”*,
//! Ciceri et al., ICDE 2016 / TKDE 28(1)): runs many uncertainty-reduction
//! sessions concurrently against **one** shared crowd backend — the regime
//! a real crowdsourcing platform operates in, where questions from many
//! simultaneous queries are multiplexed over the same worker pool.
//!
//! The layer is built on the sans-IO [`ctk_core::driver::SessionDriver`]:
//! each session is a state machine that emits question batches and absorbs
//! answers, and this crate owns the dispatch over a **shard-owned core**
//! (DESIGN.md §14):
//!
//! * [`shard`] — the shard structs: each shard owns its sessions end to
//!   end (registry, scheduler queues, budget-grant ledger, event
//!   ready-queue); budget is reconciled against the crowd through
//!   explicit [`ShardLedger`] grants;
//! * [`registry`] — shard-aware session registry: per-session budgets,
//!   lifecycle states (queued / awaiting-answers / awaiting-budget /
//!   done / failed), and disjoint `&mut` entry access for the sharded
//!   round phases;
//! * [`scheduler`] — strict priority between classes, deficit round-robin
//!   within a class (persistent per-class service queues), bounded
//!   fanout: every session of the top nonempty class is served within
//!   `ceil(n / fanout)` rounds, churn-proof; one instance per shard;
//! * [`batcher`] — cross-session question batching with an answer cache
//!   ([`AnswerCache`], partitioned by question hash as
//!   [`ShardedAnswerCache`]): identical pairwise questions from different
//!   tenants are answered once, then served from memory, before any
//!   crowd budget is spent;
//! * [`service`] — [`TopKService`] in three run modes: [`RunMode::Tick`]
//!   barrier rounds (gather/purchase/feed, bit-identical to the
//!   pre-shard loop at one shard), [`RunMode::Event`] sweeps draining
//!   typed per-shard [`Event`] queues, with [`Quiescence`] telling
//!   blocked-on-crowd apart from idle, and [`RunMode::EventThreaded`] —
//!   the same event sweeps with every shard owned by a dedicated worker
//!   thread;
//! * [`topology`] — the threaded topology's coordinator/worker split:
//!   per-shard threads run all shard-local phases, the coordinator
//!   serves purchases and grants at a shard-order `mpsc` barrier
//!   (DESIGN.md §15), keeping reports `same_outcome` with the
//!   single-threaded event loop;
//! * [`error`] — typed [`ServiceError`] for API misuse (topology changes
//!   after the first submit), honoring the workspace panic-freedom rule;
//! * [`metrics`] — throughput / latency-histogram / cache-hit /
//!   shard-imbalance accounting, plus the threaded topology's
//!   coordinator-stall, channel and per-shard sweep-time gauges.
//!
//! With reliable (accuracy-1) workers the multiplexing is *lossless*:
//! every session's final report equals the one the standalone blocking
//! [`ctk_core::session::UrSession::run`] produces under the same seed —
//! the integration suite pins this for 36 concurrent tenants, pins that
//! per-tenant reports are bit-identical at 1/2/4 worker threads, and pins
//! that all run modes agree at 1/2/4 shards (the threaded topology across
//! 1/2/4 worker threads as well). See DESIGN.md §7, §9, §14 and §15 for
//! the architecture discussion.

pub mod batcher;
pub mod error;
pub mod metrics;
pub mod registry;
pub mod scheduler;
pub mod service;
pub mod shard;
pub mod topology;

pub use batcher::{
    AnswerCache, AnswerStore, RoundStats, ServedAnswer, SessionAnswers, ShardedAnswerCache,
};
pub use ctk_quality::QuestionRouter;
pub use ctk_tpo::{PrecisionTarget, StopReason};
pub use error::ServiceError;
pub use metrics::ServiceMetrics;
pub use registry::{Registry, SessionId, SessionSpec, SessionState};
pub use scheduler::Scheduler;
pub use service::{RegistryView, RoundOutcome, RunMode, TopKService};
pub use shard::{Event, Quiescence, ShardLedger};
