//! The paper's four uncertainty measures over a TPO (§II).
//!
//! “These measures are based on the idea that the larger the number of
//! orderings in `T_K` and the more similar their probabilities, the higher
//! its uncertainty.”
//!
//! * [`Entropy`] (`U_H`) — Shannon entropy of the leaf (ordering)
//!   probabilities; the state-of-the-art baseline measure;
//! * [`WeightedEntropy`] (`U_Hw`) — a weighted combination of the entropy
//!   at each of the first `K` levels of the tree (structure-aware);
//! * [`OraDistance`] (`U_ORA`) — expected top-k distance of the orderings
//!   to the Optimal Rank Aggregation (the “median” ordering);
//! * [`MpoDistance`] (`U_MPO`) — expected top-k distance to the Most
//!   Probable Ordering.
//!
//! §IV's finding, reproduced by the `table_measures` harness: measures that
//! take the tree structure into account (`U_Hw`, `U_ORA`, `U_MPO`) guide
//! question selection better than plain `U_H`.

mod entropy;
mod mpo;
mod ora;
mod weighted_entropy;

pub use entropy::Entropy;
pub use mpo::MpoDistance;
pub use ora::OraDistance;
pub use weighted_entropy::WeightedEntropy;

use ctk_tpo::PathSet;

/// An uncertainty measure `U(T_K)` over a distribution of orderings.
///
/// `Send` is a supertrait so a boxed measure (and the `SessionDriver`
/// holding it) can migrate between the worker threads of a sharded
/// serving loop.
pub trait UncertaintyMeasure: Send {
    /// Short identifier used in reports and harness output.
    fn name(&self) -> &'static str;

    /// The uncertainty of the given (normalized) path set. Zero iff the
    /// result is certain (single ordering).
    fn uncertainty(&self, ps: &PathSet) -> f64;

    /// An upper bound on how much one binary answer can reduce the
    /// *expected* value of this measure, if a sound one is known.
    ///
    /// For entropy-family measures the information-theoretic bound
    /// `I(Ω; A) <= H(A) <= ln 2` applies, which gives the `A*-off`
    /// algorithm an admissible heuristic (DESIGN.md §4). Distance-based
    /// measures return `None`, and `A*-off` falls back to exhaustive
    /// search.
    fn per_question_reduction_bound(&self) -> Option<f64> {
        None
    }
}

/// Enumerable measure selector (mirrors the paper's four measures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasureKind {
    /// `U_H`: Shannon entropy of ordering probabilities.
    Entropy,
    /// `U_Hw`: level-weighted entropy.
    WeightedEntropy,
    /// `U_ORA`: expected distance to the optimal rank aggregation.
    Ora,
    /// `U_MPO`: expected distance to the most probable ordering.
    Mpo,
}

impl MeasureKind {
    /// All four measures, in the paper's order.
    pub fn all() -> [MeasureKind; 4] {
        [
            MeasureKind::Entropy,
            MeasureKind::WeightedEntropy,
            MeasureKind::Ora,
            MeasureKind::Mpo,
        ]
    }

    /// Short name.
    pub fn name(&self) -> &'static str {
        match self {
            MeasureKind::Entropy => "UH",
            MeasureKind::WeightedEntropy => "UHw",
            MeasureKind::Ora => "UORA",
            MeasureKind::Mpo => "UMPO",
        }
    }

    /// Instantiates the measure with its default parameters.
    pub fn build(&self) -> Box<dyn UncertaintyMeasure> {
        match self {
            MeasureKind::Entropy => Box::new(Entropy),
            MeasureKind::WeightedEntropy => Box::new(WeightedEntropy::default()),
            MeasureKind::Ora => Box::new(OraDistance::default()),
            MeasureKind::Mpo => Box::new(MpoDistance::default()),
        }
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use ctk_tpo::PathSet;

    /// A small 3-ordering set used across measure tests.
    pub fn sample_set() -> PathSet {
        PathSet::from_weighted(
            2,
            vec![(vec![0, 1], 0.5), (vec![0, 2], 0.2), (vec![1, 0], 0.3)],
        )
        .unwrap()
    }

    /// A certain (single-ordering) set.
    pub fn resolved_set() -> PathSet {
        PathSet::from_weighted(2, vec![(vec![0, 1], 1.0)]).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_measures_are_zero_on_resolved_sets() {
        for kind in MeasureKind::all() {
            let m = kind.build();
            let u = m.uncertainty(&test_util::resolved_set());
            assert!(
                u.abs() < 1e-12,
                "{} should be 0 on a single ordering, got {u}",
                m.name()
            );
        }
    }

    #[test]
    fn all_measures_positive_on_uncertain_sets() {
        for kind in MeasureKind::all() {
            let m = kind.build();
            let u = m.uncertainty(&test_util::sample_set());
            assert!(u > 0.0, "{} should be positive, got {u}", m.name());
        }
    }

    #[test]
    fn names_are_paper_names() {
        let names: Vec<&str> = MeasureKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["UH", "UHw", "UORA", "UMPO"]);
        for kind in MeasureKind::all() {
            assert_eq!(kind.build().name(), kind.name());
        }
    }

    #[test]
    fn entropy_family_has_reduction_bound() {
        assert!(MeasureKind::Entropy
            .build()
            .per_question_reduction_bound()
            .is_some());
        assert!(MeasureKind::WeightedEntropy
            .build()
            .per_question_reduction_bound()
            .is_some());
        assert!(MeasureKind::Ora
            .build()
            .per_question_reduction_bound()
            .is_none());
        assert!(MeasureKind::Mpo
            .build()
            .per_question_reduction_bound()
            .is_none());
    }
}
