//! Possible-world sampling.
//!
//! A *possible world* instantiates every tuple's uncertain score to a
//! concrete value; sorting those values yields one total ordering of the
//! relation. The Monte-Carlo TPO engine, the ground-truth generator and the
//! `incr` algorithm's belief state are all built on these samples.
//!
//! ## Hot-path machinery
//!
//! Two pieces exist purely for the Monte-Carlo builders (DESIGN.md §10):
//!
//! * [`WorldSampler`] — a per-table compilation of every tuple's sampler,
//!   built once and reused across all `M` worlds. The common families
//!   flatten to a fused inverse-CDF transform (`Point` consumes no
//!   randomness, `Uniform` is one affine draw); the table-driven families
//!   (`Histogram`/`Piecewise`/`Discrete`) reuse the cumulative tables
//!   precomputed inside the distribution. Draw-for-draw it consumes the
//!   PRNG exactly like [`ScoreDist::sample`], so the streams are
//!   bit-identical (pinned by tests) and [`WorldSampler::sample_into`]
//!   fills a caller-recycled buffer instead of allocating per world.
//! * [`top_k_prefix_into`] — the depth-`k` prefix of a world's ranking via
//!   `select_nth_unstable` partial selection, O(n + k·log k) instead of
//!   the full O(n·log n) sort. The comparator is a *total* order (score
//!   descending, ties by ascending id), so the prefix is bit-identical to
//!   `ranking_from_scores(..)[..k]` by construction (also pinned).

use crate::dist::ScoreDist;
use crate::table::UncertainTable;
use rand::Rng;
use std::cmp::Ordering;

/// Samples one concrete score per tuple (a possible world), in id order.
pub fn sample_scores<R: Rng + ?Sized>(table: &UncertainTable, rng: &mut R) -> Vec<f64> {
    table.iter().map(|t| t.dist.sample(rng)).collect()
}

/// The total order induced by concrete scores: descending score, ties by
/// ascending tuple id (the fixed tie-breaking rule the paper assumes).
#[inline]
fn score_order(scores: &[f64], a: u32, b: u32) -> Ordering {
    scores[b as usize]
        .total_cmp(&scores[a as usize])
        .then(a.cmp(&b))
}

/// Total ordering (tuple ids, highest score first) induced by concrete
/// `scores`; ties are broken deterministically by ascending tuple id, the
/// fixed tie-breaking rule the paper assumes.
pub fn ranking_from_scores(scores: &[f64]) -> Vec<u32> {
    let mut ids: Vec<u32> = (0..scores.len() as u32).collect();
    // The comparator is a total order, so the unstable sort has exactly
    // one fixed point — identical output to a stable sort, minus the
    // allocation.
    ids.sort_unstable_by(|&a, &b| score_order(scores, a, b));
    ids
}

/// Writes the depth-`out.len()` prefix of the ranking induced by `scores`
/// into `out`, using partial selection: O(n + k·log k) instead of the full
/// sort's O(n·log n). `ids` is caller-recycled scratch.
///
/// Because the comparator is a total order, the selected-and-sorted prefix
/// equals `ranking_from_scores(scores)[..k]` element for element — the
/// bit-identity the Monte-Carlo builder's fast path relies on.
///
/// # Panics
/// Panics if `out.len()` is zero or exceeds `scores.len()`.
pub fn top_k_prefix_into(scores: &[f64], ids: &mut Vec<u32>, out: &mut [u32]) {
    let k = out.len();
    assert!(k >= 1 && k <= scores.len(), "invalid prefix depth {k}");
    ids.clear();
    ids.extend(0..scores.len() as u32);
    if k < ids.len() {
        ids.select_nth_unstable_by(k - 1, |&a, &b| score_order(scores, a, b));
    }
    ids[..k].sort_unstable_by(|&a, &b| score_order(scores, a, b));
    out.copy_from_slice(&ids[..k]);
}

/// Samples one possible world and returns its induced total ordering.
pub fn sample_ranking<R: Rng + ?Sized>(table: &UncertainTable, rng: &mut R) -> Vec<u32> {
    ranking_from_scores(&sample_scores(table, rng))
}

/// Samples `m` worlds and returns their orderings (used to bootstrap the
/// Monte-Carlo TPO and the `incr` belief state).
pub fn sample_rankings<R: Rng + ?Sized>(
    table: &UncertainTable,
    m: usize,
    rng: &mut R,
) -> Vec<Vec<u32>> {
    (0..m).map(|_| sample_ranking(table, rng)).collect()
}

/// One tuple's compiled sampler (see [`WorldSampler`]).
#[derive(Debug, Clone)]
enum TupleSampler {
    /// Certain score: consumes no randomness (like [`ScoreDist::sample`]).
    Const(f64),
    /// Uniform: one standard draw through a fused affine transform —
    /// `lo + u·span` is operation-for-operation what the shim's
    /// `gen_range(lo..hi)` computes, with `span` hoisted out of the loop.
    Affine { lo: f64, span: f64 },
    /// Table-driven families: delegates to the distribution's own sampler,
    /// whose inverse-CDF tables (cumulative arrays) were precomputed at
    /// construction. Cloning into a dense vector keeps the per-world loop
    /// off the table's tuple metadata (labels, ids).
    Dist(ScoreDist),
}

/// Per-table compiled samplers: built once, used for all `M` worlds.
///
/// Consumes the PRNG exactly like a [`sample_scores`] pass — same draws,
/// same arithmetic — so swapping it in cannot change a single sampled
/// world (pinned by `sampler_table_is_bit_identical_to_dist_sampling`).
#[derive(Debug, Clone)]
pub struct WorldSampler {
    samplers: Vec<TupleSampler>,
}

impl WorldSampler {
    /// Compiles the samplers of every tuple of `table`.
    pub fn new(table: &UncertainTable) -> Self {
        let samplers = table
            .dists()
            .map(|d| match d {
                ScoreDist::Point(v) => TupleSampler::Const(*v),
                ScoreDist::Uniform(u) => TupleSampler::Affine {
                    lo: u.lo(),
                    span: u.hi() - u.lo(),
                },
                other => TupleSampler::Dist(other.clone()),
            })
            .collect();
        Self { samplers }
    }

    /// Number of tuples the sampler covers.
    pub fn len(&self) -> usize {
        self.samplers.len()
    }

    /// Compiled samplers are never empty (tables are never empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Samples one world into `out` (tuple-id order, no allocation).
    ///
    /// # Panics
    /// Panics if `out.len()` differs from the table size.
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        assert_eq!(out.len(), self.samplers.len(), "buffer/table size mismatch");
        for (o, s) in out.iter_mut().zip(&self.samplers) {
            *o = match s {
                TupleSampler::Const(v) => *v,
                TupleSampler::Affine { lo, span } => {
                    let u: f64 = rng.gen();
                    lo + u * span
                }
                TupleSampler::Dist(d) => d.sample(rng),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::ScoreDist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> UncertainTable {
        UncertainTable::new(vec![
            ScoreDist::uniform(0.0, 1.0).unwrap(),
            ScoreDist::uniform(0.4, 1.4).unwrap(),
            ScoreDist::point(2.0),
        ])
        .unwrap()
    }

    fn every_family_table() -> UncertainTable {
        UncertainTable::new(vec![
            ScoreDist::point(0.5),
            ScoreDist::uniform(0.0, 1.0).unwrap(),
            ScoreDist::gaussian(0.5, 0.1).unwrap(),
            ScoreDist::discrete(&[(0.2, 1.0), (0.8, 3.0)]).unwrap(),
            ScoreDist::histogram(&[0.0, 0.5, 1.0], &[1.0, 3.0]).unwrap(),
            ScoreDist::triangular(0.0, 0.4, 1.0).unwrap(),
            ScoreDist::bimodal(
                0.4,
                ScoreDist::uniform(0.0, 0.3).unwrap(),
                0.6,
                ScoreDist::gaussian(0.7, 0.05).unwrap(),
            )
            .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn scores_align_with_ids() {
        let t = table();
        let mut rng = StdRng::seed_from_u64(0);
        let s = sample_scores(&t, &mut rng);
        assert_eq!(s.len(), 3);
        assert_eq!(s[2], 2.0, "point mass is deterministic");
    }

    #[test]
    fn ranking_sorts_descending() {
        let r = ranking_from_scores(&[0.3, 0.9, 0.1]);
        assert_eq!(r, vec![1, 0, 2]);
    }

    #[test]
    fn ties_break_by_id() {
        let r = ranking_from_scores(&[0.5, 0.5, 0.9, 0.5]);
        assert_eq!(r, vec![2, 0, 1, 3]);
    }

    #[test]
    fn partial_selection_prefix_matches_full_sort() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut ids = Vec::new();
        for n in [1usize, 2, 3, 7, 50, 200] {
            // Quantized scores force plenty of exact ties.
            let scores: Vec<f64> = (0..n)
                .map(|_| (rng.gen::<f64>() * 8.0).floor() / 8.0)
                .collect();
            let full = ranking_from_scores(&scores);
            for k in [1, 2, n / 2, n.saturating_sub(1), n] {
                if k == 0 || k > n {
                    continue;
                }
                let mut prefix = vec![0u32; k];
                top_k_prefix_into(&scores, &mut ids, &mut prefix);
                assert_eq!(prefix, full[..k], "n = {n}, k = {k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid prefix depth")]
    fn partial_selection_rejects_oversized_depth() {
        let mut ids = Vec::new();
        let mut out = vec![0u32; 3];
        top_k_prefix_into(&[1.0, 2.0], &mut ids, &mut out);
    }

    #[test]
    fn sampler_table_is_bit_identical_to_dist_sampling() {
        // The compiled samplers must consume the PRNG exactly like
        // ScoreDist::sample — same draws, same arithmetic.
        let t = every_family_table();
        let sampler = WorldSampler::new(&t);
        assert_eq!(sampler.len(), t.len());
        assert!(!sampler.is_empty());
        let mut a = StdRng::seed_from_u64(1234);
        let mut b = StdRng::seed_from_u64(1234);
        let mut buf = vec![0.0; t.len()];
        for world in 0..500 {
            let reference = sample_scores(&t, &mut a);
            sampler.sample_into(&mut b, &mut buf);
            for (i, (x, y)) in reference.iter().zip(&buf).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "world {world}, tuple {i}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn dominant_tuple_always_first() {
        let t = table();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let r = sample_ranking(&t, &mut rng);
            assert_eq!(r[0], 2, "point mass at 2.0 dominates");
        }
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let t = table();
        let a = sample_rankings(&t, 50, &mut StdRng::seed_from_u64(9));
        let b = sample_rankings(&t, 50, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let c = sample_rankings(&t, 50, &mut StdRng::seed_from_u64(10));
        assert_ne!(a, c, "different seeds should differ somewhere");
    }

    #[test]
    fn empirical_pair_frequency_matches_pr_greater() {
        let t = UncertainTable::new(vec![
            ScoreDist::uniform(0.0, 2.0).unwrap(),
            ScoreDist::uniform(1.0, 3.0).unwrap(),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        const M: usize = 40_000;
        let wins = (0..M)
            .filter(|_| {
                let s = sample_scores(&t, &mut rng);
                s[0] > s[1]
            })
            .count();
        let freq = wins as f64 / M as f64;
        let p = crate::compare::pr_greater(t.dist_at(0), t.dist_at(1));
        assert!((freq - p).abs() < 0.01, "freq {freq} vs exact {p}");
    }
}
