//! Serving-layer scaling report (PR 4 acceptance numbers): round-loop
//! throughput over a tenants × worker-threads grid, with per-tenant
//! report bit-identity asserted between every cell and the sequential
//! baseline. Emits `BENCH_PR4.json`.
//!
//! `cargo run --release -p ctk-bench --bin service_scaling [--smoke] [--out FILE]`
//!
//! `--smoke` shrinks the grid so the binary finishes in seconds (used by
//! the CI bench-smoke step). The ">= 2x at 64 tenants on 4 threads"
//! acceptance assertion arms only on machines with >= 4 cores — on the
//! single-core build container the grid still runs (and still must be
//! deterministic and near-overhead-free), but a parallel speedup is
//! physically impossible there and the committed JSON records that
//! honestly, exactly as PR 3 did for its chunked builders.

use ctk_core::measures::MeasureKind;
use ctk_core::session::{Algorithm, SessionConfig, UrReport};
use ctk_crowd::{CrowdSimulator, GroundTruth, PerfectWorker, VotePolicy};
use ctk_datagen::{generate, DatasetSpec};
use ctk_prob::UncertainTable;
use ctk_service::{RunMode, SessionSpec, TopKService};
use ctk_tpo::build::{Engine, McConfig};
use std::time::Instant;

struct Grid {
    tenants: Vec<usize>,
    threads: Vec<usize>,
    tuples: usize,
    worlds: usize,
    budget: usize,
}

fn full() -> Grid {
    Grid {
        tenants: vec![16, 64],
        threads: vec![1, 2, 4],
        tuples: 18,
        worlds: ctk_tpo::DEFAULT_WORLDS,
        budget: 12,
    }
}

fn smoke() -> Grid {
    Grid {
        tenants: vec![8],
        threads: vec![1, 2],
        tuples: 9,
        worlds: 1_500,
        budget: 5,
    }
}

/// Distinct per-tenant workloads: the heavy online scorers dominate so a
/// round's gather phase has real work to shard, with enough variety that
/// rounds stay populated at different depths.
fn tenant_config(tenant: usize, worlds: usize, budget: usize) -> SessionConfig {
    let algorithm = match tenant % 4 {
        0 | 1 => Algorithm::T1On,
        2 => Algorithm::COff,
        _ => Algorithm::Incr {
            questions_per_round: 2,
        },
    };
    SessionConfig {
        k: 2 + tenant % 3,
        budget,
        measure: MeasureKind::WeightedEntropy,
        algorithm,
        engine: Engine::MonteCarlo(McConfig::fixed(worlds, 17 + (tenant % 4) as u64)),
        seed: tenant as u64,
        uncertainty_target: None,
    }
}

struct Cell {
    tenants: usize,
    threads: usize,
    elapsed_ms: f64,
    rounds: u64,
    answers_served: u64,
    cache_hits: u64,
    answers_per_sec: f64,
    speedup_vs_1: f64,
}

fn run_cell(
    table: &UncertainTable,
    truth: &GroundTruth,
    grid: &Grid,
    tenants: usize,
    threads: usize,
) -> (Cell, Vec<UrReport>) {
    let crowd = CrowdSimulator::new(truth.clone(), PerfectWorker, VotePolicy::Single, 1_000_000)
        .expect("valid vote policy");
    // Pinned to tick mode on one shard: the shard-owned core's
    // bit-compatible configuration, so these numbers stay comparable
    // across the PR 9 refactor (the shards x mode grid lives in
    // `bench_pr9`).
    let mut service = TopKService::new(crowd)
        .with_run_mode(RunMode::Tick)
        .with_threads(threads);
    let ids: Vec<_> = (0..tenants)
        .map(|t| {
            service
                .submit(
                    table,
                    SessionSpec::new(tenant_config(t, grid.worlds, grid.budget)),
                )
                .expect("valid tenant config")
        })
        .collect();
    // Time only the round loop: session construction (TPO build) is
    // submit-time work and identical across thread counts.
    let t0 = Instant::now();
    let metrics = service.run_to_completion().clone();
    let elapsed = t0.elapsed();
    assert_eq!(
        metrics.completed as usize, tenants,
        "every tenant completes"
    );
    assert_eq!(metrics.failed, 0);
    let reports: Vec<UrReport> = ids
        .iter()
        .map(|id| service.report(*id).expect("done").clone())
        .collect();
    let secs = elapsed.as_secs_f64();
    (
        Cell {
            tenants,
            threads,
            elapsed_ms: secs * 1e3,
            rounds: metrics.rounds,
            answers_served: metrics.answers_served,
            cache_hits: metrics.cache_hits,
            answers_per_sec: metrics.answers_served as f64 / secs.max(1e-9),
            speedup_vs_1: 1.0, // filled in by the caller
        },
        reports,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke_mode = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR4.json".to_string());
    let grid = if smoke_mode { smoke() } else { full() };
    let cores = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    eprintln!(
        "# service scaling: tenants {:?} x threads {:?} (n={}, worlds={}, budget={}, {} cores){}",
        grid.tenants,
        grid.threads,
        grid.tuples,
        grid.worlds,
        grid.budget,
        cores,
        if smoke_mode { " [smoke]" } else { "" }
    );

    let table = generate(&DatasetSpec::paper_default(grid.tuples, 0.4, 7)).expect("valid spec");
    let truth = GroundTruth::sample(&table, 4242);

    let mut cells: Vec<Cell> = Vec::new();
    for &tenants in &grid.tenants {
        let mut baseline_ms = 0.0;
        let mut baseline_reports: Vec<UrReport> = Vec::new();
        for &threads in &grid.threads {
            let (mut cell, reports) = run_cell(&table, &truth, &grid, tenants, threads);
            if threads == 1 {
                baseline_ms = cell.elapsed_ms;
                baseline_reports = reports;
            } else {
                // The determinism half of the acceptance bar: sharding
                // must be invisible in every per-tenant report.
                for (t, (a, b)) in baseline_reports.iter().zip(&reports).enumerate() {
                    assert!(
                        a.same_outcome(b),
                        "tenant {t} diverged between 1 and {threads} threads at {tenants} tenants"
                    );
                }
                cell.speedup_vs_1 = baseline_ms / cell.elapsed_ms.max(1e-9);
            }
            eprintln!(
                "# tenants {:>3} threads {:>2}: {:>9.1} ms, {:>5} rounds, {:>6} answers ({} cached), {:>8.0} answers/s, speedup {:>5.2}x",
                cell.tenants,
                cell.threads,
                cell.elapsed_ms,
                cell.rounds,
                cell.answers_served,
                cell.cache_hits,
                cell.answers_per_sec,
                cell.speedup_vs_1,
            );
            cells.push(cell);
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"service_scaling\",\n  \"mode\": \"{}\",\n  \"config\": {{ \"tuples\": {}, \"worlds\": {}, \"budget\": {}, \"cores\": {} }},\n  \"cells\": [\n{}\n  ]\n}}\n",
        if smoke_mode { "smoke" } else { "full" },
        grid.tuples,
        grid.worlds,
        grid.budget,
        cores,
        cells
            .iter()
            .map(|c| format!(
                "    {{ \"tenants\": {}, \"threads\": {}, \"elapsed_ms\": {:.1}, \"rounds\": {}, \"answers_served\": {}, \"cache_hits\": {}, \"answers_per_sec\": {:.0}, \"speedup_vs_1\": {:.3} }}",
                c.tenants,
                c.threads,
                c.elapsed_ms,
                c.rounds,
                c.answers_served,
                c.cache_hits,
                c.answers_per_sec,
                c.speedup_vs_1,
            ))
            .collect::<Vec<_>>()
            .join(",\n")
    );
    std::fs::write(&out, &json).expect("write BENCH_PR4.json");
    eprintln!("# wrote {out}");

    if !smoke_mode {
        // Sharding must never *cost* much, even where it cannot win: on a
        // single core, threads time-slice over one cache and the loop
        // measured ~0.8x; leave noise margin below that, because a real
        // regression (locking, serialization) would land far lower.
        for c in cells.iter().filter(|c| c.threads > 1) {
            assert!(
                c.speedup_vs_1 >= 0.6,
                "sharding overhead too high: {:.2}x at {} tenants / {} threads",
                c.speedup_vs_1,
                c.tenants,
                c.threads
            );
        }
        // PR acceptance: >= 2x round-loop throughput at the largest grid
        // point on 4 threads. Arms only where 4 hardware threads exist.
        if cores >= 4 {
            let top = cells
                .iter()
                .rfind(|c| c.tenants == *grid.tenants.last().unwrap() && c.threads == 4)
                .expect("grid contains the acceptance cell");
            assert!(
                top.speedup_vs_1 >= 2.0,
                "round-loop speedup {:.2}x below the 2x acceptance bar",
                top.speedup_vs_1
            );
        } else {
            eprintln!("# {cores} core(s): the 2x acceptance assertion arms on >= 4 cores");
        }
    }
}
