//! Error type for TPO construction and belief updates.

use ctk_prob::ProbError;
use std::fmt;

/// Errors raised by TPO construction, pruning and reweighting.
#[derive(Debug, Clone, PartialEq)]
pub enum TpoError {
    /// Underlying probability-engine error.
    Prob(ProbError),
    /// `k` must satisfy `1 <= k <= N`.
    InvalidK { k: usize, n: usize },
    /// A sampled-worlds belief needs at least one world (`M >= 1`).
    /// Invalid specs are errors, not silent repairs.
    InvalidWorlds,
    /// An adaptive precision target needs `0 < epsilon < 1` and
    /// `0 < delta < 1`.
    InvalidPrecision {
        /// The rejected per-path error tolerance.
        epsilon: f64,
        /// The rejected failure probability.
        delta: f64,
    },
    /// The exact engine exceeded its configured path budget.
    PathExplosion { paths: usize, max: usize },
    /// An answer (or answer sequence) eliminated every ordering.
    ContradictoryAnswer,
    /// A path set ended up empty (no orderings).
    EmptyPathSet,
}

impl fmt::Display for TpoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TpoError::Prob(e) => write!(f, "probability engine: {e}"),
            TpoError::InvalidK { k, n } => {
                write!(f, "k = {k} out of range for a table of {n} tuples")
            }
            TpoError::InvalidWorlds => {
                write!(f, "a sampled-worlds belief needs at least one world")
            }
            TpoError::InvalidPrecision { epsilon, delta } => {
                write!(
                    f,
                    "adaptive precision target (epsilon = {epsilon}, delta = {delta}) \
                     must satisfy 0 < epsilon < 1 and 0 < delta < 1"
                )
            }
            TpoError::PathExplosion { paths, max } => {
                write!(
                    f,
                    "tree of possible orderings exceeded {max} paths ({paths} found)"
                )
            }
            TpoError::ContradictoryAnswer => {
                write!(f, "answer contradicts every remaining ordering")
            }
            TpoError::EmptyPathSet => write!(f, "path set contains no orderings"),
        }
    }
}

impl std::error::Error for TpoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TpoError::Prob(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProbError> for TpoError {
    fn from(e: ProbError) -> Self {
        TpoError::Prob(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, TpoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = TpoError::from(ProbError::EmptyTable);
        assert!(e.to_string().contains("probability engine"));
        assert!(e.source().is_some());
        assert!(TpoError::InvalidK { k: 9, n: 3 }.to_string().contains("9"));
        assert!(TpoError::InvalidWorlds.to_string().contains("world"));
        assert!(TpoError::InvalidPrecision {
            epsilon: 0.0,
            delta: 2.0
        }
        .to_string()
        .contains("epsilon"));
        assert!(TpoError::PathExplosion { paths: 10, max: 5 }
            .to_string()
            .contains("exceeded"));
        assert!(TpoError::ContradictoryAnswer.source().is_none());
        let _ = TpoError::EmptyPathSet.to_string();
    }
}
