//! Many tenants, one crowd: 32 concurrent top-K sessions multiplexed over
//! a single simulated crowd backend, with cross-session question
//! deduplication and a sharded round loop.
//!
//! Run with:
//! `cargo run --release --example many_tenants [-- --threads N] [--shards N] [--mode tick|event|threaded] [--digest]`
//!
//! `--threads N` pins the worker thread count (default: all cores).
//! `--shards N` partitions the sessions across N shard-owned registries
//! (default 1); `--mode` picks the barrier tick loop, the event-driven
//! sweep, or the threaded topology with one worker thread per shard
//! (default tick). `--digest` prints only a timing-free per-tenant
//! outcome digest — CI runs the example across thread counts, shard
//! counts and all run modes and diffs the digests to smoke-check that
//! the serving topology is invisible in the results.

use crowd_topk::core::measures::MeasureKind;
use crowd_topk::core::session::{Algorithm, SessionConfig, UrSession};
use crowd_topk::datagen::{generate, DatasetSpec};
use crowd_topk::prelude::*;
use crowd_topk::service::RunMode;
use crowd_topk::tpo::build::{Engine, McConfig};

const TENANTS: usize = 32;
const BUDGET: usize = 8;

fn tenant_config(tenant: usize) -> SessionConfig {
    let algorithm = match tenant % 6 {
        0 => Algorithm::T1On,
        1 => Algorithm::TbOff,
        2 => Algorithm::Naive,
        3 => Algorithm::Random,
        4 => Algorithm::COff,
        _ => Algorithm::Incr {
            questions_per_round: 3,
        },
    };
    SessionConfig {
        k: 3,
        budget: BUDGET,
        measure: MeasureKind::WeightedEntropy,
        algorithm,
        engine: Engine::MonteCarlo(McConfig::fixed(2500, 17)),
        seed: (tenant % 6) as u64,
        uncertainty_target: None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let digest = args.iter().any(|a| a == "--digest");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let threads = flag("--threads")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0); // 0 = all cores
    let shards = flag("--shards")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1)
        .max(1);
    let mode = match flag("--mode").map(String::as_str) {
        Some("event") => RunMode::Event,
        Some("threaded") => RunMode::EventThreaded,
        Some("tick") | None => RunMode::Tick,
        Some(other) => panic!("unknown --mode {other:?} (expected tick, event or threaded)"),
    };

    // One shared object universe: ten items with overlapping uncertain
    // scores, one hidden reality, one crowd that knows it.
    let table = generate(&DatasetSpec::paper_default(10, 0.35, 2024)).expect("valid spec");
    let truth = GroundTruth::sample(&table, 4242);
    let top = truth.top_k(3);
    let crowd = CrowdSimulator::new(truth.clone(), PerfectWorker, VotePolicy::Single, 100_000)
        .expect("valid vote policy");

    // A service with a bounded per-round fanout (a tight worker pool):
    // at most 8 tenants are served per scheduling round, their driver
    // work sharded across the configured worker threads.
    let mut service = TopKService::new(crowd)
        .with_shards(shards)
        .expect("topology set before any submit")
        .with_run_mode(mode)
        .with_fanout(8)
        .with_threads(threads);
    let ids: Vec<_> = (0..TENANTS)
        .map(|t| {
            service
                .submit_with_truth(
                    &table,
                    SessionSpec::new(tenant_config(t)).with_priority((t % 4) as u8),
                    Some(&top),
                )
                .expect("valid tenant config")
        })
        .collect();

    if digest {
        service.run_to_completion();
        // Timing-free, thread-count-independent outcome digest: one line
        // per tenant. Diffing two runs pins the sharding determinism.
        for (tenant, id) in ids.iter().enumerate() {
            let r = service.report(*id).expect("tenant completed");
            let last_uncertainty = r
                .steps
                .last()
                .map(|s| s.uncertainty.to_bits())
                .unwrap_or_else(|| r.initial_uncertainty.to_bits());
            println!(
                "{tenant}\t{}\t{}\t{}\t{:?}\t{:016x}",
                r.algorithm,
                r.questions_asked(),
                r.resolved,
                r.final_topk,
                last_uncertainty,
            );
        }
        return;
    }

    println!(
        "Serving {TENANTS} concurrent sessions over one crowd \
         ({} worker threads, {} shard(s), {:?} mode)...\n",
        service.threads(),
        service.shard_count(),
        service.run_mode(),
    );
    let metrics = service.run_to_completion().clone();

    println!("{}", metrics.summary());
    println!(
        "\nWithout cross-session batching the crowd would have answered \
         {} questions; deduplication bought {} of them from cache \
         ({:.0}% of the spend saved).",
        metrics.answers_served,
        metrics.cache_hits,
        100.0 * metrics.cache_hit_rate(),
    );

    // Spot-check the losslessness guarantee on the first few tenants:
    // the multiplexed report equals the standalone blocking run.
    let mut verified = 0;
    for (tenant, id) in ids.iter().enumerate().take(6) {
        let served = service.report(*id).expect("session done");
        let mut own_crowd =
            CrowdSimulator::new(truth.clone(), PerfectWorker, VotePolicy::Single, BUDGET)
                .expect("valid vote policy");
        let standalone = UrSession::new(tenant_config(tenant))
            .unwrap()
            .run_with_truth(&table, &mut own_crowd, Some(&top))
            .unwrap();
        assert!(
            served.same_outcome(&standalone),
            "tenant {tenant} diverged from its standalone run"
        );
        verified += 1;
    }
    println!(
        "\nVerified {verified} tenants bit-exact against standalone Session::run; \
         all {} sessions completed.",
        metrics.completed
    );

    println!("\nPer-tenant results (first 8):");
    println!("tenant  algorithm  questions  resolved  top-3");
    for (tenant, id) in ids.iter().enumerate().take(8) {
        let r = service.report(*id).unwrap();
        println!(
            "{tenant:>6}  {:9}  {:9}  {:8}  {:?}",
            r.algorithm,
            r.questions_asked(),
            r.resolved,
            r.final_topk
        );
    }
}
