//! Error type for crowd-layer configuration.

use std::fmt;

/// Errors surfaced by the crowd layer instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CrowdError {
    /// A majority vote policy with an even or too-small worker count.
    InvalidVotePolicy {
        /// The rejected majority count.
        count: usize,
    },
}

impl fmt::Display for CrowdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrowdError::InvalidVotePolicy { count } => {
                write!(f, "majority policy needs an odd count >= 3, got {count}")
            }
        }
    }
}

impl std::error::Error for CrowdError {}
