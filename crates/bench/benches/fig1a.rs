//! Criterion companion to Figure 1(a): end-to-end session cost per
//! algorithm at a fixed budget on the paper's default workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctk_bench::{evaluate, EvalOpts};
use ctk_core::session::Algorithm;
use ctk_datagen::scenarios;
use std::time::Duration;

fn bench_fig1a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1a_session");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    let opts = EvalOpts {
        runs: 1,
        worlds: 2_000,
        ..EvalOpts::default()
    };
    for algorithm in [
        Algorithm::T1On,
        Algorithm::TbOff,
        Algorithm::Naive,
        Algorithm::Random,
        Algorithm::Incr {
            questions_per_round: 5,
        },
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(algorithm.name()),
            &algorithm,
            |b, alg| {
                b.iter(|| evaluate(scenarios::fig1, alg.clone(), 10, &opts));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig1a);
criterion_main!(benches);
