//! Rank aggregation over a weighted tournament.
//!
//! The Optimal Rank Aggregation (ORA) of Soliman et al. (SIGMOD'11) is the
//! ordering of the tournament's candidates minimizing the expected Kendall
//! disagreement with the distribution over orderings — equivalently the
//! minimum weighted feedback-arc-set ordering. Kemeny aggregation is NP-hard
//! in general, so this module offers:
//!
//! * [`exact`] — Held-Karp style bitmask DP, `O(2^n · n^2)`, exact for
//!   `n ≤ ~18` candidates (a TPO at the paper's `K = 5…10` rarely mentions
//!   more);
//! * [`borda`], [`copeland`], [`kwiksort`] — classic constant-factor
//!   heuristics;
//! * [`local_search`] — adjacent-swap + single-item-reinsertion descent
//!   used to polish any candidate ordering.
//!
//! [`optimal_rank_aggregation`] picks the exact solver when the instance is
//! small and otherwise the best-of-heuristics polished by local search.

mod borda;
mod copeland;
mod exact;
mod kwiksort;
mod local_search;

pub use borda::borda;
pub use copeland::copeland;
pub use exact::exact_kemeny;
pub use kwiksort::kwiksort;
pub use local_search::local_search;

use crate::error::{RankError, Result};
use crate::list::RankList;
use crate::tournament::Tournament;

/// Configuration for [`optimal_rank_aggregation`].
#[derive(Debug, Clone)]
pub struct AggregateConfig {
    /// Use the exact DP when the candidate count is at most this.
    pub exact_threshold: usize,
    /// Number of randomized KwikSort restarts in heuristic mode.
    pub kwiksort_restarts: usize,
    /// Polish the heuristic winner with local search.
    pub polish: bool,
    /// Seed for the randomized components.
    pub seed: u64,
}

impl Default for AggregateConfig {
    fn default() -> Self {
        Self {
            exact_threshold: 14,
            kwiksort_restarts: 4,
            polish: true,
            seed: 0x5eed_0f0a,
        }
    }
}

/// Outcome of an aggregation: the ordering and its tournament cost.
#[derive(Debug, Clone)]
pub struct Aggregation {
    /// The aggregated ordering (over all tournament candidates).
    pub ordering: RankList,
    /// Its weighted feedback-arc-set cost.
    pub cost: f64,
    /// Whether the exact solver produced it.
    pub exact: bool,
}

/// Computes the ORA of a tournament: exact for small candidate sets, best
/// heuristic (optionally polished) otherwise.
pub fn optimal_rank_aggregation(t: &Tournament, cfg: &AggregateConfig) -> Result<Aggregation> {
    if t.is_empty() {
        return Err(RankError::NoCandidates);
    }
    if t.len() <= cfg.exact_threshold {
        let order = exact_kemeny(t);
        let cost = t.cost_of_indices(&order);
        return Ok(Aggregation {
            ordering: indices_to_list(t, &order),
            cost,
            exact: true,
        });
    }

    let mut best: Option<(Vec<usize>, f64)> = None;
    let mut consider = |order: Vec<usize>, t: &Tournament| {
        let cost = t.cost_of_indices(&order);
        if best.as_ref().map(|(_, c)| cost < *c).unwrap_or(true) {
            best = Some((order, cost));
        }
    };
    consider(borda(t), t);
    consider(copeland(t), t);
    for r in 0..cfg.kwiksort_restarts {
        consider(kwiksort(t, cfg.seed.wrapping_add(r as u64)), t);
    }
    // ctk-allow(panic-unwrap): borda and copeland always run, so best is Some
    let (mut order, mut cost) = best.expect("at least one heuristic ran");
    if cfg.polish {
        let polished = local_search(t, &order);
        let pc = t.cost_of_indices(&polished);
        if pc < cost {
            order = polished;
            cost = pc;
        }
    }
    Ok(Aggregation {
        ordering: indices_to_list(t, &order),
        cost,
        exact: false,
    })
}

fn indices_to_list(t: &Tournament, order: &[usize]) -> RankList {
    RankList::new_unchecked(order.iter().map(|&i| t.items()[i]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rl(items: &[u32]) -> RankList {
        RankList::new(items.to_vec()).unwrap()
    }

    /// Brute-force Kemeny by enumerating all permutations (n <= 8).
    pub(crate) fn brute_force(t: &Tournament) -> (Vec<usize>, f64) {
        let n = t.len();
        let mut idx: Vec<usize> = (0..n).collect();
        let mut best: Option<(Vec<usize>, f64)> = None;
        permute(&mut idx, 0, &mut |perm| {
            let c = t.cost_of_indices(perm);
            if best.as_ref().map(|(_, bc)| c < *bc).unwrap_or(true) {
                best = Some((perm.to_vec(), c));
            }
        });
        best.expect("non-empty")
    }

    fn permute<F: FnMut(&[usize])>(v: &mut Vec<usize>, k: usize, f: &mut F) {
        if k == v.len() {
            f(v);
            return;
        }
        for i in k..v.len() {
            v.swap(k, i);
            permute(v, k + 1, f);
            v.swap(k, i);
        }
    }

    #[test]
    fn empty_tournament_is_error() {
        let t = Tournament::from_weighted_lists(&[]);
        assert!(matches!(
            optimal_rank_aggregation(&t, &AggregateConfig::default()),
            Err(RankError::NoCandidates)
        ));
    }

    #[test]
    fn unanimous_tournament_recovers_the_list() {
        let t = Tournament::from_weighted_lists(&[(rl(&[3, 0, 2, 1]), 1.0)]);
        let agg = optimal_rank_aggregation(&t, &AggregateConfig::default()).unwrap();
        assert_eq!(agg.ordering.items(), &[3, 0, 2, 1]);
        assert_eq!(agg.cost, 0.0);
        assert!(agg.exact);
    }

    #[test]
    fn exact_matches_brute_force_on_random_tournaments() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..20 {
            let n = 2 + (trial % 6);
            let items: Vec<u32> = (0..n as u32).collect();
            let mut weights = vec![0.5; n * n];
            for a in 0..n {
                for b in (a + 1)..n {
                    let w: f64 = rng.gen();
                    weights[a * n + b] = w;
                    weights[b * n + a] = 1.0 - w;
                }
            }
            let wclone = weights.clone();
            let t = Tournament::from_fn(items, move |u, v| wclone[u as usize * n + v as usize]);
            let agg = optimal_rank_aggregation(&t, &AggregateConfig::default()).unwrap();
            let (_, bc) = brute_force(&t);
            assert!(
                (agg.cost - bc).abs() < 1e-9,
                "trial {trial}: exact {} vs brute {bc}",
                agg.cost
            );
        }
    }

    #[test]
    fn heuristic_mode_is_close_to_optimal() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let n = 8;
        let mut weights = vec![0.5; n * n];
        for a in 0..n {
            for b in (a + 1)..n {
                let w: f64 = rng.gen();
                weights[a * n + b] = w;
                weights[b * n + a] = 1.0 - w;
            }
        }
        let items: Vec<u32> = (0..n as u32).collect();
        let wclone = weights.clone();
        let t = Tournament::from_fn(items, move |u, v| wclone[u as usize * n + v as usize]);
        let cfg = AggregateConfig {
            exact_threshold: 0, // force heuristics
            ..AggregateConfig::default()
        };
        let agg = optimal_rank_aggregation(&t, &cfg).unwrap();
        assert!(!agg.exact);
        let (_, bc) = brute_force(&t);
        // Polished heuristics should be within 10% of optimal on tiny inputs.
        assert!(
            agg.cost <= bc * 1.10 + 1e-9,
            "heuristic {} vs optimal {bc}",
            agg.cost
        );
    }

    #[test]
    fn aggregation_is_deterministic() {
        let lists = [
            (rl(&[0, 1, 2, 3, 4]), 0.4),
            (rl(&[1, 0, 3, 2, 4]), 0.3),
            (rl(&[0, 2, 1, 4, 3]), 0.3),
        ];
        let t = Tournament::from_weighted_lists(&lists);
        let cfg = AggregateConfig::default();
        let a = optimal_rank_aggregation(&t, &cfg).unwrap();
        let b = optimal_rank_aggregation(&t, &cfg).unwrap();
        assert_eq!(a.ordering, b.ordering);
        assert_eq!(a.cost, b.cost);
    }
}
