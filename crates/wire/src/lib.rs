#![forbid(unsafe_code)]
#![deny(warnings)]
//! # ctk-wire — the serving stack's byte codec
//!
//! Wire layer of the `crowd-topk` workspace (reproduction of
//! *“Crowdsourcing for Top-K Query Processing over Uncertain Data”*,
//! Ciceri et al., ICDE 2016 / TKDE 28(1)): a deterministic, versioned,
//! length-prefixed byte codec for everything the sans-IO
//! [`ctk_core::driver::SessionDriver`] exchanges with a crowd backend —
//! question batches with [`ctk_crowd::RouteHint`]s, graded answer frames,
//! and final [`ctk_core::session::UrReport`] /
//! [`ctk_tpo::PrecisionReport`] summaries.
//!
//! The codec exists so the driver traffic can cross a process boundary:
//! the `crowd_gateway` example runs a full `TopKService` against a
//! gateway-side crowd where **every** interaction is a round trip through
//! [`encode_frame`] / [`decode_frame`], and asserts the resulting reports
//! equal the in-process path bit for bit.
//!
//! Format guarantees (DESIGN.md §14):
//!
//! * **Deterministic** — encoding is a pure function of the value: no
//!   maps, no pointers, no timestamps. `encode(x)` is byte-identical
//!   across runs, machines and shard counts, so frames can be hashed,
//!   diffed and replayed.
//! * **Versioned** — every frame leads with [`WIRE_VERSION`]; a decoder
//!   rejects frames from a different version with
//!   [`WireError::UnknownVersion`] instead of guessing.
//! * **Length-prefixed** — the header carries the payload length, so
//!   frames can be cut out of a byte stream without parsing the payload,
//!   and a truncated buffer fails with [`WireError::Truncated`] (with the
//!   missing byte count) rather than a panic.
//! * **Strict** — payload bytes must be consumed exactly: inner slack is
//!   [`WireError::TrailingGarbage`], out-of-range enums and non-0/1 bools
//!   are [`WireError::Malformed`]. Decoding never panics on any input
//!   (pinned by proptests and the ctk-analyze panic wall).

pub mod codec;
pub mod error;
pub mod frames;

pub use error::WireError;
pub use frames::{
    decode_frame, decode_frame_exact, encode_frame, AnswerBatch, Frame, GradedAnswer,
    PrecisionSummary, QuestionBatch, ReportSummary, StepSummary,
};

/// The codec version every frame leads with. Bump on any layout change;
/// decoders reject other versions loudly ([`WireError::UnknownVersion`])
/// so old peers fail fast instead of misreading payloads.
pub const WIRE_VERSION: u8 = 1;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, WireError>;
