//! Minimal, API-compatible shim for the subset of `criterion` this
//! workspace uses. It performs a real (if simple) wall-clock measurement:
//! each benchmark body is warmed up once, then timed over a fixed number
//! of batches, and the median batch time is printed.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub mod measurement {
    /// Marker for wall-clock measurement (the only mode supported).
    pub struct WallTime;
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times closures handed to `Bencher::iter`.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (also primes caches/allocs).
        black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort();
        Some(self.samples[self.samples.len() / 2] / self.iters_per_sample as u32)
    }
}

fn run_one(label: &str, sample_count: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher::new(sample_count);
    f(&mut bencher);
    match bencher.median() {
        Some(d) => println!("bench {label:<48} median {d:>12.3?} ({sample_count} samples)"),
        None => println!("bench {label:<48} (no measurement)"),
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    sample_count: usize,
    _criterion: &'a mut Criterion,
    _marker: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion requires >= 10; we just take a small positive count.
        self.sample_count = n.max(3);
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_count, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.sample_count,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// Units for `BenchmarkGroup::throughput` (accepted, ignored).
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// The benchmark harness entry point.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: self.default_samples,
            _criterion: self,
            _marker: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.id, self.default_samples, f);
        self
    }
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `fn main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
