//! T-measures (§IV prose): the four uncertainty measures head-to-head.
//! T1-on optimizes each measure in turn; quality is the final
//! `D(ω_r, T_K)` at several budgets. The paper's finding: the measures
//! that account for tree structure (`U_Hw`, `U_ORA`, `U_MPO`) guide
//! selection better than plain leaf entropy (`U_H`).
//!
//! `cargo run --release -p ctk-bench --bin table_measures [runs]`

use ctk_bench::{emit_tsv, evaluate, fmt, runs_from_args, EvalOpts};
use ctk_core::measures::MeasureKind;
use ctk_core::session::Algorithm;
use ctk_datagen::scenarios;

fn main() {
    let runs = runs_from_args(10);
    let budgets = [4usize, 8, 12, 16];

    eprintln!("# T-measures: D(omega_r, T_K) by measure — N=15, K=5, T1-on, {runs} runs");
    let mut rows = Vec::new();
    for measure in MeasureKind::all() {
        let opts = EvalOpts {
            runs,
            measure,
            worlds: 3_000,
            ..EvalOpts::default()
        };
        for &b in &budgets {
            let s = evaluate(scenarios::measures, Algorithm::T1On, b, &opts);
            rows.push(vec![
                measure.name().to_string(),
                b.to_string(),
                fmt(s.avg_distance),
                fmt(s.avg_selection_secs),
            ]);
            eprintln!(
                "#   {:5} B={:2}  D={:.4}  select={:.3}s",
                measure.name(),
                b,
                s.avg_distance,
                s.avg_selection_secs
            );
        }
    }
    emit_tsv(
        "table_measures",
        &["measure", "B", "D", "selection_secs"],
        &rows,
    );
}
