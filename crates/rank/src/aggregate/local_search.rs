//! Local-search polishing for rank aggregation: steepest-descent over
//! adjacent transpositions plus single-item reinsertion, until a local
//! optimum. Both neighbourhoods evaluate moves incrementally in `O(1)` /
//! `O(n)` rather than re-scoring the whole ordering.

use crate::tournament::Tournament;

/// Maximum improvement passes; generous (each pass strictly reduces cost,
/// and costs live on a fine but finite grid for rational weights).
const MAX_PASSES: usize = 10_000;

/// Polishes `start` (candidate indices) to a local optimum of the weighted
/// feedback-arc-set cost. Returns the improved ordering.
#[allow(clippy::needless_range_loop)] // index j is the insertion position, not just an access
pub fn local_search(t: &Tournament, start: &[usize]) -> Vec<usize> {
    let mut order = start.to_vec();
    if order.len() < 2 {
        return order;
    }
    for _ in 0..MAX_PASSES {
        let mut improved = false;

        // Adjacent swaps: swapping positions (i, i+1) changes the cost by
        // w(a,b) - w(b,a) where a = order[i], b = order[i+1].
        for i in 0..order.len() - 1 {
            let (a, b) = (order[i], order[i + 1]);
            let delta = t.weight(a, b) - t.weight(b, a);
            if delta < -1e-15 {
                order.swap(i, i + 1);
                improved = true;
            }
        }

        // Single-item reinsertion: move order[i] to the best position.
        for i in 0..order.len() {
            let item = order[i];
            // delta[j] = cost change from moving `item` to position j.
            // Walk left and right accumulating pairwise differences.
            let mut best_j = i;
            let mut best_delta = 0.0;
            let mut acc = 0.0;
            // Moving left past position j: the pair (other, item) flips from
            // other-before-item (cost w(item, other)) to item-before-other
            // (cost w(other, item)).
            for j in (0..i).rev() {
                let other = order[j];
                acc += t.weight(other, item) - t.weight(item, other);
                if acc < best_delta - 1e-15 {
                    best_delta = acc;
                    best_j = j;
                }
            }
            acc = 0.0;
            // Moving right past position j: the pair flips the other way.
            for j in (i + 1)..order.len() {
                let other = order[j];
                acc += t.weight(item, other) - t.weight(other, item);
                if acc < best_delta - 1e-15 {
                    best_delta = acc;
                    best_j = j;
                }
            }
            if best_j != i {
                let item = order.remove(i);
                order.insert(best_j, item);
                improved = true;
            }
        }

        if !improved {
            break;
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tournament(n: usize, seed: u64) -> Tournament {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = vec![0.5; n * n];
        for a in 0..n {
            for b in (a + 1)..n {
                let x: f64 = rng.gen();
                w[a * n + b] = x;
                w[b * n + a] = 1.0 - x;
            }
        }
        Tournament::from_fn((0..n as u32).collect(), move |u, v| {
            w[u as usize * n + v as usize]
        })
    }

    #[test]
    fn never_increases_cost() {
        for seed in 0..10 {
            let t = random_tournament(9, seed);
            let start: Vec<usize> = (0..9).collect();
            let before = t.cost_of_indices(&start);
            let polished = local_search(&t, &start);
            let after = t.cost_of_indices(&polished);
            assert!(after <= before + 1e-12, "seed {seed}: {before} -> {after}");
        }
    }

    #[test]
    fn output_is_a_permutation() {
        let t = random_tournament(12, 3);
        let start: Vec<usize> = (0..12).rev().collect();
        let mut out = local_search(&t, &start);
        out.sort_unstable();
        assert_eq!(out, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn fixes_a_single_bad_swap() {
        // Unanimous order 0..5; start with one adjacent transposition.
        let t = Tournament::from_fn((0..5).collect(), |u, v| if u < v { 1.0 } else { 0.0 });
        let start = vec![0, 2, 1, 3, 4];
        let out = local_search(&t, &start);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.cost_of_indices(&out), 0.0);
    }

    #[test]
    fn reinsertion_escapes_adjacent_swap_minima() {
        // Craft a case where a block move is needed: unanimous order
        // [1,2,3,0] but start = [0,1,2,3]; moving 0 to the back requires
        // three adjacent swaps each of which is individually improving here,
        // but reinsertion does it in one move regardless.
        let target = [1u32, 2, 3, 0];
        let pos = |x: u32| target.iter().position(|&t| t == x).unwrap();
        let t = Tournament::from_fn(
            vec![0, 1, 2, 3],
            move |u, v| {
                if pos(u) < pos(v) {
                    1.0
                } else {
                    0.0
                }
            },
        );
        let out = local_search(&t, &[0, 1, 2, 3]);
        let items: Vec<u32> = out.iter().map(|&i| t.items()[i]).collect();
        assert_eq!(items, target.to_vec());
    }

    #[test]
    fn trivial_inputs() {
        let t = random_tournament(1, 0);
        assert_eq!(local_search(&t, &[0]), vec![0]);
        let t0 = Tournament::from_weighted_lists(&[]);
        assert!(local_search(&t0, &[]).is_empty());
    }
}
