//! Kendall tau distance between full permutations of the same item set.
//!
//! Counts discordant pairs in `O(n log n)` by mapping one permutation
//! through the other's positions and counting inversions with a merge sort.

use crate::error::{RankError, Result};
use crate::list::RankList;

/// Number of discordant pairs between two permutations of the same items.
pub fn kendall_distance(a: &RankList, b: &RankList) -> Result<u64> {
    if a.len() != b.len() {
        return Err(RankError::ItemSetMismatch);
    }
    // Map: item -> rank in `a`.
    // ctk-allow(det-hash-collection): lookup-only map; never iterated, so order cannot leak
    let mut pos_in_a = std::collections::HashMap::with_capacity(a.len());
    for (r, &it) in a.items().iter().enumerate() {
        pos_in_a.insert(it, r as u32);
    }
    // Sequence of a-ranks in b's order; inversions in it = discordant pairs.
    let mut seq = Vec::with_capacity(b.len());
    for &it in b.items() {
        match pos_in_a.get(&it) {
            Some(&r) => seq.push(r),
            None => return Err(RankError::ItemSetMismatch),
        }
    }
    Ok(count_inversions(&mut seq))
}

/// Kendall tau distance normalized to `[0, 1]` by the maximum `n(n-1)/2`.
/// Lists of length < 2 are at distance 0.
pub fn kendall_distance_normalized(a: &RankList, b: &RankList) -> Result<f64> {
    let n = a.len() as u64;
    if n < 2 {
        // Still validate the item sets.
        kendall_distance(a, b)?;
        return Ok(0.0);
    }
    let d = kendall_distance(a, b)?;
    Ok(d as f64 / (n * (n - 1) / 2) as f64)
}

/// Counts inversions of `seq` in `O(n log n)` (merge sort, in place on a
/// scratch buffer). `seq` is left sorted afterwards.
pub fn count_inversions(seq: &mut [u32]) -> u64 {
    let n = seq.len();
    if n < 2 {
        return 0;
    }
    let mut buf = vec![0u32; n];
    merge_count(seq, &mut buf)
}

fn merge_count(seq: &mut [u32], buf: &mut [u32]) -> u64 {
    let n = seq.len();
    if n < 2 {
        return 0;
    }
    let mid = n / 2;
    let (left, right) = seq.split_at_mut(mid);
    let mut inv = merge_count(left, &mut buf[..mid]) + merge_count(right, &mut buf[mid..]);
    // Merge, counting right-before-left crossings.
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < left.len() && j < right.len() {
        if left[i] <= right[j] {
            buf[k] = left[i];
            i += 1;
        } else {
            buf[k] = right[j];
            j += 1;
            inv += (left.len() - i) as u64;
        }
        k += 1;
    }
    while i < left.len() {
        buf[k] = left[i];
        i += 1;
        k += 1;
    }
    while j < right.len() {
        buf[k] = right[j];
        j += 1;
        k += 1;
    }
    seq.copy_from_slice(&buf[..n]);
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rl(items: &[u32]) -> RankList {
        RankList::new(items.to_vec()).unwrap()
    }

    #[test]
    fn identical_lists_at_zero() {
        let a = rl(&[0, 1, 2, 3]);
        assert_eq!(kendall_distance(&a, &a.clone()).unwrap(), 0);
        assert_eq!(kendall_distance_normalized(&a, &a.clone()).unwrap(), 0.0);
    }

    #[test]
    fn reversal_is_maximal() {
        let a = rl(&[0, 1, 2, 3]);
        let b = rl(&[3, 2, 1, 0]);
        assert_eq!(kendall_distance(&a, &b).unwrap(), 6);
        assert_eq!(kendall_distance_normalized(&a, &b).unwrap(), 1.0);
    }

    #[test]
    fn single_adjacent_swap_is_one() {
        let a = rl(&[0, 1, 2, 3]);
        let b = rl(&[0, 2, 1, 3]);
        assert_eq!(kendall_distance(&a, &b).unwrap(), 1);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = rl(&[4, 2, 0, 3, 1]);
        let b = rl(&[1, 0, 2, 3, 4]);
        assert_eq!(
            kendall_distance(&a, &b).unwrap(),
            kendall_distance(&b, &a).unwrap()
        );
    }

    #[test]
    fn mismatched_sets_rejected() {
        let a = rl(&[0, 1]);
        let b = rl(&[0, 2]);
        assert!(matches!(
            kendall_distance(&a, &b),
            Err(RankError::ItemSetMismatch)
        ));
        let c = rl(&[0, 1, 2]);
        assert!(kendall_distance(&a, &c).is_err());
    }

    #[test]
    fn short_lists() {
        let a = rl(&[7]);
        assert_eq!(kendall_distance_normalized(&a, &a.clone()).unwrap(), 0.0);
        let e = rl(&[]);
        assert_eq!(kendall_distance(&e, &e.clone()).unwrap(), 0);
    }

    #[test]
    fn inversion_count_brute_force_agreement() {
        // Compare merge-sort count against O(n^2) brute force.
        let cases: Vec<Vec<u32>> = vec![
            vec![3, 1, 4, 1_0, 5, 9, 2, 6],
            vec![1, 2, 3],
            vec![3, 2, 1],
            vec![5, 5, 5],
            vec![2, 1, 2, 1],
        ];
        for case in cases {
            let brute = {
                let mut c = 0u64;
                for i in 0..case.len() {
                    for j in (i + 1)..case.len() {
                        if case[i] > case[j] {
                            c += 1;
                        }
                    }
                }
                c
            };
            let mut seq = case.clone();
            assert_eq!(count_inversions(&mut seq), brute, "case {case:?}");
            let mut sorted = case.clone();
            sorted.sort_unstable();
            assert_eq!(seq, sorted, "sequence should end sorted");
        }
    }
}
