#![forbid(unsafe_code)]
#![deny(warnings)]
//! # crowd-topk
//!
//! Crowd-assisted top-K query processing over uncertain data — a complete
//! Rust reproduction of *“Crowdsourcing for Top-K Query Processing over
//! Uncertain Data”* (E. Ciceri, P. Fraternali, D. Martinenghi,
//! M. Tagliasacchi; ICDE 2016 extended abstract of TKDE 28(1):41–53).
//!
//! This facade crate re-exports the workspace members:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`prob`] | uncertain score distributions, pairwise comparison probabilities, possible-world sampling, nested-quadrature prefix probabilities |
//! | [`rank`] | rank lists, top-K Kendall / footrule distances, weighted tournaments, optimal rank aggregation |
//! | [`tpo`] | the tree of possible orderings: construction engines, pruning, Bayesian updates |
//! | [`crowd`] | questions, workers, vote aggregation, budget ledger, crowd simulator |
//! | [`quality`] | per-worker accuracy estimation (Beta posteriors, Dawid–Skene EM), spammer gates, accuracy-weighted vote fusion, margin-aware question routing |
//! | [`datagen`] | synthetic datasets, the paper's experiment scenarios, and crowd roster presets |
//! | [`core`] | uncertainty measures, expected residual uncertainty, question-selection strategies, the sans-IO session driver, the UR session |
//! | [`service`] | multi-session serving: shard-owned registry/cache/ledgers, tick and event-driven run loops, cross-session question batching with an answer cache, belief-margin routing |
//! | [`wire`] | versioned, length-prefixed byte codec for question batches, graded answers, route hints and report summaries — lets the serving stack talk to a crowd across a process boundary |
//!
//! ## Quick start
//!
//! ```
//! use crowd_topk::prelude::*;
//! use crowd_topk::prob::{ScoreDist, UncertainTable};
//!
//! // An uncertain relation: five items, overlapping score intervals.
//! let table = UncertainTable::new((0..5).map(|i| {
//!     ScoreDist::uniform_centered(0.2 * i as f64, 0.5).unwrap()
//! }).collect()).unwrap();
//!
//! // Simulate the hidden reality and a perfect crowd with budget 10.
//! let truth = GroundTruth::sample(&table, 1);
//! let top2 = truth.top_k(2);
//! let mut crowd = CrowdSimulator::new(truth, PerfectWorker, VotePolicy::Single, 10).expect("valid vote policy");
//!
//! // Ask the right questions.
//! let report = CrowdTopK::new(table)
//!     .k(2)
//!     .budget(10)
//!     .algorithm(Algorithm::T1On)
//!     .run_with_truth(&mut crowd, &top2)
//!     .unwrap();
//!
//! assert!(report.final_orderings() <= report.initial_orderings);
//! ```

pub use ctk_core as core;
pub use ctk_crowd as crowd;
pub use ctk_datagen as datagen;
pub use ctk_prob as prob;
pub use ctk_quality as quality;
pub use ctk_rank as rank;
pub use ctk_service as service;
pub use ctk_tpo as tpo;
pub use ctk_wire as wire;

/// One-stop imports: the core prelude plus the most-used substrate types.
pub mod prelude {
    pub use ctk_core::prelude::*;
    pub use ctk_prob::{ScoreDist, TupleId, UncertainTable};
    pub use ctk_quality::{QualityConfig, QualityCrowd, QuestionRouter, WorkerSpec};
    pub use ctk_rank::RankList;
    pub use ctk_service::{ServiceError, SessionSpec, SessionState, TopKService};
    pub use ctk_tpo::{PathSet, Tpo};
}
