//! Error type for distribution construction and numeric routines.

use std::fmt;

/// Errors raised when constructing or evaluating score distributions.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbError {
    /// A distribution parameter was invalid (NaN, wrong sign, empty support…).
    InvalidParameter {
        /// Name of the offending parameter.
        param: &'static str,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A probability value fell outside `[0, 1]`.
    InvalidProbability(f64),
    /// Discrete/histogram weights did not form a usable distribution.
    InvalidWeights(String),
    /// The operation requires a continuous distribution but got a discrete one.
    RequiresContinuous(&'static str),
    /// An empty table (no tuples) was supplied where at least one is needed.
    EmptyTable,
    /// A query depth `k` outside `1..=n` was requested.
    InvalidK {
        /// The requested depth.
        k: usize,
        /// The table size it was requested against.
        n: usize,
    },
}

impl fmt::Display for ProbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbError::InvalidParameter { param, reason } => {
                write!(f, "invalid parameter `{param}`: {reason}")
            }
            ProbError::InvalidProbability(p) => {
                write!(f, "probability {p} outside [0, 1]")
            }
            ProbError::InvalidWeights(msg) => write!(f, "invalid weights: {msg}"),
            ProbError::RequiresContinuous(op) => {
                write!(f, "operation `{op}` requires continuous distributions")
            }
            ProbError::EmptyTable => write!(f, "uncertain table must contain at least one tuple"),
            ProbError::InvalidK { k, n } => {
                write!(
                    f,
                    "query depth k = {k} out of range for a table of {n} tuples"
                )
            }
        }
    }
}

impl std::error::Error for ProbError {}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, ProbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ProbError::InvalidParameter {
            param: "sigma",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("sigma"));
        assert!(e.to_string().contains("positive"));

        let e = ProbError::InvalidProbability(1.5);
        assert!(e.to_string().contains("1.5"));

        let e = ProbError::RequiresContinuous("prefix_probability");
        assert!(e.to_string().contains("prefix_probability"));

        assert!(ProbError::EmptyTable.to_string().contains("tuple"));
        assert!(ProbError::InvalidK { k: 9, n: 3 }.to_string().contains("9"));
        assert!(ProbError::InvalidWeights("all zero".into())
            .to_string()
            .contains("all zero"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&ProbError::EmptyTable);
    }
}
