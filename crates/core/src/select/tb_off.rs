//! `TB-off` (§III-A): for each relevant question, compute the expected
//! residual uncertainty `R_q(T_K)`; return the `B` questions achieving the
//! largest expected uncertainty *reduction* (equivalently, the lowest
//! expected residual).
//!
//! Note: the extended abstract's phrasing (“the set of B questions with
//! the highest `R_q`”) conflicts with its own goal statement (“causes the
//! largest amount of expected uncertainty reduction”); we implement the
//! reduction-maximizing reading (DESIGN.md §4). The strategy's weakness is
//! faithfully preserved either way: the `B` scores are computed
//! *independently*, so `TB-off` happily picks `B` redundant questions
//! about the same ambiguous region.

use super::{relevant_questions, OfflineSelector};
use crate::residual::{expected_residual_single, ResidualCtx};
use ctk_crowd::Question;
use ctk_tpo::PathSet;

/// Top-B by single-question expected residual.
#[derive(Debug, Clone, Default)]
pub struct TbOff;

impl OfflineSelector for TbOff {
    fn name(&self) -> &'static str {
        "TB-off"
    }

    fn select(&mut self, ps: &PathSet, budget: usize, ctx: &ResidualCtx<'_>) -> Vec<Question> {
        let pool = relevant_questions(ps, ctx);
        let mut scored: Vec<(f64, Question)> = pool
            .into_iter()
            .map(|q| (expected_residual_single(ps, &q, ctx), q))
            .collect();
        // Ascending residual = descending reduction; ties broken by the
        // canonical question order for determinism.
        scored.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        scored.truncate(budget);
        scored.into_iter().map(|(_, q)| q).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{assert_valid_selection, fixture, residual_of};
    use super::*;
    use crate::measures::{Entropy, WeightedEntropy};
    use crate::select::{NaiveSelector, RandomSelector};

    #[test]
    fn selection_is_valid_and_deterministic() {
        let (_, pw, ps) = fixture();
        let ctx = ResidualCtx {
            measure: &Entropy,
            pairwise: &pw,
        };
        let a = TbOff.select(&ps, 5, &ctx);
        let b = TbOff.select(&ps, 5, &ctx);
        assert_eq!(a, b);
        assert_valid_selection(&a, &ps, 5);
        assert_eq!(TbOff.name(), "TB-off");
    }

    #[test]
    fn picks_the_single_best_question_first() {
        let (_, pw, ps) = fixture();
        let ctx = ResidualCtx {
            measure: &Entropy,
            pairwise: &pw,
        };
        let choice = TbOff.select(&ps, 1, &ctx);
        assert_eq!(choice.len(), 1);
        // Verify optimality of the single selection by brute force.
        let pool = relevant_questions(&ps, &ctx);
        let best = pool
            .iter()
            .map(|q| expected_residual_single(&ps, q, &ctx))
            .fold(f64::INFINITY, f64::min);
        let got = expected_residual_single(&ps, &choice[0], &ctx);
        assert!((got - best).abs() < 1e-12);
    }

    #[test]
    fn beats_baselines_in_expectation() {
        let (_, pw, ps) = fixture();
        let m = WeightedEntropy::default();
        let ctx = ResidualCtx {
            measure: &m,
            pairwise: &pw,
        };
        let b = 4;
        let tb = TbOff.select(&ps, b, &ctx);
        let tb_res = residual_of(&ps, &tb, &m, &pw);
        // Average the baselines over several seeds (they are stochastic).
        let mut naive_sum = 0.0;
        let mut rand_sum = 0.0;
        const RUNS: u64 = 8;
        for seed in 0..RUNS {
            naive_sum += residual_of(&ps, &NaiveSelector::new(seed).select(&ps, b, &ctx), &m, &pw);
            rand_sum += residual_of(
                &ps,
                &RandomSelector::new(seed).select(&ps, b, &ctx),
                &m,
                &pw,
            );
        }
        let naive_avg = naive_sum / RUNS as f64;
        let rand_avg = rand_sum / RUNS as f64;
        assert!(
            tb_res <= naive_avg + 1e-9,
            "TB-off {tb_res} should beat naive {naive_avg}"
        );
        assert!(
            tb_res <= rand_avg + 1e-9,
            "TB-off {tb_res} should beat random {rand_avg}"
        );
    }
}
