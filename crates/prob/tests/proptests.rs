//! Property-based tests for the probability substrate: distribution
//! invariants that must hold for *any* valid parameters, not just the
//! hand-picked cases in the unit tests.

use ctk_prob::compare::pr_greater;
use ctk_prob::nested::prefix_probability;
use ctk_prob::sample::{ranking_from_scores, sample_scores};
use ctk_prob::{ScoreDist, SupportGrid, UncertainTable};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy producing an arbitrary continuous score distribution with
/// support roughly inside [-10, 10].
fn continuous_dist() -> impl Strategy<Value = ScoreDist> {
    prop_oneof![
        (-5.0..5.0f64, 0.01..3.0f64).prop_map(|(c, w)| ScoreDist::uniform_centered(c, w).unwrap()),
        (-5.0..5.0f64, 0.01..1.0f64).prop_map(|(m, s)| ScoreDist::gaussian(m, s).unwrap()),
        (-5.0..5.0f64, 0.1..2.0f64, 0.0..1.0f64).prop_map(|(lo, w, frac)| {
            let hi = lo + w;
            let mode = lo + frac * w;
            ScoreDist::triangular(lo, mode, hi).unwrap()
        }),
        (-5.0..5.0f64, 0.1..2.0f64, 1.0..5.0f64, 1.0..5.0f64).prop_map(|(lo, w, w1, w2)| {
            ScoreDist::histogram(&[lo, lo + w / 2.0, lo + w], &[w1, w2]).unwrap()
        }),
    ]
}

/// Any score distribution, including atoms.
fn any_dist() -> impl Strategy<Value = ScoreDist> {
    prop_oneof![
        continuous_dist(),
        (-5.0..5.0f64).prop_map(ScoreDist::point),
        proptest::collection::vec((-5.0..5.0f64, 0.01..1.0f64), 1..6)
            .prop_map(|pairs| ScoreDist::discrete(&pairs).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn cdf_monotone_and_bounded(d in any_dist(), xs in proptest::collection::vec(-12.0..12.0f64, 2..20)) {
        let mut xs = xs;
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &x in &xs {
            let c = d.cdf(x);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(c >= prev - 1e-12);
            prev = c;
        }
    }

    #[test]
    fn cdf_saturates_outside_support(d in any_dist()) {
        let (lo, hi) = d.support();
        prop_assert!(d.cdf(lo - 1.0) == 0.0);
        prop_assert!(d.cdf(hi + 1.0) == 1.0);
    }

    #[test]
    fn quantile_roundtrip(d in continuous_dist(), p in 0.01..0.99f64) {
        let x = d.quantile(p);
        prop_assert!((d.cdf(x) - p).abs() < 1e-5, "cdf(quantile({p})) = {}", d.cdf(x));
    }

    #[test]
    fn pdf_nonnegative(d in continuous_dist(), x in -12.0..12.0f64) {
        prop_assert!(d.pdf(x) >= 0.0);
    }

    #[test]
    fn comparison_complementarity(a in any_dist(), b in any_dist()) {
        let p = pr_greater(&a, &b);
        let q = pr_greater(&b, &a);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((p + q - 1.0).abs() < 1e-4, "p={p} q={q}");
    }

    #[test]
    fn comparison_self_is_half(a in any_dist()) {
        let p = pr_greater(&a, &a.clone());
        prop_assert!((p - 0.5).abs() < 1e-4, "self-comparison p = {p}");
    }

    #[test]
    fn samples_lie_in_support(d in any_dist(), seed in any::<u64>()) {
        let (lo, hi) = d.support();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let s = d.sample(&mut rng);
            prop_assert!(s >= lo - 1e-9 && s <= hi + 1e-9);
        }
    }

    #[test]
    fn mean_within_support_hull(d in any_dist()) {
        let (lo, hi) = d.support();
        let m = d.mean();
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        prop_assert!(d.variance() >= -1e-12);
    }

    #[test]
    fn nested_single_matches_pairwise(a in continuous_dist(), b in continuous_dist()) {
        let grid = SupportGrid::build([&a, &b], 2048);
        let nested = prefix_probability(&grid, &[&a], &[&b]).unwrap();
        let pairwise = pr_greater(&a, &b);
        prop_assert!((nested - pairwise).abs() < 2e-3, "nested={nested} pairwise={pairwise}");
    }

    #[test]
    fn two_tuple_orderings_partition(a in continuous_dist(), b in continuous_dist()) {
        let grid = SupportGrid::build([&a, &b], 2048);
        let ab = prefix_probability(&grid, &[&a, &b], &[]).unwrap();
        let ba = prefix_probability(&grid, &[&b, &a], &[]).unwrap();
        prop_assert!((ab + ba - 1.0).abs() < 2e-3, "ab={ab} ba={ba}");
    }

    #[test]
    fn ranking_is_permutation(scores in proptest::collection::vec(-100.0..100.0f64, 1..30)) {
        let r = ranking_from_scores(&scores);
        let mut sorted = r.clone();
        sorted.sort_unstable();
        let expect: Vec<u32> = (0..scores.len() as u32).collect();
        prop_assert_eq!(sorted, expect);
        // Scores along the ranking are non-increasing.
        for w in r.windows(2) {
            prop_assert!(scores[w[0] as usize] >= scores[w[1] as usize]);
        }
    }

    #[test]
    fn world_sampling_matches_table_size(n in 1usize..12, seed in any::<u64>()) {
        let dists: Vec<ScoreDist> = (0..n)
            .map(|i| ScoreDist::uniform(i as f64, i as f64 + 2.0).unwrap())
            .collect();
        let table = UncertainTable::new(dists).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let s = sample_scores(&table, &mut rng);
        prop_assert_eq!(s.len(), n);
    }
}
