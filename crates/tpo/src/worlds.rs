//! Sampled possible-worlds belief state.
//!
//! A [`WorldModel`] holds `M` sampled possible worlds (full orderings of
//! the relation) with weights. It serves two roles:
//!
//! * the sampling backend of the Monte-Carlo TPO builder (group the
//!   worlds' top-K prefixes → the path set);
//! * the belief state of the `incr` algorithm, which alternates tree
//!   construction with question rounds: answers filter (or, for noisy
//!   workers, reweight) whole worlds, so a deeper tree can be materialized
//!   *after* pruning at a shallower depth — the core trick that makes
//!   `incr` cheap on large, highly uncertain datasets (§III-D).

use crate::error::{Result, TpoError};
use crate::path::PathSet;
use ctk_prob::sample::sample_ranking;
use ctk_prob::UncertainTable;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Weighted sampled worlds over a relation of `n` tuples.
#[derive(Debug, Clone)]
pub struct WorldModel {
    n: usize,
    /// Each world as a full ranking (tuple ids, best first).
    rankings: Vec<Vec<u32>>,
    /// Nonnegative world weights (not necessarily normalized).
    weights: Vec<f64>,
}

impl WorldModel {
    /// Samples `m` worlds from the table's score distributions.
    pub fn sample(table: &UncertainTable, m: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let rankings: Vec<Vec<u32>> = (0..m.max(1))
            .map(|_| sample_ranking(table, &mut rng))
            .collect();
        let weights = vec![1.0; rankings.len()];
        Self {
            n: table.len(),
            rankings,
            weights,
        }
    }

    /// Builds from explicit rankings (each must be a permutation of
    /// `0..n`); used by tests and by deterministic replays.
    pub fn from_rankings(n: usize, rankings: Vec<Vec<u32>>) -> Self {
        let weights = vec![1.0; rankings.len()];
        debug_assert!(rankings.iter().all(|r| r.len() == n));
        Self {
            n,
            rankings,
            weights,
        }
    }

    /// Number of tuples in the underlying relation.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of sampled worlds (including zero-weight ones).
    pub fn num_worlds(&self) -> usize {
        self.rankings.len()
    }

    /// Number of worlds with positive weight.
    pub fn effective_worlds(&self) -> usize {
        self.weights.iter().filter(|&&w| w > 0.0).count()
    }

    /// Total surviving weight.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// True if world `w` ranks `i` above `j`.
    fn world_prefers(&self, w: usize, i: u32, j: u32) -> bool {
        for &it in &self.rankings[w] {
            if it == i {
                return true;
            }
            if it == j {
                return false;
            }
        }
        unreachable!("ranking is a full permutation");
    }

    /// Weighted probability that `i` ranks above `j` under the current
    /// belief.
    pub fn pr_precedes(&self, i: u32, j: u32) -> f64 {
        let total = self.total_weight();
        if total <= 0.0 {
            return 0.5;
        }
        let mass: f64 = (0..self.rankings.len())
            .filter(|&w| self.weights[w] > 0.0 && self.world_prefers(w, i, j))
            .map(|w| self.weights[w])
            .sum();
        mass / total
    }

    /// Filters out worlds contradicting a reliable answer to
    /// “does `i` rank above `j`?”. On contradiction (no world would
    /// survive) the belief is left untouched.
    pub fn apply_answer_hard(&mut self, i: u32, j: u32, yes: bool) -> Result<()> {
        let any_survivor = (0..self.rankings.len())
            .any(|w| self.weights[w] > 0.0 && self.world_prefers(w, i, j) == yes);
        if !any_survivor {
            return Err(TpoError::ContradictoryAnswer);
        }
        for w in 0..self.rankings.len() {
            if self.weights[w] > 0.0 && self.world_prefers(w, i, j) != yes {
                self.weights[w] = 0.0;
            }
        }
        Ok(())
    }

    /// Reweights worlds by the likelihood of a noisy answer (worker
    /// accuracy `eta`, clamped to `[0.5, 1]`). On contradiction (the
    /// update would zero every weight, possible at `eta = 1`) the belief
    /// is left untouched.
    pub fn apply_answer_noisy(&mut self, i: u32, j: u32, yes: bool, eta: f64) -> Result<()> {
        let eta = eta.clamp(0.5, 1.0);
        let disagree_factor = 1.0 - eta;
        if disagree_factor == 0.0 {
            return self.apply_answer_hard(i, j, yes);
        }
        for w in 0..self.rankings.len() {
            if self.weights[w] <= 0.0 {
                continue;
            }
            let agrees = self.world_prefers(w, i, j) == yes;
            self.weights[w] *= if agrees { eta } else { disagree_factor };
        }
        Ok(())
    }

    /// Groups surviving worlds by their depth-`k` prefix into a normalized
    /// [`PathSet`] — the (partial) TPO under the current belief.
    pub fn path_set(&self, k: usize) -> Result<PathSet> {
        if k == 0 || k > self.n {
            return Err(TpoError::InvalidK { k, n: self.n });
        }
        let mut groups: HashMap<&[u32], f64> = HashMap::new();
        for (w, r) in self.rankings.iter().enumerate() {
            if self.weights[w] <= 0.0 {
                continue;
            }
            *groups.entry(&r[..k]).or_insert(0.0) += self.weights[w];
        }
        PathSet::from_weighted(
            k,
            groups
                .into_iter()
                .map(|(prefix, w)| (prefix.to_vec(), w))
                .collect(),
        )
    }

    /// The single surviving full ordering, if the belief is resolved to one
    /// ranking prefix pattern (used by tests).
    pub fn surviving_rankings(&self) -> Vec<&[u32]> {
        (0..self.rankings.len())
            .filter(|&w| self.weights[w] > 0.0)
            .map(|w| self.rankings[w].as_slice())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctk_prob::ScoreDist;

    fn model() -> WorldModel {
        WorldModel::from_rankings(
            3,
            vec![vec![0, 1, 2], vec![0, 1, 2], vec![1, 0, 2], vec![2, 1, 0]],
        )
    }

    #[test]
    fn path_set_groups_prefixes() {
        let ps = model().path_set(2).unwrap();
        assert_eq!(ps.len(), 3);
        let top = ps.most_probable();
        assert_eq!(top.items, vec![0, 1]);
        assert!((top.prob - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invalid_k_rejected() {
        assert!(matches!(
            model().path_set(0),
            Err(TpoError::InvalidK { .. })
        ));
        assert!(model().path_set(4).is_err());
        assert!(model().path_set(3).is_ok());
    }

    #[test]
    fn hard_answers_filter_worlds() {
        let mut m = model();
        m.apply_answer_hard(0, 1, true).unwrap();
        assert_eq!(m.effective_worlds(), 2);
        let ps = m.path_set(2).unwrap();
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.paths()[0].items, vec![0, 1]);
        // A second consistent answer changes nothing.
        m.apply_answer_hard(1, 2, true).unwrap();
        assert_eq!(m.effective_worlds(), 2);
    }

    #[test]
    fn contradiction_detected() {
        let mut m = WorldModel::from_rankings(2, vec![vec![0, 1]]);
        assert!(matches!(
            m.apply_answer_hard(1, 0, true),
            Err(TpoError::ContradictoryAnswer)
        ));
    }

    #[test]
    fn noisy_answers_reweight() {
        let mut m = model();
        m.apply_answer_noisy(0, 1, true, 0.8).unwrap();
        // Worlds preferring 0 above 1: weights 0.8; others 0.2.
        assert_eq!(m.effective_worlds(), 4, "noisy updates never eliminate");
        let p = m.pr_precedes(0, 1);
        // (0.8+0.8) / (0.8+0.8+0.2+0.2) = 1.6/2.0
        assert!((p - 0.8).abs() < 1e-12);
    }

    #[test]
    fn pr_precedes_counts_weighted_fraction() {
        let m = model();
        assert!((m.pr_precedes(0, 1) - 0.5).abs() < 1e-12);
        assert!((m.pr_precedes(1, 2) - 0.75).abs() < 1e-12);
        assert!((m.pr_precedes(2, 0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_deterministic_and_sized() {
        let table = UncertainTable::new(vec![
            ScoreDist::uniform(0.0, 1.0).unwrap(),
            ScoreDist::uniform(0.5, 1.5).unwrap(),
            ScoreDist::uniform(1.0, 2.0).unwrap(),
        ])
        .unwrap();
        let a = WorldModel::sample(&table, 500, 42);
        let b = WorldModel::sample(&table, 500, 42);
        assert_eq!(a.num_worlds(), 500);
        assert_eq!(a.surviving_rankings(), b.surviving_rankings());
        assert_eq!(a.n(), 3);
        assert!((a.total_weight() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn deeper_paths_after_filtering() {
        // The incr pattern: filter first, then materialize deeper.
        let mut m = model();
        m.apply_answer_hard(0, 1, true).unwrap();
        let deep = m.path_set(3).unwrap();
        assert_eq!(deep.len(), 1);
        assert_eq!(deep.paths()[0].items, vec![0, 1, 2]);
    }
}
