//! Weighted path sets: the flat representation of a TPO's leaf level.
//!
//! Every root-to-leaf path of the tree of possible orderings is one
//! possible ordered top-K result `ω` with probability `Pr(ω)`. All the
//! uncertainty measures and selection algorithms operate on this flat
//! `(path, probability)` representation; the arena tree in
//! [`crate::tree`] is derived from it when level structure or
//! visualization is needed.

use crate::error::{Result, TpoError};
use ctk_rank::RankList;
use std::fmt;

/// One possible ordered top-k result and its probability.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Tuple ids, best first; length == the path set's depth (or less, for
    /// partially built trees used by the `incr` algorithm).
    pub items: Vec<u32>,
    /// Probability mass of this ordering.
    pub prob: f64,
}

impl Path {
    /// The path as a [`RankList`] (for distance computations).
    pub fn rank_list(&self) -> RankList {
        RankList::new_unchecked(self.items.clone())
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} :", self.prob)?;
        for it in &self.items {
            write!(f, " t{it}")?;
        }
        Ok(())
    }
}

/// A normalized distribution over possible ordered top-k prefixes.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSet {
    k: usize,
    paths: Vec<Path>,
}

impl PathSet {
    /// Builds a path set of target depth `k` from `(items, weight)` pairs.
    ///
    /// Weights are normalized; zero-weight paths are dropped; the result is
    /// deterministically sorted (descending probability, then
    /// lexicographic). Fails if nothing remains.
    pub fn from_weighted(k: usize, weighted: Vec<(Vec<u32>, f64)>) -> Result<Self> {
        Self::from_paths(
            k,
            weighted
                .into_iter()
                .map(|(items, prob)| Path { items, prob })
                .collect(),
        )
    }

    /// Like [`PathSet::from_weighted`], but consumes an existing `Vec<Path>`
    /// so callers evaluating many candidate sets (e.g. the residual
    /// partition's per-class scoring) can recycle the path/item allocations
    /// via [`PathSet::into_paths`] instead of deep-cloning per evaluation.
    pub fn from_paths(k: usize, mut paths: Vec<Path>) -> Result<Self> {
        paths.retain(|p| {
            debug_assert!(p.items.len() <= k, "path longer than depth k");
            p.prob > 0.0
        });
        if paths.is_empty() {
            return Err(TpoError::EmptyPathSet);
        }
        // Canonical order *before* summation: callers may feed paths in
        // hash-map order, and float addition is not associative — without
        // this, bitwise reproducibility across runs would be lost.
        paths.sort_unstable_by(|a, b| a.items.cmp(&b.items));
        let total: f64 = paths.iter().map(|p| p.prob).sum();
        if total <= 0.0 {
            return Err(TpoError::EmptyPathSet);
        }
        for p in &mut paths {
            p.prob /= total;
        }
        sort_paths(&mut paths);
        Ok(Self { k, paths })
    }

    /// Consumes the set, returning its paths (allocation reuse partner of
    /// [`PathSet::from_paths`]).
    pub fn into_paths(self) -> Vec<Path> {
        self.paths
    }

    /// Target depth `K` of the underlying query.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The possible orderings (normalized, deterministically sorted).
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// Number of possible orderings — the paper's headline uncertainty
    /// proxy (`|T_K|`).
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Path sets are never empty (enforced at construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True when a single ordering remains: the query result is certain.
    pub fn is_resolved(&self) -> bool {
        self.paths.len() == 1
    }

    /// The most probable ordering (MPO). Ties broken by the deterministic
    /// sort order.
    pub fn most_probable(&self) -> &Path {
        // Paths are sorted descending by probability.
        &self.paths[0]
    }

    /// Sum of probabilities (≈ 1; exposed for invariant tests).
    pub fn total_prob(&self) -> f64 {
        self.paths.iter().map(|p| p.prob).sum()
    }

    /// Sorted union of tuple ids appearing in any path.
    pub fn tuples(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = Vec::new();
        for p in &self.paths {
            for &it in &p.items {
                if let Err(pos) = ids.binary_search(&it) {
                    ids.insert(pos, it);
                }
            }
        }
        ids
    }

    /// The paths as weighted [`RankList`]s (for tournaments / measures).
    pub fn to_weighted_lists(&self) -> Vec<(RankList, f64)> {
        self.paths.iter().map(|p| (p.rank_list(), p.prob)).collect()
    }

    /// Shannon entropy (nats) of the path distribution.
    pub fn entropy(&self) -> f64 {
        -self
            .paths
            .iter()
            .filter(|p| p.prob > 0.0)
            .map(|p| p.prob * p.prob.ln())
            .sum::<f64>()
    }

    /// Internal: rebuilds from already-normalized parts (used by prune /
    /// update, which maintain the invariants themselves).
    pub(crate) fn from_parts_unchecked(k: usize, mut paths: Vec<Path>) -> Self {
        sort_paths(&mut paths);
        Self { k, paths }
    }
}

impl fmt::Display for PathSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "PathSet(k={}, {} orderings)", self.k, self.paths.len())?;
        for p in &self.paths {
            writeln!(f, "  {p}")?;
        }
        Ok(())
    }
}

fn sort_paths(paths: &mut [Path]) {
    paths.sort_unstable_by(|a, b| {
        b.prob
            .total_cmp(&a.prob)
            .then_with(|| a.items.cmp(&b.items))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(weighted: Vec<(Vec<u32>, f64)>) -> PathSet {
        PathSet::from_weighted(2, weighted).unwrap()
    }

    #[test]
    fn normalizes_and_sorts() {
        let s = ps(vec![
            (vec![0, 1], 1.0),
            (vec![1, 0], 3.0),
            (vec![0, 2], 0.0), // dropped
        ]);
        assert_eq!(s.len(), 2);
        assert!((s.total_prob() - 1.0).abs() < 1e-12);
        assert_eq!(s.paths()[0].items, vec![1, 0]);
        assert!((s.paths()[0].prob - 0.75).abs() < 1e-12);
        assert_eq!(s.most_probable().items, vec![1, 0]);
        assert!(!s.is_resolved());
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(matches!(
            PathSet::from_weighted(2, vec![]),
            Err(TpoError::EmptyPathSet)
        ));
        assert!(PathSet::from_weighted(2, vec![(vec![0, 1], 0.0)]).is_err());
    }

    #[test]
    fn tuples_union_sorted() {
        let s = ps(vec![(vec![3, 1], 0.5), (vec![1, 2], 0.5)]);
        assert_eq!(s.tuples(), vec![1, 2, 3]);
    }

    #[test]
    fn entropy_of_uniform_two() {
        let s = ps(vec![(vec![0, 1], 0.5), (vec![1, 0], 0.5)]);
        assert!((s.entropy() - (2.0f64).ln()).abs() < 1e-12);
        let resolved = ps(vec![(vec![0, 1], 1.0)]);
        assert_eq!(resolved.entropy(), 0.0);
        assert!(resolved.is_resolved());
    }

    #[test]
    fn tie_breaking_is_deterministic() {
        let s1 = ps(vec![(vec![1, 0], 0.5), (vec![0, 1], 0.5)]);
        let s2 = ps(vec![(vec![0, 1], 0.5), (vec![1, 0], 0.5)]);
        assert_eq!(s1, s2);
        assert_eq!(s1.most_probable().items, vec![0, 1]);
    }

    #[test]
    fn weighted_lists_align() {
        let s = ps(vec![(vec![0, 1], 0.25), (vec![1, 0], 0.75)]);
        let lists = s.to_weighted_lists();
        assert_eq!(lists.len(), 2);
        assert_eq!(lists[0].0.items(), &[1, 0]);
        assert!((lists[0].1 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        let s = ps(vec![(vec![0, 1], 1.0)]);
        let txt = format!("{s}");
        assert!(txt.contains("1 orderings"));
        assert!(txt.contains("t0 t1"));
    }
}
