//! Property-based tests for the probability substrate: distribution
//! invariants that must hold for *any* valid parameters, not just the
//! hand-picked cases in the unit tests.

use ctk_prob::compare::{pr_greater, pr_greater_reference_res, PairwiseMatrix};
use ctk_prob::nested::prefix_probability;
use ctk_prob::sample::{ranking_from_scores, sample_scores, top_k_prefix_into, WorldSampler};
use ctk_prob::{ScoreDist, SupportGrid, TopKBounds, UncertainTable};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy producing an arbitrary continuous score distribution with
/// support roughly inside [-10, 10].
fn continuous_dist() -> impl Strategy<Value = ScoreDist> {
    prop_oneof![
        (-5.0..5.0f64, 0.01..3.0f64).prop_map(|(c, w)| ScoreDist::uniform_centered(c, w).unwrap()),
        (-5.0..5.0f64, 0.01..1.0f64).prop_map(|(m, s)| ScoreDist::gaussian(m, s).unwrap()),
        (-5.0..5.0f64, 0.1..2.0f64, 0.0..1.0f64).prop_map(|(lo, w, frac)| {
            let hi = lo + w;
            let mode = lo + frac * w;
            ScoreDist::triangular(lo, mode, hi).unwrap()
        }),
        (-5.0..5.0f64, 0.1..2.0f64, 1.0..5.0f64, 1.0..5.0f64).prop_map(|(lo, w, w1, w2)| {
            ScoreDist::histogram(&[lo, lo + w / 2.0, lo + w], &[w1, w2]).unwrap()
        }),
    ]
}

/// Any score distribution, including atoms.
fn any_dist() -> impl Strategy<Value = ScoreDist> {
    prop_oneof![
        continuous_dist(),
        (-5.0..5.0f64).prop_map(ScoreDist::point),
        proptest::collection::vec((-5.0..5.0f64, 0.01..1.0f64), 1..6)
            .prop_map(|pairs| ScoreDist::discrete(&pairs).unwrap()),
    ]
}

/// Every `ScoreDist` kind, *including* mixtures whose components may carry
/// atoms — the case the `(_, Discrete)` tie-split fix exists for.
fn any_dist_kind() -> impl Strategy<Value = ScoreDist> {
    prop_oneof![
        any_dist(),
        (any_dist(), any_dist(), 0.1..0.9f64).prop_map(|(a, b, w)| ScoreDist::bimodal(
            w,
            a,
            1.0 - w,
            b
        )
        .unwrap()),
    ]
}

/// A moderate-parameter distribution for quadrature-agreement pins: spiky
/// enough to exercise every closed form, tame enough that the *reference*
/// trapezoid's own truncation error at the pin resolution stays far below
/// the 1e-6 bound being asserted (see DESIGN.md §10 on tolerance policy).
fn moderate_continuous() -> impl Strategy<Value = ScoreDist> {
    prop_oneof![
        (-2.0..2.0f64, 0.2..2.0f64).prop_map(|(c, w)| ScoreDist::uniform_centered(c, w).unwrap()),
        (-2.0..2.0f64, 0.2..0.8f64).prop_map(|(m, s)| ScoreDist::gaussian(m, s).unwrap()),
        (-2.0..2.0f64, 0.5..2.0f64, 0.0..1.0f64).prop_map(|(lo, w, frac)| {
            ScoreDist::triangular(lo, lo + frac * w, lo + w).unwrap()
        }),
        (-2.0..2.0f64, 0.5..2.0f64, 0.5..3.0f64, 0.5..3.0f64).prop_map(|(lo, w, w1, w2)| {
            ScoreDist::histogram(&[lo, lo + w / 2.0, lo + w], &[w1, w2]).unwrap()
        }),
    ]
}

fn moderate_dist() -> impl Strategy<Value = ScoreDist> {
    prop_oneof![
        moderate_continuous(),
        (-2.0..2.0f64).prop_map(ScoreDist::point),
        proptest::collection::vec((-2.0..2.0f64, 0.1..1.0f64), 1..4)
            .prop_map(|pairs| ScoreDist::discrete(&pairs).unwrap()),
        (moderate_continuous(), -2.0..2.0f64, 0.2..0.8f64).prop_map(|(c, atom, w)| {
            ScoreDist::bimodal(w, c, 1.0 - w, ScoreDist::point(atom)).unwrap()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn cdf_monotone_and_bounded(d in any_dist(), xs in proptest::collection::vec(-12.0..12.0f64, 2..20)) {
        let mut xs = xs;
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &x in &xs {
            let c = d.cdf(x);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(c >= prev - 1e-12);
            prev = c;
        }
    }

    #[test]
    fn cdf_saturates_outside_support(d in any_dist()) {
        let (lo, hi) = d.support();
        prop_assert!(d.cdf(lo - 1.0) == 0.0);
        prop_assert!(d.cdf(hi + 1.0) == 1.0);
    }

    #[test]
    fn quantile_roundtrip(d in continuous_dist(), p in 0.01..0.99f64) {
        let x = d.quantile(p);
        prop_assert!((d.cdf(x) - p).abs() < 1e-5, "cdf(quantile({p})) = {}", d.cdf(x));
    }

    #[test]
    fn pdf_nonnegative(d in continuous_dist(), x in -12.0..12.0f64) {
        prop_assert!(d.pdf(x) >= 0.0);
    }

    #[test]
    fn comparison_complementarity(a in any_dist(), b in any_dist()) {
        let p = pr_greater(&a, &b);
        let q = pr_greater(&b, &a);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((p + q - 1.0).abs() < 1e-4, "p={p} q={q}");
    }

    #[test]
    fn comparison_self_is_half(a in any_dist()) {
        let p = pr_greater(&a, &a.clone());
        prop_assert!((p - 0.5).abs() < 1e-4, "self-comparison p = {p}");
    }

    #[test]
    fn comparison_symmetry_over_all_kinds(a in any_dist_kind(), b in any_dist_kind()) {
        // The analytic arms are complementary by construction, so the
        // tolerance here is float noise, not quadrature error. Before the
        // (_, Discrete) tie-split fix this failed for atom-carrying
        // mixtures against discretes.
        let p = pr_greater(&a, &b);
        let q = pr_greater(&b, &a);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((p + q - 1.0).abs() < 1e-9, "p={p} q={q} for {a:?} vs {b:?}");
    }

    #[test]
    fn fast_path_matches_reference_quadrature(a in moderate_dist(), b in moderate_dist()) {
        // The PR 5 acceptance pin: analytic closed forms within 1e-6 of
        // the (converged) reference grid quadrature.
        let fast = pr_greater(&a, &b);
        let slow = pr_greater_reference_res(&a, &b, 65_536);
        prop_assert!(
            (fast - slow).abs() < 1e-6,
            "fast {fast} vs reference {slow} for {a:?} vs {b:?}"
        );
    }

    #[test]
    fn partial_prefix_matches_full_sort_prefix(
        raw in proptest::collection::vec(0u8..12, 1..40),
        kseed in any::<u64>(),
    ) {
        // Coarse quantization forces exact score ties; the id tie-break
        // must make partial selection agree with the full sort anyway.
        let scores: Vec<f64> = raw.iter().map(|&v| v as f64 / 4.0).collect();
        let full = ranking_from_scores(&scores);
        let k = (kseed as usize % scores.len()) + 1;
        let mut ids = Vec::new();
        let mut prefix = vec![0u32; k];
        top_k_prefix_into(&scores, &mut ids, &mut prefix);
        prop_assert_eq!(&prefix[..], &full[..k], "k = {}", k);
    }

    #[test]
    fn compiled_sampler_matches_dist_sampling(
        dists in proptest::collection::vec(any_dist_kind(), 1..8),
        seed in any::<u64>(),
    ) {
        let table = UncertainTable::new(dists).unwrap();
        let sampler = WorldSampler::new(&table);
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        let mut buf = vec![0.0; table.len()];
        for _ in 0..16 {
            let reference = sample_scores(&table, &mut a);
            sampler.sample_into(&mut b, &mut buf);
            for (x, y) in reference.iter().zip(&buf) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "{} vs {}", x, y);
            }
        }
    }

    #[test]
    fn samples_lie_in_support(d in any_dist(), seed in any::<u64>()) {
        let (lo, hi) = d.support();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let s = d.sample(&mut rng);
            prop_assert!(s >= lo - 1e-9 && s <= hi + 1e-9);
        }
    }

    #[test]
    fn mean_within_support_hull(d in any_dist()) {
        let (lo, hi) = d.support();
        let m = d.mean();
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        prop_assert!(d.variance() >= -1e-12);
    }

    #[test]
    fn nested_single_matches_pairwise(a in continuous_dist(), b in continuous_dist()) {
        let grid = SupportGrid::build([&a, &b], 2048);
        let nested = prefix_probability(&grid, &[&a], &[&b]).unwrap();
        let pairwise = pr_greater(&a, &b);
        prop_assert!((nested - pairwise).abs() < 2e-3, "nested={nested} pairwise={pairwise}");
    }

    #[test]
    fn two_tuple_orderings_partition(a in continuous_dist(), b in continuous_dist()) {
        let grid = SupportGrid::build([&a, &b], 2048);
        let ab = prefix_probability(&grid, &[&a, &b], &[]).unwrap();
        let ba = prefix_probability(&grid, &[&b, &a], &[]).unwrap();
        prop_assert!((ab + ba - 1.0).abs() < 2e-3, "ab={ab} ba={ba}");
    }

    #[test]
    fn ranking_is_permutation(scores in proptest::collection::vec(-100.0..100.0f64, 1..30)) {
        let r = ranking_from_scores(&scores);
        let mut sorted = r.clone();
        sorted.sort_unstable();
        let expect: Vec<u32> = (0..scores.len() as u32).collect();
        prop_assert_eq!(sorted, expect);
        // Scores along the ranking are non-increasing.
        for w in r.windows(2) {
            prop_assert!(scores[w[0] as usize] >= scores[w[1] as usize]);
        }
    }

    #[test]
    fn topk_bounds_bracket_every_sampled_world(
        dists in proptest::collection::vec(moderate_dist(), 2..9),
        seed in any::<u64>(),
        kseed in any::<usize>(),
    ) {
        // PR 8 pin: the deterministic certain/possible sets derived from
        // the pairwise matrix bracket the top-K of *every* possible world
        // — certain tuples appear in each sampled world's top-K, and no
        // sampled top-K member falls outside the possible set.
        let table = UncertainTable::new(dists).unwrap();
        let k = kseed % table.len() + 1;
        let bounds = TopKBounds::from_matrix(&PairwiseMatrix::compute(&table), k).unwrap();
        prop_assert!(bounds.certain().len() <= k);
        prop_assert!(bounds.possible().len() >= k);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids = Vec::new();
        let mut prefix = vec![0u32; k];
        for _ in 0..64 {
            let scores = sample_scores(&table, &mut rng);
            top_k_prefix_into(&scores, &mut ids, &mut prefix);
            for &c in bounds.certain() {
                prop_assert!(
                    prefix.contains(&c),
                    "certain tuple t{} missing from a sampled top-{}", c, k
                );
            }
            for &t in &prefix {
                prop_assert!(
                    bounds.is_possibly_in(t as usize),
                    "sampled top-{} member t{} outside the possible set", k, t
                );
            }
        }
    }

    #[test]
    fn world_sampling_matches_table_size(n in 1usize..12, seed in any::<u64>()) {
        let dists: Vec<ScoreDist> = (0..n)
            .map(|i| ScoreDist::uniform(i as f64, i as f64 + 2.0).unwrap())
            .collect();
        let table = UncertainTable::new(dists).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let s = sample_scores(&table, &mut rng);
        prop_assert_eq!(s.len(), n);
    }
}
