//! Cross-validation of the two TPO construction engines: the Monte-Carlo
//! possible-worlds builder must converge to the exact nested-quadrature
//! probabilities on every scenario family.

use crowd_topk::datagen::{scenarios, HeteroVariant};
use crowd_topk::prob::{ScoreDist, UncertainTable};
use crowd_topk::tpo::build::{build_exact, build_mc, ExactConfig, McConfig};

fn compare_engines(table: &UncertainTable, k: usize, tolerance: f64) {
    let exact = build_exact(table, k, &ExactConfig::default()).unwrap();
    let mc = build_mc(table, k, &McConfig::fixed(120_000, 2024)).unwrap();
    // Total variation distance between the two distributions over paths.
    let mut tv = 0.0;
    for p in exact.paths() {
        let q = mc
            .paths()
            .iter()
            .find(|m| m.items == p.items)
            .map(|m| m.prob)
            .unwrap_or(0.0);
        tv += (p.prob - q).abs();
    }
    for m in mc.paths() {
        if !exact.paths().iter().any(|p| p.items == m.items) {
            tv += m.prob;
        }
    }
    tv *= 0.5;
    assert!(
        tv < tolerance,
        "engines disagree: total variation {tv:.4} (N={}, k={k})",
        table.len()
    );
}

#[test]
fn engines_agree_on_small_uniform_tables() {
    let table = UncertainTable::new(
        (0..6)
            .map(|i| ScoreDist::uniform_centered(0.15 * i as f64, 0.4).unwrap())
            .collect(),
    )
    .unwrap();
    compare_engines(&table, 3, 0.02);
}

#[test]
fn engines_agree_on_gaussian_tables() {
    let table = UncertainTable::new(
        (0..5)
            .map(|i| ScoreDist::gaussian(0.2 * i as f64, 0.12).unwrap())
            .collect(),
    )
    .unwrap();
    compare_engines(&table, 3, 0.02);
}

#[test]
fn engines_agree_on_mixed_families() {
    let scenario = scenarios::hetero(HeteroVariant::MixedFamilies, 3);
    // Use a k small enough for the exact engine to stay quick on N=20.
    compare_engines(&scenario.table, 2, 0.02);
}

#[test]
fn exact_engine_is_deterministic_and_normalized() {
    let scenario = scenarios::astar(1);
    let a = build_exact(&scenario.table, scenario.k, &ExactConfig::default()).unwrap();
    let b = build_exact(&scenario.table, scenario.k, &ExactConfig::default()).unwrap();
    assert_eq!(a, b);
    assert!((a.total_prob() - 1.0).abs() < 1e-9);
}

#[test]
fn monte_carlo_error_shrinks_with_more_worlds() {
    let table = UncertainTable::new(
        (0..5)
            .map(|i| ScoreDist::uniform_centered(0.2 * i as f64, 0.5).unwrap())
            .collect(),
    )
    .unwrap();
    let exact = build_exact(&table, 2, &ExactConfig::default()).unwrap();
    let mut errs = Vec::new();
    for worlds in [500usize, 5_000, 50_000] {
        let mc = build_mc(&table, 2, &McConfig::fixed(worlds, 7)).unwrap();
        let mut tv = 0.0;
        for p in exact.paths() {
            let q = mc
                .paths()
                .iter()
                .find(|m| m.items == p.items)
                .map(|m| m.prob)
                .unwrap_or(0.0);
            tv += (p.prob - q).abs();
        }
        errs.push(0.5 * tv);
    }
    assert!(
        errs[2] < errs[0],
        "error should shrink with worlds: {errs:?}"
    );
    assert!(errs[2] < 0.01, "50k worlds should be accurate: {errs:?}");
}
