//! `U_H`: Shannon entropy of the ordering probabilities — the paper's
//! state-of-the-art baseline measure, “based only on the probabilities of
//! its leaves”.

use super::UncertaintyMeasure;
use ctk_tpo::PathSet;

/// Shannon entropy (nats) of the leaf distribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct Entropy;

impl UncertaintyMeasure for Entropy {
    fn name(&self) -> &'static str {
        "UH"
    }

    fn uncertainty(&self, ps: &PathSet) -> f64 {
        ps.entropy()
    }

    fn per_question_reduction_bound(&self) -> Option<f64> {
        // One binary answer carries at most ln 2 nats:
        // E[H(Ω | A)] = H(Ω) - I(Ω; A) >= H(Ω) - H(A) >= H(Ω) - ln 2.
        Some(std::f64::consts::LN_2)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{resolved_set, sample_set};
    use super::*;
    use ctk_tpo::prune::prune;

    #[test]
    fn matches_leaf_entropy() {
        let s = sample_set();
        let expect = -(0.5f64 * 0.5f64.ln() + 0.3 * 0.3f64.ln() + 0.2 * 0.2f64.ln());
        assert!((Entropy.uncertainty(&s) - expect).abs() < 1e-12);
        assert_eq!(Entropy.uncertainty(&resolved_set()), 0.0);
    }

    #[test]
    fn uniform_distribution_maximizes() {
        let uniform = PathSet::from_weighted(
            2,
            vec![(vec![0, 1], 1.0), (vec![1, 0], 1.0), (vec![0, 2], 1.0)],
        )
        .unwrap();
        let skewed = PathSet::from_weighted(
            2,
            vec![(vec![0, 1], 8.0), (vec![1, 0], 1.0), (vec![0, 2], 1.0)],
        )
        .unwrap();
        assert!(Entropy.uncertainty(&uniform) > Entropy.uncertainty(&skewed));
        assert!((Entropy.uncertainty(&uniform) - 3.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn expected_entropy_never_increases_under_conditioning() {
        // E over answers of H(pruned) <= H(original): verify on the sample.
        let s = sample_set();
        let h = Entropy.uncertainty(&s);
        // Question (0 vs 1): p_yes = 0.7 (membership semantics).
        let (yes, _) = prune(&s, 0, 1, true, 0.5).unwrap();
        let (no, _) = prune(&s, 0, 1, false, 0.5).unwrap();
        let expected = 0.7 * Entropy.uncertainty(&yes) + 0.3 * Entropy.uncertainty(&no);
        assert!(expected <= h + 1e-12, "expected {expected} vs prior {h}");
        // And the reduction is at most ln 2.
        assert!(h - expected <= std::f64::consts::LN_2 + 1e-12);
    }

    use ctk_tpo::PathSet;
}
