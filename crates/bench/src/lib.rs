#![forbid(unsafe_code)]
#![deny(warnings)]
//! # ctk-bench — experiment harness
//!
//! Regenerates every figure and table of the paper's evaluation (see
//! DESIGN.md §6 for the experiment index and EXPERIMENTS.md for recorded
//! results):
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `fig1a` | Fig. 1(a): `D(ω_r, T_K)` vs budget `B` |
//! | `fig1b` | Fig. 1(b): selection CPU time vs budget `B` |
//! | `table_measures` | §IV: the four uncertainty measures head-to-head |
//! | `table_astar` | §IV: A* quality/cost vs the heuristics |
//! | `table_noise` | §III-C/§IV: noisy crowds and majority voting |
//! | `table_hetero` | §IV: non-uniform score distributions |
//! | `table_incr` | §III-D/§IV: `incr` vs full-tree selection |
//! | `table_scaling` | TPO growth and build cost vs `N` and width |
//! | `run_all` | everything above, TSVs into `target/experiments/` |
//!
//! Every binary accepts an optional first argument: the number of
//! independent runs to average over (default varies per experiment).
//! Results are printed as TSV and written under `target/experiments/`.

use ctk_core::measures::MeasureKind;
use ctk_core::session::{Algorithm, SessionConfig, UrSession};
use ctk_crowd::{CrowdSimulator, GroundTruth, NoisyWorker, PerfectWorker, VotePolicy};
use ctk_datagen::Scenario;
use ctk_tpo::build::{Engine, McConfig};
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// One evaluated (algorithm, budget) cell, averaged over runs.
#[derive(Debug, Clone)]
pub struct EvalSummary {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Question budget `B`.
    pub budget: usize,
    /// Mean `D(ω_r, T_K)` after the budget is spent.
    pub avg_distance: f64,
    /// Mean time spent in question selection (the paper's CPU-time axis).
    pub avg_selection_secs: f64,
    /// Mean end-to-end wall time (incl. TPO construction).
    pub avg_total_secs: f64,
    /// Mean number of questions actually asked (early termination!).
    pub avg_questions: f64,
    /// Number of independent runs averaged.
    pub runs: u64,
}

/// Evaluation knobs shared by all experiments.
#[derive(Debug, Clone)]
pub struct EvalOpts {
    /// Independent runs (different data/truth/noise seeds) to average.
    pub runs: u64,
    /// Monte-Carlo worlds for the TPO engine.
    pub worlds: usize,
    /// Worker accuracy (1.0 = perfect).
    pub accuracy: f64,
    /// Vote policy per question.
    pub policy: VotePolicy,
    /// Uncertainty measure to optimize.
    pub measure: MeasureKind,
}

impl Default for EvalOpts {
    fn default() -> Self {
        Self {
            runs: 10,
            worlds: 5_000,
            accuracy: 1.0,
            policy: VotePolicy::Single,
            measure: MeasureKind::WeightedEntropy,
        }
    }
}

/// Runs `algorithm` at `budget` over `opts.runs` scenario instances and
/// averages the outcome.
pub fn evaluate<F: Fn(u64) -> Scenario>(
    scenario_fn: F,
    algorithm: Algorithm,
    budget: usize,
    opts: &EvalOpts,
) -> EvalSummary {
    let mut distance = 0.0;
    let mut sel_secs = 0.0;
    let mut tot_secs = 0.0;
    let mut questions = 0.0;
    for run in 0..opts.runs {
        let scenario = scenario_fn(run);
        let truth = GroundTruth::sample(&scenario.table, 0x7ee7 + run);
        let top = truth.top_k(scenario.k);
        let session = UrSession::new(SessionConfig {
            k: scenario.k,
            budget,
            measure: opts.measure,
            algorithm: algorithm.clone(),
            engine: Engine::MonteCarlo(McConfig::fixed(opts.worlds, run)),
            seed: run,
            uncertainty_target: None,
        })
        .expect("valid session config");
        // The crowd budget is vote-denominated (a majority-of-n answer
        // costs n); the paper's tables compare policies at equal *question*
        // counts and report replication as an n-fold monetary cost, so the
        // harness funds every policy's full question budget explicitly.
        let crowd_votes = budget * opts.policy.votes_per_question();
        let report = if opts.accuracy >= 1.0 {
            let mut crowd = CrowdSimulator::new(truth, PerfectWorker, opts.policy, crowd_votes)
                .expect("valid vote policy");
            session
                .run_with_truth(&scenario.table, &mut crowd, Some(&top))
                .expect("session runs")
        } else {
            let mut crowd = CrowdSimulator::new(
                truth,
                NoisyWorker::new(opts.accuracy, 0xbad5eed ^ run),
                opts.policy,
                crowd_votes,
            )
            .expect("valid vote policy");
            session
                .run_with_truth(&scenario.table, &mut crowd, Some(&top))
                .expect("session runs")
        };
        distance += report.final_distance().unwrap_or(f64::NAN);
        sel_secs += report.selection_time.as_secs_f64();
        tot_secs += report.total_time.as_secs_f64();
        questions += report.questions_asked() as f64;
    }
    let n = opts.runs as f64;
    EvalSummary {
        algorithm: algorithm.name(),
        budget,
        avg_distance: distance / n,
        avg_selection_secs: sel_secs / n,
        avg_total_secs: tot_secs / n,
        avg_questions: questions / n,
        runs: opts.runs,
    }
}

/// The experiment output directory (`target/experiments/`), created on
/// demand.
pub fn out_dir() -> PathBuf {
    // CARGO_TARGET_DIR may relocate the target; fall back to ./target.
    let base = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    let dir = PathBuf::from(base).join("experiments");
    fs::create_dir_all(&dir).expect("create experiment output dir");
    dir
}

/// Pre-rewrite (PR 3) reference implementations of the `WorldModel` hot
/// paths: ranking scans instead of the position index. Shared by the
/// `belief_hot_paths` bench and the `bench_pr3` bin so both measure the
/// same baseline.
pub mod reference {
    use ctk_tpo::WorldModel;

    /// True if `ranking` places `i` above `j` — the O(n) scan the position
    /// index replaced.
    pub fn scan_prefers(ranking: &[u32], i: u32, j: u32) -> bool {
        for &it in ranking {
            if it == i {
                return true;
            }
            if it == j {
                return false;
            }
        }
        unreachable!("ranking is a full permutation");
    }

    /// Scan-based `pr_precedes`.
    pub fn pr_precedes_scan(wm: &WorldModel, i: u32, j: u32) -> f64 {
        let total: f64 = (0..wm.num_worlds()).map(|w| wm.weight(w)).sum();
        if total <= 0.0 {
            return 0.5;
        }
        let mass: f64 = (0..wm.num_worlds())
            .filter(|&w| wm.weight(w) > 0.0 && scan_prefers(wm.ranking(w), i, j))
            .map(|w| wm.weight(w))
            .sum();
        mass / total
    }

    /// Scan-based noisy reweight over an external weight vector (no
    /// renormalization — the decay is the bug PR 3 fixed, but the
    /// per-call cost shape is what the benches compare).
    pub fn apply_noisy_scan(
        wm: &WorldModel,
        weights: &mut [f64],
        i: u32,
        j: u32,
        yes: bool,
        eta: f64,
    ) {
        let disagree = 1.0 - eta;
        for (w, weight) in weights.iter_mut().enumerate() {
            if *weight <= 0.0 {
                continue;
            }
            let agrees = scan_prefers(wm.ranking(w), i, j) == yes;
            *weight *= if agrees { eta } else { disagree };
        }
    }

    /// Scan-based hard filter over an external weight vector, mirroring
    /// the pre-index `apply_answer_hard` (survivor check, then zeroing).
    pub fn apply_hard_scan(wm: &WorldModel, weights: &mut [f64], i: u32, j: u32, yes: bool) {
        let any_survivor = (0..wm.num_worlds())
            .any(|w| weights[w] > 0.0 && scan_prefers(wm.ranking(w), i, j) == yes);
        if !any_survivor {
            return;
        }
        for (w, weight) in weights.iter_mut().enumerate() {
            if *weight > 0.0 && scan_prefers(wm.ranking(w), i, j) != yes {
                *weight = 0.0;
            }
        }
    }
}

/// Writes a TSV file under [`out_dir`] and echoes it to stdout.
pub fn emit_tsv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let mut text = String::new();
    text.push_str(&header.join("\t"));
    text.push('\n');
    for row in rows {
        text.push_str(&row.join("\t"));
        text.push('\n');
    }
    print!("{text}");
    let path = out_dir().join(format!("{name}.tsv"));
    let mut f = fs::File::create(&path).expect("create tsv");
    f.write_all(text.as_bytes()).expect("write tsv");
    eprintln!("# wrote {}", path.display());
}

/// Parses the optional first CLI argument as the run count.
pub fn runs_from_args(default: u64) -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Formats a float with fixed precision for TSV cells.
pub fn fmt(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats seconds in scientific notation (the paper's Fig. 1(b) is a log
/// plot).
pub fn fmt_secs(x: f64) -> String {
    format!("{x:.3e}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctk_datagen::scenarios;

    #[test]
    fn evaluate_produces_finite_summaries() {
        let opts = EvalOpts {
            runs: 2,
            worlds: 1_000,
            ..EvalOpts::default()
        };
        let s = evaluate(scenarios::astar, Algorithm::Naive, 4, &opts);
        assert_eq!(s.algorithm, "naive");
        assert_eq!(s.budget, 4);
        assert!(s.avg_distance.is_finite());
        assert!(s.avg_questions <= 4.0);
        assert!(s.avg_total_secs >= s.avg_selection_secs);
        assert_eq!(s.runs, 2);
    }

    #[test]
    fn evaluate_is_deterministic() {
        let opts = EvalOpts {
            runs: 2,
            worlds: 500,
            ..EvalOpts::default()
        };
        let a = evaluate(scenarios::astar, Algorithm::T1On, 3, &opts);
        let b = evaluate(scenarios::astar, Algorithm::T1On, 3, &opts);
        assert_eq!(a.avg_distance.to_bits(), b.avg_distance.to_bits());
        assert_eq!(a.avg_questions, b.avg_questions);
    }

    #[test]
    fn noisy_evaluation_runs() {
        let opts = EvalOpts {
            runs: 2,
            worlds: 500,
            accuracy: 0.8,
            policy: VotePolicy::Majority(3),
            ..EvalOpts::default()
        };
        let s = evaluate(scenarios::noise, Algorithm::T1On, 5, &opts);
        assert!(s.avg_distance.is_finite());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(0.12344), "0.1234");
        assert!(fmt_secs(0.00123).contains('e'));
        assert!(runs_from_args(7) >= 1);
    }
}
