//! T-scaling (supporting): growth of the space of possible orderings and
//! TPO construction cost as table size `N` and pdf width (overlap) vary —
//! the structural reason uncertainty reduction is needed at all, and the
//! backdrop for the exact-vs-MC engine trade-off.
//!
//! `cargo run --release -p ctk-bench --bin table_scaling [runs] [--small]`
//!
//! `--small` restricts the sweep to the two smallest table sizes and
//! widths (the CI bench-smoke configuration).

use ctk_bench::{emit_tsv, fmt_secs, runs_from_args};
use ctk_datagen::{generate, DatasetSpec};
use ctk_tpo::build::{build_exact, build_mc, ExactConfig, McConfig};
use std::time::Instant;

fn main() {
    let runs = runs_from_args(3);
    let small = std::env::args().any(|a| a == "--small");
    const K: usize = 5;

    let (sizes, widths): (&[usize], &[f64]) = if small {
        (&[10, 20], &[0.2, 0.4])
    } else {
        (&[10, 20, 30, 40], &[0.2, 0.4, 0.6])
    };
    eprintln!("# T-scaling: orderings and build time vs N and width — K={K}, {runs} runs");
    let mut rows = Vec::new();
    for &n in sizes {
        for &width in widths {
            let mut mc_orderings = 0.0;
            let mut mc_secs = 0.0;
            let mut exact_orderings = 0.0;
            let mut exact_secs = 0.0;
            let mut exact_ok = true;
            for seed in 0..runs {
                let table =
                    generate(&DatasetSpec::paper_default(n, width, seed)).expect("valid spec");
                let t = Instant::now();
                let mc =
                    build_mc(&table, K, &McConfig::fixed(ctk_tpo::DEFAULT_WORLDS, seed)).unwrap();
                mc_secs += t.elapsed().as_secs_f64();
                mc_orderings += mc.len() as f64;

                // Exact engine only on instances where it stays tractable.
                if n <= 20 {
                    let t = Instant::now();
                    match build_exact(
                        &table,
                        K,
                        &ExactConfig {
                            max_paths: 2_000_000,
                            ..ExactConfig::default()
                        },
                    ) {
                        Ok(ps) => {
                            exact_secs += t.elapsed().as_secs_f64();
                            exact_orderings += ps.len() as f64;
                        }
                        Err(_) => exact_ok = false,
                    }
                } else {
                    exact_ok = false;
                }
            }
            let r = runs as f64;
            rows.push(vec![
                n.to_string(),
                format!("{width:.1}"),
                format!("{:.1}", mc_orderings / r),
                fmt_secs(mc_secs / r),
                if exact_ok {
                    format!("{:.1}", exact_orderings / r)
                } else {
                    "-".into()
                },
                if exact_ok {
                    fmt_secs(exact_secs / r)
                } else {
                    "-".into()
                },
            ]);
            eprintln!(
                "#   N={n:2} width={width:.1}  mc: {:.0} orderings in {:.3}s{}",
                mc_orderings / r,
                mc_secs / r,
                if exact_ok {
                    format!(
                        "  exact: {:.0} in {:.3}s",
                        exact_orderings / r,
                        exact_secs / r
                    )
                } else {
                    String::new()
                }
            );
        }
    }
    emit_tsv(
        "table_scaling",
        &[
            "N",
            "width",
            "mc_orderings",
            "mc_secs",
            "exact_orderings",
            "exact_secs",
        ],
        &rows,
    );
}
