//! Kendall distance for *top-k lists* (Fagin, Kumar & Sivakumar's `K^(p)`),
//! the distance used throughout the paper's evaluation: both the TPO paths
//! and the real ordering `ω_r` are top-K prefixes, possibly over different
//! item sets.
//!
//! For an unordered item pair `{i, j}` from the union of two lists the
//! penalty is:
//!
//! 1. both in both lists — 1 if the orders disagree, else 0;
//! 2. both in one list, exactly one of them in the other — the other list
//!    implicitly ranks its present item above the absent one: 1 if that
//!    contradicts the first list, else 0;
//! 3. `i` only in one list, `j` only in the other — 1 (they certainly
//!    disagree: each list ranks its own member in the top-k, the other
//!    below);
//! 4. both in one list, neither in the other — penalty parameter
//!    `p ∈ [0, 1]` (unknowable; `p = 1/2` is the neutral choice).

use crate::list::RankList;

/// Neutral penalty parameter for case 4.
pub const NEUTRAL_PENALTY: f64 = 0.5;

/// Raw Fagin `K^(p)` distance between two top-k lists.
pub fn topk_kendall(a: &RankList, b: &RankList, p: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p), "penalty must be in [0,1]");
    // Union of items.
    let mut union: Vec<u32> = a.items().to_vec();
    for &it in b.items() {
        if !a.contains(it) {
            union.push(it);
        }
    }
    let mut total = 0.0;
    for x in 0..union.len() {
        for y in (x + 1)..union.len() {
            let (i, j) = (union[x], union[y]);
            let pa = (a.position(i), a.position(j));
            let pb = (b.position(i), b.position(j));
            total += match (pa, pb) {
                // Case 1: both in both.
                ((Some(ai), Some(aj)), (Some(bi), Some(bj))) => {
                    if (ai < aj) == (bi < bj) {
                        0.0
                    } else {
                        1.0
                    }
                }
                // Case 2: both in a, one in b.
                ((Some(ai), Some(aj)), (Some(_), None)) => {
                    // b implies i above j.
                    if ai < aj {
                        0.0
                    } else {
                        1.0
                    }
                }
                ((Some(ai), Some(aj)), (None, Some(_))) => {
                    // b implies j above i.
                    if aj < ai {
                        0.0
                    } else {
                        1.0
                    }
                }
                // Case 2 mirrored: both in b, one in a.
                ((Some(_), None), (Some(bi), Some(bj))) => {
                    if bi < bj {
                        0.0
                    } else {
                        1.0
                    }
                }
                ((None, Some(_)), (Some(bi), Some(bj))) => {
                    if bj < bi {
                        0.0
                    } else {
                        1.0
                    }
                }
                // Case 3: i in one list only, j in the other only.
                ((Some(_), None), (None, Some(_))) | ((None, Some(_)), (Some(_), None)) => 1.0,
                // Case 4: both in exactly one of the lists.
                ((Some(_), Some(_)), (None, None)) | ((None, None), (Some(_), Some(_))) => p,
                // Items outside both lists cannot be in the union.
                ((None, None), (None, None)) => unreachable!("item outside both lists"),
                // One item present in a single list, the other in none:
                // impossible for union members.
                ((Some(_), None), (None, None))
                | ((None, Some(_)), (None, None))
                | ((None, None), (Some(_), None))
                | ((None, None), (None, Some(_)))
                | ((Some(_), None), (Some(_), None))
                | ((None, Some(_)), (None, Some(_))) => {
                    // Both present only in the same single list is impossible
                    // here because the pair loop draws from the union and the
                    // other element would need to exist somewhere; these arms
                    // are genuinely unreachable but kept total for safety.
                    unreachable!("union pair with inconsistent membership")
                }
            };
        }
    }
    total
}

/// Maximum possible `K^(p)` for lists of lengths `ka`, `kb` (attained by
/// disjoint lists): every cross pair disagrees and every same-list pair is
/// unknowable.
pub fn topk_kendall_max(ka: usize, kb: usize, p: f64) -> f64 {
    let (ka, kb) = (ka as f64, kb as f64);
    ka * kb + p * (ka * (ka - 1.0) / 2.0 + kb * (kb - 1.0) / 2.0)
}

/// `K^(p)` normalized to `[0, 1]`. Two empty lists are at distance 0.
pub fn topk_kendall_normalized(a: &RankList, b: &RankList, p: f64) -> f64 {
    let max = topk_kendall_max(a.len(), b.len(), p);
    if max <= 0.0 {
        return 0.0;
    }
    (topk_kendall(a, b, p) / max).clamp(0.0, 1.0)
}

/// Normalized `K^(p)` with the neutral penalty `p = 1/2` — the default
/// distance `D` used in the experiment harness.
pub fn topk_distance(a: &RankList, b: &RankList) -> f64 {
    topk_kendall_normalized(a, b, NEUTRAL_PENALTY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kendall::kendall_distance;

    fn rl(items: &[u32]) -> RankList {
        RankList::new(items.to_vec()).unwrap()
    }

    #[test]
    fn identical_lists_at_zero() {
        let a = rl(&[3, 1, 2]);
        assert_eq!(topk_kendall(&a, &a.clone(), 0.5), 0.0);
        assert_eq!(topk_distance(&a, &a.clone()), 0.0);
    }

    #[test]
    fn same_items_reduces_to_kendall() {
        let a = rl(&[0, 1, 2, 3]);
        let b = rl(&[2, 0, 3, 1]);
        let k = kendall_distance(&a, &b).unwrap() as f64;
        assert_eq!(topk_kendall(&a, &b, 0.5), k);
        assert_eq!(topk_kendall(&a, &b, 0.0), k);
    }

    #[test]
    fn disjoint_lists_hit_the_maximum() {
        let a = rl(&[0, 1, 2]);
        let b = rl(&[3, 4, 5]);
        for p in [0.0, 0.5, 1.0] {
            let d = topk_kendall(&a, &b, p);
            assert!((d - topk_kendall_max(3, 3, p)).abs() < 1e-12, "p={p}: {d}");
            assert_eq!(topk_kendall_normalized(&a, &b, p), 1.0);
        }
    }

    #[test]
    fn one_overlapping_item() {
        // a = [0,1], b = [0,2]:
        // pair (0,1): both in a, only 0 in b -> b implies 0 above 1; a agrees -> 0
        // pair (0,2): both in b, only 0 in a -> a implies 0 above 2; b agrees -> 0
        // pair (1,2): 1 only in a, 2 only in b -> 1
        let a = rl(&[0, 1]);
        let b = rl(&[0, 2]);
        assert_eq!(topk_kendall(&a, &b, 0.5), 1.0);
    }

    #[test]
    fn case2_contradiction_counts() {
        // a = [1,0], b = [0,2]: pair (0,1): both in a (1 above 0), only 0 in
        // b -> b implies 0 above 1, contradicting a -> 1.
        let a = rl(&[1, 0]);
        let b = rl(&[0, 2]);
        // pairs: (1,0): 1 ; (1,2): cross-only -> 1 ; (0,2): both in b, a has
        // only 0 -> a implies 0 above 2, b agrees -> 0. total 2.
        assert_eq!(topk_kendall(&a, &b, 0.5), 2.0);
    }

    #[test]
    fn penalty_only_affects_case4() {
        // a = [0,1,2], b = [0,9,8]: pairs (1,2) are both in a, absent in b.
        let a = rl(&[0, 1, 2]);
        let b = rl(&[0, 9, 8]);
        let d0 = topk_kendall(&a, &b, 0.0);
        let d1 = topk_kendall(&a, &b, 1.0);
        // Exactly two case-4 pairs: {1,2} (in a only) and {9,8} (in b only).
        assert!((d1 - d0 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn symmetry() {
        let a = rl(&[0, 1, 2, 7]);
        let b = rl(&[2, 3, 0, 9]);
        for p in [0.0, 0.3, 0.5, 1.0] {
            assert!(
                (topk_kendall(&a, &b, p) - topk_kendall(&b, &a, p)).abs() < 1e-12,
                "p = {p}"
            );
        }
    }

    #[test]
    fn normalized_is_bounded() {
        let a = rl(&[0, 1, 2]);
        let cases = [
            rl(&[0, 1, 2]),
            rl(&[2, 1, 0]),
            rl(&[5, 6, 7]),
            rl(&[1, 5, 0]),
        ];
        for b in &cases {
            let d = topk_distance(&a, b);
            assert!((0.0..=1.0).contains(&d), "d = {d}");
        }
        // Empty lists.
        let e = rl(&[]);
        assert_eq!(topk_distance(&e, &e.clone()), 0.0);
    }

    #[test]
    fn different_lengths_supported() {
        let a = rl(&[0, 1, 2, 3]);
        let b = rl(&[0, 1]);
        // Shared prefix in the same order: only case-4 pairs {2,3} in a.
        let d = topk_kendall(&a, &b, 0.5);
        assert!((d - 0.5).abs() < 1e-12, "d = {d}");
    }
}
