//! Discrete score distribution: a finite set of score values with
//! probabilities (the x-relation / possible-values model common in
//! probabilistic databases).

use crate::error::{ProbError, Result};
use rand::Rng;

/// Finite discrete distribution over sorted support points.
#[derive(Debug, Clone, PartialEq)]
pub struct Discrete {
    /// Support points, strictly increasing.
    xs: Vec<f64>,
    /// Probabilities, same length as `xs`, summing to 1.
    ps: Vec<f64>,
    /// Cumulative probabilities; `cum[i] = P(X <= xs[i])`.
    cum: Vec<f64>,
}

impl Discrete {
    /// Builds a discrete distribution from `(value, weight)` pairs.
    ///
    /// Weights must be nonnegative with a positive sum; they are normalized.
    /// Duplicate values are merged; points with zero weight are dropped.
    pub fn new(pairs: &[(f64, f64)]) -> Result<Self> {
        if pairs.is_empty() {
            return Err(ProbError::InvalidWeights("no support points".into()));
        }
        for &(x, w) in pairs {
            if !x.is_finite() {
                return Err(ProbError::InvalidParameter {
                    param: "value",
                    reason: format!("support points must be finite, got {x}"),
                });
            }
            if !w.is_finite() || w < 0.0 {
                return Err(ProbError::InvalidWeights(format!(
                    "weight {w} at value {x} is negative or non-finite"
                )));
            }
        }
        let mut sorted: Vec<(f64, f64)> = pairs.to_vec();
        sorted.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        // Merge duplicates, drop zeros.
        let mut xs: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut ps: Vec<f64> = Vec::with_capacity(sorted.len());
        for (x, w) in sorted {
            // ctk-allow(float-eq): exact-zero sentinel — drops only literally zero weights
            if w == 0.0 {
                continue;
            }
            if let Some(last) = xs.last() {
                if *last == x {
                    // ctk-allow(panic-unwrap): ps grows in lockstep with xs; xs.last() just matched
                    *ps.last_mut().expect("parallel vectors") += w;
                    continue;
                }
            }
            xs.push(x);
            ps.push(w);
        }
        let total: f64 = ps.iter().sum();
        if total <= 0.0 {
            return Err(ProbError::InvalidWeights("all weights are zero".into()));
        }
        for p in &mut ps {
            *p /= total;
        }
        let mut cum = Vec::with_capacity(ps.len());
        let mut acc = 0.0;
        for &p in &ps {
            acc += p;
            cum.push(acc);
        }
        // Guard against floating-point drift at the top.
        if let Some(last) = cum.last_mut() {
            *last = 1.0;
        }
        Ok(Self { xs, ps, cum })
    }

    /// Degenerate single-point distribution (used by [`crate::dist::ScoreDist::point`]).
    pub fn point(x: f64) -> Result<Self> {
        Self::new(&[(x, 1.0)])
    }

    /// Support points (sorted ascending).
    pub fn values(&self) -> &[f64] {
        &self.xs
    }

    /// Probabilities aligned with [`Self::values`].
    pub fn probabilities(&self) -> &[f64] {
        &self.ps
    }

    /// Probability mass at exactly `x` (0 if `x` is not a support point).
    pub fn pmf(&self, x: f64) -> f64 {
        match self.xs.binary_search_by(|v| v.total_cmp(&x)) {
            Ok(i) => self.ps[i],
            Err(_) => 0.0,
        }
    }

    /// Cumulative distribution `P(X <= x)` (right-continuous step function).
    pub fn cdf(&self, x: f64) -> f64 {
        // Index of the last support point <= x.
        match self.xs.binary_search_by(|v| v.total_cmp(&x)) {
            Ok(i) => self.cum[i],
            Err(0) => 0.0,
            Err(i) => self.cum[i - 1],
        }
    }

    /// Smallest support value `x` with `P(X <= x) >= p`.
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let idx = self.cum.partition_point(|&c| c < p);
        self.xs[idx.min(self.xs.len() - 1)]
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.xs.iter().zip(&self.ps).map(|(x, p)| x * p).sum()
    }

    /// Variance of the distribution.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.xs
            .iter()
            .zip(&self.ps)
            .map(|(x, p)| p * (x - m) * (x - m))
            .sum()
    }

    /// Support hull (min and max support points).
    pub fn support(&self) -> (f64, f64) {
        // ctk-allow(panic-unwrap): constructor rejects empty support sets
        (self.xs[0], *self.xs.last().expect("non-empty"))
    }

    /// Draws one sample by inverse-cdf transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        self.quantile(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn die() -> Discrete {
        Discrete::new(&[
            (1.0, 1.0),
            (2.0, 1.0),
            (3.0, 1.0),
            (4.0, 1.0),
            (5.0, 1.0),
            (6.0, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Discrete::new(&[]).is_err());
        assert!(Discrete::new(&[(1.0, -0.5)]).is_err());
        assert!(Discrete::new(&[(f64::NAN, 1.0)]).is_err());
        assert!(Discrete::new(&[(1.0, 0.0)]).is_err());
    }

    #[test]
    fn duplicates_merge_and_zeros_drop() {
        let d = Discrete::new(&[(2.0, 1.0), (1.0, 1.0), (2.0, 2.0), (3.0, 0.0)]).unwrap();
        assert_eq!(d.values(), &[1.0, 2.0]);
        assert!((d.pmf(2.0) - 0.75).abs() < 1e-15);
        assert!((d.pmf(1.0) - 0.25).abs() < 1e-15);
        assert_eq!(d.pmf(3.0), 0.0);
    }

    #[test]
    fn cdf_is_right_continuous_step() {
        let d = die();
        assert_eq!(d.cdf(0.99), 0.0);
        assert!((d.cdf(1.0) - 1.0 / 6.0).abs() < 1e-12);
        assert!((d.cdf(3.5) - 0.5).abs() < 1e-12);
        assert_eq!(d.cdf(6.0), 1.0);
        assert_eq!(d.cdf(100.0), 1.0);
    }

    #[test]
    fn quantile_inverts() {
        let d = die();
        assert_eq!(d.quantile(0.0), 1.0);
        assert_eq!(d.quantile(1.0 / 6.0), 1.0);
        assert_eq!(d.quantile(1.0 / 6.0 + 1e-9), 2.0);
        assert_eq!(d.quantile(1.0), 6.0);
    }

    #[test]
    fn moments_of_die() {
        let d = die();
        assert!((d.mean() - 3.5).abs() < 1e-12);
        assert!((d.variance() - 35.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn point_mass() {
        let d = Discrete::point(4.2).unwrap();
        assert_eq!(d.support(), (4.2, 4.2));
        assert_eq!(d.pmf(4.2), 1.0);
        assert_eq!(d.cdf(4.19), 0.0);
        assert_eq!(d.cdf(4.2), 1.0);
    }

    #[test]
    fn sampling_matches_pmf() {
        let d = Discrete::new(&[(0.0, 0.7), (1.0, 0.3)]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        const N: usize = 30_000;
        let ones = (0..N).filter(|_| d.sample(&mut rng) == 1.0).count();
        let frac = ones as f64 / N as f64;
        assert!((frac - 0.3).abs() < 0.02, "frac = {frac}");
    }
}
