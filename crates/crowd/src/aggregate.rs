//! Vote aggregation: combining several workers' answers to one question.
//!
//! Replicating a question to an odd number of workers and taking the
//! majority is the standard crowdsourcing quality-control device; the
//! noisy-crowd experiment (`table_noise` in `ctk-bench`) quantifies how
//! much it buys at triple the monetary cost.

use crate::error::CrowdError;

/// How many workers answer each question.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VotePolicy {
    /// One worker per question.
    Single,
    /// An odd number of workers per question; majority wins.
    Majority(usize),
}

impl VotePolicy {
    /// Number of votes collected per question.
    pub fn votes_per_question(&self) -> usize {
        match self {
            VotePolicy::Single => 1,
            VotePolicy::Majority(n) => *n,
        }
    }

    /// Validates the policy (majority counts must be odd and >= 3).
    pub fn validate(&self) -> Result<(), CrowdError> {
        match self {
            VotePolicy::Single => Ok(()),
            VotePolicy::Majority(n) if *n >= 3 && n % 2 == 1 => Ok(()),
            VotePolicy::Majority(n) => Err(CrowdError::InvalidVotePolicy { count: *n }),
        }
    }

    /// The effective accuracy of the aggregate answer given a per-worker
    /// accuracy `eta` (i.i.d. errors): `P(majority correct)`.
    pub fn effective_accuracy(&self, eta: f64) -> f64 {
        match self {
            VotePolicy::Single => eta,
            VotePolicy::Majority(n) => {
                // Sum over outcomes with more than n/2 correct votes.
                let n = *n;
                let mut p = 0.0;
                for correct in (n / 2 + 1)..=n {
                    p += binomial(n, correct)
                        * eta.powi(correct as i32)
                        * (1.0 - eta).powi((n - correct) as i32);
                }
                p
            }
        }
    }
}

fn binomial(n: usize, k: usize) -> f64 {
    let k = k.min(n - k);
    let mut num = 1.0;
    let mut den = 1.0;
    for i in 0..k {
        num *= (n - i) as f64;
        den *= (i + 1) as f64;
    }
    num / den
}

/// Majority of a non-empty odd-length vote vector.
pub fn majority_vote(votes: &[bool]) -> bool {
    debug_assert!(!votes.is_empty() && votes.len() % 2 == 1, "odd vote count");
    let yes = votes.iter().filter(|&&v| v).count();
    yes * 2 > votes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_basics() {
        assert!(majority_vote(&[true]));
        assert!(!majority_vote(&[false]));
        assert!(majority_vote(&[true, false, true]));
        assert!(!majority_vote(&[true, false, false]));
        assert!(majority_vote(&[true, true, false, false, true]));
    }

    #[test]
    fn policy_validation() {
        assert!(VotePolicy::Single.validate().is_ok());
        assert!(VotePolicy::Majority(3).validate().is_ok());
        assert!(VotePolicy::Majority(5).validate().is_ok());
        assert!(VotePolicy::Majority(2).validate().is_err());
        assert!(VotePolicy::Majority(4).validate().is_err());
        assert!(VotePolicy::Majority(1).validate().is_err());
    }

    #[test]
    fn votes_per_question() {
        assert_eq!(VotePolicy::Single.votes_per_question(), 1);
        assert_eq!(VotePolicy::Majority(5).votes_per_question(), 5);
    }

    #[test]
    fn effective_accuracy_improves_with_votes() {
        let eta = 0.7;
        let single = VotePolicy::Single.effective_accuracy(eta);
        let maj3 = VotePolicy::Majority(3).effective_accuracy(eta);
        let maj5 = VotePolicy::Majority(5).effective_accuracy(eta);
        assert_eq!(single, 0.7);
        // P(maj-of-3 correct) = eta^3 + 3 eta^2 (1-eta) = 0.343 + 0.441
        assert!((maj3 - 0.784).abs() < 1e-9, "maj3 = {maj3}");
        assert!(maj5 > maj3 && maj3 > single);
        // Perfect workers stay perfect.
        assert!((VotePolicy::Majority(3).effective_accuracy(1.0) - 1.0).abs() < 1e-12);
        // Coin-flip workers stay coin flips.
        assert!((VotePolicy::Majority(5).effective_accuracy(0.5) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn odd_vote_counts_cannot_tie() {
        // Enumerate every vote vector for the supported odd sizes: a
        // majority always exists, and flipping every vote flips it.
        for n in [1usize, 3, 5, 7] {
            for mask in 0u32..(1 << n) {
                let votes: Vec<bool> = (0..n).map(|b| mask & (1 << b) != 0).collect();
                let flipped: Vec<bool> = votes.iter().map(|v| !v).collect();
                let yes = votes.iter().filter(|&&v| v).count();
                assert_ne!(2 * yes, n, "odd count admits no tie");
                assert_eq!(
                    majority_vote(&votes),
                    yes * 2 > n,
                    "majority definition at n={n}, mask={mask}"
                );
                assert_ne!(majority_vote(&votes), majority_vote(&flipped));
            }
        }
    }

    #[test]
    fn half_accuracy_is_a_fixed_point_of_every_policy() {
        // eta = 0.5 workers carry zero information; replication cannot
        // mint any: P(majority correct) stays exactly 1/2 by the symmetry
        // of the binomial at p = 1/2.
        for policy in [
            VotePolicy::Single,
            VotePolicy::Majority(3),
            VotePolicy::Majority(5),
            VotePolicy::Majority(7),
            VotePolicy::Majority(9),
        ] {
            let p = policy.effective_accuracy(0.5);
            assert!(
                (p - 0.5).abs() < 1e-12,
                "{policy:?}: eta=0.5 must be a fixed point, got {p}"
            );
        }
    }

    #[test]
    fn effective_accuracy_stays_a_probability_and_amplifies() {
        // For any eta in (0.5, 1], majority voting amplifies accuracy
        // (Condorcet); below-1 etas stay strictly below 1; and the result
        // is always a probability.
        for eta10 in 5..=10 {
            let eta = eta10 as f64 / 10.0;
            for policy in [VotePolicy::Majority(3), VotePolicy::Majority(5)] {
                let p = policy.effective_accuracy(eta);
                assert!((0.0..=1.0 + 1e-12).contains(&p), "p = {p}");
                assert!(p >= eta - 1e-12, "replication must not hurt: {eta} -> {p}");
                if eta > 0.5 && eta < 1.0 {
                    assert!(p > eta, "strict amplification at eta={eta}");
                    assert!(p < 1.0, "no free certainty at eta={eta}");
                }
            }
        }
    }

    #[test]
    fn majority_validation_rejects_even_and_degenerate_counts() {
        for n in [0usize, 1, 2, 4, 6, 100] {
            assert!(
                VotePolicy::Majority(n).validate().is_err(),
                "Majority({n}) must be rejected"
            );
        }
        for n in [3usize, 5, 7, 99] {
            assert!(VotePolicy::Majority(n).validate().is_ok());
        }
    }

    #[test]
    fn binomial_coefficients() {
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(7, 3), 35.0);
    }
}
