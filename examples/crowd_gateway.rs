//! A crowd behind a wire: the serving stack talks to its crowd through
//! the `ctk-wire` codec instead of a direct call, and ends up with
//! bit-identical per-tenant reports.
//!
//! Run with: `cargo run --release --example crowd_gateway`
//!
//! Topology: an in-memory duplex pair carries length-prefixed frames
//! between a service-side proxy ([`WireCrowd`], implementing [`Crowd`])
//! and a gateway that owns the real [`CrowdSimulator`]. Every question
//! and every graded answer is encoded to bytes and decoded back — the
//! exact byte stream a cross-process deployment would see.
//!
//! The example runs the same eight tenants twice:
//!
//! * **in-process reference** — `TopKService` over the crowd directly,
//!   tick mode, one shard;
//! * **wire path** — `TopKService` over the `WireCrowd` proxy, the
//!   event-driven run mode, two shards.
//!
//! It then asserts every tenant's [`UrReport`] is outcome-identical
//! across the two paths, and ships each final report as a
//! [`ReportSummary`] frame whose decoded form must `matches()` the
//! local report — proving the wire format round-trips outcomes bit for
//! bit.

use crowd_topk::core::measures::MeasureKind;
use crowd_topk::core::session::{Algorithm, SessionConfig};
use crowd_topk::crowd::{Answer, Crowd, Question, RouteHint};
use crowd_topk::datagen::{generate, DatasetSpec};
use crowd_topk::prelude::*;
use crowd_topk::service::RunMode;
use crowd_topk::tpo::build::{Engine, McConfig};
use crowd_topk::wire::{
    decode_frame_exact, encode_frame, AnswerBatch, Frame, GradedAnswer, QuestionBatch,
    ReportSummary,
};

const TENANTS: usize = 8;
const BUDGET: usize = 8;
const CROWD_BUDGET: usize = 100_000;

fn tenant_config(tenant: usize) -> SessionConfig {
    let algorithm = match tenant % 6 {
        0 => Algorithm::T1On,
        1 => Algorithm::TbOff,
        2 => Algorithm::Naive,
        3 => Algorithm::Random,
        4 => Algorithm::COff,
        _ => Algorithm::Incr {
            questions_per_round: 3,
        },
    };
    SessionConfig {
        k: 3,
        budget: BUDGET,
        measure: MeasureKind::WeightedEntropy,
        algorithm,
        engine: Engine::MonteCarlo(McConfig::fixed(2500, 17)),
        seed: (tenant % 6) as u64,
        uncertainty_target: None,
    }
}

/// The remote end of the duplex pair: owns the real crowd, consumes
/// [`Frame::Questions`], produces [`Frame::Answers`]. Answers a batch as
/// a prefix when the crowd budget runs dry — the same starvation
/// contract the in-process service observes.
struct Gateway {
    crowd: CrowdSimulator<PerfectWorker>,
    frames: usize,
    bytes_in: usize,
    bytes_out: usize,
}

impl Gateway {
    fn new(crowd: CrowdSimulator<PerfectWorker>) -> Self {
        Self {
            crowd,
            frames: 0,
            bytes_in: 0,
            bytes_out: 0,
        }
    }

    /// Handles one frame worth of bytes, returning the reply bytes.
    fn handle(&mut self, bytes: &[u8]) -> Vec<u8> {
        self.frames += 1;
        self.bytes_in += bytes.len();
        let frame = decode_frame_exact(bytes).expect("service sent a well-formed frame");
        let Frame::Questions(batch) = frame else {
            panic!("gateway only serves question batches");
        };
        let mut items = Vec::with_capacity(batch.items.len());
        for (q, hint) in batch.items {
            // Prefix semantics: the first unaffordable question ends the
            // batch, exactly like a direct `Crowd::ask_routed` miss.
            let Some(answer) = self.crowd.ask_routed(q, hint) else {
                break;
            };
            items.push(GradedAnswer {
                answer,
                accuracy: self.crowd.answer_accuracy(),
                cached: false,
            });
        }
        let reply = encode_frame(&Frame::Answers(AnswerBatch {
            session: batch.session,
            crowd_remaining: self.crowd.remaining() as u64,
            items,
        }));
        self.bytes_out += reply.len();
        reply
    }
}

/// Service-side proxy: a [`Crowd`] whose every interaction round-trips
/// through the codec to the [`Gateway`]. The proxy sits below session
/// granularity (the `Crowd` trait is the shared backend all tenants
/// multiplex over), so its question batches travel on lane `0`;
/// per-tenant attribution happens in the report frames instead.
struct WireCrowd {
    gateway: Gateway,
    remaining: u64,
    accuracy: f64,
    history: Vec<Answer>,
    bytes_out: usize,
}

impl WireCrowd {
    /// Wraps `gateway`. `accuracy` is deployment configuration shared by
    /// both endpoints; the per-answer grade on the wire re-confirms it.
    fn new(mut gateway: Gateway, accuracy: f64) -> Self {
        // Handshake: an empty batch synchronizes the budget snapshot so
        // `Crowd::remaining` is answerable before the first question.
        let hello = encode_frame(&Frame::Questions(QuestionBatch {
            session: 0,
            items: Vec::new(),
        }));
        let hello_len = hello.len();
        let reply = gateway.handle(&hello);
        let Frame::Answers(batch) = decode_frame_exact(&reply).expect("well-formed reply") else {
            panic!("gateway answered with a non-answer frame");
        };
        Self {
            remaining: batch.crowd_remaining,
            gateway,
            accuracy,
            history: Vec::new(),
            bytes_out: hello_len,
        }
    }
}

impl Crowd for WireCrowd {
    fn ask(&mut self, q: Question) -> Option<Answer> {
        self.ask_routed(q, RouteHint::Any)
    }

    fn ask_routed(&mut self, q: Question, hint: RouteHint) -> Option<Answer> {
        let frame = encode_frame(&Frame::Questions(QuestionBatch {
            session: 0,
            items: vec![(q, hint)],
        }));
        self.bytes_out += frame.len();
        let reply = self.gateway.handle(&frame);
        let Frame::Answers(batch) = decode_frame_exact(&reply).expect("well-formed reply") else {
            panic!("gateway answered with a non-answer frame");
        };
        self.remaining = batch.crowd_remaining;
        let graded = batch.items.first()?;
        assert_eq!(
            graded.accuracy.to_bits(),
            self.accuracy.to_bits(),
            "wire grade disagrees with the configured accuracy"
        );
        self.history.push(graded.answer);
        Some(graded.answer)
    }

    fn remaining(&self) -> usize {
        self.remaining as usize
    }

    fn answer_accuracy(&self) -> f64 {
        self.accuracy
    }

    fn history(&self) -> &[Answer] {
        &self.history
    }
}

fn main() {
    let table = generate(&DatasetSpec::paper_default(10, 0.35, 2024)).expect("valid spec");
    let truth = GroundTruth::sample(&table, 4242);
    let top = truth.top_k(3);
    let crowd = || {
        CrowdSimulator::new(
            truth.clone(),
            PerfectWorker,
            VotePolicy::Single,
            CROWD_BUDGET,
        )
        .expect("valid vote policy")
    };

    fn submit_all<C: Crowd>(
        service: &mut TopKService<C>,
        table: &crowd_topk::prob::UncertainTable,
        top: &RankList,
    ) -> Vec<crowd_topk::service::SessionId> {
        (0..TENANTS)
            .map(|t| {
                service
                    .submit_with_truth(
                        table,
                        SessionSpec::new(tenant_config(t)).with_priority((t % 4) as u8),
                        Some(top),
                    )
                    .expect("valid tenant config")
            })
            .collect()
    }

    // In-process reference: the crowd is a direct field of the service.
    let mut local = TopKService::new(crowd()).with_fanout(4);
    let local_ids = submit_all(&mut local, &table, &top);
    local.run_to_completion();

    // Wire path: same tenants, but every crowd interaction crosses the
    // codec — and the service runs the event-driven mode over two shards
    // to show the wire proxy composes with the sharded core.
    let gateway = Gateway::new(crowd());
    let mut remote = TopKService::new(WireCrowd::new(gateway, 1.0))
        .with_shards(2)
        .expect("topology set before any submit")
        .with_run_mode(RunMode::Event)
        .with_fanout(4);
    let remote_ids = submit_all(&mut remote, &table, &top);
    remote.run_to_completion();

    println!(
        "Served {TENANTS} tenants twice: in-process (tick, 1 shard) and \
         over the wire (event, 2 shards).\n"
    );

    // Per-tenant outcome equality across the two paths, then a report
    // frame round-trip: encode the wire-path report, decode it, and
    // check the decoded summary against the in-process report.
    let mut report_bytes = 0usize;
    for (tenant, (lid, rid)) in local_ids.iter().zip(&remote_ids).enumerate() {
        let local_report = local.report(*lid).expect("local tenant completed");
        let remote_report = remote.report(*rid).expect("wire tenant completed");
        assert!(
            remote_report.same_outcome(local_report),
            "tenant {tenant} diverged between in-process and wire paths"
        );

        let frame = Frame::Report(ReportSummary::from_report(tenant as u64, remote_report));
        let bytes = encode_frame(&frame);
        report_bytes += bytes.len();
        let Frame::Report(decoded) = decode_frame_exact(&bytes).expect("well-formed report") else {
            panic!("report frame decoded to a different tag");
        };
        assert!(
            decoded.matches(local_report),
            "tenant {tenant}: decoded wire summary disagrees with the in-process report"
        );
    }
    println!("All {TENANTS} tenants outcome-identical across the process boundary.");
    println!("All {TENANTS} report summaries round-tripped bit-exact ({report_bytes} bytes).\n");

    let wire = remote.crowd();
    println!(
        "Wire traffic: {} frames, {} bytes service->gateway, {} bytes back.",
        wire.gateway.frames, wire.gateway.bytes_in, wire.gateway.bytes_out
    );
    println!(
        "Crowd answered {} questions; {} budget units left on the gateway side.",
        wire.history.len(),
        wire.remaining
    );
}
