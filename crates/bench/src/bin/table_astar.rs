//! T-astar (§IV prose): the optimal algorithms (A*-off, A*-on) against
//! the heuristics (TB-off, C-off, T1-on) on instances small enough for
//! optimality to be computed. The paper's finding: T1-on and C-off are
//! “nearly as good as … the A*-based algorithms, but at a fraction of the
//! cost.”
//!
//! `cargo run --release -p ctk-bench --bin table_astar [runs]`

use ctk_bench::{emit_tsv, evaluate, fmt, fmt_secs, runs_from_args, EvalOpts};
use ctk_core::session::Algorithm;
use ctk_datagen::scenarios;

fn main() {
    let runs = runs_from_args(8);
    let opts = EvalOpts {
        runs,
        worlds: 2_000,
        ..EvalOpts::default()
    };
    let budgets = [1usize, 2, 3, 4, 5];
    let algorithms = [
        Algorithm::AStarOff {
            max_expansions: None,
        },
        Algorithm::AStarOn {
            lookahead: 0,
            max_expansions: None,
        },
        Algorithm::COff,
        Algorithm::TbOff,
        Algorithm::T1On,
    ];

    eprintln!("# T-astar: optimal vs heuristic selection — N=10, K=3, {runs} runs");
    let mut rows = Vec::new();
    for algorithm in &algorithms {
        for &b in &budgets {
            let s = evaluate(scenarios::astar, algorithm.clone(), b, &opts);
            rows.push(vec![
                s.algorithm.to_string(),
                b.to_string(),
                fmt(s.avg_distance),
                fmt_secs(s.avg_selection_secs),
            ]);
            eprintln!(
                "#   {:7} B={}  D={:.4}  select={:.3e}s",
                s.algorithm, b, s.avg_distance, s.avg_selection_secs
            );
        }
    }
    emit_tsv(
        "table_astar",
        &["algorithm", "B", "D", "selection_secs"],
        &rows,
    );
}
