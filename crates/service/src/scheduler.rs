//! Round scheduling: which runnable sessions get crowd attention this
//! round.
//!
//! The policy is priority-first, round-robin within a priority class:
//! higher-priority tenants always go first, and among equals a rotating
//! cursor guarantees that a bounded per-round fanout cannot starve
//! anyone — every runnable session is served within `ceil(n / fanout)`
//! rounds of its class.

use crate::registry::SessionId;

/// Priority + round-robin scheduler (see module docs).
#[derive(Debug, Clone)]
pub struct Scheduler {
    cursor: usize,
    fanout: Option<usize>,
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler {
    /// Unbounded fanout: every runnable session is served every round.
    pub fn new() -> Self {
        Self {
            cursor: 0,
            fanout: None,
        }
    }

    /// Serve at most `fanout` sessions per round (clamped to >= 1).
    pub fn with_fanout(fanout: usize) -> Self {
        Self {
            cursor: 0,
            fanout: Some(fanout.max(1)),
        }
    }

    /// The configured per-round fanout, if bounded.
    pub fn fanout(&self) -> Option<usize> {
        self.fanout
    }

    /// Picks the sessions to serve this round from `(id, priority)` pairs
    /// of runnable sessions, in service order.
    pub fn plan_round(&mut self, runnable: &[(SessionId, u8)]) -> Vec<SessionId> {
        let n = runnable.len();
        if n == 0 {
            return Vec::new();
        }
        // Rotate by the cursor so equal-priority sessions take turns when
        // the fanout is bounded, then stable-sort by priority: the
        // rotation survives within each priority class.
        let start = self.cursor % n;
        let mut order: Vec<(SessionId, u8)> = (0..n).map(|i| runnable[(start + i) % n]).collect();
        order.sort_by_key(|&(_, priority)| std::cmp::Reverse(priority));
        let take = self.fanout.unwrap_or(n).min(n);
        self.cursor = self.cursor.wrapping_add(take);
        order.truncate(take);
        order.into_iter().map(|(id, _)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<SessionId> {
        v.iter().map(|&i| SessionId(i)).collect()
    }

    #[test]
    fn unbounded_fanout_serves_everyone() {
        let mut s = Scheduler::new();
        let runnable = [(SessionId(0), 0), (SessionId(1), 0), (SessionId(2), 0)];
        let plan = s.plan_round(&runnable);
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn higher_priority_goes_first() {
        let mut s = Scheduler::with_fanout(2);
        let runnable = [
            (SessionId(0), 0),
            (SessionId(1), 9),
            (SessionId(2), 0),
            (SessionId(3), 5),
        ];
        assert_eq!(s.plan_round(&runnable), ids(&[1, 3]));
    }

    #[test]
    fn round_robin_is_starvation_free() {
        let mut s = Scheduler::with_fanout(1);
        let runnable = [(SessionId(0), 0), (SessionId(1), 0), (SessionId(2), 0)];
        let mut served = Vec::new();
        for _ in 0..3 {
            served.extend(s.plan_round(&runnable));
        }
        let mut sorted = served.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "each session served once in 3 rounds");
    }

    #[test]
    fn rotation_survives_within_priority_class() {
        let mut s = Scheduler::with_fanout(1);
        // The high-priority session always wins until it is done; among
        // the low-priority pair, turns alternate once it leaves.
        let full = [(SessionId(0), 0), (SessionId(1), 7), (SessionId(2), 0)];
        assert_eq!(s.plan_round(&full), ids(&[1]));
        assert_eq!(s.plan_round(&full), ids(&[1]));
        let rest = [(SessionId(0), 0), (SessionId(2), 0)];
        let a = s.plan_round(&rest)[0];
        let b = s.plan_round(&rest)[0];
        assert_ne!(a, b, "equal-priority sessions alternate");
    }

    #[test]
    fn empty_runnable_set() {
        let mut s = Scheduler::new();
        assert!(s.plan_round(&[]).is_empty());
        assert_eq!(Scheduler::with_fanout(0).fanout(), Some(1));
    }
}
