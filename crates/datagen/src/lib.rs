#![forbid(unsafe_code)]
#![deny(warnings)]
//! # ctk-datagen — synthetic uncertain-score datasets
//!
//! Data generation for the `crowd-topk` workspace (reproduction of
//! *“Crowdsourcing for Top-K Query Processing over Uncertain Data”*, Ciceri
//! et al., ICDE 2016 / TKDE 28(1)).
//!
//! The paper's evaluation uses synthetic relations whose score pdfs are
//! controlled by a handful of structural knobs — table size `N`, score
//! center layout, pdf family, and uncertainty width. [`DatasetSpec`]
//! captures those knobs, [`generate`] materializes a table
//! deterministically, and [`scenarios`] provides one named preset per
//! figure/table of the paper (see DESIGN.md §6). The [`crowd`] module
//! extends the same idea to worker populations: seeded presets for
//! spammer-contaminated, churning and gold-calibrated rosters consumed
//! by the `ctk-quality` experiments.
//!
//! ## Example
//!
//! ```
//! use ctk_datagen::{DatagenError, DatasetSpec, generate};
//!
//! // The paper's default workload: N=20, U[0,1] centers, width-0.4 pdfs.
//! let table = generate(&DatasetSpec::paper_default(20, 0.4, 42)).unwrap();
//! assert_eq!(table.len(), 20);
//!
//! // Same spec, same data — experiments are reproducible.
//! assert_eq!(table, generate(&DatasetSpec::paper_default(20, 0.4, 42)).unwrap());
//!
//! // Malformed specs are errors, not process aborts.
//! assert_eq!(
//!     generate(&DatasetSpec::paper_default(0, 0.4, 42)),
//!     Err(DatagenError::EmptyTable),
//! );
//! ```

pub mod config;
pub mod crowd;
pub mod error;
pub mod generator;
pub mod scenarios;

pub use config::{CenterLayout, DatasetSpec, PdfFamily, WidthSpec};
pub use crowd::{churn_pool, gold_calibrated, gold_questions, spammer_pool};
pub use error::{DatagenError, Result};
pub use generator::generate;
pub use scenarios::{HeteroVariant, Scenario};
