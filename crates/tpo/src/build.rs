//! TPO construction engines.
//!
//! Two ways to materialize the tree of possible orderings of a top-K query
//! (Ciceri et al., §II-B):
//!
//! * [`build_mc`] — Monte-Carlo: sample `M` possible worlds (full score
//!   realizations), rank each, and group the depth-`K` prefixes. Cost
//!   `O(M · N log N)`, error `O(1/√M)` per path.
//! * [`build_exact`] — exact: enumerate prefixes level by level, scoring
//!   each with the nested-quadrature integral of
//!   [`ctk_prob::nested::prefix_probability`] (after Li & Deshpande,
//!   PVLDB'10) and pruning zero-mass branches. Exact up to quadrature
//!   error, but enumeration can explode on highly overlapping tables —
//!   bounded by [`ExactConfig::max_paths`].
//!
//! Both return the flat [`PathSet`]; see `tests/engines_agree.rs` for the
//! cross-validation of the two engines.

use crate::error::{Result, TpoError};
use crate::path::PathSet;
use crate::precision::{
    eb_half_width, PrecisionReport, PrecisionTarget, StopReason, ADAPTIVE_INITIAL_BATCH,
    ADAPTIVE_MAX_WORLDS,
};
use crate::worlds::{WorldModel, PARALLEL_WORLDS_MIN};
use ctk_prob::compare::{available_cores, planned_threads, PairwiseMatrix};
use ctk_prob::nested::{prefix_probability_with, NestedScratch};
use ctk_prob::sample::{top_k_prefix_into, WorldSampler};
use ctk_prob::{ScoreDist, SupportGrid, TopKBounds, UncertainTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
// ctk-allow(det-hash-collection): all maps in this module hold exact integer counts merged commutatively and drained through PathSet::from_weighted's canonical sort
use std::collections::HashMap;

/// Configuration of the Monte-Carlo engine.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct McConfig {
    /// How precise the sampled posterior must be: a fixed world budget
    /// (the historical `worlds` knob, bit-identical compat mode) or an
    /// adaptive `(ε, δ)` target (see [`crate::precision`]).
    pub precision: PrecisionTarget,
    /// PRNG seed (sampling is fully deterministic given the seed).
    pub seed: u64,
}

impl McConfig {
    /// Fixed `worlds`-sample compat mode — the historical
    /// `McConfig { worlds, seed }` spelled through the precision layer.
    pub fn fixed(worlds: usize, seed: u64) -> Self {
        Self {
            precision: PrecisionTarget::FixedWorlds(worlds),
            seed,
        }
    }

    /// Adaptive mode: sample until the sequential bound clears
    /// `(epsilon, delta)` or the certain bounds decide the query.
    pub fn adaptive(epsilon: f64, delta: f64, seed: u64) -> Self {
        Self {
            precision: PrecisionTarget::Adaptive { epsilon, delta },
            seed,
        }
    }

    /// The default fixed budget ([`crate::precision::DEFAULT_WORLDS`])
    /// with an explicit seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }
}

/// Configuration of the exact nested-quadrature engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactConfig {
    /// Number of uniform quadrature cells over the union support.
    pub resolution: usize,
    /// Abort with [`TpoError::PathExplosion`] once more than this many
    /// prefixes are alive at any level.
    pub max_paths: usize,
    /// Prefixes with probability at or below this mass are pruned during
    /// enumeration (they cannot contribute visible leaves).
    pub prune_threshold: f64,
}

impl Default for ExactConfig {
    fn default() -> Self {
        Self {
            resolution: 4096,
            max_paths: 250_000,
            prune_threshold: 1e-10,
        }
    }
}

/// Which construction engine a session should use.
#[derive(Debug, Clone, PartialEq)]
pub enum Engine {
    /// Monte-Carlo possible worlds.
    MonteCarlo(McConfig),
    /// Exact nested quadrature.
    Exact(ExactConfig),
}

impl Default for Engine {
    fn default() -> Self {
        Engine::MonteCarlo(McConfig::default())
    }
}

impl Engine {
    /// Human-readable engine name.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::MonteCarlo(_) => "mc",
            Engine::Exact(_) => "exact",
        }
    }

    /// Builds the depth-`k` path set of `table` with this engine.
    pub fn build(&self, table: &UncertainTable, k: usize) -> Result<PathSet> {
        self.build_with_report(table, k).map(|(ps, _)| ps)
    }

    /// [`Engine::build`] plus the [`PrecisionReport`] of what the build
    /// actually did (worlds drawn, achieved bound, stop reason).
    pub fn build_with_report(
        &self,
        table: &UncertainTable,
        k: usize,
    ) -> Result<(PathSet, PrecisionReport)> {
        match self {
            Engine::MonteCarlo(cfg) => build_mc_with_report(table, k, cfg),
            Engine::Exact(cfg) => Ok((build_exact(table, k, cfg)?, PrecisionReport::exact())),
        }
    }
}

/// Monte-Carlo TPO construction: realize `cfg.precision` (a fixed world
/// budget or an adaptive `(ε, δ)` target) and group the sampled worlds'
/// depth-`k` prefixes into a normalized [`PathSet`].
///
/// `FixedWorlds(0)` is an invalid spec and fails with
/// [`TpoError::InvalidWorlds`] (it used to be silently clamped to 1,
/// masking configuration bugs); out-of-range adaptive targets fail with
/// [`TpoError::InvalidPrecision`].
///
/// The fixed mode is the fast path (DESIGN.md §10): scores come from a
/// per-table compiled [`WorldSampler`] (draw-for-draw identical to the
/// reference sampling), and each world is ranked with an O(n + k·log k)
/// partial selection instead of a full sort — the depth-`k` prefix is
/// bit-identical to the full sort's by the total-order argument, so the
/// result equals [`build_mc_reference`] exactly (pinned by tests). The
/// rank and group phases are chunked across threads above a work cutoff;
/// any thread count produces bit-identical output (score draws are
/// strictly sequential in the seeded PRNG, each world is ranked
/// independently, and per-prefix totals are exact integer counts).
pub fn build_mc(table: &UncertainTable, k: usize, cfg: &McConfig) -> Result<PathSet> {
    build_mc_with_report(table, k, cfg).map(|(ps, _)| ps)
}

/// [`build_mc`] plus the [`PrecisionReport`] of what the build did.
pub fn build_mc_with_report(
    table: &UncertainTable,
    k: usize,
    cfg: &McConfig,
) -> Result<(PathSet, PrecisionReport)> {
    build_mc_bounded(table, k, cfg, None)
}

/// [`build_mc_with_report`] reusing caller-cached certain/possible
/// bounds.
///
/// The driver and the service hold per-table [`TopKBounds`] next to
/// their shared pairwise matrices; passing them here lets an adaptive
/// build skip recomputing the O(n²) pairwise scan. Bounds for a
/// different `k` or table size are ignored (fresh ones are derived).
/// Fixed-budget builds never touch the bounds, keeping the compat mode
/// byte-for-byte on its historical pipeline.
pub fn build_mc_bounded(
    table: &UncertainTable,
    k: usize,
    cfg: &McConfig,
    bounds: Option<&TopKBounds>,
) -> Result<(PathSet, PrecisionReport)> {
    match cfg.precision {
        PrecisionTarget::FixedWorlds(m) => Ok((
            fixed_mc_with_threads(table, k, m, cfg.seed, 0)?,
            PrecisionReport::fixed(m),
        )),
        PrecisionTarget::Adaptive { epsilon, delta } => {
            let (sample, report) = sample_adaptive(table, k, epsilon, delta, cfg.seed, bounds)?;
            let ps = match sample {
                AdaptiveSample::Pinned(prefix) => PathSet::from_weighted(k, vec![(prefix, 1.0)])?,
                AdaptiveSample::Sampled(wm) => {
                    let threads =
                        planned_threads(wm.num_worlds(), PARALLEL_WORLDS_MIN, available_cores());
                    wm.path_set_uniform(k, threads)?
                }
            };
            Ok((ps, report))
        }
    }
}

/// Outcome of an adaptive sampling run: either the certain bounds pinned
/// the whole ordered prefix (zero worlds drawn), or a batch-grown
/// [`WorldModel`] whose posterior cleared (or capped out on) the target.
#[derive(Debug, Clone)]
pub enum AdaptiveSample {
    /// The fully decided ordered top-K prefix.
    Pinned(Vec<u32>),
    /// The grown world model (the `incr` driver keeps it as its belief).
    Sampled(WorldModel),
}

/// Grows a world sample until the empirical-Bernstein sequential bound
/// ([`crate::precision::eb_half_width`]) certifies every depth-`k` path
/// probability within `epsilon` at confidence `1 − delta` — or returns
/// immediately, with zero worlds, when the decided pairwise structure
/// already pins the ordered prefix.
///
/// Batches double from [`ADAPTIVE_INITIAL_BATCH`] up to
/// [`ADAPTIVE_MAX_WORLDS`]; all draws continue one seeded PRNG stream, so
/// the grown model is bit-identical to a one-shot sample of the same
/// total size (pinned by tests). `bounds` as in [`build_mc_bounded`].
pub fn sample_adaptive(
    table: &UncertainTable,
    k: usize,
    epsilon: f64,
    delta: f64,
    seed: u64,
    bounds: Option<&TopKBounds>,
) -> Result<(AdaptiveSample, PrecisionReport)> {
    let n = table.len();
    if k == 0 || k > n {
        return Err(TpoError::InvalidK { k, n });
    }
    PrecisionTarget::Adaptive { epsilon, delta }.validate()?;
    let computed;
    let bounds = match bounds {
        Some(b) if b.k() == k && b.len() == n => b,
        _ => {
            computed = TopKBounds::from_matrix(&PairwiseMatrix::compute(table), k)?;
            &computed
        }
    };
    if let Some(prefix) = bounds.pinned_order() {
        let report = PrecisionReport {
            worlds_drawn: 0,
            epsilon: Some(0.0),
            delta: Some(delta),
            reason: StopReason::CertainOrder,
        };
        return Ok((AdaptiveSample::Pinned(prefix), report));
    }
    let mut wm = WorldModel::empty(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut look = 0usize;
    let (achieved, reason) = loop {
        look += 1;
        let drawn = wm.num_worlds();
        let batch = if drawn == 0 {
            ADAPTIVE_INITIAL_BATCH.min(ADAPTIVE_MAX_WORLDS)
        } else {
            drawn.min(ADAPTIVE_MAX_WORLDS - drawn)
        };
        wm.append_sampled(table, batch, &mut rng)?;
        let counts = wm.prefix_count_values(k);
        let width = eb_half_width(&counts, wm.num_worlds(), look, delta);
        if width <= epsilon {
            break (width, StopReason::Converged);
        }
        if wm.num_worlds() >= ADAPTIVE_MAX_WORLDS {
            break (width, StopReason::WorldCap);
        }
    };
    let report = PrecisionReport {
        worlds_drawn: wm.num_worlds(),
        epsilon: Some(achieved),
        delta: Some(delta),
        reason,
    };
    Ok((AdaptiveSample::Sampled(wm), report))
}

/// The pre-PR 5 fixed-`worlds` Monte-Carlo pipeline — materialize a full
/// [`WorldModel`] (complete per-world rankings and position index) and
/// group prefixes — kept as the equivalence and benchmark baseline for
/// [`build_mc`]'s fixed mode.
pub fn build_mc_reference(
    table: &UncertainTable,
    k: usize,
    worlds: usize,
    seed: u64,
) -> Result<PathSet> {
    if k == 0 || k > table.len() {
        return Err(TpoError::InvalidK { k, n: table.len() });
    }
    let wm = WorldModel::sample_with_threads(table, worlds, seed, 1)?;
    wm.path_set_uniform(k, 1)
}

/// [`build_mc`] with an explicit thread count for the rank/group phases
/// (`0` = auto, `1` = the sequential reference). Any count produces
/// bit-identical output (pinned by tests). The knob applies to fixed
/// budgets; adaptive builds auto-thread their internal phases (their
/// stopping schedule is thread-independent either way).
pub fn build_mc_with_threads(
    table: &UncertainTable,
    k: usize,
    cfg: &McConfig,
    threads: usize,
) -> Result<PathSet> {
    match cfg.precision {
        PrecisionTarget::FixedWorlds(m) => fixed_mc_with_threads(table, k, m, cfg.seed, threads),
        PrecisionTarget::Adaptive { .. } => build_mc(table, k, cfg),
    }
}

/// The fixed-budget Monte-Carlo pipeline body (see [`build_mc`]).
fn fixed_mc_with_threads(
    table: &UncertainTable,
    k: usize,
    m: usize,
    seed: u64,
    threads: usize,
) -> Result<PathSet> {
    let n = table.len();
    if k == 0 || k > n {
        return Err(TpoError::InvalidK { k, n });
    }
    if m == 0 {
        return Err(TpoError::InvalidWorlds);
    }
    let threads = if threads == 0 {
        planned_threads(m, PARALLEL_WORLDS_MIN, available_cores())
    } else {
        threads.clamp(1, m)
    };

    let sampler = WorldSampler::new(table);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut prefixes = vec![0u32; m * k];
    if threads == 1 {
        // Streaming: one recycled score row, rank each world as it is
        // drawn — no m×n materialization.
        let mut row = vec![0.0f64; n];
        let mut ids: Vec<u32> = Vec::with_capacity(n);
        for prefix in prefixes.chunks_mut(k) {
            sampler.sample_into(&mut rng, &mut row);
            top_k_prefix_into(&row, &mut ids, prefix);
        }
    } else {
        // Draw all scores sequentially (the PRNG stream is order-defined),
        // then rank world chunks in parallel — each world independently,
        // so chunking cannot change any prefix.
        let mut scores = vec![0.0f64; m * n];
        for row in scores.chunks_mut(n) {
            sampler.sample_into(&mut rng, row);
        }
        let chunk = m.div_ceil(threads);
        // ctk-allow(det-thread-spawn): planned_threads fanout; each thread fills a disjoint pre-chunked slice
        std::thread::scope(|s| {
            for (sc, pc) in scores.chunks(chunk * n).zip(prefixes.chunks_mut(chunk * k)) {
                s.spawn(move || {
                    let mut ids: Vec<u32> = Vec::with_capacity(n);
                    for (row, prefix) in sc.chunks(n).zip(pc.chunks_mut(k)) {
                        top_k_prefix_into(row, &mut ids, prefix);
                    }
                });
            }
        });
    }

    // Group identical prefixes. Totals are exact integer counts, so the
    // chunked merge is bit-identical to a sequential pass.
    // ctk-allow(det-hash-collection): exact integer counts; merge order cannot change them
    let counts: HashMap<&[u32], u64> = if threads == 1 || m < PARALLEL_WORLDS_MIN {
        prefix_counts(&prefixes, k)
    } else {
        let chunk = m.div_ceil(threads);
        // ctk-allow(det-hash-collection, det-thread-spawn): planned_threads fanout over disjoint chunks; integer-count merge is commutative
        let maps: Vec<HashMap<&[u32], u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = prefixes
                .chunks(chunk * k)
                .map(|c| s.spawn(move || prefix_counts(c, k)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(map) => map,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        // ctk-allow(det-hash-collection): exact integer counts; merge order cannot change them
        let mut total: HashMap<&[u32], u64> = HashMap::new();
        for map in maps {
            for (prefix, count) in map {
                *total.entry(prefix).or_insert(0) += count;
            }
        }
        total
    };
    PathSet::from_weighted(
        k,
        counts
            .into_iter()
            .map(|(prefix, count)| (prefix.to_vec(), count as f64))
            .collect(),
    )
}

/// Depth-`k` prefix counts over one chunk of flat prefixes.
// ctk-allow(det-hash-collection): exact integer counts, drained via from_weighted's canonical sort
fn prefix_counts(prefixes: &[u32], k: usize) -> HashMap<&[u32], u64> {
    // ctk-allow(det-hash-collection): exact integer counts, drained via from_weighted's canonical sort
    let mut g: HashMap<&[u32], u64> = HashMap::new();
    for p in prefixes.chunks_exact(k) {
        *g.entry(p).or_insert(0) += 1;
    }
    g
}

/// Exact TPO construction by level-wise prefix enumeration.
///
/// A prefix `t_1 ≻ … ≻ t_d` is scored with the nested integral
/// `P(prefix is exactly the ordered top-d)`; children of zero-mass
/// prefixes are never enumerated (an extension's event is a subset of its
/// parent's, so its probability cannot exceed the parent's).
///
/// Requires every score distribution in `table` to be continuous; returns
/// [`TpoError::PathExplosion`] if more than `cfg.max_paths` prefixes
/// survive at any level.
pub fn build_exact(table: &UncertainTable, k: usize, cfg: &ExactConfig) -> Result<PathSet> {
    let n = table.len();
    if k == 0 || k > n {
        return Err(TpoError::InvalidK { k, n });
    }
    let dists: Vec<&ScoreDist> = table.dists().collect();
    let grid = SupportGrid::build(dists.iter().copied(), cfg.resolution.max(16));
    let mut scratch = NestedScratch::default();

    // Frontier of live prefixes (tuple ids) with their probabilities.
    let mut frontier: Vec<(Vec<u32>, f64)> = vec![(Vec::new(), 1.0)];
    let mut prefix_dists: Vec<&ScoreDist> = Vec::with_capacity(k);
    let mut rest: Vec<&ScoreDist> = Vec::with_capacity(n);
    // Membership flags for the current prefix: O(1) "is t in the prefix?"
    // instead of an O(depth) `contains` scan per candidate/rest tuple.
    let mut in_prefix = vec![false; n];

    for depth in 1..=k {
        let mut next: Vec<(Vec<u32>, f64)> = Vec::new();
        for (prefix, _parent_prob) in &frontier {
            for &i in prefix {
                in_prefix[i as usize] = true;
            }
            for t in 0..n as u32 {
                if in_prefix[t as usize] {
                    continue;
                }
                prefix_dists.clear();
                prefix_dists.extend(prefix.iter().map(|&i| dists[i as usize]));
                prefix_dists.push(dists[t as usize]);
                rest.clear();
                rest.extend(
                    (0..n as u32)
                        .filter(|&i| !in_prefix[i as usize] && i != t)
                        .map(|i| dists[i as usize]),
                );
                let p = prefix_probability_with(&grid, &prefix_dists, &rest, &mut scratch)?;
                if p > cfg.prune_threshold {
                    let mut items = prefix.clone();
                    items.push(t);
                    next.push((items, p));
                }
            }
            for &i in prefix {
                in_prefix[i as usize] = false;
            }
            if next.len() > cfg.max_paths {
                return Err(TpoError::PathExplosion {
                    paths: next.len(),
                    max: cfg.max_paths,
                });
            }
        }
        if next.is_empty() {
            // Numerically possible only on pathological inputs where every
            // extension fell below the prune threshold.
            return Err(TpoError::EmptyPathSet);
        }
        frontier = next;
        let _ = depth;
    }
    PathSet::from_weighted(k, frontier)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize, width: f64) -> UncertainTable {
        UncertainTable::new(
            (0..n)
                .map(|i| ScoreDist::uniform_centered(0.2 * i as f64, width).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn invalid_k_rejected_by_both_engines() {
        let t = table(3, 0.5);
        assert!(matches!(
            build_mc(&t, 0, &McConfig::default()),
            Err(TpoError::InvalidK { .. })
        ));
        assert!(matches!(
            build_exact(&t, 4, &ExactConfig::default()),
            Err(TpoError::InvalidK { .. })
        ));
    }

    #[test]
    fn zero_worlds_rejected_not_repaired() {
        let t = table(3, 0.5);
        assert!(matches!(
            build_mc(&t, 2, &McConfig::fixed(0, 1)),
            Err(TpoError::InvalidWorlds)
        ));
    }

    #[test]
    fn invalid_adaptive_targets_rejected() {
        let t = table(3, 0.5);
        assert!(matches!(
            build_mc(&t, 2, &McConfig::adaptive(0.0, 0.05, 1)),
            Err(TpoError::InvalidPrecision { .. })
        ));
        assert!(matches!(
            build_mc(&t, 2, &McConfig::adaptive(0.02, 1.0, 1)),
            Err(TpoError::InvalidPrecision { .. })
        ));
        assert!(matches!(
            sample_adaptive(&t, 0, 0.02, 0.05, 1, None),
            Err(TpoError::InvalidK { .. })
        ));
    }

    #[test]
    fn fast_build_is_bit_identical_to_reference_full_sort_path() {
        // Partial-selection ranking + compiled sampling must reproduce the
        // full-sort WorldModel pipeline exactly, at every depth.
        let t = table(6, 0.7);
        for seed in [0u64, 9, 31] {
            for k in [1usize, 2, 4, 6] {
                let cfg = McConfig::fixed(3001, seed);
                let fast = build_mc_with_threads(&t, k, &cfg, 1).unwrap();
                let reference = build_mc_reference(&t, k, 3001, seed).unwrap();
                assert_eq!(fast.len(), reference.len(), "seed {seed} k {k}");
                for (a, b) in fast.paths().iter().zip(reference.paths()) {
                    assert_eq!(a.items, b.items, "seed {seed} k {k}");
                    assert_eq!(a.prob.to_bits(), b.prob.to_bits(), "seed {seed} k {k}");
                }
            }
        }
    }

    #[test]
    fn parallel_mc_build_is_bit_identical_to_sequential() {
        let t = table(5, 0.6);
        for seed in [0u64, 3, 17] {
            let cfg = McConfig::fixed(4100, seed);
            let seq = build_mc_with_threads(&t, 3, &cfg, 1).unwrap();
            for threads in [2, 4, 7] {
                let par = build_mc_with_threads(&t, 3, &cfg, threads).unwrap();
                assert_eq!(seq.len(), par.len(), "seed {seed} threads {threads}");
                for (a, b) in seq.paths().iter().zip(par.paths()) {
                    assert_eq!(a.items, b.items, "seed {seed} threads {threads}");
                    assert_eq!(
                        a.prob.to_bits(),
                        b.prob.to_bits(),
                        "seed {seed} threads {threads}: {} vs {}",
                        a.prob,
                        b.prob
                    );
                }
            }
        }
    }

    #[test]
    fn disjoint_supports_give_single_path() {
        // Far-apart narrow supports: the ordering is certain.
        let t = table(4, 0.1);
        let exact = build_exact(&t, 3, &ExactConfig::default()).unwrap();
        assert!(exact.is_resolved());
        assert_eq!(exact.paths()[0].items, vec![3, 2, 1]);
        let mc = build_mc(&t, 3, &McConfig::default()).unwrap();
        assert_eq!(mc.paths()[0].items, vec![3, 2, 1]);
    }

    #[test]
    fn iid_pair_is_even_money() {
        let t = UncertainTable::new(vec![
            ScoreDist::uniform(0.0, 1.0).unwrap(),
            ScoreDist::uniform(0.0, 1.0).unwrap(),
        ])
        .unwrap();
        let exact = build_exact(&t, 2, &ExactConfig::default()).unwrap();
        assert_eq!(exact.len(), 2);
        for p in exact.paths() {
            assert!((p.prob - 0.5).abs() < 1e-6, "{p}");
        }
    }

    #[test]
    fn engines_roughly_agree_here_too() {
        let t = table(4, 0.6);
        let exact = build_exact(&t, 2, &ExactConfig::default()).unwrap();
        let mc = build_mc(&t, 2, &McConfig::fixed(60_000, 3)).unwrap();
        for p in exact.paths() {
            let q = mc
                .paths()
                .iter()
                .find(|m| m.items == p.items)
                .map(|m| m.prob)
                .unwrap_or(0.0);
            assert!(
                (p.prob - q).abs() < 0.02,
                "{:?}: {} vs {q}",
                p.items,
                p.prob
            );
        }
    }

    #[test]
    fn path_explosion_is_reported() {
        // 7 iid tuples, k=4: 7·6·5·4 = 840 paths > 100.
        let t = UncertainTable::new(
            (0..7)
                .map(|_| ScoreDist::uniform(0.0, 1.0).unwrap())
                .collect(),
        )
        .unwrap();
        let err = build_exact(
            &t,
            4,
            &ExactConfig {
                max_paths: 100,
                ..ExactConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, TpoError::PathExplosion { .. }));
    }

    #[test]
    fn engine_dispatch_and_default() {
        let t = table(3, 0.5);
        assert_eq!(Engine::default().name(), "mc");
        let (ps, report) = Engine::Exact(ExactConfig::default())
            .build_with_report(&t, 2)
            .unwrap();
        assert!((ps.total_prob() - 1.0).abs() < 1e-9);
        assert_eq!(report.reason, StopReason::Exact);
        assert_eq!(report.worlds_drawn, 0);
        let (ps, report) = Engine::default().build_with_report(&t, 2).unwrap();
        assert!((ps.total_prob() - 1.0).abs() < 1e-9);
        assert_eq!(report.reason, StopReason::FixedBudget);
        assert_eq!(report.worlds_drawn, crate::precision::DEFAULT_WORLDS);
        assert_eq!(report.epsilon, None);
    }

    #[test]
    fn adaptive_pinned_order_draws_zero_worlds() {
        // Far-apart narrow supports: the whole prefix is decided, so the
        // adaptive build must not sample at all.
        let t = table(4, 0.1);
        let (ps, report) = build_mc_with_report(&t, 3, &McConfig::adaptive(0.02, 0.05, 1)).unwrap();
        assert_eq!(report.worlds_drawn, 0);
        assert_eq!(report.reason, StopReason::CertainOrder);
        assert_eq!(report.epsilon, Some(0.0));
        assert!(ps.is_resolved());
        assert_eq!(ps.paths()[0].items, vec![3, 2, 1]);
        // ... and agrees with the exact engine.
        let exact = build_exact(&t, 3, &ExactConfig::default()).unwrap();
        assert_eq!(ps.paths()[0].items, exact.paths()[0].items);
    }

    #[test]
    fn adaptive_build_stops_under_the_fixed_default_on_easy_tables() {
        // One overlapping pair in an otherwise decided staircase: a low-
        // variance posterior the Bernstein bound clears early.
        let dists: Vec<ScoreDist> = (0..6)
            .map(|i| {
                let c = i as f64;
                let w = if i == 2 { 2.0 } else { 0.3 }; // t2 overlaps t1 and t3 slightly
                ScoreDist::uniform_centered(c, w).unwrap()
            })
            .collect();
        let t = UncertainTable::new(dists).unwrap();
        let (ps, report) = build_mc_with_report(&t, 3, &McConfig::adaptive(0.02, 0.05, 7)).unwrap();
        assert_eq!(report.reason, StopReason::Converged);
        assert!(
            report.worlds_drawn < crate::precision::DEFAULT_WORLDS,
            "easy table should need fewer than the fixed default, drew {}",
            report.worlds_drawn
        );
        // ctk-allow(panic-unwrap): converged adaptive reports always carry a width
        let achieved = report.epsilon.expect("adaptive reports carry a width");
        assert!(achieved <= 0.02, "achieved {achieved}");
        // Every path probability is within epsilon of a converged
        // reference build.
        let reference = build_mc_reference(&t, 3, 400_000, 99).unwrap();
        for p in ps.paths() {
            let r = reference
                .paths()
                .iter()
                .find(|q| q.items == p.items)
                .map(|q| q.prob)
                .unwrap_or(0.0);
            assert!(
                (p.prob - r).abs() < 0.02 + 0.01,
                "{:?}: adaptive {} vs reference {r}",
                p.items,
                p.prob
            );
        }
    }

    #[test]
    fn adaptive_sample_reuses_matching_bounds_only() {
        let t = table(4, 0.1);
        let matrix = PairwiseMatrix::compute(&t);
        let right = TopKBounds::from_matrix(&matrix, 2).unwrap();
        let wrong_k = TopKBounds::from_matrix(&matrix, 4).unwrap();
        let (with_right, ra) = sample_adaptive(&t, 2, 0.05, 0.05, 1, Some(&right)).unwrap();
        let (with_wrong, rb) = sample_adaptive(&t, 2, 0.05, 0.05, 1, Some(&wrong_k)).unwrap();
        let (with_none, rc) = sample_adaptive(&t, 2, 0.05, 0.05, 1, None).unwrap();
        assert!(ra.same_outcome(&rb) && ra.same_outcome(&rc));
        for s in [&with_right, &with_wrong, &with_none] {
            match s {
                AdaptiveSample::Pinned(prefix) => assert_eq!(prefix, &vec![3, 2]),
                AdaptiveSample::Sampled(_) => panic!("decided table must pin"),
            }
        }
    }

    #[test]
    fn adaptive_world_cap_is_reported_not_silent() {
        // An impossibly tight target on an iid table cannot converge
        // before the cap; the report must say so.
        let t = UncertainTable::new(
            (0..5)
                .map(|_| ScoreDist::uniform(0.0, 1.0).unwrap())
                .collect(),
        )
        .unwrap();
        let (sample, report) = sample_adaptive(&t, 2, 1e-4, 0.05, 3, None).unwrap();
        assert_eq!(report.reason, StopReason::WorldCap);
        assert_eq!(report.worlds_drawn, ADAPTIVE_MAX_WORLDS);
        // ctk-allow(panic-unwrap): adaptive reports always carry a width
        assert!(report.epsilon.expect("width") > 1e-4);
        assert!(matches!(sample, AdaptiveSample::Sampled(_)));
    }

    #[test]
    fn adaptive_batches_replay_one_shot_worlds() {
        // The adaptive model must be the same worlds a one-shot sample of
        // the same size would draw (PRNG stream continuity).
        let t = UncertainTable::new(
            (0..4)
                .map(|i| ScoreDist::uniform_centered(0.1 * i as f64, 1.0).unwrap())
                .collect(),
        )
        .unwrap();
        let (sample, report) = sample_adaptive(&t, 2, 0.05, 0.1, 11, None).unwrap();
        let wm = match sample {
            AdaptiveSample::Sampled(wm) => wm,
            AdaptiveSample::Pinned(_) => panic!("iid-ish table cannot pin"),
        };
        assert_eq!(wm.num_worlds(), report.worlds_drawn);
        let one_shot = WorldModel::sample_with_threads(&t, report.worlds_drawn, 11, 1).unwrap();
        assert_eq!(one_shot.surviving_rankings(), wm.surviving_rankings());
    }
}
