//! [`CrowdTopK`]: the polished entry point tying the whole system
//! together — configure a query over an uncertain table, hand it a crowd,
//! get back the uncertainty-reduction report.

use crate::error::Result;
use crate::measures::MeasureKind;
use crate::session::{Algorithm, SessionConfig, UrReport, UrSession};
use ctk_crowd::Crowd;
use ctk_prob::UncertainTable;
use ctk_rank::RankList;
use ctk_tpo::build::{Engine, ExactConfig, McConfig};

/// Builder-style facade over [`UrSession`].
///
/// ```
/// use ctk_core::engine::CrowdTopK;
/// use ctk_core::measures::MeasureKind;
/// use ctk_core::session::Algorithm;
/// use ctk_crowd::{CrowdSimulator, GroundTruth, PerfectWorker, VotePolicy};
/// use ctk_prob::{ScoreDist, UncertainTable};
///
/// let table = UncertainTable::new(vec![
///     ScoreDist::uniform(0.0, 1.0).unwrap(),
///     ScoreDist::uniform(0.3, 1.3).unwrap(),
///     ScoreDist::uniform(0.6, 1.6).unwrap(),
///     ScoreDist::uniform(0.9, 1.9).unwrap(),
/// ]).unwrap();
///
/// let truth = GroundTruth::sample(&table, 7);
/// let mut crowd = CrowdSimulator::new(truth, PerfectWorker, VotePolicy::Single, 10).expect("valid vote policy");
///
/// let report = CrowdTopK::new(table)
///     .k(2)
///     .budget(10)
///     .measure(MeasureKind::WeightedEntropy)
///     .algorithm(Algorithm::T1On)
///     .monte_carlo(5_000, 42)
///     .run(&mut crowd)
///     .unwrap();
///
/// assert!(report.final_uncertainty() <= report.initial_uncertainty);
/// assert_eq!(report.final_topk.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CrowdTopK {
    table: UncertainTable,
    config: SessionConfig,
}

impl CrowdTopK {
    /// Starts a query over `table` with defaults: `k = min(5, N)`,
    /// `budget = 10`, weighted-entropy measure, `T1-on` strategy,
    /// Monte-Carlo engine.
    pub fn new(table: UncertainTable) -> Self {
        let k = 5.min(table.len());
        Self {
            table,
            config: SessionConfig {
                k,
                ..SessionConfig::default()
            },
        }
    }

    /// Sets the query depth `K`.
    pub fn k(mut self, k: usize) -> Self {
        self.config.k = k;
        self
    }

    /// Sets the question budget `B`.
    pub fn budget(mut self, b: usize) -> Self {
        self.config.budget = b;
        self
    }

    /// Sets the uncertainty measure.
    pub fn measure(mut self, m: MeasureKind) -> Self {
        self.config.measure = m;
        self
    }

    /// Sets the selection strategy.
    pub fn algorithm(mut self, a: Algorithm) -> Self {
        self.config.algorithm = a;
        self
    }

    /// Uses the Monte-Carlo TPO engine with a fixed budget of `worlds`
    /// samples (the historical compat mode).
    pub fn monte_carlo(mut self, worlds: usize, seed: u64) -> Self {
        self.config.engine = Engine::MonteCarlo(McConfig::fixed(worlds, seed));
        self
    }

    /// Uses the Monte-Carlo TPO engine in adaptive-precision mode: the
    /// sample grows until every path probability is within `epsilon` of
    /// its true value with confidence `1 − delta`, or the certain bounds
    /// decide the query outright (zero worlds drawn).
    pub fn adaptive_precision(mut self, epsilon: f64, delta: f64, seed: u64) -> Self {
        self.config.engine = Engine::MonteCarlo(McConfig::adaptive(epsilon, delta, seed));
        self
    }

    /// Uses the exact nested-quadrature TPO engine.
    pub fn exact_engine(mut self, cfg: ExactConfig) -> Self {
        self.config.engine = Engine::Exact(cfg);
        self
    }

    /// Seed for stochastic selectors (`random` / `naive`).
    pub fn selector_seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Stop early once the uncertainty measure drops to `target` or below.
    pub fn uncertainty_target(mut self, target: f64) -> Self {
        self.config.uncertainty_target = Some(target);
        self
    }

    /// The underlying table.
    pub fn table(&self) -> &UncertainTable {
        &self.table
    }

    /// The assembled session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Runs against a crowd.
    pub fn run<C: Crowd>(&self, crowd: &mut C) -> Result<UrReport> {
        UrSession::new(self.config.clone())?.run(&self.table, crowd)
    }

    /// Runs against a crowd, recording `D(ω_r, T_K)` per step.
    pub fn run_with_truth<C: Crowd>(
        &self,
        crowd: &mut C,
        truth_topk: &RankList,
    ) -> Result<UrReport> {
        UrSession::new(self.config.clone())?.run_with_truth(&self.table, crowd, Some(truth_topk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctk_crowd::{CrowdSimulator, GroundTruth, PerfectWorker, VotePolicy};
    use ctk_prob::ScoreDist;

    fn table() -> UncertainTable {
        UncertainTable::new(
            (0..6)
                .map(|i| ScoreDist::uniform_centered(i as f64 * 0.15, 0.4).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn defaults_are_sane() {
        let q = CrowdTopK::new(table());
        assert_eq!(q.config().k, 5);
        assert_eq!(q.config().budget, 10);
        assert_eq!(q.config().measure.name(), "UHw");
        assert_eq!(q.config().algorithm.name(), "T1-on");
        assert_eq!(q.table().len(), 6);
        // Tiny tables clamp k.
        let small = CrowdTopK::new(
            UncertainTable::new(vec![ScoreDist::point(1.0), ScoreDist::point(2.0)]).unwrap(),
        );
        assert_eq!(small.config().k, 2);
    }

    #[test]
    fn builder_roundtrip_and_run() {
        let table = table();
        let truth = GroundTruth::sample(&table, 5);
        let top = truth.top_k(2);
        let mut crowd = CrowdSimulator::new(truth, PerfectWorker, VotePolicy::Single, 8)
            .expect("valid vote policy");
        let report = CrowdTopK::new(table)
            .k(2)
            .budget(8)
            .measure(MeasureKind::Entropy)
            .algorithm(Algorithm::COff)
            .monte_carlo(3000, 1)
            .selector_seed(9)
            .run_with_truth(&mut crowd, &top)
            .unwrap();
        assert_eq!(report.algorithm, "C-off");
        assert_eq!(report.measure, "UH");
        assert!(report.final_distance().unwrap() <= report.initial_distance.unwrap() + 1e-9);
    }
}
