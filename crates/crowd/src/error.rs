//! Error type for crowd-layer configuration.

use std::fmt;

/// Errors surfaced by the crowd layer instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CrowdError {
    /// A majority vote policy with an even or too-small worker count.
    InvalidVotePolicy {
        /// The rejected majority count.
        count: usize,
    },
    /// A worker pool constructed without any workers.
    EmptyPool,
    /// A difficulty-aware worker with a non-positive (or non-finite)
    /// difficulty scale.
    InvalidDifficultyScale,
}

impl fmt::Display for CrowdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrowdError::InvalidVotePolicy { count } => {
                write!(f, "majority policy needs an odd count >= 3, got {count}")
            }
            CrowdError::EmptyPool => write!(f, "a worker pool needs at least one worker"),
            CrowdError::InvalidDifficultyScale => {
                write!(f, "difficulty scale must be positive and finite")
            }
        }
    }
}

impl std::error::Error for CrowdError {}
