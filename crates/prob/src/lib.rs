#![forbid(unsafe_code)]
#![deny(warnings)]
//! # ctk-prob — uncertain scores for crowd-assisted top-K queries
//!
//! Probability substrate for the `crowd-topk` workspace, a reproduction of
//! *“Crowdsourcing for Top-K Query Processing over Uncertain Data”* (Ciceri,
//! Fraternali, Martinenghi, Tagliasacchi — ICDE 2016 / TKDE 28(1)).
//!
//! The paper models each tuple's query score as a random variable with a
//! known pdf. This crate provides:
//!
//! * [`ScoreDist`] — the uncertain score type (uniform, Gaussian, discrete,
//!   histogram, piecewise-linear, point), with pdf/cdf/quantile/moments and
//!   seeded sampling;
//! * [`UncertainTable`] — a relation of uncertain-score tuples;
//! * [`compare::pr_greater`] and [`compare::PairwiseMatrix`] — pairwise
//!   order probabilities `P(s_i > s_j)`, the basis of the relevant-question
//!   set `Q_K`;
//! * [`nested::prefix_probability`] — exact top-prefix probabilities via
//!   nested quadrature on a [`SupportGrid`] (Li & Deshpande-style ordering
//!   probabilities), used by the exact TPO engine;
//! * [`sample`] — possible-world sampling for the Monte-Carlo TPO engine
//!   and ground-truth generation.
//!
//! ## Example
//!
//! ```
//! use ctk_prob::{ScoreDist, UncertainTable};
//! use ctk_prob::compare::pr_greater;
//!
//! let table = UncertainTable::new(vec![
//!     ScoreDist::uniform(0.4, 0.9).unwrap(),   // t0: sensor with coarse error
//!     ScoreDist::gaussian(0.6, 0.05).unwrap(), // t1: sensor with Gaussian error
//!     ScoreDist::point(0.2),                   // t2: exactly known
//! ]).unwrap();
//!
//! // Is t0's score larger than t1's? Only probably.
//! let p = pr_greater(table.dist_at(0), table.dist_at(1));
//! assert!(p > 0.4 && p < 0.8);
//!
//! // t2 is certainly below both: no question about it is worth asking.
//! assert_eq!(pr_greater(table.dist_at(2), table.dist_at(0)), 0.0);
//! ```

pub mod bounds;
pub mod compare;
pub mod discrete;
pub mod dist;
pub mod error;
pub mod gaussian;
pub mod grid;
pub mod histogram;
pub mod mixture;
pub mod nested;
pub mod piecewise;
pub mod quad;
pub mod sample;
pub mod special;
pub mod table;
pub mod uniform;

pub use bounds::TopKBounds;
pub use dist::ScoreDist;
pub use error::{ProbError, Result};
pub use grid::SupportGrid;
pub use table::{TupleId, UncertainTable, UncertainTuple};
