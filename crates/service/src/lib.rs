#![forbid(unsafe_code)]
#![deny(warnings)]
//! # ctk-service — multi-session query serving
//!
//! Serving layer of the `crowd-topk` workspace (reproduction of
//! *“Crowdsourcing for Top-K Query Processing over Uncertain Data”*,
//! Ciceri et al., ICDE 2016 / TKDE 28(1)): runs many uncertainty-reduction
//! sessions concurrently against **one** shared crowd backend — the regime
//! a real crowdsourcing platform operates in, where questions from many
//! simultaneous queries are multiplexed over the same worker pool.
//!
//! The layer is built on the sans-IO [`ctk_core::driver::SessionDriver`]:
//! each session is a state machine that emits question batches and absorbs
//! answers, and this crate owns the dispatch:
//!
//! * [`registry`] — shard-aware session registry: per-session budgets,
//!   lifecycle states (queued / awaiting-answers / done / failed), and
//!   disjoint `&mut` entry access for the sharded round phases;
//! * [`scheduler`] — strict priority between classes, deficit round-robin
//!   within a class (persistent per-class service queues), bounded
//!   fanout: every session of the top nonempty class is served within
//!   `ceil(n / fanout)` rounds, churn-proof;
//! * [`batcher`] — cross-session question batching with an
//!   [`AnswerCache`]: identical pairwise questions from different tenants
//!   are answered once, then served from memory, before any crowd budget
//!   is spent;
//! * [`service`] — [`TopKService`], the round loop tying them together:
//!   gather and feed phases shard session work over `std::thread::scope`
//!   worker chunks, the purchase phase stays sequential so budget and
//!   cache semantics are exactly the single-threaded ones;
//! * [`metrics`] — throughput / latency / cache-hit accounting.
//!
//! With reliable (accuracy-1) workers the multiplexing is *lossless*:
//! every session's final report equals the one the standalone blocking
//! [`ctk_core::session::UrSession::run`] produces under the same seed —
//! the integration suite pins this for 36 concurrent tenants, and pins
//! that per-tenant reports are bit-identical at 1/2/4 worker threads.
//! See DESIGN.md §7 and §9 for the architecture discussion.

pub mod batcher;
pub mod metrics;
pub mod registry;
pub mod scheduler;
pub mod service;

pub use batcher::{AnswerCache, RoundStats, ServedAnswer, SessionAnswers};
pub use ctk_quality::QuestionRouter;
pub use ctk_tpo::{PrecisionTarget, StopReason};
pub use metrics::ServiceMetrics;
pub use registry::{Registry, SessionId, SessionSpec, SessionState};
pub use scheduler::Scheduler;
pub use service::{RoundOutcome, TopKService};
