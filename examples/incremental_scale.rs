//! The `incr` algorithm (§III-D) on a large, highly uncertain table: build
//! the tree of possible orderings level by level, pruning with crowd
//! answers *between* levels, so the full (potentially huge) depth-K tree
//! is never materialized under the initial uncertainty.
//!
//! Run with: `cargo run --example incremental_scale`

use crowd_topk::datagen::{generate, DatasetSpec};
use crowd_topk::prelude::*;
use std::time::Instant;

fn main() {
    const K: usize = 5;
    const BUDGET: usize = 25;

    println!("K={K}, B={BUDGET}, perfect crowd; wall-clock includes TPO construction\n");
    println!("     N   algorithm   final D   questions   time");

    for n in [20usize, 40, 60] {
        let table = generate(&DatasetSpec::paper_default(n, 0.35, 7)).expect("valid spec");
        let truth = GroundTruth::sample(&table, 123);
        let top = truth.top_k(K);

        for algorithm in [
            Algorithm::T1On,
            Algorithm::Incr {
                questions_per_round: 5,
            },
        ] {
            let name = algorithm.name();
            let mut crowd = CrowdSimulator::new(
                GroundTruth::sample(&table, 123),
                PerfectWorker,
                VotePolicy::Single,
                BUDGET,
            )
            .expect("valid vote policy");
            let start = Instant::now();
            let report = CrowdTopK::new(table.clone())
                .k(K)
                .budget(BUDGET)
                .algorithm(algorithm)
                .monte_carlo(ctk_tpo::DEFAULT_WORLDS, 1)
                .run_with_truth(&mut crowd, &top)
                .unwrap();
            let elapsed = start.elapsed();
            println!(
                "{n:6}   {name:9}   {:7.4}   {:9}   {:?}",
                report.final_distance().unwrap(),
                report.questions_asked(),
                elapsed
            );
        }
    }

    println!(
        "\nincr trades a little quality for far less work on large N: it\n\
         selects questions on shallow trees and only deepens once answers\n\
         have pruned the branching."
    );
}
