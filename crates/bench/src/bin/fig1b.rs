//! Figure 1(b): question-selection CPU time (seconds, log scale in the
//! paper) as the budget `B` varies, for T1-on, TB-off, C-off and incr.
//!
//! Absolute numbers differ from the paper's testbed by construction; the
//! *shape* must match: C-off ≫ T1-on > TB-off ≫ incr, all growing with B
//! (C-off roughly quadratically, TB-off ~flat).
//!
//! `cargo run --release -p ctk-bench --bin fig1b [runs]`

use ctk_bench::{emit_tsv, evaluate, fmt_secs, runs_from_args, EvalOpts};
use ctk_core::session::Algorithm;
use ctk_datagen::scenarios;

fn main() {
    let runs = runs_from_args(5);
    let opts = EvalOpts {
        runs,
        ..EvalOpts::default()
    };
    let budgets = [5usize, 10, 20, 30, 40, 50];
    let algorithms = [
        Algorithm::T1On,
        Algorithm::TbOff,
        Algorithm::COff,
        Algorithm::Incr {
            questions_per_round: 5,
        },
    ];

    eprintln!("# Fig 1(b): selection CPU time vs budget B — N=20, K=5, {runs} runs");
    let mut rows = Vec::new();
    for algorithm in &algorithms {
        for &b in &budgets {
            let s = evaluate(scenarios::fig1, algorithm.clone(), b, &opts);
            rows.push(vec![
                s.algorithm.to_string(),
                b.to_string(),
                fmt_secs(s.avg_selection_secs),
                fmt_secs(s.avg_total_secs),
            ]);
            eprintln!(
                "#   {:8} B={:2}  select={:.3e}s  total={:.3e}s",
                s.algorithm, b, s.avg_selection_secs, s.avg_total_secs
            );
        }
    }
    emit_tsv(
        "fig1b",
        &["algorithm", "B", "selection_secs", "total_secs"],
        &rows,
    );
}
