//! Fixture tests: every rule family has a positive fixture (each rule
//! fires), a negative fixture (the compliant idiom passes), and the
//! allowlist fixtures exercise suppression plus the meta rules. The
//! final test re-runs the whole analyzer over the shipped tree and
//! demands zero findings — the same gate CI runs via
//! `cargo run -p ctk-analyze -- check`.
#![forbid(unsafe_code)]
#![deny(warnings)]

use std::collections::BTreeSet;
use std::path::Path;

use ctk_analyze::{analyze_source, check_workspace, missing_lint_wall};

/// Fixtures are analyzed as if they lived in a result-affecting crate's
/// library tree, which puts every rule family in scope.
const VIRTUAL_PATH: &str = "crates/tpo/src/fixture.rs";

fn rules_hit(source: &str) -> BTreeSet<&'static str> {
    analyze_source(VIRTUAL_PATH, source)
        .into_iter()
        .map(|f| f.finding.rule)
        .collect()
}

#[test]
fn determinism_fixture_trips_every_determinism_rule() {
    let hit = rules_hit(include_str!("fixtures/determinism_bad.rs"));
    for rule in [
        "det-hash-collection",
        "det-thread-spawn",
        "det-available-parallelism",
        "det-wall-clock",
        "det-channel",
    ] {
        assert!(hit.contains(rule), "expected {rule} to fire, got {hit:?}");
    }
}

#[test]
fn deterministic_idioms_pass() {
    let out = analyze_source(VIRTUAL_PATH, include_str!("fixtures/determinism_ok.rs"));
    assert!(
        out.is_empty(),
        "BTreeMap/BTreeSet, prose mentions, string literals, and test-only \
         HashMaps must all pass: {out:?}"
    );
}

#[test]
fn float_fixture_trips_every_float_rule() {
    let hit = rules_hit(include_str!("fixtures/float_bad.rs"));
    for rule in ["float-eq", "float-partial-cmp-unwrap", "float-stable-sort"] {
        assert!(hit.contains(rule), "expected {rule} to fire, got {hit:?}");
    }
}

#[test]
fn float_fixture_reports_partial_cmp_not_panic() {
    // `.unwrap()`/`.expect(..)` terminating a partial_cmp chain is the
    // float finding, not a second panic finding on the same site.
    let hit = rules_hit(include_str!("fixtures/float_bad.rs"));
    assert!(!hit.contains("panic-unwrap"), "got {hit:?}");
}

#[test]
fn float_total_order_idioms_pass() {
    let out = analyze_source(VIRTUAL_PATH, include_str!("fixtures/float_ok.rs"));
    assert!(
        out.is_empty(),
        "total_cmp, tolerances, sort_unstable_*, and doc-fence examples \
         must all pass: {out:?}"
    );
}

#[test]
fn panic_fixture_trips_both_panic_rules() {
    let hit = rules_hit(include_str!("fixtures/panic_bad.rs"));
    for rule in ["panic-unwrap", "panic-macro"] {
        assert!(hit.contains(rule), "expected {rule} to fire, got {hit:?}");
    }
}

#[test]
fn error_returns_and_asserts_pass() {
    let out = analyze_source(VIRTUAL_PATH, include_str!("fixtures/panic_ok.rs"));
    assert!(
        out.is_empty(),
        "Result returns, assert!/debug_assert_*, and test-only unwraps \
         must all pass: {out:?}"
    );
}

#[test]
fn well_formed_allows_suppress_and_count_as_used() {
    let out = analyze_source(VIRTUAL_PATH, include_str!("fixtures/allow_ok.rs"));
    assert!(
        out.is_empty(),
        "standalone and trailing ctk-allow directives must suppress their \
         findings without tripping unused-allow: {out:?}"
    );
}

#[test]
fn broken_allows_report_and_do_not_suppress() {
    let out = analyze_source(VIRTUAL_PATH, include_str!("fixtures/allow_bad.rs"));
    let hit: BTreeSet<&str> = out.iter().map(|f| f.finding.rule).collect();
    // Reason-less and unknown-rule directives are both allow-syntax; a
    // directive that matches nothing is unused-allow.
    assert!(hit.contains("allow-syntax"), "got {out:?}");
    assert!(hit.contains("unused-allow"), "got {out:?}");
    // Neither broken directive may suppress the unwrap it sits beside.
    let panic_hits = out
        .iter()
        .filter(|f| f.finding.rule == "panic-unwrap")
        .count();
    assert_eq!(
        panic_hits, 2,
        "both unwrap sites must still be reported: {out:?}"
    );
}

#[test]
fn every_fixture_violation_is_nonempty() {
    // The acceptance bar: the analyzer must reject each violation
    // fixture outright (the CLI exits non-zero whenever findings are
    // non-empty).
    for (name, src) in [
        (
            "determinism_bad.rs",
            include_str!("fixtures/determinism_bad.rs"),
        ),
        ("float_bad.rs", include_str!("fixtures/float_bad.rs")),
        ("panic_bad.rs", include_str!("fixtures/panic_bad.rs")),
        ("allow_bad.rs", include_str!("fixtures/allow_bad.rs")),
    ] {
        assert!(
            !analyze_source(VIRTUAL_PATH, src).is_empty(),
            "{name} must produce findings"
        );
    }
}

#[test]
fn lint_wall_positive_and_negative() {
    assert!(missing_lint_wall(
        "#![forbid(unsafe_code)]\n#![deny(warnings)]\n//! docs\npub fn f() {}\n"
    )
    .is_empty());
    let missing = missing_lint_wall("//! docs\npub fn f() {}\n");
    assert_eq!(
        missing.len(),
        2,
        "both headers must be reported: {missing:?}"
    );
}

#[test]
fn fixtures_outside_library_scope_pass() {
    // The same violating source under tests/ is out of scope: fixture
    // and bench code may use HashMaps and unwraps freely.
    let src = include_str!("fixtures/determinism_bad.rs");
    let out = analyze_source("crates/tpo/tests/fixture.rs", src);
    assert!(out.is_empty(), "aux trees are exempt: {out:?}");
}

#[test]
fn shipped_tree_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root two levels above crates/analyze");
    let findings = check_workspace(root).expect("workspace walk succeeds");
    assert!(
        findings.is_empty(),
        "the shipped tree must pass its own analyzer:\n{}",
        findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
