//! PR 10 acceptance numbers: the threaded shard topology over a
//! tenants × shards × run-mode grid, up to 100 000 concurrent tenants.
//! Emits `BENCH_PR10.json`.
//!
//! `cargo run --release -p ctk-bench --bin bench_pr10 [--small] [--out FILE]`
//!
//! Every cell is compared per-tenant (`UrReport::same_outcome`) against
//! the tick-mode single-shard reference for its tenant count — the
//! threaded topology's core claim is that worker threads are invisible
//! in the results. Beyond PR 9's timings this records the coordinator's
//! barrier economics: stall time (coordinator blocked on an empty
//! request channel), channel message counts, and the deepest observed
//! request backlog.
//!
//! The ">= 2x at 4 shards" acceptance assertion compares threaded
//! against single-threaded event mode at the largest tenant count and
//! arms only on hosts with >= 4 cores — on smaller hosts the numbers
//! are still reported, honestly, as what a core-starved machine does.

use ctk_core::measures::MeasureKind;
use ctk_core::session::{Algorithm, SessionConfig, UrReport};
use ctk_crowd::{CrowdSimulator, GroundTruth, PerfectWorker, VotePolicy};
use ctk_datagen::{generate, DatasetSpec};
use ctk_prob::UncertainTable;
use ctk_service::{RunMode, SessionSpec, TopKService};
use ctk_tpo::build::{Engine, McConfig};
use std::time::Instant;

struct Grid {
    tenants: Vec<usize>,
    shards: Vec<usize>,
    tuples: usize,
    worlds: usize,
    budget: usize,
}

fn full() -> Grid {
    Grid {
        tenants: vec![1_000, 10_000, 100_000],
        shards: vec![1, 2, 4],
        tuples: 8,
        worlds: 256,
        budget: 4,
    }
}

fn small() -> Grid {
    Grid {
        tenants: vec![48],
        shards: vec![1, 2],
        tuples: 8,
        worlds: 256,
        budget: 3,
    }
}

/// Mixed per-tenant workloads, cheap enough that a 100k-tenant cell is
/// dominated by the serving loop rather than the submit-time TPO builds.
fn tenant_config(tenant: usize, worlds: usize, budget: usize) -> SessionConfig {
    let algorithm = match tenant % 4 {
        0 | 1 => Algorithm::T1On,
        2 => Algorithm::TbOff,
        _ => Algorithm::Incr {
            questions_per_round: 2,
        },
    };
    SessionConfig {
        k: 2 + tenant % 2,
        budget,
        measure: MeasureKind::WeightedEntropy,
        algorithm,
        engine: Engine::MonteCarlo(McConfig::fixed(worlds, 17 + (tenant % 4) as u64)),
        seed: (tenant % 16) as u64,
        uncertainty_target: None,
    }
}

fn mode_str(mode: RunMode) -> &'static str {
    match mode {
        RunMode::Tick => "tick",
        RunMode::Event => "event",
        RunMode::EventThreaded => "event_threaded",
    }
}

struct Cell {
    tenants: usize,
    shards: usize,
    mode: RunMode,
    elapsed_ms: f64,
    purchase_ms: f64,
    stall_ms: f64,
    messages: u64,
    backlog: u64,
    rounds: u64,
    answers_served: u64,
    cache_hits: u64,
    events: u64,
    budget_granted: u64,
    shard_imbalance: f64,
}

fn run_cell(
    table: &UncertainTable,
    truth: &GroundTruth,
    grid: &Grid,
    tenants: usize,
    shards: usize,
    mode: RunMode,
) -> (Cell, Vec<UrReport>) {
    let crowd = CrowdSimulator::new(truth.clone(), PerfectWorker, VotePolicy::Single, 10_000_000)
        .expect("valid vote policy");
    let mut service = TopKService::new(crowd)
        .with_shards(shards)
        .expect("topology set before any submit")
        .with_run_mode(mode)
        .with_fanout(64);
    let ids: Vec<_> = (0..tenants)
        .map(|t| {
            service
                .submit(
                    table,
                    SessionSpec::new(tenant_config(t, grid.worlds, grid.budget)),
                )
                .expect("valid tenant config")
        })
        .collect();
    // Time only the serving loop: session construction (TPO build) is
    // submit-time work, identical across shards and run modes.
    let t0 = Instant::now();
    let metrics = service.run_to_completion().clone();
    let elapsed = t0.elapsed();
    assert_eq!(
        metrics.completed as usize, tenants,
        "every tenant completes"
    );
    assert_eq!(metrics.failed, 0);
    let reports: Vec<UrReport> = ids
        .iter()
        .map(|id| service.report(*id).expect("done").clone())
        .collect();
    (
        Cell {
            tenants,
            shards,
            mode,
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            purchase_ms: metrics.purchase_time.as_secs_f64() * 1e3,
            stall_ms: metrics.coordinator_stall.as_secs_f64() * 1e3,
            messages: metrics.channel_messages,
            backlog: metrics.channel_backlog_max,
            rounds: metrics.rounds,
            answers_served: metrics.answers_served,
            cache_hits: metrics.cache_hits,
            events: metrics.events_processed,
            budget_granted: metrics.budget_granted,
            shard_imbalance: metrics.shard_imbalance(),
        },
        reports,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small_mode = args.iter().any(|a| a == "--small");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR10.json".to_string());
    let grid = if small_mode { small() } else { full() };
    let cores = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    eprintln!(
        "# threaded shard topology: tenants {:?} x shards {:?} x modes [tick, event, event_threaded] (n={}, worlds={}, budget={}, {} cores){}",
        grid.tenants,
        grid.shards,
        grid.tuples,
        grid.worlds,
        grid.budget,
        cores,
        if small_mode { " [small]" } else { "" }
    );

    let table = generate(&DatasetSpec::paper_default(grid.tuples, 0.4, 7)).expect("valid spec");
    let truth = GroundTruth::sample(&table, 4242);

    let mut cells: Vec<Cell> = Vec::new();
    for &tenants in &grid.tenants {
        // The row anchor: tick mode at one shard, the configuration
        // bit-compatible with the pre-shard loop.
        let (anchor, reference) = run_cell(&table, &truth, &grid, tenants, 1, RunMode::Tick);
        print_cell(&anchor);
        cells.push(anchor);
        for &shards in &grid.shards {
            for mode in [RunMode::Event, RunMode::EventThreaded] {
                let (cell, reports) = run_cell(&table, &truth, &grid, tenants, shards, mode);
                for (t, (a, b)) in reference.iter().zip(&reports).enumerate() {
                    assert!(
                        a.same_outcome(b),
                        "tenant {t} diverged at {tenants} tenants / {shards} shards / {mode:?}"
                    );
                }
                print_cell(&cell);
                cells.push(cell);
            }
        }
    }

    // PR acceptance: at the largest tenant count, the threaded topology
    // at 4 shards beats single-threaded event mode at 4 shards >= 2x on
    // serving time. A core-starved host cannot show a parallel speedup
    // (the same workers time-slice one core and pay the channel tax on
    // top), so the assertion arms on >= 4 cores only — the JSON carries
    // the honest numbers either way.
    let top_tenants = *grid.tenants.iter().max().unwrap_or(&0);
    let top = |mode: RunMode| {
        cells
            .iter()
            .find(|c| c.tenants == top_tenants && c.shards == 4 && c.mode == mode)
            .map(|c| c.elapsed_ms)
    };
    if let (Some(event_ms), Some(threaded_ms)) = (top(RunMode::Event), top(RunMode::EventThreaded))
    {
        let speedup = event_ms / threaded_ms.max(1e-9);
        eprintln!(
            "# 4-shard speedup at {top_tenants} tenants: {speedup:.2}x (event {event_ms:.1} ms vs threaded {threaded_ms:.1} ms)"
        );
        if cores >= 4 {
            assert!(
                speedup >= 2.0,
                "threaded 4-shard speedup {speedup:.2}x below the 2x acceptance bar"
            );
        } else {
            eprintln!("# {cores} core(s): the 2x acceptance assertion arms on >= 4 cores");
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"bench_pr10\",\n  \"mode\": \"{}\",\n  \"cores\": {},\n  \"config\": {{ \"tuples\": {}, \"worlds\": {}, \"budget\": {}, \"fanout\": 64 }},\n  \"cells\": [\n{}\n  ]\n}}\n",
        if small_mode { "small" } else { "full" },
        cores,
        grid.tuples,
        grid.worlds,
        grid.budget,
        cells
            .iter()
            .map(|c| format!(
                "    {{ \"tenants\": {}, \"shards\": {}, \"run_mode\": \"{}\", \"elapsed_ms\": {:.1}, \"purchase_ms\": {:.1}, \"stall_ms\": {:.1}, \"messages\": {}, \"backlog\": {}, \"rounds\": {}, \"answers_served\": {}, \"cache_hits\": {}, \"events\": {}, \"budget_granted\": {}, \"shard_imbalance\": {:.3} }}",
                c.tenants,
                c.shards,
                mode_str(c.mode),
                c.elapsed_ms,
                c.purchase_ms,
                c.stall_ms,
                c.messages,
                c.backlog,
                c.rounds,
                c.answers_served,
                c.cache_hits,
                c.events,
                c.budget_granted,
                c.shard_imbalance,
            ))
            .collect::<Vec<_>>()
            .join(",\n")
    );
    std::fs::write(&out, &json).expect("write BENCH_PR10.json");
    eprintln!("# wrote {out}");
}

fn print_cell(cell: &Cell) {
    eprintln!(
        "# tenants {:>6} shards {:>2} {:<14}: {:>9.1} ms total, {:>8.1} ms purchase, {:>7.1} ms stall, {:>8} msgs, backlog {:>3}, {:>5} rounds, {:>7} answers ({} cached), imbalance {:.3}",
        cell.tenants,
        cell.shards,
        mode_str(cell.mode),
        cell.elapsed_ms,
        cell.purchase_ms,
        cell.stall_ms,
        cell.messages,
        cell.backlog,
        cell.rounds,
        cell.answers_served,
        cell.cache_hits,
        cell.shard_imbalance,
    );
}
