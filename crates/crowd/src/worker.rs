//! Worker models: how a crowd member turns the true pairwise order into an
//! answer.
//!
//! §III-C models a worker by an *accuracy* — the probability that the
//! returned answer is correct. The experiment harness uses
//! [`PerfectWorker`] for the noiseless setting and [`NoisyWorker`] /
//! [`WorkerPool`] for the noisy-crowd experiments.

use crate::question::Question;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Turns the true answer of a question into the worker's (possibly wrong)
/// response.
///
/// `Send` is a supertrait so crowds built over any worker model can cross
/// thread boundaries (see the `Crowd` trait and the sharded service round
/// loop in `ctk-service`).
pub trait AnswerModel: Send {
    /// Produces the worker's answer given the correct one.
    fn answer(&mut self, q: &Question, truth: bool) -> bool;

    /// The model's (nominal) accuracy, used by the Bayesian update. For
    /// pools this is the average accuracy; for difficulty-aware workers it
    /// is the asymptotic (easy-pair) accuracy.
    fn accuracy(&self) -> f64;

    /// Like [`AnswerModel::answer`] but informed of the true score gap
    /// `|s_i - s_j|` of the compared pair. Models that err more on close
    /// calls override this; the default ignores the gap.
    fn answer_with_gap(&mut self, q: &Question, truth: bool, _gap: f64) -> bool {
        self.answer(q, truth)
    }
}

/// Always answers correctly (accuracy 1).
#[derive(Debug, Clone, Default)]
pub struct PerfectWorker;

impl AnswerModel for PerfectWorker {
    fn answer(&mut self, _q: &Question, truth: bool) -> bool {
        truth
    }

    fn accuracy(&self) -> f64 {
        1.0
    }
}

/// Answers correctly with fixed probability `accuracy`.
#[derive(Debug, Clone)]
pub struct NoisyWorker {
    accuracy: f64,
    rng: StdRng,
}

impl NoisyWorker {
    /// Creates a worker with the given accuracy (clamped to `[0.5, 1]`; an
    /// accuracy below a coin flip would be an adversarial worker, which the
    /// paper does not model) and RNG seed.
    pub fn new(accuracy: f64, seed: u64) -> Self {
        Self {
            accuracy: accuracy.clamp(0.5, 1.0),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl AnswerModel for NoisyWorker {
    fn answer(&mut self, _q: &Question, truth: bool) -> bool {
        if self.rng.gen::<f64>() < self.accuracy {
            truth
        } else {
            !truth
        }
    }

    fn accuracy(&self) -> f64 {
        self.accuracy
    }
}

/// A heterogeneous pool of noisy workers; questions are assigned
/// round-robin (simulating a crowdsourcing platform distributing tasks).
#[derive(Debug, Clone)]
pub struct WorkerPool {
    workers: Vec<NoisyWorker>,
    cursor: usize,
}

impl WorkerPool {
    /// Builds a pool from explicit accuracies.
    pub fn new(accuracies: &[f64], seed: u64) -> Self {
        assert!(!accuracies.is_empty(), "pool needs at least one worker");
        let workers = accuracies
            .iter()
            .enumerate()
            .map(|(i, &a)| NoisyWorker::new(a, seed.wrapping_add(i as u64)))
            .collect();
        Self { workers, cursor: 0 }
    }

    /// Builds a pool of `size` workers with accuracies drawn uniformly from
    /// `[lo, hi]` (deterministic given `seed`).
    pub fn uniform(size: usize, lo: f64, hi: f64, seed: u64) -> Self {
        assert!(size > 0, "pool needs at least one worker");
        let mut rng = StdRng::seed_from_u64(seed);
        let accuracies: Vec<f64> = (0..size)
            .map(|_| rng.gen_range(lo.min(hi)..=hi.max(lo)))
            .collect();
        Self::new(&accuracies, seed.wrapping_add(0x9e37_79b9))
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Pools are never empty (enforced at construction).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl AnswerModel for WorkerPool {
    fn answer(&mut self, q: &Question, truth: bool) -> bool {
        let idx = self.cursor;
        self.cursor = (self.cursor + 1) % self.workers.len();
        self.workers[idx].answer(q, truth)
    }

    fn accuracy(&self) -> f64 {
        self.workers.iter().map(|w| w.accuracy()).sum::<f64>() / self.workers.len() as f64
    }
}

/// A worker whose accuracy depends on how close the compared scores are:
/// `eta(gap) = 0.5 + (eta_max - 0.5) * (1 - exp(-gap / scale))`.
///
/// Human judges are nearly random on ties and nearly perfect on obvious
/// pairs; this is the standard difficulty-aware noise model from the
/// crowdsourcing literature, provided as an extension beyond the paper's
/// constant-accuracy workers (the Bayesian update keeps using the nominal
/// `eta_max`, deliberately stress-testing model mismatch).
#[derive(Debug, Clone)]
pub struct DifficultyWorker {
    eta_max: f64,
    scale: f64,
    rng: StdRng,
}

impl DifficultyWorker {
    /// Creates a difficulty-aware worker. `eta_max` is the accuracy on
    /// well-separated pairs (clamped to `[0.5, 1]`); `scale > 0` is the
    /// score gap at which ~63% of the accuracy headroom is reached.
    pub fn new(eta_max: f64, scale: f64, seed: u64) -> Self {
        assert!(scale > 0.0, "difficulty scale must be positive");
        Self {
            eta_max: eta_max.clamp(0.5, 1.0),
            scale,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Accuracy on a pair with true score gap `gap`.
    pub fn accuracy_at(&self, gap: f64) -> f64 {
        0.5 + (self.eta_max - 0.5) * (1.0 - (-gap.abs() / self.scale).exp())
    }
}

impl AnswerModel for DifficultyWorker {
    fn answer(&mut self, q: &Question, truth: bool) -> bool {
        // No gap information: behave like the asymptotic worker.
        let eta = self.eta_max;
        let _ = q;
        if self.rng.gen::<f64>() < eta {
            truth
        } else {
            !truth
        }
    }

    fn accuracy(&self) -> f64 {
        self.eta_max
    }

    fn answer_with_gap(&mut self, _q: &Question, truth: bool, gap: f64) -> bool {
        if self.rng.gen::<f64>() < self.accuracy_at(gap) {
            truth
        } else {
            !truth
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> Question {
        Question::new(0, 1)
    }

    #[test]
    fn perfect_worker_never_errs() {
        let mut w = PerfectWorker;
        assert_eq!(w.accuracy(), 1.0);
        for truth in [true, false] {
            for _ in 0..10 {
                assert_eq!(w.answer(&q(), truth), truth);
            }
        }
    }

    #[test]
    fn noisy_worker_error_rate_matches_accuracy() {
        let mut w = NoisyWorker::new(0.8, 42);
        assert_eq!(w.accuracy(), 0.8);
        const N: usize = 20_000;
        let correct = (0..N).filter(|_| w.answer(&q(), true)).count();
        let rate = correct as f64 / N as f64;
        assert!((rate - 0.8).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn accuracy_clamped_to_half() {
        assert_eq!(NoisyWorker::new(0.2, 0).accuracy(), 0.5);
        assert_eq!(NoisyWorker::new(1.5, 0).accuracy(), 1.0);
    }

    #[test]
    fn pool_round_robin_and_average_accuracy() {
        let mut pool = WorkerPool::new(&[1.0, 0.5], 7);
        assert_eq!(pool.len(), 2);
        assert!(!pool.is_empty());
        assert!((pool.accuracy() - 0.75).abs() < 1e-12);
        // The accuracy-1.0 worker answers every other question correctly.
        let answers: Vec<bool> = (0..6).map(|_| pool.answer(&q(), true)).collect();
        assert!(answers[0] && answers[2] && answers[4]);
    }

    #[test]
    fn uniform_pool_accuracies_in_range() {
        let pool = WorkerPool::uniform(50, 0.6, 0.9, 3);
        assert_eq!(pool.len(), 50);
        let avg = pool.accuracy();
        assert!(avg > 0.6 && avg < 0.9, "avg = {avg}");
    }

    #[test]
    fn difficulty_worker_errs_more_on_close_calls() {
        let w = DifficultyWorker::new(0.95, 0.1, 0);
        assert!(
            (w.accuracy_at(0.0) - 0.5).abs() < 1e-12,
            "ties are coin flips"
        );
        assert!(w.accuracy_at(0.05) < w.accuracy_at(0.2));
        assert!(w.accuracy_at(10.0) > 0.9499, "easy pairs approach eta_max");
        assert_eq!(w.accuracy(), 0.95);

        // Empirical check at a fixed gap.
        let mut w = DifficultyWorker::new(0.9, 0.1, 7);
        let expect = w.accuracy_at(0.1);
        const N: usize = 20_000;
        let correct = (0..N)
            .filter(|_| w.answer_with_gap(&q(), true, 0.1))
            .count();
        let rate = correct as f64 / N as f64;
        assert!((rate - expect).abs() < 0.01, "rate {rate} vs {expect}");
    }

    #[test]
    fn default_answer_with_gap_ignores_gap() {
        let mut w = PerfectWorker;
        assert!(w.answer_with_gap(&q(), true, 0.0));
        assert!(!w.answer_with_gap(&q(), false, 0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn difficulty_scale_must_be_positive() {
        let _ = DifficultyWorker::new(0.9, 0.0, 0);
    }

    #[test]
    fn workers_are_seed_deterministic() {
        let mut a = NoisyWorker::new(0.7, 5);
        let mut b = NoisyWorker::new(0.7, 5);
        for _ in 0..100 {
            assert_eq!(a.answer(&q(), true), b.answer(&q(), true));
        }
    }
}
