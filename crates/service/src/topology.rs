//! The threaded execution topology ([`crate::RunMode::EventThreaded`],
//! DESIGN.md §15): each [`Shard`] moves onto a dedicated worker thread
//! that owns it end to end, while the calling thread becomes the
//! **coordinator** for the two genuinely global phases — the cache-first
//! purchase merge and the budget-grant reconciler.
//!
//! # Channel protocol
//!
//! Three `std::sync::mpsc` channels per shard, all created by the
//! coordinator before the scoped workers spawn:
//!
//! * **commands** (coordinator → worker): [`ShardCmd::Sweep`] starts one
//!   event sweep, [`ShardCmd::Grant`] delivers a reconciler grant as a
//!   [`Event::BudgetGranted`] ready-queue entry, [`ShardCmd::Exit`] ends
//!   the worker. FIFO ordering means a grant sent before the next
//!   `Sweep` is enqueued before that sweep drains — exactly when the
//!   single-threaded loop's reconciler-pushed event is seen.
//! * **requests** (worker → coordinator): [`ShardReq::Resolve`] carries
//!   one session's unresolved question batch to the purchase barrier;
//!   [`ShardReq::SweepDone`] closes the shard's turn with its local
//!   deltas (outcome, metrics, parked set, demand).
//! * **replies** (coordinator → worker): the [`Resolution`] of one
//!   `Resolve` — served answers in request order, cache-hit count, and
//!   whether the session resolved, parked, or starved.
//!
//! # Purchase-barrier ordering argument
//!
//! Everything a worker does locally — draining deliveries, feeding
//! drivers, planning, gathering batches — touches only shard-owned state
//! and therefore commutes across shards; it may overlap freely. The only
//! cross-shard state is crowd + cache + ledgers, and every touch of it
//! goes through `resolve_pending` **on the coordinator**, which serves
//! shard 0's request stream to completion (`SweepDone`) before reading
//! shard 1's, and so on. A worker's own stream is emitted in exactly the
//! order its single-threaded sweep would resolve sessions (resumed
//! parked sessions during the opening drain, then planned sessions in
//! plan order), so the global sequence of crowd asks, cache inserts and
//! ledger spends is *identical* to [`crate::TopKService::pump`] — which
//! is why per-tenant reports are `same_outcome` with single-threaded
//! event mode at every (shards, threads) combination, even against
//! stateful or noisy crowd backends where ask order changes answers.
//! Grants are re-funded in shard order at the same barrier, from the
//! same `SweepDone` demand snapshots the single-threaded reconciler
//! reads live (nothing mutates a registry between its `SweepDone` and
//! the reconcile step). What threading buys is overlap of the CPU-heavy
//! local phases — belief updates, world re-weighting, batch planning —
//! which BENCH_PR9 measured at ~99% of sweep wall time.

use crate::batcher::{resolve_pending, Disposition, Resolution, ShardedAnswerCache};
use crate::metrics::ServiceMetrics;
use crate::registry::{SessionId, SessionState};
use crate::service::{hint_batch, run_sharded, RoundOutcome};
use crate::shard::{Event, Quiescence, Shard, ShardLedger};
use ctk_crowd::{Crowd, Question, RouteHint};
use ctk_quality::QuestionRouter;
use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::time::{Duration, Instant};

/// Coordinator → worker.
enum ShardCmd {
    /// Run one event sweep (drain, plan, gather, resolve-via-barrier,
    /// drain) and answer with [`ShardReq::SweepDone`].
    Sweep,
    /// Enqueue a reconciler grant on the shard's ready-queue (consumed by
    /// the next sweep's opening drain, like the in-place reconciler's
    /// pushed event).
    Grant { granted: usize },
    /// Shut the worker down cleanly.
    Exit,
}

/// Worker → coordinator.
enum ShardReq {
    /// One session's unresolved batch, for the purchase barrier. The
    /// worker blocks on the reply before touching the next session, so a
    /// shard has at most one purchase in flight — the property the
    /// ordering argument rests on.
    Resolve {
        pending: VecDeque<(Question, RouteHint)>,
    },
    /// The sweep finished; local deltas for the coordinator to merge in
    /// shard order.
    SweepDone(Box<SweepReport>),
}

/// What one worker sweep did, merged by the coordinator in shard order.
struct SweepReport {
    outcome: RoundOutcome,
    /// Shard-local metric deltas (deliveries, finalizations, latencies);
    /// purchase-side metrics stay on the coordinator's accumulator.
    metrics: ServiceMetrics,
    /// Sessions parked `AwaitingBudget` at sweep end, in id order.
    parked: Vec<SessionId>,
    /// Unresolved questions across those parked sessions — the demand the
    /// reconciler grants against.
    parked_demand: usize,
    /// Wall time of the whole sweep on the worker thread.
    sweep_time: Duration,
}

/// One shard's dedicated thread: owns the [`Shard`] exclusively for the
/// lifetime of a `run_threaded` call and performs every shard-local phase
/// itself, deferring only purchases to the coordinator.
struct Worker<'a> {
    s: usize,
    shard_count: usize,
    /// Gather fan-out within the shard (same `run_sharded` the in-place
    /// loops use; report-invisible by the same argument).
    threads: usize,
    router: Option<QuestionRouter>,
    shard: &'a mut Shard,
    cmds: Receiver<ShardCmd>,
    reqs: Sender<ShardReq>,
    replies: Receiver<Resolution>,
}

impl Worker<'_> {
    /// Serves commands until `Exit` or a closed channel (the coordinator
    /// unwinding); never panics on shutdown so the coordinator's panic —
    /// or a sibling worker's, propagated at scope join — stays the only
    /// one in flight.
    fn run(mut self) {
        while let Ok(cmd) = self.cmds.recv() {
            match cmd {
                ShardCmd::Sweep => {
                    let Some(report) = self.sweep() else { return };
                    if self
                        .reqs
                        .send(ShardReq::SweepDone(Box::new(report)))
                        .is_err()
                    {
                        return;
                    }
                }
                ShardCmd::Grant { granted } => {
                    self.shard.ready.push_back(Event::BudgetGranted { granted });
                }
                ShardCmd::Exit => return,
            }
        }
    }

    /// One event sweep over the owned shard — the per-shard body of
    /// [`crate::TopKService::pump`], verbatim in order: drain, plan,
    /// gather, resolve each planned session through the barrier, drain
    /// again. Returns `None` when the coordinator is gone mid-sweep.
    fn sweep(&mut self) -> Option<SweepReport> {
        // ctk-allow(det-wall-clock): per-shard sweep-time gauge only; never feeds a decision
        let t0 = Instant::now();
        let mut metrics = ServiceMetrics::default();
        metrics.init_shards(self.shard_count);
        let mut outcome = RoundOutcome::default();
        self.drain_ready(&mut metrics, &mut outcome)?;
        let plan = {
            let runnable = self.shard.registry.runnable();
            self.shard.scheduler.plan_round(&runnable)
        };
        outcome.scheduled += plan.len();
        let gathered = {
            let mut entries = self.shard.registry.entries_mut_in_order(&plan);
            run_sharded(&mut entries, self.threads, |entry| {
                let allowance = entry.ledger.remaining();
                // ctk-allow(panic-unwrap): queued entries always hold a driver; a silent skip would misattribute answers
                let driver = entry.driver.as_mut().expect("queued session has driver");
                driver.next_batch(allowance)
            })
        };
        for (id, batch) in plan.iter().copied().zip(gathered) {
            match batch {
                Ok(batch) if batch.is_empty() => {
                    self.shard.finalize_session(self.s, id, &mut metrics);
                    outcome.finished += 1;
                }
                Ok(batch) => {
                    let entry = self
                        .shard
                        .registry
                        .get_mut(id)
                        .expect("scheduled id exists"); // ctk-allow(panic-unwrap): plan ids come from this shard's registry this sweep
                    let hinted = hint_batch(self.router.as_ref(), entry, batch);
                    entry.begin_batch(hinted);
                    self.resolve_at_barrier(id)?;
                }
                Err(err) => {
                    self.shard.fail_session(id, err, &mut metrics);
                    outcome.finished += 1;
                }
            }
        }
        self.drain_ready(&mut metrics, &mut outcome)?;
        Some(SweepReport {
            outcome,
            metrics,
            parked: self.shard.registry.parked(),
            parked_demand: self.shard.registry.parked_demand(),
            sweep_time: t0.elapsed(),
        })
    }

    /// Drains the ready-queue exactly like the in-place
    /// `TopKService::drain_ready`: deliveries and finalizations are
    /// shard-local; a `BudgetGranted` resumes parked sessions in id
    /// order, each through the purchase barrier. `None` = coordinator
    /// gone.
    fn drain_ready(
        &mut self,
        metrics: &mut ServiceMetrics,
        outcome: &mut RoundOutcome,
    ) -> Option<()> {
        while let Some(event) = self.shard.ready.pop_front() {
            metrics.events_processed += 1;
            outcome.events += 1;
            match event {
                Event::Submitted(_) | Event::Finished(_) => {}
                Event::AnswersReady(id) => self.shard.deliver(self.s, id, metrics, outcome),
                Event::BudgetGranted { .. } => {
                    for id in self.shard.registry.parked() {
                        self.resolve_at_barrier(id)?;
                    }
                }
            }
        }
        Some(())
    }

    /// Ships one session's pending batch to the coordinator's purchase
    /// barrier and applies the [`Resolution`] — the exact state
    /// transitions `TopKService::resolve_session` performs in place.
    /// `None` when the coordinator hung up (it is unwinding; this worker
    /// returns quietly so the real panic propagates alone).
    fn resolve_at_barrier(&mut self, id: SessionId) -> Option<()> {
        let pending = self
            .shard
            .registry
            .get_mut(id)
            .expect("resolved id exists") // ctk-allow(panic-unwrap): resolve targets come from this shard's registry
            .pending
            .clone();
        self.reqs.send(ShardReq::Resolve { pending }).ok()?;
        let resolution = self.replies.recv().ok()?;
        let entry = self.shard.registry.get_mut(id).expect("resolved id exists"); // ctk-allow(panic-unwrap): same id as above
        for _ in 0..resolution.served.len() {
            entry.pending.pop_front();
        }
        entry.batch_hits += resolution.cache_hits as usize;
        entry.served.extend(resolution.served);
        match resolution.disposition {
            Disposition::Parked => entry.state = SessionState::AwaitingBudget,
            Disposition::Resolved | Disposition::Starved => {
                if resolution.disposition == Disposition::Starved {
                    entry.pending.clear();
                }
                entry.state = SessionState::AwaitingAnswers;
                self.shard.ready.push_back(Event::AnswersReady(id));
            }
        }
        Some(())
    }
}

/// Runs the event loop to quiescence on the threaded topology: one
/// worker thread per shard (scoped — no detached threads), the calling
/// thread as coordinator. Equivalent to looping
/// [`crate::TopKService::pump`] by the ordering argument in the module
/// docs; the scope spans all sweeps of the call, so workers are spawned
/// once, not per sweep.
pub(crate) fn run_threaded<C: Crowd>(
    crowd: &mut C,
    cache: &mut ShardedAnswerCache,
    shards: &mut [Shard],
    ledgers: &mut [ShardLedger],
    metrics: &mut ServiceMetrics,
    router: Option<QuestionRouter>,
    threads: usize,
) -> Quiescence {
    let n = shards.len();
    let mut cmd_txs = Vec::with_capacity(n);
    let mut req_rxs = Vec::with_capacity(n);
    let mut reply_txs = Vec::with_capacity(n);
    let mut worker_ends = Vec::with_capacity(n);
    for _ in 0..n {
        // ctk-allow(det-channel): per-shard private channels; the coordinator reads them strictly in shard order at the purchase barrier (module docs)
        let (cmd_tx, cmd_rx) = std::sync::mpsc::channel();
        // ctk-allow(det-channel): see above — one barrier, shard-order service discipline
        let (req_tx, req_rx) = std::sync::mpsc::channel();
        // ctk-allow(det-channel): replies answer exactly one outstanding request per shard
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        cmd_txs.push(cmd_tx);
        req_rxs.push(req_rx);
        reply_txs.push(reply_tx);
        worker_ends.push((cmd_rx, req_tx, reply_rx));
    }
    // ctk-allow(det-thread-spawn): scoped per-shard owners; every cross-shard effect is serialized in shard order at the coordinator's purchase barrier
    std::thread::scope(|scope| {
        for ((s, shard), (cmds, reqs, replies)) in shards.iter_mut().enumerate().zip(worker_ends) {
            let worker = Worker {
                s,
                shard_count: n,
                threads,
                router,
                shard,
                cmds,
                reqs,
                replies,
            };
            scope.spawn(move || worker.run());
        }
        let quiescence = loop {
            // ctk-allow(det-wall-clock): serving-time metric only; never feeds a decision
            let sweep0 = Instant::now();
            for tx in &cmd_txs {
                let _ = tx.send(ShardCmd::Sweep);
            }
            let mut outcome = RoundOutcome::default();
            let mut reports: Vec<SweepReport> = Vec::with_capacity(n);
            // The purchase barrier: serve shard s's request stream to
            // completion before reading shard s+1's. Workers past their
            // own purchases keep computing; their requests just wait.
            for (s, rx) in req_rxs.iter().enumerate() {
                let mut backlog: u64 = 0;
                loop {
                    let req = match rx.try_recv() {
                        Ok(req) => {
                            backlog += 1;
                            metrics.channel_backlog_max = metrics.channel_backlog_max.max(backlog);
                            req
                        }
                        Err(TryRecvError::Empty | TryRecvError::Disconnected) => {
                            backlog = 0;
                            // ctk-allow(det-wall-clock): stall gauge only; never feeds a decision
                            let w0 = Instant::now();
                            let req = rx.recv();
                            metrics.coordinator_stall += w0.elapsed();
                            // ctk-allow(panic-unwrap): a hung-up worker mid-protocol means it panicked; unwinding here lets the scope join surface that panic
                            req.expect("shard worker alive")
                        }
                    };
                    metrics.channel_messages += 1;
                    match req {
                        ShardReq::Resolve { mut pending } => {
                            // ctk-allow(det-wall-clock): purchase-duration metric only; never feeds a decision
                            let p0 = Instant::now();
                            let resolution = resolve_pending(
                                &mut pending,
                                true,
                                &mut ledgers[s],
                                cache,
                                crowd,
                                metrics,
                            );
                            metrics.purchase_time += p0.elapsed();
                            outcome.cache_hits += resolution.cache_hits;
                            metrics.channel_messages += 1;
                            let _ = reply_txs[s].send(resolution);
                        }
                        ShardReq::SweepDone(report) => {
                            reports.push(*report);
                            break;
                        }
                    }
                }
            }
            for (s, report) in reports.iter().enumerate() {
                outcome.merge(&report.outcome);
                metrics.merge(&report.metrics);
                metrics.record_shard_sweep(s, report.sweep_time);
            }
            // Reconcile in shard order against the SweepDone demand
            // snapshots (no registry moves between a shard's SweepDone
            // and this step — its worker is idle until the next Sweep).
            for ledger in ledgers.iter_mut() {
                ledger.reclaim();
            }
            let mut pool = crowd.remaining();
            for (s, report) in reports.iter().enumerate() {
                if pool == 0 {
                    break;
                }
                let granted = report.parked_demand.min(pool);
                if granted > 0 {
                    pool -= granted;
                    ledgers[s].grant(granted);
                    let _ = cmd_txs[s].send(ShardCmd::Grant { granted });
                    metrics.budget_granted += granted as u64;
                    outcome.budget_granted += granted as u64;
                }
            }
            if outcome.progressed() {
                metrics.rounds += 1;
            }
            metrics.serving_time += sweep0.elapsed();
            if !outcome.progressed() {
                let sessions: Vec<SessionId> = reports
                    .iter()
                    .flat_map(|r| r.parked.iter().copied())
                    .collect();
                break if sessions.is_empty() {
                    Quiescence::Idle
                } else {
                    Quiescence::BlockedOnCrowd { sessions }
                };
            }
        };
        for tx in &cmd_txs {
            let _ = tx.send(ShardCmd::Exit);
        }
        quiescence
    })
}
