#![forbid(unsafe_code)]
#![deny(warnings)]
//! # ctk-crowd — crowdsourcing substrate
//!
//! Crowd-interaction layer of the `crowd-topk` workspace (reproduction of
//! *“Crowdsourcing for Top-K Query Processing over Uncertain Data”*, Ciceri
//! et al., ICDE 2016 / TKDE 28(1)).
//!
//! The paper engages human workers to resolve pairwise ranking questions.
//! This crate models that engagement:
//!
//! * [`Question`] / [`Answer`] — the task format `t_i ?≺ t_j` (§III);
//! * [`GroundTruth`] — the hidden real ordering `ω_r` the crowd can
//!   observe pair by pair;
//! * [`worker`] — answer models: perfect, fixed-accuracy (§III-C's noisy
//!   workers), and heterogeneous round-robin pools;
//! * [`aggregate`] — majority voting and its effective accuracy;
//! * [`BudgetLedger`] — accounting for the paper's budget `B`, with an
//!   explicit [`CostModel`]: vote-denominated (a majority-of-`n` answer
//!   costs `n`, the paper's "triple the cost" pricing — the simulator's
//!   default) or question-denominated;
//! * [`Crowd`] / [`CrowdSimulator`] — the narrow interface the selection
//!   engine sees, and its simulated implementation (a stand-in for a real
//!   crowdsourcing market; see DESIGN.md §5 for the substitution argument).
//!
//! ## Example
//!
//! ```
//! use ctk_crowd::{CrowdSimulator, Crowd, GroundTruth, Question};
//! use ctk_crowd::worker::NoisyWorker;
//! use ctk_crowd::aggregate::VotePolicy;
//!
//! // The real scores put t1 above t0.
//! let truth = GroundTruth::from_scores(vec![0.2, 0.8]);
//! let mut crowd = CrowdSimulator::new(
//!     truth,
//!     NoisyWorker::new(0.85, 42),
//!     VotePolicy::Majority(3),
//!     9, // budget: 9 worker votes = 3 majority-of-3 questions
//! )
//! .expect("odd majority count");
//!
//! let answer = crowd.ask(Question::new(1, 0)).unwrap();
//! // Majority of three 85%-accurate workers: usually right.
//! assert!(crowd.answer_accuracy() > 0.9);
//! assert_eq!(crowd.remaining(), 2); // 6 votes left buy 2 more questions
//! # let _ = answer;
//! ```

pub mod aggregate;
pub mod error;
pub mod ledger;
pub mod oracle;
pub mod question;
pub mod simulator;
pub mod worker;

pub use aggregate::VotePolicy;
pub use error::CrowdError;
pub use ledger::{BudgetLedger, CostModel};
pub use oracle::GroundTruth;
pub use question::{Answer, Question};
pub use simulator::{AttributedAnswer, Crowd, CrowdSimulator, RouteHint};
pub use worker::{
    AnswerModel, DifficultyWorker, NoisyWorker, PerfectWorker, Vote, WorkerId, WorkerPool,
};
