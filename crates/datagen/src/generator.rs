//! Dataset materialization: turns a [`DatasetSpec`] into an
//! [`UncertainTable`], deterministically.

use crate::config::{CenterLayout, DatasetSpec, PdfFamily};
use ctk_prob::{ScoreDist, UncertainTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates the table described by `spec`. The same spec always produces
/// the same table.
pub fn generate(spec: &DatasetSpec) -> UncertainTable {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let centers = generate_centers(&spec.centers, spec.n, &mut rng);
    let dists = centers
        .iter()
        .enumerate()
        .map(|(idx, &c)| make_dist(&spec.family, c, idx, &mut rng))
        .collect();
    UncertainTable::new(dists).expect("spec.n >= 1 produces a non-empty table")
}

fn generate_centers(layout: &CenterLayout, n: usize, rng: &mut StdRng) -> Vec<f64> {
    match *layout {
        CenterLayout::UniformRandom => (0..n).map(|_| rng.gen::<f64>()).collect(),
        CenterLayout::EvenlySpaced => {
            if n == 1 {
                vec![0.5]
            } else {
                (0..n).map(|i| i as f64 / (n - 1) as f64).collect()
            }
        }
        CenterLayout::Clustered { clusters, spread } => {
            let clusters = clusters.max(1);
            let anchors: Vec<f64> = (0..clusters)
                .map(|c| (c as f64 + 0.5) / clusters as f64)
                .collect();
            (0..n)
                .map(|i| {
                    let anchor = anchors[i % clusters];
                    // Box-Muller-free Gaussian-ish jitter: sum of uniforms
                    // (Irwin–Hall with 4 terms, rescaled) keeps datagen free
                    // of distribution machinery.
                    let jitter: f64 = (0..4).map(|_| rng.gen::<f64>()).sum::<f64>() / 4.0 - 0.5;
                    anchor + jitter * spread * 3.46 // std of IH(4)/4 ≈ 0.144
                })
                .collect()
        }
    }
}

fn make_dist(family: &PdfFamily, center: f64, idx: usize, rng: &mut StdRng) -> ScoreDist {
    match *family {
        PdfFamily::Uniform { width } => {
            let w = width.materialize(rng.gen::<f64>()).max(1e-6);
            ScoreDist::uniform_centered(center, w).expect("positive width")
        }
        PdfFamily::Gaussian { sigma } => {
            let s = sigma.materialize(rng.gen::<f64>()).max(1e-6);
            ScoreDist::gaussian(center, s).expect("positive sigma")
        }
        PdfFamily::MixedFamilies { width } => {
            let w = width.materialize(rng.gen::<f64>()).max(1e-6);
            match idx % 3 {
                0 => ScoreDist::uniform_centered(center, w).expect("positive width"),
                1 => ScoreDist::gaussian(center, w / 4.0).expect("positive sigma"),
                _ => ScoreDist::triangular(center - w / 2.0, center, center + w / 2.0)
                    .expect("valid triangular"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WidthSpec;

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::paper_default(15, 0.4, 42);
        assert_eq!(generate(&spec), generate(&spec));
        let other = DatasetSpec::paper_default(15, 0.4, 43);
        assert_ne!(generate(&spec), generate(&other));
    }

    #[test]
    fn paper_default_produces_uniform_pdfs() {
        let t = generate(&DatasetSpec::paper_default(10, 0.4, 1));
        assert_eq!(t.len(), 10);
        for tu in t.iter() {
            match &tu.dist {
                ScoreDist::Uniform(u) => {
                    assert!((u.hi() - u.lo() - 0.4).abs() < 1e-12);
                }
                other => panic!("expected uniform, got {other:?}"),
            }
        }
    }

    #[test]
    fn evenly_spaced_centers() {
        let spec = DatasetSpec {
            n: 5,
            centers: CenterLayout::EvenlySpaced,
            family: PdfFamily::Uniform {
                width: WidthSpec::Fixed(0.1),
            },
            seed: 0,
        };
        let t = generate(&spec);
        let means: Vec<f64> = t.iter().map(|tu| tu.dist.mean()).collect();
        for (i, m) in means.iter().enumerate() {
            assert!((m - i as f64 * 0.25).abs() < 1e-9, "mean {m} at {i}");
        }
    }

    #[test]
    fn heterogeneous_widths_vary() {
        let spec = DatasetSpec {
            n: 30,
            centers: CenterLayout::UniformRandom,
            family: PdfFamily::Uniform {
                width: WidthSpec::UniformRange(0.1, 0.8),
            },
            seed: 5,
        };
        let t = generate(&spec);
        let widths: Vec<f64> = t
            .iter()
            .map(|tu| {
                let (lo, hi) = tu.dist.support();
                hi - lo
            })
            .collect();
        let min = widths.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = widths.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.2, "widths should spread: [{min}, {max}]");
        assert!(min >= 0.1 - 1e-9 && max <= 0.8 + 1e-9);
    }

    #[test]
    fn mixed_families_cycle() {
        let spec = DatasetSpec {
            n: 6,
            centers: CenterLayout::EvenlySpaced,
            family: PdfFamily::MixedFamilies {
                width: WidthSpec::Fixed(0.3),
            },
            seed: 9,
        };
        let t = generate(&spec);
        assert!(matches!(t.dist_at(0), ScoreDist::Uniform(_)));
        assert!(matches!(t.dist_at(1), ScoreDist::Gaussian(_)));
        assert!(matches!(t.dist_at(2), ScoreDist::Piecewise(_)));
        assert!(matches!(t.dist_at(3), ScoreDist::Uniform(_)));
    }

    #[test]
    fn clustered_centers_form_groups() {
        let spec = DatasetSpec {
            n: 40,
            centers: CenterLayout::Clustered {
                clusters: 2,
                spread: 0.01,
            },
            family: PdfFamily::Uniform {
                width: WidthSpec::Fixed(0.05),
            },
            seed: 3,
        };
        let t = generate(&spec);
        let mut means: Vec<f64> = t.iter().map(|tu| tu.dist.mean()).collect();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Two groups near 0.25 and 0.75: the largest gap should be big.
        let max_gap = means.windows(2).map(|w| w[1] - w[0]).fold(0.0f64, f64::max);
        assert!(
            max_gap > 0.2,
            "expected a clear inter-cluster gap, got {max_gap}"
        );
    }
}
