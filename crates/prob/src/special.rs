//! Special functions needed by the Gaussian distribution: `erf`, the standard
//! normal pdf/cdf, and the inverse normal cdf.
//!
//! The Rust standard library does not expose `erf`, and external math crates
//! are outside the allowed dependency set, so we implement well-known rational
//! approximations:
//!
//! * `erf` — Abramowitz & Stegun formula 7.1.26 (max abs error ~1.5e-7,
//!   ample for score-comparison probabilities that are themselves
//!   Monte-Carlo-estimated elsewhere in the stack).
//! * `normal_quantile` — Acklam's algorithm (max relative error ~1.15e-9),
//!   refined by one Halley step.

/// `1 / sqrt(2 * pi)`, the normalizing constant of the standard normal pdf.
pub const FRAC_1_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// `sqrt(2)`.
pub const SQRT_2: f64 = std::f64::consts::SQRT_2;

/// Error function `erf(x) = 2/sqrt(pi) * Int_0^x exp(-t^2) dt`.
///
/// Uses Abramowitz & Stegun 7.1.26 followed by a single Newton refinement
/// step (the derivative of `erf` is analytic), giving ~1e-10 accuracy on the
/// range that matters for score comparisons.
pub fn erf(x: f64) -> f64 {
    // ctk-allow(float-eq): exact-zero shortcut; erf is odd and erf(0) = 0
    if x == 0.0 {
        return 0.0;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    if x > 6.0 {
        return sign; // erf saturates to +-1 well before 6
    }

    // A&S 7.1.26 coefficients.
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;

    let t = 1.0 / (1.0 + P * x);
    let poly = ((((A5 * t + A4) * t + A3) * t + A2) * t + A1) * t;
    let y = (1.0 - poly * (-x * x).exp()).clamp(0.0, 1.0);
    sign * y
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Standard normal probability density at `z`.
pub fn normal_pdf(z: f64) -> f64 {
    FRAC_1_SQRT_2PI * (-0.5 * z * z).exp()
}

/// Standard normal cumulative distribution `Phi(z)`.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / SQRT_2))
}

/// Inverse of the standard normal cdf (the probit function).
///
/// Acklam's rational approximation with one Halley refinement step, accurate
/// to ~1e-13 over `p in (0, 1)`. Returns `-INF`/`+INF` at the endpoints.
pub fn normal_quantile(p: f64) -> f64 {
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }

    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_24,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the forward cdf.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.520_499_877_8),
            (1.0, 0.842_700_792_9),
            (2.0, 0.995_322_265_0),
            (3.0, 0.999_977_909_5),
            (-1.0, -0.842_700_792_9),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 2e-7,
                "erf({x}) = {} want {want}",
                erf(x)
            );
        }
    }

    #[test]
    fn erf_is_odd_and_bounded() {
        for i in 0..200 {
            let x = -5.0 + i as f64 * 0.05;
            assert!((erf(x) + erf(-x)).abs() < 1e-12);
            assert!(erf(x).abs() <= 1.0);
        }
    }

    #[test]
    fn erfc_complements() {
        for x in [-2.0, -0.3, 0.0, 0.7, 2.5] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_cdf_reference_values() {
        let cases = [
            (0.0, 0.5),
            (1.0, 0.841_344_746_1),
            (-1.0, 0.158_655_253_9),
            (1.959_964, 0.975),
            (-2.575_829, 0.005),
        ];
        for (z, want) in cases {
            assert!(
                (normal_cdf(z) - want).abs() < 1e-6,
                "Phi({z}) = {} want {want}",
                normal_cdf(z)
            );
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for i in 1..200 {
            let p = i as f64 / 200.0;
            let z = normal_quantile(p);
            assert!(
                (normal_cdf(z) - p).abs() < 1e-7,
                "Phi(Phi^-1({p})) = {}",
                normal_cdf(z)
            );
        }
    }

    #[test]
    fn quantile_endpoints() {
        assert_eq!(normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(normal_quantile(1.0), f64::INFINITY);
        assert!((normal_quantile(0.5)).abs() < 1e-9);
    }

    #[test]
    fn pdf_is_symmetric_and_peaks_at_zero() {
        assert!((normal_pdf(0.0) - FRAC_1_SQRT_2PI).abs() < 1e-15);
        for z in [0.5, 1.0, 2.2] {
            assert!((normal_pdf(z) - normal_pdf(-z)).abs() < 1e-15);
            assert!(normal_pdf(z) < normal_pdf(0.0));
        }
    }
}
