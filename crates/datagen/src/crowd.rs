//! Crowd roster presets: named worker populations for the quality-layer
//! experiments, deterministic in the run seed like the dataset
//! [`crate::scenarios`].
//!
//! The paper's evaluation assumes one uniform worker accuracy `eta`;
//! the `ctk-quality` experiments need the populations that break the
//! assumption — spammer-contaminated pools, churning rosters, and
//! gold-calibrated setups. These presets are the single source of those
//! rosters for `bench_pr7`, the `adversarial_crowd` example and the
//! integration tests, so every harness argues about the same crowds.

use ctk_crowd::Question;
use ctk_quality::WorkerSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A roster of `size` workers where `spammer_fraction` of them (rounded,
/// placed at the end of the roster) answer near or below chance while
/// the rest are reliable experts. Experts are priced at 3 votes' worth
/// per vote, spammers at 1 — the cost asymmetry the margin router
/// exploits.
///
/// Accuracies are drawn deterministically from the seed: experts in
/// `[0.85, 0.97)`, spammers in `[0.35, 0.55)` (some are systematically
/// wrong, not merely random). `spammer_fraction` is clamped to `[0, 1]`;
/// a zero `size` yields an empty roster that `QualityCrowd::new`
/// rejects.
pub fn spammer_pool(size: usize, spammer_fraction: f64, seed: u64) -> Vec<WorkerSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let frac = if spammer_fraction.is_nan() {
        0.0
    } else {
        spammer_fraction.clamp(0.0, 1.0)
    };
    let spammers = ((size as f64) * frac).round() as usize;
    let reliable = size.saturating_sub(spammers);
    (0..size)
        .map(|i| {
            if i < reliable {
                WorkerSpec::new(rng.gen_range(0.85..0.97)).with_cost(3)
            } else {
                WorkerSpec::new(rng.gen_range(0.35..0.55))
            }
        })
        .collect()
}

/// A churning roster: `size` reliable workers on staggered activity
/// shifts over `[0, horizon)` pool questions. Each worker is active for
/// two thirds of the horizon, with start offsets spread evenly so
/// roughly two thirds of the roster is active at any tick and the
/// active subset rotates — membership changes mid-run without ever
/// leaving the pool empty.
pub fn churn_pool(size: usize, horizon: u64, seed: u64) -> Vec<WorkerSpec> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00);
    let horizon = horizon.max(3);
    let shift = (horizon * 2) / 3;
    (0..size)
        .map(|i| {
            let join = if size <= 1 {
                0
            } else {
                // Even stagger across the third of the horizon not
                // covered by a shift starting at 0.
                (horizon - shift) * i as u64 / (size as u64 - 1).max(1)
            };
            WorkerSpec::new(rng.gen_range(0.8..0.95)).with_window(join, join + shift)
        })
        .collect()
}

/// A spammer-contaminated roster plus the balanced gold question set
/// that calibrates it: feed the questions to
/// `QualityCrowd::calibrate_gold` before live asks and the estimator
/// starts from graded evidence instead of the nominal prior.
///
/// The gold set cycles over the ordered pairs of an `n_items`-tuple
/// table, alternating orientations so the true answers are a mix of yes
/// and no — agreement statistics (Fleiss' kappa, Dawid–Skene) degrade
/// on one-category gold sets. `reps` controls how many gold questions
/// per worker-facing pair are emitted in total.
pub fn gold_calibrated(
    size: usize,
    spammer_fraction: f64,
    n_items: u32,
    reps: usize,
    seed: u64,
) -> (Vec<WorkerSpec>, Vec<Question>) {
    let specs = spammer_pool(size, spammer_fraction, seed);
    (specs, gold_questions(n_items, reps))
}

/// The balanced gold question set of [`gold_calibrated`], standalone:
/// `reps` passes over every unordered pair of `n_items` tuples, flipping
/// the orientation on every other question.
pub fn gold_questions(n_items: u32, reps: usize) -> Vec<Question> {
    let mut out = Vec::new();
    let mut flip = false;
    for _ in 0..reps {
        for i in 0..n_items {
            for j in 0..i {
                out.push(if flip {
                    Question::new(j, i)
                } else {
                    Question::new(i, j)
                });
                flip = !flip;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spammer_pool_splits_and_prices_the_roster() {
        let specs = spammer_pool(8, 0.25, 7);
        assert_eq!(specs.len(), 8);
        let (experts, spammers) = specs.split_at(6);
        for s in experts {
            assert!(s.accuracy() >= 0.85 && s.accuracy() < 0.97);
            assert_eq!(s.cost(), 3);
        }
        for s in spammers {
            assert!(s.accuracy() >= 0.35 && s.accuracy() < 0.55);
            assert_eq!(s.cost(), 1);
        }
        assert_eq!(specs, spammer_pool(8, 0.25, 7), "seed-deterministic");
        assert_ne!(specs, spammer_pool(8, 0.25, 8));
    }

    #[test]
    fn spammer_pool_handles_degenerate_inputs() {
        assert!(spammer_pool(0, 0.5, 0).is_empty());
        assert!(spammer_pool(4, f64::NAN, 0)
            .iter()
            .all(|s| s.accuracy() >= 0.85));
        assert!(spammer_pool(4, 7.0, 0).iter().all(|s| s.accuracy() < 0.55));
    }

    #[test]
    fn churn_pool_staggers_overlapping_shifts() {
        let specs = churn_pool(6, 300, 1);
        assert_eq!(specs.len(), 6);
        let windows: Vec<(u64, u64)> = specs
            .iter()
            .map(|s| s.window().expect("churn workers have windows"))
            .collect();
        assert_eq!(windows[0].0, 0, "someone covers the opening tick");
        assert_eq!(windows[5].1, 300, "someone covers the closing tick");
        for w in &windows {
            assert_eq!(w.1 - w.0, 200, "two-thirds shifts");
        }
        // Every tick of the horizon has at least one active worker.
        for t in 0..300u64 {
            assert!(
                windows.iter().any(|&(j, l)| j <= t && t < l),
                "tick {t} uncovered"
            );
        }
        assert_eq!(specs, churn_pool(6, 300, 1));
    }

    #[test]
    fn gold_questions_are_balanced_and_cover_all_pairs() {
        let gold = gold_questions(5, 2);
        assert_eq!(gold.len(), 2 * 10);
        let flipped = gold.iter().filter(|q| q.i < q.j).count();
        assert_eq!(flipped, gold.len() / 2, "orientations alternate");
        let (specs, same_gold) = gold_calibrated(6, 0.5, 5, 2, 3);
        assert_eq!(specs, spammer_pool(6, 0.5, 3));
        assert_eq!(same_gold, gold);
    }
}
