//! Service-level observability: throughput, latency and cache economics.
//!
//! Latency is tracked in a deterministic fixed-bucket histogram (bucket
//! `i` holds latencies below `2^i` µs), so `latency_p50/p95/p99` report a
//! bucket upper bound — coarse but allocation-free, mergeable, and stable
//! across runs with the same bucket layout. Per-shard counters feed
//! [`ServiceMetrics::shard_imbalance`], the load-skew signal of the
//! shard-owned serving core (DESIGN.md §14).

use std::time::Duration;

/// Power-of-two µs buckets: bucket `i` covers latencies `< 2^i` µs. 40
/// buckets reach ~12.7 days — everything above clamps into the last one.
const LATENCY_BUCKETS: usize = 40;

/// Counters and timings accumulated over a service's lifetime.
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    /// Sessions accepted by `submit`.
    pub submitted: u64,
    /// Sessions that finished with a report.
    pub completed: u64,
    /// Sessions that ended in a driver error.
    pub failed: u64,
    /// Sessions whose round was cut short by an exhausted crowd at least
    /// once (they still complete, with fewer questions than budgeted).
    pub starved: u64,
    /// Scheduling rounds executed (tick mode: ticks; event mode: pump
    /// sweeps that made progress).
    pub rounds: u64,
    /// Worker threads the round loop shards gather/feed work over (1 =
    /// the sequential loop; reports are identical at every setting).
    pub worker_threads: usize,
    /// Answers delivered to sessions (cached + live).
    pub answers_served: u64,
    /// Questions actually posed to the crowd backend.
    pub crowd_questions: u64,
    /// Answers served from the cross-session answer cache.
    pub cache_hits: u64,
    /// Live questions hinted to expert panels (narrow belief margin;
    /// stays 0 without a configured `QuestionRouter`).
    pub routed_expert: u64,
    /// Live questions hinted to cheap panels (wide belief margin).
    pub routed_cheap: u64,
    /// Possible worlds sampled across all completed sessions' initial
    /// builds (adaptive builds draw fewer on easy tables; certain-order
    /// early stops draw zero).
    pub worlds_drawn: u64,
    /// Completed sessions whose certain/possible bounds pinned the whole
    /// ordered prefix before sampling — decided without any crowd
    /// questions or worlds.
    pub certain_early_stops: u64,
    /// Events drained from the shards' ready-queues (lifecycle markers
    /// only in tick mode; the full event taxonomy in event mode).
    pub events_processed: u64,
    /// Budget-grant units the reconciler issued to shards (0 until a
    /// session parks on an exhausted grant; tick mode grants implicitly
    /// at purchase time, counted in the shard ledgers instead).
    pub budget_granted: u64,
    /// Wall time spent inside the run loop (selection, crowd calls,
    /// updates).
    pub serving_time: Duration,
    /// Wall time spent resolving questions against cache + crowd — the
    /// purchase phase the sharded refactor exists to unblock, broken out
    /// so benches can compare it against the PR 4 baseline.
    pub purchase_time: Duration,
    /// Threaded topology only: wall time the coordinator spent blocked on
    /// an empty request channel — waiting for some worker to either reach
    /// its next purchase or finish its sweep. High stall with low
    /// purchase time means the workers, not the barrier, are the
    /// bottleneck (the healthy shape).
    pub coordinator_stall: Duration,
    /// Threaded topology only: messages the coordinator exchanged with
    /// the shard workers (requests received + resolutions replied).
    pub channel_messages: u64,
    /// Threaded topology only: most requests drained from one shard's
    /// channel without blocking — a lower-bound depth gauge for the
    /// request queues (how far workers ran ahead of the barrier).
    pub channel_backlog_max: u64,
    latency_sum: Duration,
    latency_max: Duration,
    latency_count: u64,
    latency_hist: Vec<u64>,
    shard_answers: Vec<u64>,
    shard_completed: Vec<u64>,
    shard_sweep_time: Vec<Duration>,
}

/// Adds `other` into `mine` element-wise, growing `mine` if needed.
fn merge_counts(mine: &mut Vec<u64>, other: &[u64]) {
    if mine.len() < other.len() {
        mine.resize(other.len(), 0);
    }
    for (m, o) in mine.iter_mut().zip(other) {
        *m += o;
    }
}

/// The histogram bucket `latency` falls into.
fn bucket_index(latency: Duration) -> usize {
    let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
    let idx = (u64::BITS - micros.leading_zeros()) as usize;
    idx.min(LATENCY_BUCKETS - 1)
}

impl ServiceMetrics {
    /// Sizes the per-shard counters (service construction time).
    pub(crate) fn init_shards(&mut self, shards: usize) {
        self.shard_answers = vec![0; shards];
        self.shard_completed = vec![0; shards];
        self.shard_sweep_time = vec![Duration::ZERO; shards];
    }

    /// Credits `n` delivered answers to `shard`.
    pub(crate) fn record_shard_answers(&mut self, shard: usize, n: u64) {
        if let Some(slot) = self.shard_answers.get_mut(shard) {
            *slot += n;
        }
    }

    /// Credits one completed session to `shard`.
    pub(crate) fn record_shard_completed(&mut self, shard: usize) {
        if let Some(slot) = self.shard_completed.get_mut(shard) {
            *slot += 1;
        }
    }

    /// Credits one sweep's wall time to `shard` (threaded topology).
    pub(crate) fn record_shard_sweep(&mut self, shard: usize, took: Duration) {
        if let Some(slot) = self.shard_sweep_time.get_mut(shard) {
            *slot += took;
        }
    }

    /// Folds another accumulation into this one — the threaded
    /// coordinator merges each worker's shard-local deltas in shard
    /// order. Counters and durations add, maxima take the max, per-shard
    /// vectors add element-wise (sized to the longer side), and
    /// `worker_threads` (a configuration echo, not a counter) is kept.
    pub(crate) fn merge(&mut self, other: &ServiceMetrics) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.failed += other.failed;
        self.starved += other.starved;
        self.rounds += other.rounds;
        self.answers_served += other.answers_served;
        self.crowd_questions += other.crowd_questions;
        self.cache_hits += other.cache_hits;
        self.routed_expert += other.routed_expert;
        self.routed_cheap += other.routed_cheap;
        self.worlds_drawn += other.worlds_drawn;
        self.certain_early_stops += other.certain_early_stops;
        self.events_processed += other.events_processed;
        self.budget_granted += other.budget_granted;
        self.serving_time += other.serving_time;
        self.purchase_time += other.purchase_time;
        self.coordinator_stall += other.coordinator_stall;
        self.channel_messages += other.channel_messages;
        self.channel_backlog_max = self.channel_backlog_max.max(other.channel_backlog_max);
        self.latency_sum += other.latency_sum;
        self.latency_max = self.latency_max.max(other.latency_max);
        self.latency_count += other.latency_count;
        if !other.latency_hist.is_empty() {
            if self.latency_hist.is_empty() {
                self.latency_hist = vec![0; LATENCY_BUCKETS];
            }
            for (mine, theirs) in self.latency_hist.iter_mut().zip(&other.latency_hist) {
                *mine += theirs;
            }
        }
        merge_counts(&mut self.shard_answers, &other.shard_answers);
        merge_counts(&mut self.shard_completed, &other.shard_completed);
        if self.shard_sweep_time.len() < other.shard_sweep_time.len() {
            self.shard_sweep_time
                .resize(other.shard_sweep_time.len(), Duration::ZERO);
        }
        for (mine, theirs) in self
            .shard_sweep_time
            .iter_mut()
            .zip(&other.shard_sweep_time)
        {
            *mine += *theirs;
        }
    }

    /// Records one finished session's enqueue-to-done latency.
    pub(crate) fn record_latency(&mut self, latency: Duration) {
        self.latency_sum += latency;
        self.latency_max = self.latency_max.max(latency);
        self.latency_count += 1;
        if self.latency_hist.is_empty() {
            self.latency_hist = vec![0; LATENCY_BUCKETS];
        }
        self.latency_hist[bucket_index(latency)] += 1;
    }

    /// Answers delivered per shard (empty before the first submit).
    pub fn shard_answers(&self) -> &[u64] {
        &self.shard_answers
    }

    /// Sessions completed per shard.
    pub fn shard_completed(&self) -> &[u64] {
        &self.shard_completed
    }

    /// Cumulative sweep wall time per shard (all zero outside the
    /// threaded topology, where sweeps have no per-shard boundary).
    pub fn shard_sweep_time(&self) -> &[Duration] {
        &self.shard_sweep_time
    }

    /// Load skew across shards: busiest shard's delivered answers over
    /// the per-shard mean. `1.0` is perfectly balanced; `n` means one
    /// shard did the work of `n`. Degenerate cases (≤ 1 shard, nothing
    /// served) report `1.0`.
    pub fn shard_imbalance(&self) -> f64 {
        let total: u64 = self.shard_answers.iter().sum();
        let n = self.shard_answers.len();
        if n <= 1 || total == 0 {
            return 1.0;
        }
        let busiest = self.shard_answers.iter().copied().max().unwrap_or(0);
        busiest as f64 * n as f64 / total as f64
    }

    /// The latency below which `p` of finished sessions completed, as the
    /// histogram bucket's upper bound (power-of-two µs). `None` before
    /// the first completion.
    fn latency_percentile(&self, p: f64) -> Option<Duration> {
        if self.latency_count == 0 {
            return None;
        }
        let rank = ((p * self.latency_count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &count) in self.latency_hist.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(Duration::from_micros(1u64 << i.min(62)));
            }
        }
        Some(self.latency_max)
    }

    /// Median enqueue-to-done latency (histogram bucket upper bound).
    pub fn latency_p50(&self) -> Option<Duration> {
        self.latency_percentile(0.50)
    }

    /// 95th-percentile enqueue-to-done latency.
    pub fn latency_p95(&self) -> Option<Duration> {
        self.latency_percentile(0.95)
    }

    /// 99th-percentile enqueue-to-done latency.
    pub fn latency_p99(&self) -> Option<Duration> {
        self.latency_percentile(0.99)
    }

    /// Fraction of delivered answers that never touched the crowd.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.answers_served == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.answers_served as f64
        }
    }

    /// Crowd budget saved by deduplication, in questions.
    pub fn questions_saved(&self) -> u64 {
        self.cache_hits
    }

    /// Mean enqueue-to-done latency over finished sessions.
    pub fn avg_latency(&self) -> Option<Duration> {
        (self.latency_count > 0).then(|| self.latency_sum / self.latency_count as u32)
    }

    /// Worst enqueue-to-done latency.
    pub fn max_latency(&self) -> Option<Duration> {
        (self.latency_count > 0).then_some(self.latency_max)
    }

    /// Answers delivered per second of serving time.
    pub fn answers_per_sec(&self) -> f64 {
        let secs = self.serving_time.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.answers_served as f64 / secs
        }
    }

    /// Sessions completed per second of serving time.
    pub fn sessions_per_sec(&self) -> f64 {
        let secs = self.serving_time.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// One-paragraph human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "sessions: {} submitted, {} completed, {} failed, {} starved | \
             rounds: {} ({} worker threads, {} shards, imbalance {:.2}) | \
             answers: {} served ({} live, {} cached, {:.1}% hit rate) | \
             routing: {} expert, {} cheap | \
             precision: {} worlds drawn, {} certain early stops | \
             events: {} drained, {} budget units granted | \
             throughput: {:.0} answers/s, {:.1} sessions/s | \
             latency avg {:?} p50 {:?} p95 {:?} p99 {:?} max {:?} | \
             purchase {:?} of {:?} serving | \
             barrier: stall {:?}, {} messages, backlog {}, busiest sweep {:?}",
            self.submitted,
            self.completed,
            self.failed,
            self.starved,
            self.rounds,
            self.worker_threads.max(1),
            self.shard_answers.len().max(1),
            self.shard_imbalance(),
            self.answers_served,
            self.crowd_questions,
            self.cache_hits,
            100.0 * self.cache_hit_rate(),
            self.routed_expert,
            self.routed_cheap,
            self.worlds_drawn,
            self.certain_early_stops,
            self.events_processed,
            self.budget_granted,
            self.answers_per_sec(),
            self.sessions_per_sec(),
            self.avg_latency().unwrap_or_default(),
            self.latency_p50().unwrap_or_default(),
            self.latency_p95().unwrap_or_default(),
            self.latency_p99().unwrap_or_default(),
            self.max_latency().unwrap_or_default(),
            self.purchase_time,
            self.serving_time,
            self.coordinator_stall,
            self.channel_messages,
            self.channel_backlog_max,
            self.shard_sweep_time
                .iter()
                .copied()
                .max()
                .unwrap_or_default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let m = ServiceMetrics::default();
        assert_eq!(m.cache_hit_rate(), 0.0);
        assert_eq!(m.answers_per_sec(), 0.0);
        assert_eq!(m.sessions_per_sec(), 0.0);
        assert!(m.avg_latency().is_none());
        assert!(m.max_latency().is_none());
        assert!(m.latency_p50().is_none());
        assert!(m.latency_p99().is_none());
        assert_eq!(m.shard_imbalance(), 1.0);
    }

    #[test]
    fn latency_aggregation() {
        let mut m = ServiceMetrics::default();
        m.record_latency(Duration::from_millis(10));
        m.record_latency(Duration::from_millis(30));
        assert_eq!(m.avg_latency(), Some(Duration::from_millis(20)));
        assert_eq!(m.max_latency(), Some(Duration::from_millis(30)));
    }

    #[test]
    fn histogram_percentiles_hit_the_right_buckets() {
        let mut m = ServiceMetrics::default();
        // 98 fast sessions (~100µs), one slow (~50ms), one very slow
        // (~3s): p50 stays in the fast bucket, p99 reaches the slow one,
        // and the max is not a bucket bound but the true maximum.
        for _ in 0..98 {
            m.record_latency(Duration::from_micros(100));
        }
        m.record_latency(Duration::from_millis(50));
        m.record_latency(Duration::from_secs(3));
        // 100µs < 2^7 µs = 128µs.
        assert_eq!(m.latency_p50(), Some(Duration::from_micros(128)));
        assert_eq!(m.latency_p95(), Some(Duration::from_micros(128)));
        // 50ms < 2^16 µs = 65.536ms.
        assert_eq!(m.latency_p99(), Some(Duration::from_micros(1 << 16)));
        assert_eq!(m.max_latency(), Some(Duration::from_secs(3)));
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        let mut m = ServiceMetrics::default();
        for i in 0..200u64 {
            m.record_latency(Duration::from_micros(1 + i * 37));
        }
        let (p50, p95, p99) = (
            m.latency_p50().unwrap(),
            m.latency_p95().unwrap(),
            m.latency_p99().unwrap(),
        );
        assert!(p50 <= p95 && p95 <= p99, "{p50:?} {p95:?} {p99:?}");
    }

    #[test]
    fn shard_imbalance_reads_the_skew() {
        let mut m = ServiceMetrics::default();
        m.init_shards(4);
        assert_eq!(m.shard_imbalance(), 1.0, "nothing served yet");
        for shard in 0..4 {
            m.record_shard_answers(shard, 10);
        }
        assert_eq!(m.shard_imbalance(), 1.0, "perfectly balanced");
        m.record_shard_answers(0, 40);
        // Shard 0 served 50 of 80: busiest/mean = 50 / 20 = 2.5.
        assert!((m.shard_imbalance() - 2.5).abs() < 1e-12);
        assert_eq!(m.shard_answers(), &[50, 10, 10, 10]);
        // Out-of-range shards are ignored, not a panic.
        m.record_shard_answers(99, 1);
        m.record_shard_completed(99);
        assert_eq!(m.shard_completed(), &[0, 0, 0, 0]);
    }

    #[test]
    fn merge_adds_counters_and_respects_maxima() {
        let mut a = ServiceMetrics {
            completed: 2,
            answers_served: 10,
            cache_hits: 3,
            channel_messages: 5,
            channel_backlog_max: 4,
            serving_time: Duration::from_millis(10),
            ..ServiceMetrics::default()
        };
        a.init_shards(2);
        a.record_shard_answers(0, 7);
        a.record_latency(Duration::from_millis(2));
        a.record_shard_sweep(1, Duration::from_millis(5));
        let mut b = ServiceMetrics {
            completed: 1,
            answers_served: 4,
            channel_backlog_max: 2,
            ..ServiceMetrics::default()
        };
        b.init_shards(2);
        b.record_shard_answers(1, 4);
        b.record_latency(Duration::from_millis(8));
        b.record_shard_sweep(1, Duration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.completed, 3);
        assert_eq!(a.answers_served, 14);
        assert_eq!(a.cache_hits, 3);
        assert_eq!(a.channel_messages, 5);
        assert_eq!(a.channel_backlog_max, 4, "backlog merges by max");
        assert_eq!(a.shard_answers(), &[7, 4]);
        assert_eq!(
            a.shard_sweep_time(),
            &[Duration::ZERO, Duration::from_millis(6)]
        );
        assert_eq!(a.max_latency(), Some(Duration::from_millis(8)));
        assert_eq!(a.avg_latency(), Some(Duration::from_millis(5)));
        // Percentiles see both recordings after the histogram merge.
        assert!(a.latency_p99().unwrap() >= Duration::from_millis(8));
    }

    #[test]
    fn merge_into_default_adopts_the_other_side() {
        let mut base = ServiceMetrics::default();
        let mut delta = ServiceMetrics::default();
        delta.init_shards(3);
        delta.record_shard_answers(2, 9);
        delta.record_latency(Duration::from_millis(1));
        base.merge(&delta);
        assert_eq!(base.shard_answers(), &[0, 0, 9]);
        assert_eq!(base.latency_p50(), delta.latency_p50());
    }

    #[test]
    fn summary_mentions_the_headline_numbers() {
        let mut m = ServiceMetrics {
            submitted: 32,
            completed: 32,
            answers_served: 100,
            cache_hits: 40,
            crowd_questions: 60,
            ..ServiceMetrics::default()
        };
        m.record_latency(Duration::from_millis(5));
        let s = m.summary();
        assert!(s.contains("32 submitted"));
        assert!(s.contains("40.0% hit rate"));
        assert!(s.contains("p95"));
        assert!(s.contains("imbalance"));
    }
}
