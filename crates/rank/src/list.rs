//! Ordered rank lists.
//!
//! A [`RankList`] is a sequence of distinct item ids, best first. It can be
//! a full permutation of a universe or a *top-k list* (a prefix of some
//! unknown full ranking), which is exactly what a root-to-leaf path of the
//! paper's TPO is.

use crate::error::{RankError, Result};
use std::fmt;

/// An ordered list of distinct item ids (rank 0 = best).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RankList {
    items: Vec<u32>,
}

impl RankList {
    /// Builds a rank list; fails if any item repeats.
    pub fn new(items: Vec<u32>) -> Result<Self> {
        // ctk-allow(det-hash-collection): membership-only duplicate check; never iterated
        let mut seen = std::collections::HashSet::with_capacity(items.len());
        for &it in &items {
            if !seen.insert(it) {
                return Err(RankError::DuplicateItem(it));
            }
        }
        Ok(Self { items })
    }

    /// Builds without the duplicate check — for callers that already
    /// guarantee distinctness (e.g. TPO paths, permutation generators).
    pub fn new_unchecked(items: Vec<u32>) -> Self {
        debug_assert!(
            {
                let mut s = items.clone();
                s.sort_unstable();
                s.windows(2).all(|w| w[0] != w[1])
            },
            "RankList::new_unchecked got duplicates"
        );
        Self { items }
    }

    /// The identity permutation `0, 1, …, n-1`.
    pub fn identity(n: usize) -> Self {
        Self {
            items: (0..n as u32).collect(),
        }
    }

    /// Number of ranked items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no items are ranked.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The ranked items, best first.
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    /// Rank (0-based) of `item`, if present. Linear scan: rank lists in this
    /// system are top-K prefixes with K ≤ a few dozen.
    pub fn position(&self, item: u32) -> Option<usize> {
        self.items.iter().position(|&x| x == item)
    }

    /// True if `item` is ranked.
    pub fn contains(&self, item: u32) -> bool {
        self.position(item).is_some()
    }

    /// The first `k` entries as a new list.
    pub fn prefix(&self, k: usize) -> RankList {
        Self {
            items: self.items[..k.min(self.items.len())].to_vec(),
        }
    }

    /// True if `a` is ranked strictly higher (earlier) than `b`.
    /// Returns `None` unless both are present.
    pub fn prefers(&self, a: u32, b: u32) -> Option<bool> {
        match (self.position(a), self.position(b)) {
            (Some(pa), Some(pb)) => Some(pa < pb),
            _ => None,
        }
    }

    /// Consumes the list, returning the underlying vector.
    pub fn into_items(self) -> Vec<u32> {
        self.items
    }
}

impl fmt::Display for RankList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, it) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, " ≻ ")?;
            }
            write!(f, "t{it}")?;
        }
        write!(f, "]")
    }
}

impl From<RankList> for Vec<u32> {
    fn from(l: RankList) -> Self {
        l.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_duplicates() {
        assert!(matches!(
            RankList::new(vec![1, 2, 1]),
            Err(RankError::DuplicateItem(1))
        ));
        assert!(RankList::new(vec![]).is_ok());
        assert!(RankList::new(vec![5]).is_ok());
    }

    #[test]
    fn identity_and_accessors() {
        let l = RankList::identity(4);
        assert_eq!(l.len(), 4);
        assert!(!l.is_empty());
        assert_eq!(l.items(), &[0, 1, 2, 3]);
        assert_eq!(l.position(2), Some(2));
        assert_eq!(l.position(9), None);
        assert!(l.contains(0));
        assert!(!l.contains(4));
    }

    #[test]
    fn prefers_semantics() {
        let l = RankList::new(vec![3, 1, 2]).unwrap();
        assert_eq!(l.prefers(3, 2), Some(true));
        assert_eq!(l.prefers(2, 3), Some(false));
        assert_eq!(l.prefers(3, 9), None);
    }

    #[test]
    fn prefix_truncates() {
        let l = RankList::new(vec![3, 1, 2]).unwrap();
        assert_eq!(l.prefix(2).items(), &[3, 1]);
        assert_eq!(l.prefix(10).items(), &[3, 1, 2]);
        assert!(l.prefix(0).is_empty());
    }

    #[test]
    fn display_is_readable() {
        let l = RankList::new(vec![2, 0]).unwrap();
        assert_eq!(format!("{l}"), "[t2 ≻ t0]");
    }
}
