//! Theorem 3.1: *no deterministic UR algorithm is optimal* — a concrete,
//! exhaustively verified witness.
//!
//! Take 3 i.i.d. tuples (all 6 orderings possible, K = 3). Every ordering
//! `ω` has a 2-question certificate (its two adjacent comparisons imply
//! the third by transitivity), so an optimal algorithm would resolve
//! *every* realized ordering with 2 questions. But any deterministic
//! adaptive strategy is a binary decision tree of depth 2 with at most 4
//! leaves — it cannot distinguish 6 orderings. Hence for every strategy
//! some realized ordering needs a third question: no deterministic
//! algorithm matches the per-ordering optimum.

use crowd_topk::prob::{ScoreDist, UncertainTable};
use crowd_topk::tpo::build::{build_exact, ExactConfig};
use crowd_topk::tpo::prune::prune;
use crowd_topk::tpo::PathSet;

/// All pairwise questions over 3 tuples, as (i, j) with i < j.
const QUESTIONS: [(u32, u32); 3] = [(0, 1), (0, 2), (1, 2)];

fn iid_table() -> UncertainTable {
    UncertainTable::new(vec![
        ScoreDist::uniform(0.0, 1.0).unwrap(),
        ScoreDist::uniform(0.0, 1.0).unwrap(),
        ScoreDist::uniform(0.0, 1.0).unwrap(),
    ])
    .unwrap()
}

fn full_tpo() -> PathSet {
    build_exact(&iid_table(), 3, &ExactConfig::default()).unwrap()
}

fn answer_for(ordering: &[u32], i: u32, j: u32) -> bool {
    let pi = ordering.iter().position(|&x| x == i).unwrap();
    let pj = ordering.iter().position(|&x| x == j).unwrap();
    pi < pj
}

#[test]
fn all_six_orderings_are_possible() {
    let ps = full_tpo();
    assert_eq!(ps.len(), 6, "i.i.d. scores admit every ordering");
}

#[test]
fn every_ordering_has_a_two_question_certificate() {
    let ps = full_tpo();
    for path in ps.paths() {
        let omega = &path.items;
        // The two adjacent comparisons of omega certify it.
        let q1 = (omega[0], omega[1]);
        let q2 = (omega[1], omega[2]);
        let (after1, _) = prune(&ps, q1.0, q1.1, true, 0.5).unwrap();
        let (after2, _) = prune(&after1, q2.0, q2.1, true, 0.5).unwrap();
        assert!(
            after2.is_resolved(),
            "ordering {omega:?} not resolved by its certificate"
        );
        assert_eq!(&after2.paths()[0].items, omega);
    }
}

#[test]
fn no_deterministic_strategy_resolves_all_orderings_in_two_questions() {
    let ps = full_tpo();
    let orderings: Vec<Vec<u32>> = ps.paths().iter().map(|p| p.items.clone()).collect();

    // Enumerate every deterministic depth-2 adaptive strategy: a first
    // question, then a (possibly different) second question per answer.
    let mut some_strategy_fails = true;
    for &first in &QUESTIONS {
        for &second_if_yes in &QUESTIONS {
            for &second_if_no in &QUESTIONS {
                // Does this strategy resolve every realized ordering?
                let resolves_all = orderings.iter().all(|omega| {
                    let a1 = answer_for(omega, first.0, first.1);
                    let (after1, _) =
                        prune(&ps, first.0, first.1, a1, 0.5).expect("consistent answer");
                    let second = if a1 { second_if_yes } else { second_if_no };
                    if second == first {
                        return after1.is_resolved();
                    }
                    let a2 = answer_for(omega, second.0, second.1);
                    match prune(&after1, second.0, second.1, a2, 0.5) {
                        Ok((after2, _)) => after2.is_resolved(),
                        Err(_) => false,
                    }
                });
                if resolves_all {
                    some_strategy_fails = false;
                }
            }
        }
    }
    assert!(
        some_strategy_fails,
        "a depth-2 deterministic strategy distinguished 6 orderings with 4 leaves"
    );
}

#[test]
fn counting_argument_holds() {
    // The information-theoretic core of the theorem: 2 binary answers give
    // at most 4 distinguishable outcomes < 6 orderings, while each single
    // ordering needs only 2 answers once known.
    let ps = full_tpo();
    assert!(ps.len() > 4);
}
