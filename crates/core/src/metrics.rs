//! Evaluation metrics: how close the belief state is to the hidden real
//! ordering `ω_r`. These are *evaluation-only* quantities — selection
//! algorithms never see the ground truth.

use ctk_rank::topk::topk_distance;
use ctk_rank::RankList;
use ctk_tpo::PathSet;

/// The paper's headline metric `D(ω_r, T_K)` (Fig. 1(a)): the expected
/// normalized top-k Kendall distance between the real top-k and the
/// orderings of the tree,
/// `D = Σ_ω Pr(ω) · d(ω, ω_r@K)`.
pub fn expected_distance_to_truth(ps: &PathSet, truth_topk: &RankList) -> f64 {
    ps.paths()
        .iter()
        .map(|p| p.prob * topk_distance(&p.rank_list(), truth_topk))
        .sum()
}

/// Distance of the single reported result (the MPO) to the real top-k —
/// what a user consuming the query answer would experience.
pub fn mpo_distance_to_truth(ps: &PathSet, truth_topk: &RankList) -> f64 {
    topk_distance(&ps.most_probable().rank_list(), truth_topk)
}

/// Set-precision of the MPO: fraction of reported top-k members that are
/// truly in the top-k (ignores order).
pub fn mpo_set_precision(ps: &PathSet, truth_topk: &RankList) -> f64 {
    let mpo = ps.most_probable();
    if mpo.items.is_empty() {
        return 1.0;
    }
    let hits = mpo
        .items
        .iter()
        .filter(|&&t| truth_topk.contains(t))
        .count();
    hits as f64 / mpo.items.len() as f64
}

/// Probability mass the belief assigns to exactly the real top-k ordering.
pub fn truth_mass(ps: &PathSet, truth_topk: &RankList) -> f64 {
    ps.paths()
        .iter()
        .filter(|p| p.items.as_slice() == truth_topk.items())
        .map(|p| p.prob)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> PathSet {
        PathSet::from_weighted(
            2,
            vec![(vec![0, 1], 0.6), (vec![1, 0], 0.3), (vec![0, 2], 0.1)],
        )
        .unwrap()
    }

    #[test]
    fn zero_distance_iff_certain_and_correct() {
        let truth = RankList::new(vec![0, 1]).unwrap();
        let certain = PathSet::from_weighted(2, vec![(vec![0, 1], 1.0)]).unwrap();
        assert_eq!(expected_distance_to_truth(&certain, &truth), 0.0);
        assert_eq!(mpo_distance_to_truth(&certain, &truth), 0.0);
        assert_eq!(mpo_set_precision(&certain, &truth), 1.0);
        assert_eq!(truth_mass(&certain, &truth), 1.0);
    }

    #[test]
    fn expected_distance_weights_by_probability() {
        let truth = RankList::new(vec![0, 1]).unwrap();
        let s = set();
        let d = expected_distance_to_truth(&s, &truth);
        // Path [0,1]: distance 0. Path [1,0]: reversal of same 2 items:
        // K^(1/2) = 1, max = 4 + 0.5*2 = 5 -> 0.2.
        // Path [0,2]: one overlap case: raw 1, normalized 1/5 = 0.2.
        let expect = 0.6 * 0.0 + 0.3 * 0.2 + 0.1 * 0.2;
        assert!((d - expect).abs() < 1e-12, "d = {d}, expect {expect}");
    }

    #[test]
    fn mpo_metrics() {
        let truth = RankList::new(vec![0, 1]).unwrap();
        let s = set();
        assert_eq!(mpo_distance_to_truth(&s, &truth), 0.0);
        assert_eq!(mpo_set_precision(&s, &truth), 1.0);
        assert!((truth_mass(&s, &truth) - 0.6).abs() < 1e-12);

        let other_truth = RankList::new(vec![2, 3]).unwrap();
        assert!(mpo_distance_to_truth(&s, &other_truth) > 0.5);
        assert_eq!(mpo_set_precision(&s, &other_truth), 0.0);
        assert_eq!(truth_mass(&s, &other_truth), 0.0);
    }

    #[test]
    fn distance_decreases_as_mass_concentrates_on_truth() {
        let truth = RankList::new(vec![0, 1]).unwrap();
        let diffuse = set();
        let sharp = PathSet::from_weighted(
            2,
            vec![(vec![0, 1], 0.95), (vec![1, 0], 0.04), (vec![0, 2], 0.01)],
        )
        .unwrap();
        assert!(
            expected_distance_to_truth(&sharp, &truth)
                < expected_distance_to_truth(&diffuse, &truth)
        );
    }
}
