//! Primitive field codecs: little-endian integers, bit-exact floats,
//! strict bools and options, length-prefixed strings.
//!
//! Floats travel as their IEEE-754 bit pattern (`f64::to_bits`, LE), so a
//! decoded value is *the same float*, NaN payloads included — the same
//! bit-exactness contract `UrReport::same_outcome` compares under.

use crate::error::WireError;
use crate::Result;

/// Append-only byte sink used by every `encode` impl.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Bit-exact `f64` (IEEE-754 bits, LE).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Strict bool: `0` or `1`.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Optional `f64`: presence flag then the bits.
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.f64(x);
            }
            None => self.bool(false),
        }
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Raw bytes, no prefix (caller wrote the length).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Cursor over a received byte slice. Every read is bounds-checked and
/// fails with [`WireError::Truncated`] — no slicing panics anywhere.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`WireError::TrailingGarbage`] unless every byte was
    /// consumed — strict mode for payload decoding.
    pub fn finish(&self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingGarbage {
                consumed: self.pos,
                total: self.buf.len(),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        match self.buf.get(self.pos..self.pos + n) {
            Some(slice) => {
                self.pos += n;
                Ok(slice)
            }
            None => Err(WireError::Truncated {
                needed: n,
                available: self.remaining(),
            }),
        }
    }

    /// One raw byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Bit-exact `f64`.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Strict bool: any byte other than `0`/`1` is malformed.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool byte not 0 or 1")),
        }
    }

    /// Optional `f64` (presence flag then bits).
    pub fn opt_f64(&mut self) -> Result<Option<f64>> {
        if self.bool()? {
            Ok(Some(self.f64()?))
        } else {
            Ok(None)
        }
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("string not UTF-8"))
    }

    /// Raw byte run of a caller-known length.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.bool(true);
        w.opt_f64(None);
        w.opt_f64(Some(1.5));
        w.str("tb-off");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert!(r.bool().unwrap());
        assert_eq!(r.opt_f64().unwrap(), None);
        assert_eq!(r.opt_f64().unwrap(), Some(1.5));
        assert_eq!(r.str().unwrap(), "tb-off");
        assert!(r.finish().is_ok());
    }

    #[test]
    fn truncation_reports_shortfall() {
        let mut r = Reader::new(&[1, 2]);
        match r.u32() {
            Err(WireError::Truncated { needed, available }) => {
                assert_eq!(needed, 4);
                assert_eq!(available, 2);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn bad_bool_is_malformed() {
        let mut r = Reader::new(&[2]);
        assert_eq!(r.bool(), Err(WireError::Malformed("bool byte not 0 or 1")));
    }

    #[test]
    fn unconsumed_bytes_are_trailing_garbage() {
        let mut r = Reader::new(&[1, 2, 3]);
        let _ = r.u8().unwrap();
        assert_eq!(
            r.finish(),
            Err(WireError::TrailingGarbage {
                consumed: 1,
                total: 3
            })
        );
    }
}
