//! Expected residual uncertainty (§III): the objective all question
//! selection strategies optimize.
//!
//! For a single question `q`, the expected residual uncertainty is
//!
//! ```text
//! R_q(T_K) = P(yes) · U(T_K | yes) + P(no) · U(T_K | no)
//! ```
//!
//! For a question *set* `Q` the expectation runs over joint answer
//! outcomes. Enumerating all `2^|Q|` outcomes is infeasible, but the
//! outcomes partition the path set into *answer-signature classes*
//! ([`AnswerPartition`]), and two sound prunings keep the class count
//! small:
//!
//! * a class with a single ordering is resolved — every measure assigns it
//!   zero uncertainty (a trait contract of
//!   [`UncertaintyMeasure`]), so it can be dropped outright;
//! * a question that no path of a class determines splits the class into
//!   two scaled copies whose contributions sum to the original — such
//!   questions are skipped for that class.
//!
//! The incremental partition is also what makes the conditional greedy
//! algorithm `C-off` cheap: the partition of the already-selected set is
//! refined once per round, and each candidate is scored with a one-step
//! lookahead over the existing classes (DESIGN.md §4).
//!
//! ## Hot-path representation
//!
//! This module is the inner loop of every greedy/`C-off` selection, so
//! the partition avoids the two allocation storms the naive layout pays
//! (DESIGN.md §8): path items are interned behind `Arc<[u32]>` — a class
//! split clones reference-counted pointers, never the item vectors — and
//! class uncertainties are evaluated through a scratch buffer that
//! recycles one `Vec<Path>` (items included) across every candidate of
//! every round, plus a per-class memo so unsplit classes are never
//! re-evaluated. All of it is bit-identical to the naive evaluation
//! (pinned by proptests against
//! [`AnswerPartition::expected_uncertainty_reference`]).

use crate::measures::UncertaintyMeasure;
use ctk_crowd::Question;
use ctk_prob::compare::PairwiseMatrix;
use ctk_tpo::answers::{implication, Implication};
use ctk_tpo::{Path, PathSet};
use std::cell::Cell;
use std::sync::Arc;

/// Minimum class mass worth tracking (classes below this carry no
/// measurable expectation weight).
const MASS_EPS: f64 = 1e-12;

/// Everything needed to evaluate residual uncertainty: the measure and the
/// pairwise marginals used to split paths that leave a question
/// undetermined.
pub struct ResidualCtx<'a> {
    /// The uncertainty measure `U`.
    pub measure: &'a dyn UncertaintyMeasure,
    /// Marginal pairwise probabilities `P(s_i > s_j)`.
    pub pairwise: &'a PairwiseMatrix,
}

impl<'a> ResidualCtx<'a> {
    /// Marginal `P(i above j)` used for undetermined splits.
    pub fn prior(&self, i: u32, j: u32) -> f64 {
        self.pairwise.pr(i as usize, j as usize)
    }
}

/// Probability that the crowd answers “yes” to `q` under the current path
/// distribution (undetermined paths weighted by the marginal prior).
pub fn answer_probability(ps: &PathSet, q: &Question, ctx: &ResidualCtx<'_>) -> f64 {
    let prior = ctx.prior(q.i, q.j);
    ps.paths()
        .iter()
        .map(|p| {
            p.prob
                * match implication(&p.items, q.i, q.j) {
                    Implication::Yes => 1.0,
                    Implication::No => 0.0,
                    Implication::Undetermined => prior,
                }
        })
        .sum()
}

/// One weighted ordering with interned items: splits clone the `Arc`, not
/// the vector.
#[derive(Debug, Clone)]
struct IPath {
    items: Arc<[u32]>,
    prob: f64,
}

/// One answer-signature class: a set of weighted paths consistent with one
/// joint answer outcome (mass = outcome probability; paths unnormalized).
#[derive(Debug, Clone)]
struct Class {
    paths: Vec<IPath>,
    mass: f64,
    /// Lazily memoized `U(class)`; classes are immutable once built, so
    /// the memo stays valid for the class's lifetime.
    memo: Cell<Option<f64>>,
}

impl Class {
    fn new(paths: Vec<IPath>, mass: f64) -> Self {
        Self {
            paths,
            mass,
            memo: Cell::new(None),
        }
    }

    fn uncertainty(
        &self,
        measure: &dyn UncertaintyMeasure,
        k: usize,
        scratch: &mut EvalScratch,
    ) -> f64 {
        if self.paths.len() <= 1 || self.mass <= MASS_EPS {
            return 0.0;
        }
        if let Some(u) = self.memo.get() {
            return u;
        }
        let u = scratch.eval(measure, k, &self.paths);
        self.memo.set(Some(u));
        u
    }

    /// The naive evaluation (fresh `PathSet` with deep-cloned items) —
    /// the reference the scratch path must match bit for bit.
    fn uncertainty_reference(&self, measure: &dyn UncertaintyMeasure, k: usize) -> f64 {
        if self.paths.len() <= 1 || self.mass <= MASS_EPS {
            return 0.0;
        }
        let set = PathSet::from_weighted(
            k,
            self.paths
                .iter()
                .map(|p| (p.items.to_vec(), p.prob))
                .collect(),
        )
        .expect("positive-mass class"); // ctk-allow(panic-unwrap): class mass was checked > 0 before grouping
        measure.uncertainty(&set)
    }
}

/// Reusable evaluation buffer: one `Vec<Path>` whose item vectors are
/// recycled across class evaluations, so scoring a candidate allocates
/// nothing once warm.
#[derive(Debug, Default)]
struct EvalScratch {
    buf: Vec<Path>,
}

impl EvalScratch {
    /// Evaluates `measure` on the normalized path set of `paths`,
    /// reproducing [`PathSet::from_weighted`]'s exact float operations
    /// (filter, canonical sort, one summation order, one division per
    /// path) so the result is bit-identical to the reference evaluation.
    fn eval(&mut self, measure: &dyn UncertaintyMeasure, k: usize, paths: &[IPath]) -> f64 {
        let mut buf = std::mem::take(&mut self.buf);
        buf.truncate(paths.len());
        let reused = buf.len();
        for (slot, p) in buf.iter_mut().zip(paths) {
            slot.items.clear();
            slot.items.extend_from_slice(&p.items);
            slot.prob = p.prob;
        }
        for p in &paths[reused..] {
            buf.push(Path {
                items: p.items.to_vec(),
                prob: p.prob,
            });
        }
        // ctk-allow(panic-unwrap): callers pass a non-empty positive-mass path class
        let set = PathSet::from_paths(k, buf).expect("positive-mass class");
        let u = measure.uncertainty(&set);
        self.buf = set.into_paths();
        u
    }
}

/// The joint-answer partition of a path set after conditioning on a
/// sequence of questions.
pub struct AnswerPartition {
    k: usize,
    /// Unresolved classes only (resolved single-ordering classes carry zero
    /// uncertainty under every measure and are dropped eagerly).
    classes: Vec<Class>,
    scratch: EvalScratch,
}

impl AnswerPartition {
    /// The trivial partition: one class holding the whole path set. Items
    /// are interned here, once; every later split shares them.
    pub fn root(ps: &PathSet) -> Self {
        let mass: f64 = ps.paths().iter().map(|p| p.prob).sum();
        let paths: Vec<IPath> = ps
            .paths()
            .iter()
            .map(|p| IPath {
                items: Arc::from(p.items.as_slice()),
                prob: p.prob,
            })
            .collect();
        let classes = if paths.len() <= 1 {
            Vec::new()
        } else {
            vec![Class::new(paths, mass)]
        };
        Self {
            k: ps.k(),
            classes,
            scratch: EvalScratch::default(),
        }
    }

    /// Number of live (unresolved) classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Expected uncertainty over the partition:
    /// `Σ_class P(class) · U(class)`.
    pub fn expected_uncertainty(&mut self, measure: &dyn UncertaintyMeasure) -> f64 {
        // `.sum()` (not a hand-rolled accumulator): f64's `Sum` folds from
        // -0.0, and bit-identity with the pre-rewrite implementation
        // includes the sign of zero on fully resolved partitions.
        let k = self.k;
        let (classes, scratch) = (&self.classes, &mut self.scratch);
        classes
            .iter()
            .map(|c| c.mass * c.uncertainty(measure, k, scratch))
            .sum()
    }

    /// The pre-rewrite evaluation path (fresh `PathSet` per class, deep
    /// item clones, no memo). Kept as the reference that equivalence
    /// tests and the `belief_hot_paths` bench compare against.
    #[doc(hidden)]
    pub fn expected_uncertainty_reference(&self, measure: &dyn UncertaintyMeasure) -> f64 {
        self.classes
            .iter()
            .map(|c| c.mass * c.uncertainty_reference(measure, self.k))
            .sum()
    }

    /// Expected uncertainty after additionally asking `q` (one-step
    /// lookahead; the partition's classes are not modified — only the
    /// per-class memo and the scratch buffer, which is why this takes
    /// `&mut self`).
    pub fn expected_with_question(&mut self, q: &Question, ctx: &ResidualCtx<'_>) -> f64 {
        let prior = ctx.prior(q.i, q.j);
        let mut acc = 0.0;
        for class in &self.classes {
            let (yes, no, split) = split_class(class, q, prior);
            if !split {
                acc += class.mass * class.uncertainty(ctx.measure, self.k, &mut self.scratch);
                continue;
            }
            if let Some(c) = yes {
                acc += c.mass * c.uncertainty(ctx.measure, self.k, &mut self.scratch);
            }
            if let Some(c) = no {
                acc += c.mass * c.uncertainty(ctx.measure, self.k, &mut self.scratch);
            }
        }
        acc
    }

    /// Conditions the partition on `q` (splits every class by the answer).
    pub fn refine(&mut self, q: &Question, ctx: &ResidualCtx<'_>) {
        let prior = ctx.prior(q.i, q.j);
        let mut next = Vec::with_capacity(self.classes.len() + 4);
        for class in self.classes.drain(..) {
            let (yes, no, split) = split_class(&class, q, prior);
            if !split {
                next.push(class);
                continue;
            }
            if let Some(c) = yes {
                if c.paths.len() > 1 {
                    next.push(c);
                }
            }
            if let Some(c) = no {
                if c.paths.len() > 1 {
                    next.push(c);
                }
            }
        }
        self.classes = next;
    }
}

/// Splits a class by a question. Returns `(yes, no, split)`; `split` is
/// false when the question does not determine any path of the class (the
/// class would just be scaled into two copies — a no-op for the
/// expectation). Path items are shared with the parent class via `Arc`.
fn split_class(class: &Class, q: &Question, prior: f64) -> (Option<Class>, Option<Class>, bool) {
    let mut any_determined = false;
    for p in &class.paths {
        if implication(&p.items, q.i, q.j) != Implication::Undetermined {
            any_determined = true;
            break;
        }
    }
    if !any_determined {
        return (None, None, false);
    }
    let mut yes_paths = Vec::new();
    let mut no_paths = Vec::new();
    for p in &class.paths {
        match implication(&p.items, q.i, q.j) {
            Implication::Yes => yes_paths.push(p.clone()),
            Implication::No => no_paths.push(p.clone()),
            Implication::Undetermined => {
                if prior > 0.0 {
                    yes_paths.push(IPath {
                        items: Arc::clone(&p.items),
                        prob: p.prob * prior,
                    });
                }
                if prior < 1.0 {
                    no_paths.push(IPath {
                        items: Arc::clone(&p.items),
                        prob: p.prob * (1.0 - prior),
                    });
                }
            }
        }
    }
    let wrap = |paths: Vec<IPath>| -> Option<Class> {
        let mass: f64 = paths.iter().map(|p| p.prob).sum();
        (mass > MASS_EPS).then_some(Class::new(paths, mass))
    };
    (wrap(yes_paths), wrap(no_paths), true)
}

/// Expected residual uncertainty after asking a single question.
pub fn expected_residual_single(ps: &PathSet, q: &Question, ctx: &ResidualCtx<'_>) -> f64 {
    AnswerPartition::root(ps).expected_with_question(q, ctx)
}

/// Expected residual uncertainty after asking all questions in `qs`
/// (answers assumed reliable; the expectation is over the joint answer
/// distribution induced by the current path set).
pub fn expected_residual_set(ps: &PathSet, qs: &[Question], ctx: &ResidualCtx<'_>) -> f64 {
    let mut partition = AnswerPartition::root(ps);
    for q in qs {
        partition.refine(q, ctx);
    }
    partition.expected_uncertainty(ctx.measure)
}

/// Reference implementation that enumerates all `2^|Q|` answer outcomes —
/// exponential, used only by tests and the `ablations` bench to validate
/// the partition algorithm.
pub fn expected_residual_set_bruteforce(
    ps: &PathSet,
    qs: &[Question],
    ctx: &ResidualCtx<'_>,
) -> f64 {
    let m = qs.len();
    assert!(m <= 20, "brute force limited to 20 questions");
    let mut total = 0.0;
    for mask in 0u32..(1u32 << m) {
        // Outcome: bit b set => answer to qs[b] is "yes".
        let mut class: Vec<Path> = ps.paths().to_vec();
        for (b, q) in qs.iter().enumerate() {
            let yes = mask & (1 << b) != 0;
            let prior = ctx.prior(q.i, q.j);
            class = class
                .into_iter()
                .filter_map(|p| {
                    let factor = match implication(&p.items, q.i, q.j) {
                        Implication::Yes => {
                            if yes {
                                1.0
                            } else {
                                0.0
                            }
                        }
                        Implication::No => {
                            if yes {
                                0.0
                            } else {
                                1.0
                            }
                        }
                        Implication::Undetermined => {
                            if yes {
                                prior
                            } else {
                                1.0 - prior
                            }
                        }
                    };
                    let mass = p.prob * factor;
                    (mass > 0.0).then_some(Path {
                        items: p.items,
                        prob: mass,
                    })
                })
                .collect();
        }
        let mass: f64 = class.iter().map(|p| p.prob).sum();
        if mass > MASS_EPS {
            let set = PathSet::from_weighted(
                ps.k(),
                class.into_iter().map(|p| (p.items, p.prob)).collect(),
            )
            .expect("positive mass"); // ctk-allow(panic-unwrap): guarded by the mass > MASS_EPS branch
            total += mass * ctx.measure.uncertainty(&set);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::{Entropy, MeasureKind};
    use ctk_prob::{ScoreDist, UncertainTable};

    fn table3() -> UncertainTable {
        UncertainTable::new(vec![
            ScoreDist::uniform(0.0, 1.0).unwrap(),
            ScoreDist::uniform(0.1, 1.1).unwrap(),
            ScoreDist::uniform(0.2, 1.2).unwrap(),
        ])
        .unwrap()
    }

    fn sample() -> PathSet {
        PathSet::from_weighted(
            2,
            vec![(vec![0, 1], 0.5), (vec![0, 2], 0.2), (vec![1, 0], 0.3)],
        )
        .unwrap()
    }

    #[test]
    fn answer_probability_membership_semantics() {
        let pw = PairwiseMatrix::compute(&table3());
        let ctx = ResidualCtx {
            measure: &Entropy,
            pairwise: &pw,
        };
        let p = answer_probability(&sample(), &Question::new(0, 1), &ctx);
        // [0,1] yes (0.5) + [0,2] yes (0.2) + [1,0] no => 0.7.
        assert!((p - 0.7).abs() < 1e-12);
        let q = answer_probability(&sample(), &Question::new(1, 0), &ctx);
        assert!((p + q - 1.0).abs() < 1e-12);
    }

    #[test]
    fn residual_of_empty_set_is_current_uncertainty() {
        let pw = PairwiseMatrix::compute(&table3());
        let ctx = ResidualCtx {
            measure: &Entropy,
            pairwise: &pw,
        };
        let s = sample();
        assert!((expected_residual_set(&s, &[], &ctx) - Entropy.uncertainty(&s)).abs() < 1e-12);
    }

    #[test]
    fn informative_question_reduces_expected_entropy() {
        let pw = PairwiseMatrix::compute(&table3());
        let ctx = ResidualCtx {
            measure: &Entropy,
            pairwise: &pw,
        };
        let s = sample();
        let r = expected_residual_single(&s, &Question::new(0, 1), &ctx);
        assert!(r < Entropy.uncertainty(&s), "residual {r}");
        let r2 = expected_residual_single(&s, &Question::new(1, 2), &ctx);
        assert!(r2 <= Entropy.uncertainty(&s) + 1e-12);
    }

    #[test]
    fn partition_matches_bruteforce_all_measures() {
        let pw = PairwiseMatrix::compute(&table3());
        let s = sample();
        let qs = [
            Question::new(0, 1),
            Question::new(1, 2),
            Question::new(0, 2),
        ];
        for kind in MeasureKind::all() {
            let m = kind.build();
            let ctx = ResidualCtx {
                measure: m.as_ref(),
                pairwise: &pw,
            };
            let fast = expected_residual_set(&s, &qs, &ctx);
            let brute = expected_residual_set_bruteforce(&s, &qs, &ctx);
            assert!(
                (fast - brute).abs() < 1e-9,
                "{}: partition {fast} vs brute {brute}",
                kind.name()
            );
        }
    }

    #[test]
    fn scratch_evaluation_is_bit_identical_to_reference() {
        let pw = PairwiseMatrix::compute(&table3());
        let s = sample();
        for kind in MeasureKind::all() {
            let m = kind.build();
            let ctx = ResidualCtx {
                measure: m.as_ref(),
                pairwise: &pw,
            };
            let mut part = AnswerPartition::root(&s);
            for q in [Question::new(0, 1), Question::new(0, 2)] {
                let reference = part.expected_uncertainty_reference(ctx.measure);
                let scratch = part.expected_uncertainty(ctx.measure);
                assert_eq!(
                    scratch.to_bits(),
                    reference.to_bits(),
                    "{}: {scratch} vs {reference}",
                    kind.name()
                );
                // And again, to exercise the memo path.
                assert_eq!(
                    part.expected_uncertainty(ctx.measure).to_bits(),
                    reference.to_bits()
                );
                part.refine(&q, &ctx);
            }
        }
    }

    #[test]
    fn more_questions_never_increase_expected_entropy() {
        let pw = PairwiseMatrix::compute(&table3());
        let ctx = ResidualCtx {
            measure: &Entropy,
            pairwise: &pw,
        };
        let s = sample();
        let q1 = [Question::new(0, 1)];
        let q2 = [Question::new(0, 1), Question::new(0, 2)];
        let r1 = expected_residual_set(&s, &q1, &ctx);
        let r2 = expected_residual_set(&s, &q2, &ctx);
        assert!(r2 <= r1 + 1e-12, "conditioning helps: {r2} vs {r1}");
    }

    #[test]
    fn question_order_does_not_matter() {
        let pw = PairwiseMatrix::compute(&table3());
        let ctx = ResidualCtx {
            measure: &Entropy,
            pairwise: &pw,
        };
        let s = sample();
        let a = [Question::new(0, 1), Question::new(1, 2)];
        let b = [Question::new(1, 2), Question::new(0, 1)];
        let ra = expected_residual_set(&s, &a, &ctx);
        let rb = expected_residual_set(&s, &b, &ctx);
        assert!((ra - rb).abs() < 1e-12);
    }

    #[test]
    fn lookahead_matches_materialized_refine() {
        let pw = PairwiseMatrix::compute(&table3());
        let ctx = ResidualCtx {
            measure: &Entropy,
            pairwise: &pw,
        };
        let s = sample();
        let q = Question::new(0, 2);
        let looked = AnswerPartition::root(&s).expected_with_question(&q, &ctx);
        let mut part = AnswerPartition::root(&s);
        part.refine(&q, &ctx);
        let materialized = part.expected_uncertainty(ctx.measure);
        assert!((looked - materialized).abs() < 1e-12);
    }

    #[test]
    fn resolved_classes_are_dropped() {
        let pw = PairwiseMatrix::compute(&table3());
        let ctx = ResidualCtx {
            measure: &Entropy,
            pairwise: &pw,
        };
        let s = sample();
        let mut part = AnswerPartition::root(&s);
        assert_eq!(part.class_count(), 1);
        // Conditioning on (0,1) splits into {[0,1],[0,2]} and {[1,0]}; the
        // singleton class is dropped.
        part.refine(&Question::new(0, 1), &ctx);
        assert_eq!(part.class_count(), 1);
        // (1,2) separates [0,1] (1 in, 2 out -> yes) from [0,2] (no):
        // both resulting classes are singletons and get dropped.
        part.refine(&Question::new(1, 2), &ctx);
        assert_eq!(part.class_count(), 0);
        assert_eq!(part.expected_uncertainty(ctx.measure), 0.0);
    }
}
