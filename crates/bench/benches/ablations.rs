//! Ablation benches for the design choices DESIGN.md §4 calls out:
//!
//! 1. partition-based `R_Q` vs the naive `2^|Q|` enumeration;
//! 2. Monte-Carlo world count (TPO build cost as `M` grows — the accuracy
//!    side is covered by `tests/engines_agree.rs`);
//! 3. exact Kemeny DP vs heuristic ORA (cost of exactness);
//! 4. exact-engine grid resolution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctk_core::measures::MeasureKind;
use ctk_core::residual::{expected_residual_set, expected_residual_set_bruteforce, ResidualCtx};
use ctk_core::select::relevant_questions;
use ctk_crowd::Question;
use ctk_datagen::{generate, scenarios, DatasetSpec};
use ctk_prob::compare::PairwiseMatrix;
use ctk_rank::aggregate::{optimal_rank_aggregation, AggregateConfig};
use ctk_rank::Tournament;
use ctk_tpo::build::{build_exact, build_mc, ExactConfig, McConfig};
use std::time::Duration;

fn quick(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
}

fn bench_partition_vs_bruteforce(c: &mut Criterion) {
    let scenario = scenarios::measures(0);
    let pairwise = PairwiseMatrix::compute(&scenario.table);
    let ps = build_mc(&scenario.table, scenario.k, &McConfig::fixed(2_000, 0)).unwrap();
    let measure = MeasureKind::WeightedEntropy.build();
    let ctx = ResidualCtx {
        measure: measure.as_ref(),
        pairwise: &pairwise,
    };
    let qs: Vec<Question> = relevant_questions(&ps, &ctx).into_iter().take(6).collect();

    let mut group = c.benchmark_group("residual_set");
    quick(&mut group);
    group.bench_function("partition", |b| {
        b.iter(|| expected_residual_set(&ps, &qs, &ctx))
    });
    group.bench_function("bruteforce_2^Q", |b| {
        b.iter(|| expected_residual_set_bruteforce(&ps, &qs, &ctx))
    });
    group.finish();
}

fn bench_mc_worlds(c: &mut Criterion) {
    let table = generate(&DatasetSpec::paper_default(20, 0.4, 1)).expect("valid spec");
    let mut group = c.benchmark_group("mc_worlds");
    quick(&mut group);
    for worlds in [1_000usize, 10_000, 50_000] {
        group.bench_with_input(BenchmarkId::from_parameter(worlds), &worlds, |b, &w| {
            b.iter(|| build_mc(&table, 5, &McConfig::fixed(w, 0)).unwrap())
        });
    }
    group.finish();
}

fn bench_ora_exact_vs_heuristic(c: &mut Criterion) {
    let scenario = scenarios::fig1(0);
    let ps = build_mc(&scenario.table, scenario.k, &McConfig::fixed(5_000, 0)).unwrap();
    let t = Tournament::from_weighted_lists(&ps.to_weighted_lists());
    let mut group = c.benchmark_group("ora");
    quick(&mut group);
    if t.len() <= 18 {
        group.bench_function("exact_dp", |b| {
            let cfg = AggregateConfig {
                exact_threshold: 18,
                ..AggregateConfig::default()
            };
            b.iter(|| optimal_rank_aggregation(&t, &cfg).unwrap())
        });
    }
    group.bench_function("heuristic_polished", |b| {
        let cfg = AggregateConfig {
            exact_threshold: 0,
            ..AggregateConfig::default()
        };
        b.iter(|| optimal_rank_aggregation(&t, &cfg).unwrap())
    });
    group.finish();
}

fn bench_grid_resolution(c: &mut Criterion) {
    let table = generate(&DatasetSpec::paper_default(10, 0.35, 1)).expect("valid spec");
    let mut group = c.benchmark_group("exact_grid");
    quick(&mut group);
    for resolution in [256usize, 1024, 4096] {
        group.bench_with_input(
            BenchmarkId::from_parameter(resolution),
            &resolution,
            |b, &r| {
                b.iter(|| {
                    build_exact(
                        &table,
                        3,
                        &ExactConfig {
                            resolution: r,
                            ..ExactConfig::default()
                        },
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_partition_vs_bruteforce,
    bench_mc_worlds,
    bench_ora_exact_vs_heuristic,
    bench_grid_resolution
);
criterion_main!(benches);
