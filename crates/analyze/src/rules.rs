//! The rule registry: every invariant `ctk-analyze check` enforces.
//!
//! Rules are lexical checks over sanitized source (see [`crate::lexer`]),
//! calibrated against this workspace — each one encodes a policy the
//! paper's determinism contract depends on (DESIGN.md §11):
//!
//! | family | rule id | policy |
//! |--------|---------|--------|
//! | determinism | `det-hash-collection` | no `HashMap`/`HashSet` in result-affecting library code: iteration order is seeded per-process; use `BTreeMap`/`BTreeSet` or plan-ordered loops, or allowlist provably order-insensitive uses |
//! | determinism | `det-thread-spawn` | no ad-hoc `thread::spawn`/`thread::scope`/`thread::Builder`: fanout must go through the `planned_threads` policy with a chunk-order-invariance argument, written down in a `ctk-allow` reason |
//! | determinism | `det-available-parallelism` | `available_parallelism` only inside the blessed cached accessor (`ctk_prob::compare::available_cores`) |
//! | determinism | `det-wall-clock` | no `Instant::now`/`SystemTime::now` outside metrics code: wall-clock reads in result paths make replays diverge |
//! | determinism | `det-channel` | no ad-hoc `mpsc::channel`/`mpsc::sync_channel`: receive order across channels is arrival order, i.e. scheduling-dependent — every channel needs a `ctk-allow` stating the discipline that keeps cross-thread effects in deterministic order (e.g. a coordinator draining per-shard streams in shard order) |
//! | float | `float-eq` | no `==`/`!=` against float values: exact equality is not total and rarely means what it says; compare via `total_cmp`, explicit tolerances, or allowlist exact-sentinel checks |
//! | float | `float-partial-cmp-unwrap` | no `partial_cmp(..).unwrap()`/`.expect(..)`: use the total-order comparator `f64::total_cmp` |
//! | float | `float-stable-sort` | stable `sort`/`sort_by`/`sort_by_key` flagged in result-affecting code: stability launders whatever pre-sort order the input had (often a hash map's); sort with `sort_unstable_*` over a *total* key instead |
//! | panic | `panic-unwrap` | no `.unwrap()`/`.expect(..)` in library code: return the crate's error type, or allowlist a written invariant |
//! | panic | `panic-macro` | no `panic!`/`todo!`/`unimplemented!` in library code |
//! | lint-wall | `lint-wall` | every crate root carries `#![forbid(unsafe_code)]` and `#![deny(warnings)]` |
//! | meta | `allow-syntax` | malformed or unknown-rule `ctk-allow` directives |
//! | meta | `unused-allow` | `ctk-allow` directives that suppress nothing |

use crate::lexer::{find_tokens, is_ident_byte, skip_balanced, skip_ws, SourceFile};

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (see the registry table in the module docs).
    pub rule: &'static str,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

/// Static description of a rule, for `ctk-analyze rules` and the docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule id, used in `ctk-allow(<id>)`.
    pub id: &'static str,
    /// Rule family.
    pub family: &'static str,
    /// One-line policy statement.
    pub summary: &'static str,
}

/// Every rule id the analyzer knows (the only ids `ctk-allow` accepts).
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "det-hash-collection",
        family: "determinism",
        summary: "HashMap/HashSet in result-affecting library code (iteration order is \
                  per-process; use BTreeMap/BTreeSet or allowlist order-insensitive uses)",
    },
    RuleInfo {
        id: "det-thread-spawn",
        family: "determinism",
        summary: "thread::spawn/scope/Builder outside the planned_threads fanout policy \
                  (allowlist requires a chunk-order-invariance argument)",
    },
    RuleInfo {
        id: "det-available-parallelism",
        family: "determinism",
        summary: "available_parallelism outside the blessed cached accessor \
                  (ctk_prob::compare::available_cores)",
    },
    RuleInfo {
        id: "det-wall-clock",
        family: "determinism",
        summary: "Instant::now/SystemTime::now outside metrics code",
    },
    RuleInfo {
        id: "det-channel",
        family: "determinism",
        summary: "mpsc::channel/sync_channel without a written ordering discipline \
                  (receive order is arrival order — allowlist requires the argument \
                  that keeps cross-thread effects deterministically ordered)",
    },
    RuleInfo {
        id: "float-eq",
        family: "float",
        summary: "==/!= on float values (compare via total_cmp or an explicit tolerance)",
    },
    RuleInfo {
        id: "float-partial-cmp-unwrap",
        family: "float",
        summary: "partial_cmp(..).unwrap()/.expect(..) (use the total-order comparator \
                  f64::total_cmp)",
    },
    RuleInfo {
        id: "float-stable-sort",
        family: "float",
        summary: "stable sort in result-affecting code (stability launders pre-sort order; \
                  use sort_unstable_* over a total key)",
    },
    RuleInfo {
        id: "panic-unwrap",
        family: "panic",
        summary: ".unwrap()/.expect(..) in library code (return the crate error type)",
    },
    RuleInfo {
        id: "panic-macro",
        family: "panic",
        summary: "panic!/todo!/unimplemented! in library code",
    },
    RuleInfo {
        id: "lint-wall",
        family: "lint-wall",
        summary: "crate root missing #![forbid(unsafe_code)] / #![deny(warnings)]",
    },
    RuleInfo {
        id: "allow-syntax",
        family: "meta",
        summary: "malformed ctk-allow directive (or unknown rule id)",
    },
    RuleInfo {
        id: "unused-allow",
        family: "meta",
        summary: "ctk-allow directive that suppressed no finding",
    },
];

/// Is `id` a registered rule id?
pub fn known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Which rule families apply to a file (decided by the engine from its
/// workspace location).
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleSet {
    /// Determinism family (hash collections, threads, wall clock).
    pub determinism: bool,
    /// Float-discipline family.
    pub float: bool,
    /// Panic-freedom family.
    pub panic: bool,
    /// File-level blessings: home of the cached core-count accessor.
    pub bless_parallelism: bool,
    /// File-level blessings: metrics module (wall-clock reads allowed).
    pub bless_wall_clock: bool,
}

/// Runs every applicable per-file rule over non-test lines.
///
/// Returned findings are deduplicated per `(rule, line)` and are **not**
/// yet filtered through `ctk-allow` directives — the engine does that so
/// it can also report unused allows.
pub fn scan(file: &SourceFile, rules: RuleSet) -> Vec<Finding> {
    let mut findings = Vec::new();
    if rules.panic {
        scan_panic_unwrap(file, &mut findings);
        scan_panic_macro(file, &mut findings);
    }
    if rules.float {
        scan_partial_cmp_unwrap(file, &mut findings);
        scan_float_eq(file, &mut findings);
        scan_stable_sort(file, &mut findings);
    }
    if rules.determinism {
        scan_hash_collections(file, &mut findings);
        scan_thread_spawn(file, &mut findings);
        scan_channels(file, &mut findings);
        if !rules.bless_parallelism {
            scan_token_rule(
                file,
                "available_parallelism",
                "det-available-parallelism",
                "query core counts through ctk_prob::compare::available_cores() (cached, \
                 one blessed read site)",
                &mut findings,
            );
        }
        if !rules.bless_wall_clock {
            scan_token_rule(
                file,
                "Instant::now",
                "det-wall-clock",
                "wall-clock read outside metrics code; results must not depend on time",
                &mut findings,
            );
            scan_token_rule(
                file,
                "SystemTime::now",
                "det-wall-clock",
                "wall-clock read outside metrics code; results must not depend on time",
                &mut findings,
            );
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    findings
}

fn push(findings: &mut Vec<Finding>, rule: &'static str, line: usize, message: String) {
    findings.push(Finding {
        rule,
        line,
        message,
    });
}

/// `.unwrap()` / `.expect(` on non-test lines. `partial_cmp` chains are
/// reported by `float-partial-cmp-unwrap` instead (one finding per site).
fn scan_panic_unwrap(file: &SourceFile, findings: &mut Vec<Finding>) {
    for at in find_tokens(&file.code, ".unwrap") {
        let line = file.line_of(at);
        if file.is_test_line(line) || is_partial_cmp_chain(&file.code, at) {
            continue;
        }
        let after = skip_ws(&file.code, at + ".unwrap".len());
        if file.code[after..].starts_with('(') {
            push(
                findings,
                "panic-unwrap",
                line,
                ".unwrap() in library code: return the crate's error type or \
                 ctk-allow with the invariant that makes this infallible"
                    .to_string(),
            );
        }
    }
    for at in find_tokens(&file.code, ".expect") {
        let line = file.line_of(at);
        if file.is_test_line(line) || is_partial_cmp_chain(&file.code, at) {
            continue;
        }
        let after = skip_ws(&file.code, at + ".expect".len());
        if file.code[after..].starts_with('(') {
            push(
                findings,
                "panic-unwrap",
                line,
                ".expect(..) in library code: return the crate's error type or \
                 ctk-allow with the invariant that makes this infallible"
                    .to_string(),
            );
        }
    }
}

/// Does the `.unwrap`/`.expect` at `at` terminate a `partial_cmp(...)`
/// call chain?
fn is_partial_cmp_chain(code: &str, at: usize) -> bool {
    // Walk left over the `)` closing a call whose callee is partial_cmp.
    let b = code.as_bytes();
    let mut i = at;
    while i > 0 && b[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    if i == 0 || b[i - 1] != b')' {
        return false;
    }
    // Find the matching `(`.
    let mut depth = 0i32;
    let mut j = i - 1;
    loop {
        match b[j] {
            b')' => depth += 1,
            b'(' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if j == 0 {
            return false;
        }
        j -= 1;
    }
    // The identifier immediately before `(`.
    let mut k = j;
    while k > 0 && b[k - 1].is_ascii_whitespace() {
        k -= 1;
    }
    let end = k;
    while k > 0 && is_ident_byte(b[k - 1]) {
        k -= 1;
    }
    &code[k..end] == "partial_cmp"
}

fn scan_panic_macro(file: &SourceFile, findings: &mut Vec<Finding>) {
    for tok in ["panic!", "todo!", "unimplemented!"] {
        for at in find_tokens(&file.code, tok) {
            let line = file.line_of(at);
            if file.is_test_line(line) {
                continue;
            }
            push(
                findings,
                "panic-macro",
                line,
                format!(
                    "`{tok}` in library code: return the crate's error type or ctk-allow \
                     with the invariant that makes this unreachable"
                ),
            );
        }
    }
}

fn scan_partial_cmp_unwrap(file: &SourceFile, findings: &mut Vec<Finding>) {
    for at in find_tokens(&file.code, "partial_cmp") {
        let line = file.line_of(at);
        if file.is_test_line(line) {
            continue;
        }
        let open = skip_ws(&file.code, at + "partial_cmp".len());
        if !file.code[open..].starts_with('(') {
            continue;
        }
        let Some(close) = skip_balanced(&file.code, open) else {
            continue;
        };
        let next = skip_ws(&file.code, close);
        let rest = &file.code[next..];
        if rest.starts_with(".unwrap") || rest.starts_with(".expect") {
            push(
                findings,
                "float-partial-cmp-unwrap",
                line,
                "partial_cmp(..).unwrap(): floats need the total-order comparator — \
                 use f64::total_cmp (ties by a discrete key for bit-stable sorts)"
                    .to_string(),
            );
        }
    }
}

/// `==` / `!=` with a float literal in either operand window.
fn scan_float_eq(file: &SourceFile, findings: &mut Vec<Finding>) {
    let b = file.code.as_bytes();
    for i in 0..b.len().saturating_sub(1) {
        let op = match (b[i], b[i + 1]) {
            (b'=', b'=') => "==",
            (b'!', b'=') => "!=",
            _ => continue,
        };
        // Exclude `===`(never valid), `<=`, `>=`, `=>`, `+=` family, `!==`.
        if i > 0 && matches!(b[i - 1], b'=' | b'!' | b'<' | b'>') {
            continue;
        }
        if i + 2 < b.len() && b[i + 2] == b'=' {
            continue;
        }
        let line = file.line_of(i);
        if file.is_test_line(line) {
            continue;
        }
        let code_line = file.code_line(line);
        let line_start = i - (file.code[..i].rfind('\n').map(|p| p + 1).unwrap_or(0));
        let (left, right) = operand_windows(code_line, line_start);
        if has_float_literal(left) || has_float_literal(right) {
            push(
                findings,
                "float-eq",
                line,
                format!(
                    "float `{op}` comparison: exact equality on floats is fragile — use \
                     total_cmp, an explicit tolerance, or ctk-allow an exact-sentinel check"
                ),
            );
        }
    }
}

/// The operand text to the left and right of the operator at `op_at`
/// (a column within `line`), clipped at expression boundaries.
fn operand_windows(line: &str, op_at: usize) -> (&str, &str) {
    let stop = |c: char| matches!(c, ',' | ';' | '{' | '}' | '&' | '|');
    let op_at = op_at.min(line.len());
    let left_start = line[..op_at].rfind(stop).map(|p| p + 1).unwrap_or(0);
    let right_end_rel = line[(op_at + 2).min(line.len())..]
        .find(stop)
        .unwrap_or(line.len() - (op_at + 2).min(line.len()));
    let right_start = (op_at + 2).min(line.len());
    (
        &line[left_start..op_at],
        &line[right_start..right_start + right_end_rel],
    )
}

/// Does `s` contain a float literal (`1.0`, `.5` excluded, `1e-7`, `1f64`)?
fn has_float_literal(s: &str) -> bool {
    let b = s.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        if b[i].is_ascii_digit() {
            let mut j = i;
            while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                j += 1;
            }
            // Fractional part: `1.` or `1.5`, but not a range `1..` and
            // not a method call `1.max(..)`.
            if j < b.len() && b[j] == b'.' {
                let after = b.get(j + 1).copied();
                let is_range = after == Some(b'.');
                let is_method = after
                    .map(|c| c.is_ascii_alphabetic() || c == b'_')
                    .unwrap_or(false);
                if !is_range && !is_method {
                    return true;
                }
            }
            // Exponent: `1e9`, `2E-7`.
            if j < b.len() && (b[j] == b'e' || b[j] == b'E') {
                let mut k = j + 1;
                if k < b.len() && (b[k] == b'+' || b[k] == b'-') {
                    k += 1;
                }
                if k < b.len() && b[k].is_ascii_digit() {
                    return true;
                }
            }
            // Typed suffix: `1f64` / `1f32`.
            if s[j..].starts_with("f64") || s[j..].starts_with("f32") {
                return true;
            }
            i = j.max(i + 1);
        } else if is_ident_byte(b[i]) {
            // Skip identifiers wholesale so `x1`, `f64::NAN` digits, etc.
            // are not mistaken for numbers.
            while i < b.len() && is_ident_byte(b[i]) {
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    false
}

/// Stable `sort` family calls.
fn scan_stable_sort(file: &SourceFile, findings: &mut Vec<Finding>) {
    const STABLE: &[&str] = &["sort", "sort_by", "sort_by_key", "sort_by_cached_key"];
    let mut from = 0usize;
    while let Some(rel) = file.code[from..].find(".sort") {
        let at = from + rel;
        from = at + 1;
        let line = file.line_of(at);
        if file.is_test_line(line) {
            continue;
        }
        // Extract the full method name.
        let b = file.code.as_bytes();
        let mut j = at + 1;
        while j < b.len() && is_ident_byte(b[j]) {
            j += 1;
        }
        let name = &file.code[at + 1..j];
        if !STABLE.contains(&name) {
            continue;
        }
        let open = skip_ws(&file.code, j);
        if !file.code[open..].starts_with('(') {
            continue;
        }
        push(
            findings,
            "float-stable-sort",
            line,
            format!(
                "stable `.{name}(..)`: stability preserves whatever pre-sort order the \
                 input had — sort_unstable_* over a total key is deterministic by \
                 construction (ctk-allow if stability is semantically required)"
            ),
        );
    }
}

fn scan_hash_collections(file: &SourceFile, findings: &mut Vec<Finding>) {
    for tok in ["HashMap", "HashSet"] {
        for at in find_tokens(&file.code, tok) {
            let line = file.line_of(at);
            if file.is_test_line(line) {
                continue;
            }
            push(
                findings,
                "det-hash-collection",
                line,
                format!(
                    "`{tok}` in result-affecting library code: iteration order is seeded \
                     per-process — use BTreeMap/BTreeSet or plan-ordered iteration, or \
                     ctk-allow a provably order-insensitive use"
                ),
            );
        }
    }
}

fn scan_thread_spawn(file: &SourceFile, findings: &mut Vec<Finding>) {
    for tok in ["thread::spawn", "thread::scope", "thread::Builder"] {
        for at in find_tokens(&file.code, tok) {
            let line = file.line_of(at);
            if file.is_test_line(line) {
                continue;
            }
            push(
                findings,
                "det-thread-spawn",
                line,
                format!(
                    "`{tok}` outside the planned_threads policy: fanout must be \
                     chunk-order-invariant and thread counts must come from \
                     planned_threads — ctk-allow with the invariance argument"
                ),
            );
        }
    }
}

/// `mpsc` channel construction sites. A channel by itself is fine for
/// moving data, but *receive order across senders is arrival order* —
/// scheduling-dependent — so any channel feeding result-affecting state
/// must carry a written discipline for how deterministic ordering is
/// restored (the serving layer's: one coordinator drains per-shard
/// request streams to completion in shard order).
fn scan_channels(file: &SourceFile, findings: &mut Vec<Finding>) {
    for tok in ["mpsc::channel", "mpsc::sync_channel"] {
        for at in find_tokens(&file.code, tok) {
            let line = file.line_of(at);
            if file.is_test_line(line) {
                continue;
            }
            push(
                findings,
                "det-channel",
                line,
                format!(
                    "`{tok}` in result-affecting code: cross-channel receive order is \
                     arrival order (scheduling-dependent) — ctk-allow with the ordering \
                     discipline that keeps downstream effects deterministic"
                ),
            );
        }
    }
}

fn scan_token_rule(
    file: &SourceFile,
    token: &str,
    rule: &'static str,
    message: &str,
    findings: &mut Vec<Finding>,
) {
    for at in find_tokens(&file.code, token) {
        let line = file.line_of(at);
        if file.is_test_line(line) {
            continue;
        }
        push(findings, rule, line, format!("`{token}`: {message}"));
    }
}

/// The two headers the lint wall requires of every crate root.
pub const LINT_WALL_HEADERS: &[&str] = &["#![forbid(unsafe_code)]", "#![deny(warnings)]"];

/// Which lint-wall headers are missing from a crate root's source.
pub fn missing_lint_wall(root_source: &str) -> Vec<&'static str> {
    let file = SourceFile::parse(root_source);
    let squashed: String = file.code.chars().filter(|c| !c.is_whitespace()).collect();
    LINT_WALL_HEADERS
        .iter()
        .filter(|h| {
            let want: String = h.chars().filter(|c| !c.is_whitespace()).collect();
            !squashed.contains(&want)
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_all(src: &str) -> Vec<Finding> {
        let file = SourceFile::parse(src);
        scan(
            &file,
            RuleSet {
                determinism: true,
                float: true,
                panic: true,
                ..RuleSet::default()
            },
        )
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unwrap_and_expect_flagged_once_each() {
        let f = scan_all("fn f() { x.unwrap(); y.expect(\"msg\"); }\n");
        assert_eq!(rules_of(&f), vec!["panic-unwrap"]); // same line dedup
        let f = scan_all("fn f() {\n x.unwrap();\n y.expect(\"m\");\n}\n");
        assert_eq!(rules_of(&f), vec!["panic-unwrap", "panic-unwrap"]);
    }

    #[test]
    fn unwrap_or_variants_pass() {
        let f =
            scan_all("fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 1); x.unwrap_or_default(); }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn partial_cmp_unwrap_is_the_float_rule_not_panic() {
        let f = scan_all("fn f() { a.partial_cmp(&b).unwrap(); }\n");
        assert_eq!(rules_of(&f), vec!["float-partial-cmp-unwrap"]);
        let f = scan_all("fn f() { a.partial_cmp(&(b + c)).expect(\"finite\"); }\n");
        assert_eq!(rules_of(&f), vec!["float-partial-cmp-unwrap"]);
    }

    #[test]
    fn float_eq_heuristic() {
        assert_eq!(
            rules_of(&scan_all("fn f(w: f64) -> bool { w == 0.5 }\n")),
            vec!["float-eq"]
        );
        assert_eq!(
            rules_of(&scan_all("fn f(x: f64) -> bool { x != 1e-7 }\n")),
            vec!["float-eq"]
        );
        // Integer comparisons, range patterns, inequalities: fine.
        assert!(scan_all("fn f(n: usize) -> bool { n == 0 }\n").is_empty());
        assert!(scan_all("fn f(x: f64) -> bool { x <= 0.0 }\n").is_empty());
        assert!(scan_all("fn f(n: usize) -> bool { (0..10).contains(&n) && n == 3 }\n").is_empty());
    }

    #[test]
    fn stable_sort_flagged_unstable_passes() {
        assert_eq!(
            rules_of(&scan_all("fn f(v: &mut [u32]) { v.sort(); }\n")),
            vec!["float-stable-sort"]
        );
        assert_eq!(
            rules_of(&scan_all(
                "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.total_cmp(b)); }\n"
            )),
            vec!["float-stable-sort"]
        );
        assert!(scan_all("fn f(v: &mut [u32]) { v.sort_unstable(); }\n").is_empty());
        assert!(
            scan_all("fn f(v: &mut [f64]) { v.sort_unstable_by(f64::total_cmp); }\n").is_empty()
        );
    }

    #[test]
    fn hash_collections_and_threads() {
        assert_eq!(
            rules_of(&scan_all("use std::collections::HashMap;\n")),
            vec!["det-hash-collection"]
        );
        assert_eq!(
            rules_of(&scan_all("fn f() { std::thread::spawn(|| {}); }\n")),
            vec!["det-thread-spawn"]
        );
        assert_eq!(
            rules_of(&scan_all(
                "fn f() { std::thread::scope(|s| { let _ = s; }); }\n"
            )),
            vec!["det-thread-spawn"]
        );
    }

    #[test]
    fn channel_construction_flagged() {
        assert_eq!(
            rules_of(&scan_all(
                "fn f() { let (tx, rx) = std::sync::mpsc::channel::<u32>(); }\n"
            )),
            vec!["det-channel"]
        );
        assert_eq!(
            rules_of(&scan_all("fn f() { let p = mpsc::sync_channel(4); }\n")),
            vec!["det-channel"]
        );
        // Receiving and sending are not construction sites.
        assert!(scan_all("fn f(rx: &Receiver<u32>) { let _ = rx.recv(); }\n").is_empty());
    }

    #[test]
    fn wall_clock_and_parallelism() {
        assert_eq!(
            rules_of(&scan_all("fn f() { let _ = std::time::Instant::now(); }\n")),
            vec!["det-wall-clock"]
        );
        assert_eq!(
            rules_of(&scan_all(
                "fn f() { let _ = std::thread::available_parallelism(); }\n"
            )),
            vec!["det-available-parallelism"]
        );
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn t() { x.unwrap(); v.sort(); }\n}\n";
        assert!(scan_all(src).is_empty());
    }

    #[test]
    fn lint_wall_detection() {
        assert!(
            missing_lint_wall("#![forbid(unsafe_code)]\n#![deny(warnings)]\nfn f() {}\n")
                .is_empty()
        );
        assert_eq!(
            missing_lint_wall("//! docs\n#![forbid(unsafe_code)]\n"),
            vec!["#![deny(warnings)]"]
        );
        assert_eq!(missing_lint_wall("fn f() {}\n").len(), 2);
    }

    #[test]
    fn panic_macros() {
        assert_eq!(
            rules_of(&scan_all("fn f() { panic!(\"boom\"); }\n")),
            vec!["panic-macro"]
        );
        assert_eq!(
            rules_of(&scan_all("fn f() { todo!() }\n")),
            vec!["panic-macro"]
        );
        // assert!/debug_assert!/unreachable! are the sanctioned loud-failure
        // forms and pass.
        assert!(scan_all("fn f(x: usize) { assert!(x > 0); debug_assert!(x < 9); }\n").is_empty());
    }
}
