//! Figure 1(a): `D(ω_r, T_K)` as the budget `B` varies, for the faster
//! algorithms (T1-on, TB-off, C-off, incr, naive, random).
//!
//! Paper workload: N = 20 tuples, uniform pdfs (width 0.4), K = 5,
//! perfect workers. Expected shape: T1-on ≈ C-off best, TB-off behind
//! them, incr slightly behind T1-on, naive clearly better than random,
//! all decreasing in B.
//!
//! `cargo run --release -p ctk-bench --bin fig1a [runs]`

use ctk_bench::{emit_tsv, evaluate, fmt, runs_from_args, EvalOpts};
use ctk_core::session::Algorithm;
use ctk_datagen::scenarios;

fn main() {
    let runs = runs_from_args(10);
    let opts = EvalOpts {
        runs,
        ..EvalOpts::default()
    };
    let budgets = [0usize, 5, 10, 20, 30, 40, 50];
    let algorithms = [
        Algorithm::T1On,
        Algorithm::TbOff,
        Algorithm::COff,
        Algorithm::Incr {
            questions_per_round: 5,
        },
        Algorithm::Naive,
        Algorithm::Random,
    ];

    eprintln!("# Fig 1(a): D(omega_r, T_K) vs budget B — N=20, K=5, width 0.4, {runs} runs");
    let mut rows = Vec::new();
    for algorithm in &algorithms {
        for &b in &budgets {
            let s = evaluate(scenarios::fig1, algorithm.clone(), b, &opts);
            rows.push(vec![
                s.algorithm.to_string(),
                b.to_string(),
                fmt(s.avg_distance),
                fmt(s.avg_questions),
            ]);
            eprintln!(
                "#   {:8} B={:2}  D={:.4}  asked={:.1}",
                s.algorithm, b, s.avg_distance, s.avg_questions
            );
        }
    }
    emit_tsv("fig1a", &["algorithm", "B", "D", "questions_asked"], &rows);
}
