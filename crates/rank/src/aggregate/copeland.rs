//! Copeland heuristic: rank candidates by number of majority wins.

use crate::tournament::Tournament;

/// Orders candidate indices by descending Copeland score (number of
/// opponents beaten by strict majority; ties at `w = 0.5` count half).
/// Secondary key: Borda score; tertiary: index, for determinism.
pub fn copeland(t: &Tournament) -> Vec<usize> {
    let n = t.len();
    let mut scored: Vec<(f64, f64, usize)> = (0..n)
        .map(|a| {
            let mut wins = 0.0;
            let mut support = 0.0;
            for b in 0..n {
                if a == b {
                    continue;
                }
                let w = t.weight(a, b);
                support += w;
                if w > 0.5 {
                    wins += 1.0;
                // ctk-allow(float-eq): 0.5 is the exact self/tie sentinel the matrix stores
                } else if w == 0.5 {
                    wins += 0.5;
                }
            }
            (wins, support, a)
        })
        .collect();
    scored.sort_unstable_by(|x, y| {
        y.0.total_cmp(&x.0)
            .then(y.1.total_cmp(&x.1))
            .then(x.2.cmp(&y.2))
    });
    scored.into_iter().map(|(_, _, a)| a).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::RankList;

    #[test]
    fn unanimous_input_is_recovered() {
        let l = RankList::new(vec![1, 3, 0, 2]).unwrap();
        let t = Tournament::from_weighted_lists(&[(l, 2.0)]);
        let order = copeland(&t);
        let items: Vec<u32> = order.iter().map(|&i| t.items()[i]).collect();
        assert_eq!(items, vec![1, 3, 0, 2]);
    }

    #[test]
    fn output_is_a_permutation() {
        let t = Tournament::from_fn(
            (0..9).collect(),
            |u, v| {
                if (u + v) % 2 == 0 {
                    0.6
                } else {
                    0.4
                }
            },
        );
        let mut order = copeland(&t);
        order.sort_unstable();
        assert_eq!(order, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn condorcet_winner_ranks_first() {
        // Candidate 2 beats everyone; others form a cycle.
        let t = Tournament::from_fn(vec![0, 1, 2, 3], |u, v| {
            if u == 2 {
                0.9
            } else if v == 2 {
                0.1
            } else {
                // 0 beats 1 beats 3 beats 0 (cycle).
                match (u, v) {
                    (0, 1) | (1, 3) | (3, 0) => 0.8,
                    _ => 0.2,
                }
            }
        });
        let order = copeland(&t);
        assert_eq!(t.items()[order[0]], 2);
    }
}
