//! Pairwise score-comparison probabilities `P(s_i > s_j)`.
//!
//! These drive three parts of the system: the relevant-question set `Q_K`
//! (a question is worth asking only if the order of the pair is uncertain),
//! the splitting of path mass for answers a path leaves undetermined, and
//! the noisy-worker Bayesian update.
//!
//! Ties between continuous scores have measure zero; ties between atoms are
//! split evenly (`P(A > B) + ½·P(A = B)`), matching the deterministic
//! tie-breaking rule assumed by the paper (any fixed rule yields the same
//! expected behaviour under the symmetric split).

use crate::dist::ScoreDist;
use crate::grid::SupportGrid;
use crate::quad::trapezoid;
use crate::table::UncertainTable;

/// Tolerance under which an order probability counts as certain.
pub const ORDER_EPS: f64 = 1e-9;

/// Resolution used for the pairwise quadrature grid.
const PAIR_RESOLUTION: usize = 2048;

/// `P(A > B) + ½ P(A = B)` for independent scores `A`, `B`.
pub fn pr_greater(a: &ScoreDist, b: &ScoreDist) -> f64 {
    // The summation arms can overshoot [0, 1] by a few ulps (normalized
    // discrete weights sum to 1 only within float error); clamp once here.
    pr_greater_raw(a, b).clamp(0.0, 1.0)
}

fn pr_greater_raw(a: &ScoreDist, b: &ScoreDist) -> f64 {
    use ScoreDist::*;
    match (a, b) {
        // Two atoms: direct comparison with symmetric tie split.
        (Point(x), Point(y)) => {
            if x > y {
                1.0
            } else if x < y {
                0.0
            } else {
                0.5
            }
        }
        // Closed form for the Gaussian pair.
        (Gaussian(ga), Gaussian(gb)) => ga.pr_greater_than(gb),
        // A is an atom at v: P(v > B) = P(B < v) + ½ P(B = v).
        (Point(v), _) => b.cdf(*v) - 0.5 * b.mass_at(*v),
        (_, Point(v)) => 1.0 - a.cdf(*v) + 0.5 * a.mass_at(*v),
        // Discrete A: sum over atoms.
        (Discrete(da), _) => da
            .values()
            .iter()
            .zip(da.probabilities())
            .map(|(&x, &p)| p * (b.cdf(x) - 0.5 * b.mass_at(x)))
            .sum(),
        // Discrete B, continuous A: P(A > B) = sum_k p_k (1 - F_A(x_k)).
        (_, Discrete(db)) => db
            .values()
            .iter()
            .zip(db.probabilities())
            .map(|(&x, &p)| p * (1.0 - a.cdf(x)))
            .sum(),
        // Mixtures: P is linear in each argument, so recurse per component
        // (this also routes mixture atoms through the exact discrete arms).
        (Mixture(ma), _) => ma
            .components()
            .iter()
            .map(|(w, c)| w * pr_greater(c, b))
            .sum(),
        (_, Mixture(mb)) => mb
            .components()
            .iter()
            .map(|(w, c)| w * pr_greater(a, c))
            .sum(),
        // Both continuous: quick support check, then quadrature.
        _ => {
            let (alo, ahi) = a.support();
            let (blo, bhi) = b.support();
            if alo >= bhi {
                return 1.0;
            }
            if ahi <= blo {
                return 0.0;
            }
            let grid = SupportGrid::build([a, b], PAIR_RESOLUTION);
            let x = grid.points();
            let y: Vec<f64> = x.iter().map(|&xi| a.pdf(xi) * b.cdf(xi)).collect();
            trapezoid(x, &y).clamp(0.0, 1.0)
        }
    }
}

/// Fills `vals` with `P(s_i > s_j)` for one chunk of index pairs.
fn pair_chunk(table: &UncertainTable, pairs: &[(u32, u32)], vals: &mut [f64]) {
    for (&(i, j), v) in pairs.iter().zip(vals.iter_mut()) {
        *v = pr_greater(table.dist_at(i as usize), table.dist_at(j as usize));
    }
}

/// True if the relative order of `a` and `b` is uncertain, i.e. neither
/// `P(a > b)` nor `P(b > a)` is (numerically) one.
pub fn order_uncertain(a: &ScoreDist, b: &ScoreDist) -> bool {
    let p = pr_greater(a, b);
    p > ORDER_EPS && p < 1.0 - ORDER_EPS
}

/// Dense matrix of pairwise probabilities for a table:
/// `m[i][j] = P(s_i > s_j)`, with `m[i][i] = 0.5` by convention.
#[derive(Debug, Clone)]
pub struct PairwiseMatrix {
    n: usize,
    p: Vec<f64>,
}

/// Below this many unordered pairs the matrix is computed sequentially —
/// thread spawn overhead would dominate the quadratures.
const PARALLEL_PAIRS_MIN: usize = 256;

impl PairwiseMatrix {
    /// Computes all `n(n-1)/2` comparison probabilities of `table`.
    ///
    /// The pairs are independent quadratures, so they are chunked across
    /// threads; every entry is computed by exactly the same code on
    /// exactly the same inputs as a sequential pass, making the result
    /// bit-identical to [`PairwiseMatrix::compute_sequential`] (pinned by
    /// tests).
    pub fn compute(table: &UncertainTable) -> Self {
        let n = table.len();
        let pairs = n.saturating_mul(n.saturating_sub(1)) / 2;
        let threads = if pairs < PARALLEL_PAIRS_MIN {
            1
        } else {
            std::thread::available_parallelism()
                .map(|t| t.get())
                .unwrap_or(1)
        };
        Self::compute_with_threads(table, threads)
    }

    /// The single-threaded reference implementation.
    pub fn compute_sequential(table: &UncertainTable) -> Self {
        Self::compute_with_threads(table, 1)
    }

    /// [`PairwiseMatrix::compute`] with an explicit thread count.
    pub fn compute_with_threads(table: &UncertainTable, threads: usize) -> Self {
        let n = table.len();
        let pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
            .collect();
        let mut vals = vec![0.0f64; pairs.len()];
        let threads = threads.clamp(1, pairs.len().max(1));
        if threads == 1 {
            pair_chunk(table, &pairs, &mut vals);
        } else {
            let chunk = pairs.len().div_ceil(threads);
            std::thread::scope(|s| {
                for (pc, vc) in pairs.chunks(chunk).zip(vals.chunks_mut(chunk)) {
                    s.spawn(move || pair_chunk(table, pc, vc));
                }
            });
        }
        let mut p = vec![0.5; n * n];
        for (&(i, j), &pij) in pairs.iter().zip(&vals) {
            p[i as usize * n + j as usize] = pij;
            p[j as usize * n + i as usize] = 1.0 - pij;
        }
        Self { n, p }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the matrix is over an empty table.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `P(s_i > s_j)` by tuple index.
    pub fn pr(&self, i: usize, j: usize) -> f64 {
        self.p[i * self.n + j]
    }

    /// True if the relative order of tuples `i` and `j` is uncertain.
    pub fn uncertain(&self, i: usize, j: usize) -> bool {
        let p = self.pr(i, j);
        p > ORDER_EPS && p < 1.0 - ORDER_EPS
    }

    /// Number of unordered pairs whose relative order is uncertain — the
    /// size of the paper's relevant-question space over the whole table.
    pub fn uncertain_pair_count(&self) -> usize {
        let mut c = 0;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if self.uncertain(i, j) {
                    c += 1;
                }
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(lo: f64, hi: f64) -> ScoreDist {
        ScoreDist::uniform(lo, hi).unwrap()
    }

    #[test]
    fn identical_uniforms_tie_at_half() {
        let a = u(0.0, 1.0);
        let p = pr_greater(&a, &a.clone());
        assert!((p - 0.5).abs() < 1e-6, "p = {p}");
    }

    #[test]
    fn disjoint_supports_are_certain() {
        let hi = u(2.0, 3.0);
        let lo = u(0.0, 1.0);
        assert_eq!(pr_greater(&hi, &lo), 1.0);
        assert_eq!(pr_greater(&lo, &hi), 0.0);
        assert!(!order_uncertain(&hi, &lo));
    }

    #[test]
    fn overlapping_uniform_closed_form() {
        // A ~ U[0,2], B ~ U[1,3]: P(A > B) = area computation = 1/8.
        let a = u(0.0, 2.0);
        let b = u(1.0, 3.0);
        let p = pr_greater(&a, &b);
        assert!((p - 0.125).abs() < 1e-5, "p = {p}");
        assert!(order_uncertain(&a, &b));
    }

    #[test]
    fn complementarity_across_families() {
        let dists = [
            u(0.0, 1.0),
            ScoreDist::gaussian(0.4, 0.2).unwrap(),
            ScoreDist::discrete(&[(0.1, 0.4), (0.9, 0.6)]).unwrap(),
            ScoreDist::histogram(&[0.0, 0.4, 1.0], &[2.0, 1.0]).unwrap(),
            ScoreDist::triangular(0.0, 0.7, 1.0).unwrap(),
            ScoreDist::point(0.45),
        ];
        for a in &dists {
            for b in &dists {
                let p = pr_greater(a, b);
                let q = pr_greater(b, a);
                assert!(
                    (p + q - 1.0).abs() < 1e-5,
                    "complementarity failed: {a:?} vs {b:?}: {p} + {q}"
                );
            }
        }
    }

    #[test]
    fn point_vs_point_ties() {
        let a = ScoreDist::point(1.0);
        assert_eq!(pr_greater(&a, &ScoreDist::point(1.0)), 0.5);
        assert_eq!(pr_greater(&a, &ScoreDist::point(0.0)), 1.0);
        assert_eq!(pr_greater(&a, &ScoreDist::point(2.0)), 0.0);
    }

    #[test]
    fn discrete_tie_mass_split() {
        // A and B both have an atom at 1.0 with mass 0.5.
        let a = ScoreDist::discrete(&[(1.0, 0.5), (2.0, 0.5)]).unwrap();
        let b = ScoreDist::discrete(&[(0.0, 0.5), (1.0, 0.5)]).unwrap();
        // P(A>B): A=1: beats 0 (0.5), ties 1 (0.5*0.5 credit=0.25) -> 0.5*(0.5+0.25)
        //         A=2: beats everything -> 0.5*1
        let p = pr_greater(&a, &b);
        assert!((p - (0.5 * 0.75 + 0.5)).abs() < 1e-12, "p = {p}");
        let q = pr_greater(&b, &a);
        assert!((p + q - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_closed_form_agrees_with_quadrature_of_mixed_pair() {
        // Compare a Gaussian with a histogram approximating it: p ~ 0.5.
        let g = ScoreDist::gaussian(0.5, 0.1).unwrap();
        let h = ScoreDist::histogram(
            &[0.2, 0.35, 0.45, 0.55, 0.65, 0.8],
            &[0.0668, 0.2417, 0.3829, 0.2417, 0.0668],
        )
        .unwrap();
        let p = pr_greater(&g, &h);
        assert!((p - 0.5).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn pairwise_matrix_consistency() {
        let table = UncertainTable::new(vec![
            u(0.0, 1.0),
            u(0.5, 1.5),
            u(2.0, 3.0),
            ScoreDist::point(0.75),
        ])
        .unwrap();
        let m = PairwiseMatrix::compute(&table);
        assert_eq!(m.len(), 4);
        assert!(!m.is_empty());
        for i in 0..4 {
            assert_eq!(m.pr(i, i), 0.5);
            for j in 0..4 {
                assert!((m.pr(i, j) + m.pr(j, i) - 1.0).abs() < 1e-9);
            }
        }
        // Tuple 2 dominates everyone: certain orders.
        assert!(!m.uncertain(2, 0));
        assert!(!m.uncertain(2, 1));
        assert!(!m.uncertain(2, 3));
        // Tuples 0 and 1 overlap.
        assert!(m.uncertain(0, 1));
        // Uncertain pairs: (0,1), (0,3), (1,3).
        assert_eq!(m.uncertain_pair_count(), 3);
    }

    #[test]
    fn parallel_matrix_is_bit_identical_to_sequential() {
        // A mixed-family table large enough to cross the parallel
        // threshold in `compute`, exercising every pr_greater arm.
        let dists: Vec<ScoreDist> = (0..30)
            .map(|i| {
                let c = i as f64 * 0.05;
                match i % 4 {
                    0 => u(c, c + 0.8),
                    1 => ScoreDist::gaussian(c + 0.3, 0.15).unwrap(),
                    2 => ScoreDist::discrete(&[(c, 0.4), (c + 0.6, 0.6)]).unwrap(),
                    _ => ScoreDist::triangular(c, c + 0.4, c + 0.9).unwrap(),
                }
            })
            .collect();
        let table = UncertainTable::new(dists).unwrap();
        let seq = PairwiseMatrix::compute_sequential(&table);
        for threads in [2, 3, 8, 64] {
            let par = PairwiseMatrix::compute_with_threads(&table, threads);
            for i in 0..table.len() {
                for j in 0..table.len() {
                    assert_eq!(
                        seq.pr(i, j).to_bits(),
                        par.pr(i, j).to_bits(),
                        "({i},{j}) with {threads} threads"
                    );
                }
            }
        }
        let auto = PairwiseMatrix::compute(&table);
        for i in 0..table.len() {
            for j in 0..table.len() {
                assert_eq!(seq.pr(i, j).to_bits(), auto.pr(i, j).to_bits());
            }
        }
    }
}
