//! Finite mixture distributions.
//!
//! Mixtures model multi-modal score uncertainty — e.g. a tuple whose score
//! depends on an unresolved categorical fact (“if the photo is a finalist
//! its quality score is high, otherwise low”). The TKDE version of the
//! paper exercises non-uniform pdfs; mixtures are the standard way to
//! build them from simple components.

use crate::dist::ScoreDist;
use crate::error::{ProbError, Result};
use rand::Rng;

/// Weighted mixture of score distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct Mixture {
    /// Components with normalized weights (positive, summing to 1).
    components: Vec<(f64, ScoreDist)>,
    /// Cumulative weights for sampling.
    cum: Vec<f64>,
}

impl Mixture {
    /// Builds a mixture from `(weight, component)` pairs. Weights must be
    /// nonnegative with positive sum; zero-weight components are dropped.
    pub fn new(parts: Vec<(f64, ScoreDist)>) -> Result<Self> {
        if parts.is_empty() {
            return Err(ProbError::InvalidWeights("empty mixture".into()));
        }
        let mut total = 0.0;
        for (w, _) in &parts {
            if !w.is_finite() || *w < 0.0 {
                return Err(ProbError::InvalidWeights(format!(
                    "mixture weight {w} is negative or non-finite"
                )));
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(ProbError::InvalidWeights(
                "mixture weights sum to zero".into(),
            ));
        }
        let components: Vec<(f64, ScoreDist)> = parts
            .into_iter()
            .filter(|(w, _)| *w > 0.0)
            .map(|(w, d)| (w / total, d))
            .collect();
        let mut cum = Vec::with_capacity(components.len());
        let mut acc = 0.0;
        for (w, _) in &components {
            acc += w;
            cum.push(acc);
        }
        if let Some(last) = cum.last_mut() {
            *last = 1.0;
        }
        Ok(Self { components, cum })
    }

    /// Two-component convenience constructor (the common bimodal case).
    pub fn bimodal(w1: f64, d1: ScoreDist, w2: f64, d2: ScoreDist) -> Result<Self> {
        Self::new(vec![(w1, d1), (w2, d2)])
    }

    /// The normalized components.
    pub fn components(&self) -> &[(f64, ScoreDist)] {
        &self.components
    }

    /// True when every component is continuous.
    pub fn is_continuous(&self) -> bool {
        self.components.iter().all(|(_, d)| d.is_continuous())
    }

    /// Mixture density (weighted sum of component densities).
    pub fn pdf(&self, x: f64) -> f64 {
        self.components.iter().map(|(w, d)| w * d.pdf(x)).sum()
    }

    /// Point mass at `x` (weighted sum of component atoms).
    pub fn mass_at(&self, x: f64) -> f64 {
        self.components.iter().map(|(w, d)| w * d.mass_at(x)).sum()
    }

    /// Mixture cdf.
    pub fn cdf(&self, x: f64) -> f64 {
        self.components.iter().map(|(w, d)| w * d.cdf(x)).sum()
    }

    /// Quantile by bisection on the (monotone) mixture cdf.
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let (mut lo, mut hi) = self.support();
        // ctk-allow(float-eq): exact-sentinels — clamp saturates to literal 0.0
        if p == 0.0 {
            return lo;
        }
        // ctk-allow(float-eq): exact-sentinels — clamp saturates to literal 1.0
        if p == 1.0 {
            return hi;
        }
        // 80 bisection steps: |hi - lo| shrinks by 2^-80 — far below f64
        // resolution for any practical support.
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Mixture mean (weighted component means).
    pub fn mean(&self) -> f64 {
        self.components.iter().map(|(w, d)| w * d.mean()).sum()
    }

    /// Mixture variance (law of total variance).
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.components
            .iter()
            .map(|(w, d)| {
                let dm = d.mean();
                w * (d.variance() + (dm - m) * (dm - m))
            })
            .sum()
    }

    /// Support hull over all components.
    pub fn support(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (_, d) in &self.components {
            let (a, b) = d.support();
            lo = lo.min(a);
            hi = hi.max(b);
        }
        (lo, hi)
    }

    /// Samples a component by weight, then a value from it.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        let idx = self.cum.partition_point(|&c| c < u);
        self.components[idx.min(self.components.len() - 1)]
            .1
            .sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bimodal() -> Mixture {
        Mixture::bimodal(
            0.3,
            ScoreDist::uniform(0.0, 0.2).unwrap(),
            0.7,
            ScoreDist::uniform(0.8, 1.0).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Mixture::new(vec![]).is_err());
        assert!(Mixture::new(vec![(-1.0, ScoreDist::point(0.0))]).is_err());
        assert!(Mixture::new(vec![(0.0, ScoreDist::point(0.0))]).is_err());
        // Zero-weight components are dropped.
        let m = Mixture::new(vec![
            (1.0, ScoreDist::point(0.0)),
            (0.0, ScoreDist::point(1.0)),
        ])
        .unwrap();
        assert_eq!(m.components().len(), 1);
    }

    #[test]
    fn weights_normalize() {
        let m = Mixture::bimodal(3.0, ScoreDist::point(0.0), 1.0, ScoreDist::point(1.0)).unwrap();
        assert!((m.components()[0].0 - 0.75).abs() < 1e-12);
        assert!((m.mass_at(0.0) - 0.75).abs() < 1e-12);
        assert!(!m.is_continuous());
    }

    #[test]
    fn cdf_and_pdf_combine_components() {
        let m = bimodal();
        assert!(m.is_continuous());
        assert_eq!(m.cdf(-0.1), 0.0);
        assert!((m.cdf(0.2) - 0.3).abs() < 1e-12);
        assert!((m.cdf(0.5) - 0.3).abs() < 1e-12, "gap has no mass");
        assert_eq!(m.cdf(1.0), 1.0);
        assert!((m.pdf(0.1) - 0.3 / 0.2).abs() < 1e-12);
        assert_eq!(m.pdf(0.5), 0.0);
        assert!((m.pdf(0.9) - 0.7 / 0.2).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let m = bimodal();
        for i in 1..40 {
            let p = i as f64 / 40.0;
            let x = m.quantile(p);
            assert!((m.cdf(x) - p).abs() < 1e-9, "p={p} x={x} cdf={}", m.cdf(x));
        }
        assert_eq!(m.quantile(0.0), 0.0);
        assert_eq!(m.quantile(1.0), 1.0);
    }

    #[test]
    fn moments_by_total_laws() {
        let m = bimodal();
        // mean = 0.3*0.1 + 0.7*0.9 = 0.66
        assert!((m.mean() - 0.66).abs() < 1e-12);
        // var = E[var] + var[means]
        let within = 0.2f64 * 0.2 / 12.0;
        let between = 0.3 * (0.1f64 - 0.66).powi(2) + 0.7 * (0.9f64 - 0.66).powi(2);
        assert!((m.variance() - (within + between)).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_weights_and_support() {
        let m = bimodal();
        let mut rng = StdRng::seed_from_u64(8);
        const N: usize = 20_000;
        let mut high = 0usize;
        for _ in 0..N {
            let s = m.sample(&mut rng);
            assert!((0.0..=1.0).contains(&s));
            assert!(!(0.2..0.8).contains(&s), "gap must be empty, got {s}");
            if s >= 0.8 {
                high += 1;
            }
        }
        let frac = high as f64 / N as f64;
        assert!((frac - 0.7).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn support_is_hull() {
        assert_eq!(bimodal().support(), (0.0, 1.0));
    }
}
