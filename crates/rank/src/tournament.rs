//! Weighted majority tournaments.
//!
//! A tournament summarizes a probability distribution over (top-k) rank
//! lists into pairwise precedence weights `w(i, j) = P(i ranked above j)`.
//! The Optimal Rank Aggregation of Soliman et al. (SIGMOD'11) — the
//! representative ordering behind the paper's `U_ORA` measure — is the
//! ordering minimizing the total weight of disagreeing pairs, i.e. a
//! minimum weighted feedback-arc-set problem over this tournament.

use crate::list::RankList;

/// Pairwise precedence weights over a candidate item set.
#[derive(Debug, Clone)]
pub struct Tournament {
    items: Vec<u32>,
    /// Row-major `n x n`; `w[i*n+j] = P(items[i] above items[j])`.
    w: Vec<f64>,
}

impl Tournament {
    /// Builds a tournament from weighted rank lists (weights need not sum
    /// to 1; they are normalized).
    ///
    /// Membership-aware precedence semantics for a top-k list `ω` and pair
    /// `(u, v)`:
    /// * both ranked — precedence by position;
    /// * only `u` ranked — `u` precedes (`v` is below the top-k);
    /// * neither ranked — the list is uninformative: mass splits evenly
    ///   (or by `prior(u, v)` if provided via
    ///   [`Tournament::from_weighted_lists_with_prior`]).
    pub fn from_weighted_lists(lists: &[(RankList, f64)]) -> Self {
        Self::build(lists, |_, _| 0.5)
    }

    /// Like [`Tournament::from_weighted_lists`] but with an explicit prior
    /// `prior(u, v) = P(u above v)` used for pairs a list leaves
    /// undetermined (e.g. the marginal pairwise probability of the score
    /// distributions).
    pub fn from_weighted_lists_with_prior<F>(lists: &[(RankList, f64)], prior: F) -> Self
    where
        F: Fn(u32, u32) -> f64,
    {
        Self::build(lists, prior)
    }

    fn build<F>(lists: &[(RankList, f64)], prior: F) -> Self
    where
        F: Fn(u32, u32) -> f64,
    {
        // Candidate set: union of all ranked items, sorted for determinism.
        let mut items: Vec<u32> = Vec::new();
        for (l, _) in lists {
            for &it in l.items() {
                if !items.contains(&it) {
                    items.push(it);
                }
            }
        }
        items.sort_unstable();
        let n = items.len();
        let total: f64 = lists.iter().map(|(_, m)| *m).sum();
        let mut w = vec![0.0; n * n];
        if n == 0 || total <= 0.0 {
            return Self { items, w };
        }
        for (l, mass) in lists {
            let frac = mass / total;
            for (a, &u) in items.iter().enumerate() {
                for (b, &v) in items.iter().enumerate() {
                    if a == b {
                        continue;
                    }
                    let pu = l.position(u);
                    let pv = l.position(v);
                    let p_u_above = match (pu, pv) {
                        (Some(x), Some(y)) => {
                            if x < y {
                                1.0
                            } else {
                                0.0
                            }
                        }
                        (Some(_), None) => 1.0,
                        (None, Some(_)) => 0.0,
                        (None, None) => prior(u, v),
                    };
                    w[a * n + b] += frac * p_u_above;
                }
            }
        }
        // Diagonal convention.
        for a in 0..n {
            w[a * n + a] = 0.5;
        }
        Self { items, w }
    }

    /// Builds directly from items and a weight function (for tests and for
    /// tournaments derived from pairwise marginals rather than lists).
    pub fn from_fn<F>(items: Vec<u32>, f: F) -> Self
    where
        F: Fn(u32, u32) -> f64,
    {
        let n = items.len();
        let mut w = vec![0.5; n * n];
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    w[a * n + b] = f(items[a], items[b]);
                }
            }
        }
        Self { items, w }
    }

    /// Candidate items (sorted ascending).
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `P(items[a] above items[b])` by *index* into [`Tournament::items`].
    pub fn weight(&self, a: usize, b: usize) -> f64 {
        self.w[a * self.items.len() + b]
    }

    /// Index of `item` in the candidate set.
    pub fn index_of(&self, item: u32) -> Option<usize> {
        self.items.binary_search(&item).ok()
    }

    /// Cost of an ordering (given as indices into the candidate set): the
    /// total weight of voter preferences it violates,
    /// `Σ_{a before b} w(b, a)`.
    pub fn cost_of_indices(&self, order: &[usize]) -> f64 {
        let mut c = 0.0;
        for x in 0..order.len() {
            for y in (x + 1)..order.len() {
                c += self.weight(order[y], order[x]);
            }
        }
        c
    }

    /// Cost of an ordering given as a [`RankList`] of item ids; the list
    /// must rank every candidate exactly once.
    pub fn cost_of(&self, order: &RankList) -> f64 {
        let idx: Vec<usize> = order
            .items()
            .iter()
            // ctk-allow(panic-unwrap): RankList is validated against this tournament's item set
            .map(|&it| self.index_of(it).expect("ordering over tournament items"))
            .collect();
        self.cost_of_indices(&idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rl(items: &[u32]) -> RankList {
        RankList::new(items.to_vec()).unwrap()
    }

    #[test]
    fn single_list_is_deterministic() {
        let t = Tournament::from_weighted_lists(&[(rl(&[2, 0, 1]), 1.0)]);
        assert_eq!(t.items(), &[0, 1, 2]);
        let i2 = t.index_of(2).unwrap();
        let i0 = t.index_of(0).unwrap();
        let i1 = t.index_of(1).unwrap();
        assert_eq!(t.weight(i2, i0), 1.0);
        assert_eq!(t.weight(i0, i2), 0.0);
        assert_eq!(t.weight(i0, i1), 1.0);
        // Consistent ordering has zero cost; reversal has max cost 3.
        assert_eq!(t.cost_of(&rl(&[2, 0, 1])), 0.0);
        assert_eq!(t.cost_of(&rl(&[1, 0, 2])), 3.0);
    }

    #[test]
    fn weights_are_complementary() {
        let lists = [
            (rl(&[0, 1, 2]), 0.5),
            (rl(&[1, 0, 2]), 0.25),
            (rl(&[2, 1, 0]), 0.25),
        ];
        let t = Tournament::from_weighted_lists(&lists);
        for a in 0..t.len() {
            for b in 0..t.len() {
                if a != b {
                    assert!(
                        (t.weight(a, b) + t.weight(b, a) - 1.0).abs() < 1e-12,
                        "({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn membership_implies_precedence() {
        // Two top-2 lists over a 3-item universe.
        let lists = [(rl(&[0, 1]), 0.5), (rl(&[0, 2]), 0.5)];
        let t = Tournament::from_weighted_lists(&lists);
        let (i0, i1, i2) = (
            t.index_of(0).unwrap(),
            t.index_of(1).unwrap(),
            t.index_of(2).unwrap(),
        );
        // 0 precedes both in every list.
        assert_eq!(t.weight(i0, i1), 1.0);
        assert_eq!(t.weight(i0, i2), 1.0);
        // 1 vs 2: first list says 1 (member vs non-member), second says 2.
        assert!((t.weight(i1, i2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prior_fills_unknown_pairs() {
        // Lists that never mention 1 vs 2 together… a universe where both
        // absent case occurs needs k < |items|; craft: lists [0,1] and [0,2]
        // cover all pairs, so instead use from_fn for the prior check.
        let lists = [(rl(&[0]), 1.0), (rl(&[1]), 1.0), (rl(&[2]), 1.0)];
        let t = Tournament::from_weighted_lists_with_prior(
            &lists,
            |u, v| {
                if u < v {
                    0.9
                } else {
                    0.1
                }
            },
        );
        let (i1, i2) = (t.index_of(1).unwrap(), t.index_of(2).unwrap());
        // For the list [0]: both 1 and 2 absent -> prior 0.9 for (1,2).
        // For [1]: 1 present -> 1.0. For [2]: 2 present -> 0.0.
        let expect = (0.9 + 1.0 + 0.0) / 3.0;
        assert!((t.weight(i1, i2) - expect).abs() < 1e-12);
    }

    #[test]
    fn from_fn_and_cost() {
        let t = Tournament::from_fn(vec![10, 20], |u, _| if u == 10 { 0.8 } else { 0.2 });
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // Order [10, 20] violates the 0.2 mass preferring 20 first.
        assert!((t.cost_of(&rl(&[10, 20])) - 0.2).abs() < 1e-12);
        assert!((t.cost_of(&rl(&[20, 10])) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let t = Tournament::from_weighted_lists(&[]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
