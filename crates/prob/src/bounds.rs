//! Deterministic certain/possible top-K bounds from decided pairwise
//! orders.
//!
//! The sweep-line pairwise matrix resolves every strictly-disjoint pair to
//! an exact 0/1 entry, and overlapping pairs can still saturate within
//! [`ORDER_EPS`]. Those *decided* pairs pin parts of the top-K answer
//! before a single possible world is sampled:
//!
//! * a tuple with at least `n − K` tuples certainly below it is in the
//!   top-K of **every** possible world (*certainly in*);
//! * a tuple with at least `K` tuples certainly above it is in the top-K
//!   of **no** possible world (*certainly out*); everything else is
//!   *possibly in*.
//!
//! When the certain set has exactly `K` members and additionally every
//! rank `0..K` is pinned to a single tuple, the whole ordered prefix is
//! decided and the Monte-Carlo builder can skip sampling entirely —
//! [`TopKBounds::pinned_order`] is the zero-worlds early exit of the
//! adaptive precision layer (DESIGN.md §13).

use crate::compare::{PairwiseMatrix, ORDER_EPS};
use crate::error::{ProbError, Result};

/// Certain/possible top-K membership bounds derived from the decided
/// entries of a [`PairwiseMatrix`].
///
/// All fields are pure functions of the matrix and `k`; computing the
/// bounds costs one O(n²) scan and no sampling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopKBounds {
    n: usize,
    k: usize,
    /// Per tuple: how many other tuples are certainly above it.
    above: Vec<u32>,
    /// Per tuple: how many other tuples are certainly below it.
    below: Vec<u32>,
    /// Tuples certainly in the top-K (ascending index).
    certain: Vec<u32>,
    /// Tuples possibly in the top-K (ascending index); superset of
    /// `certain`.
    possible: Vec<u32>,
}

impl TopKBounds {
    /// Derives the bounds for a depth-`k` query from `matrix`.
    pub fn from_matrix(matrix: &PairwiseMatrix, k: usize) -> Result<Self> {
        let n = matrix.len();
        if k == 0 || k > n {
            return Err(ProbError::InvalidK { k, n });
        }
        let (above, below) = matrix.certain_dominance_counts();
        let certain: Vec<u32> = (0..n as u32)
            .filter(|&t| below[t as usize] as usize >= n - k)
            .collect();
        let possible: Vec<u32> = (0..n as u32)
            .filter(|&t| (above[t as usize] as usize) < k)
            .collect();
        Ok(Self {
            n,
            k,
            above,
            below,
            certain,
            possible,
        })
    }

    /// Number of tuples in the underlying table.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True over an empty table (unreachable through `from_matrix`, which
    /// rejects `k > n` and `k == 0`).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The query depth the bounds were derived for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Tuples certainly in the top-K of every possible world, ascending.
    pub fn certain(&self) -> &[u32] {
        &self.certain
    }

    /// Tuples possibly in the top-K of some possible world, ascending.
    pub fn possible(&self) -> &[u32] {
        &self.possible
    }

    /// How many tuples are certainly above tuple `t`.
    pub fn certainly_above(&self, t: usize) -> usize {
        self.above[t] as usize
    }

    /// How many tuples are certainly below tuple `t`.
    pub fn certainly_below(&self, t: usize) -> usize {
        self.below[t] as usize
    }

    /// True if tuple `t` appears in the top-K of every possible world.
    pub fn is_certainly_in(&self, t: usize) -> bool {
        self.below[t] as usize >= self.n - self.k
    }

    /// True if tuple `t` appears in the top-K of at least one world
    /// (equivalently: fewer than `k` tuples are certainly above it).
    pub fn is_possibly_in(&self, t: usize) -> bool {
        (self.above[t] as usize) < self.k
    }

    /// True when the top-K *membership* is fully decided: exactly `k`
    /// tuples are certainly in and no further tuple is possibly in.
    pub fn membership_decided(&self) -> bool {
        self.certain.len() == self.k && self.possible.len() == self.k
    }

    /// The fully pinned ordered top-K prefix, if every rank is decided.
    ///
    /// Rank `r` is pinned when exactly one tuple has `r` tuples certainly
    /// above it and `n − 1 − r` certainly below it — that tuple occupies
    /// rank `r` in every possible world. If all of `0..k` are pinned the
    /// query's answer is a single ordering and no sampling is needed.
    pub fn pinned_order(&self) -> Option<Vec<u32>> {
        let mut prefix = Vec::with_capacity(self.k);
        for r in 0..self.k {
            let mut found = None;
            for t in 0..self.n {
                if self.above[t] as usize == r && self.below[t] as usize == self.n - 1 - r {
                    if found.is_some() {
                        // Two candidates for one rank can only arise from
                        // eps-boundary inconsistencies; treat as undecided.
                        return None;
                    }
                    found = Some(t as u32);
                }
            }
            prefix.push(found?);
        }
        Some(prefix)
    }
}

/// True when `p` is saturated at (numerically) certain `i > j`.
#[inline]
pub(crate) fn certainly_greater(p: f64) -> bool {
    p >= 1.0 - ORDER_EPS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::ScoreDist;
    use crate::table::UncertainTable;

    fn u(lo: f64, hi: f64) -> ScoreDist {
        ScoreDist::uniform(lo, hi).unwrap()
    }

    /// Four tuples in a fully decided staircase.
    fn decided_table() -> UncertainTable {
        UncertainTable::new(vec![u(0.0, 0.5), u(1.0, 1.5), u(2.0, 2.5), u(3.0, 3.5)]).unwrap()
    }

    /// Two decided extremes around an overlapping middle pair.
    fn half_decided_table() -> UncertainTable {
        UncertainTable::new(vec![u(0.0, 0.5), u(1.0, 2.0), u(1.5, 2.5), u(3.0, 3.5)]).unwrap()
    }

    #[test]
    fn invalid_k_rejected() {
        let m = PairwiseMatrix::compute(&decided_table());
        assert!(matches!(
            TopKBounds::from_matrix(&m, 0),
            Err(ProbError::InvalidK { .. })
        ));
        assert!(TopKBounds::from_matrix(&m, 5).is_err());
        assert!(TopKBounds::from_matrix(&m, 4).is_ok());
    }

    #[test]
    fn fully_decided_table_pins_the_order() {
        let m = PairwiseMatrix::compute(&decided_table());
        let b = TopKBounds::from_matrix(&m, 2).unwrap();
        assert_eq!(b.certain(), &[2, 3]);
        assert_eq!(b.possible(), &[2, 3]);
        assert!(b.membership_decided());
        assert_eq!(b.pinned_order(), Some(vec![3, 2]));
        assert_eq!(b.certainly_above(3), 0);
        assert_eq!(b.certainly_below(3), 3);
        assert!(b.is_certainly_in(2) && !b.is_possibly_in(0));
        assert_eq!(b.k(), 2);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
    }

    #[test]
    fn overlapping_middle_keeps_membership_decided_but_not_order() {
        // K = 3: {1, 2, 3} are certainly in (tuple 0 is below everyone),
        // but ranks 1 and 2 are shared between tuples 1 and 2.
        let m = PairwiseMatrix::compute(&half_decided_table());
        let b = TopKBounds::from_matrix(&m, 3).unwrap();
        assert_eq!(b.certain(), &[1, 2, 3]);
        assert_eq!(b.possible(), &[1, 2, 3]);
        assert!(b.membership_decided());
        assert_eq!(b.pinned_order(), None, "middle pair order is open");
    }

    #[test]
    fn undecided_membership_separates_certain_from_possible() {
        // K = 2 over the half-decided table: 3 is certainly in; 1 and 2
        // compete for the second slot; 0 is certainly out.
        let m = PairwiseMatrix::compute(&half_decided_table());
        let b = TopKBounds::from_matrix(&m, 2).unwrap();
        assert_eq!(b.certain(), &[3]);
        assert_eq!(b.possible(), &[1, 2, 3]);
        assert!(!b.membership_decided());
        assert_eq!(b.pinned_order(), None);
    }

    #[test]
    fn certain_is_always_a_subset_of_possible() {
        let tables = [decided_table(), half_decided_table()];
        for table in &tables {
            let m = PairwiseMatrix::compute(table);
            for k in 1..=table.len() {
                let b = TopKBounds::from_matrix(&m, k).unwrap();
                for &t in b.certain() {
                    assert!(
                        b.possible().contains(&t),
                        "k={k}: certain tuple {t} missing from possible"
                    );
                }
            }
        }
    }

    #[test]
    fn iid_table_decides_nothing() {
        let table = UncertainTable::new((0..4).map(|_| u(0.0, 1.0)).collect()).unwrap();
        let m = PairwiseMatrix::compute(&table);
        let b = TopKBounds::from_matrix(&m, 2).unwrap();
        assert!(b.certain().is_empty());
        assert_eq!(b.possible().len(), 4);
        assert_eq!(b.pinned_order(), None);
    }
}
