//! Minimal, API-compatible shim for the subset of `rand` 0.8 this
//! workspace uses. See `shims/README.md` for scope and rationale.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — not upstream's
//! ChaCha12, but statistically solid and fully deterministic for a fixed
//! seed, which is the property the test suite depends on.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly "from all bits" (`rng.gen::<T>()`).
/// Floats sample uniformly from `[0, 1)`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_float_range!(f64, f32);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *w = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling/choosing, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-1.5f64..=2.5);
            assert!((-1.5..=2.5).contains(&y));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
