//! Criterion companion to Figure 1(b): pure selection cost (no crowd, no
//! pruning) per strategy and budget — the paper's CPU-time axis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctk_core::measures::MeasureKind;
use ctk_core::residual::ResidualCtx;
use ctk_core::select::{COff, NaiveSelector, OfflineSelector, TbOff};
use ctk_datagen::scenarios;
use ctk_prob::compare::PairwiseMatrix;
use ctk_tpo::build::{build_mc, McConfig};
use std::time::Duration;

fn bench_selection(c: &mut Criterion) {
    let scenario = scenarios::fig1(0);
    let pairwise = PairwiseMatrix::compute(&scenario.table);
    let ps = build_mc(&scenario.table, scenario.k, &McConfig::fixed(2_000, 0)).unwrap();
    let measure = MeasureKind::WeightedEntropy.build();
    let ctx = ResidualCtx {
        measure: measure.as_ref(),
        pairwise: &pairwise,
    };

    let mut group = c.benchmark_group("fig1b_selection");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));

    for budget in [5usize, 15] {
        group.bench_with_input(BenchmarkId::new("TB-off", budget), &budget, |bch, &b| {
            bch.iter(|| TbOff.select(&ps, b, &ctx))
        });
        group.bench_with_input(BenchmarkId::new("C-off", budget), &budget, |bch, &b| {
            bch.iter(|| COff.select(&ps, b, &ctx))
        });
        group.bench_with_input(BenchmarkId::new("naive", budget), &budget, |bch, &b| {
            bch.iter(|| NaiveSelector::new(1).select(&ps, b, &ctx))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
