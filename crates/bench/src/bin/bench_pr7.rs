//! Quality-layer acceptance report (PR 7 numbers).
//!
//! Two gates, both enforced by assertion:
//!
//! 1. **Strict win** — on a spammer-contaminated roster (1/3 of workers
//!    near or below chance, ≥ the 25% acceptance floor), full top-K
//!    sessions served by the accuracy-weighted [`QualityCrowd`] (gold
//!    qualification round + online estimation + log-odds fusion) must
//!    end strictly closer to the ground-truth top-K than sessions served
//!    by the legacy unweighted `Majority(3)` pool at the **same vote
//!    budget**, averaged over repetitions.
//! 2. **Bit identity** — on a uniform-quality roster (no prices, no
//!    churn), `QualityConfig::majority_compat` must reproduce the plain
//!    `CrowdSimulator<WorkerPool>` session outcome bit for bit: the
//!    quality layer costs nothing when its features are off.
//!
//! Emits `BENCH_PR7.json`. CI runs `--small` mode, which shrinks the
//! repetition count but keeps both gates armed.
//!
//! `cargo run --release -p ctk-bench --bin bench_pr7 [--small] [--out FILE]`

use ctk_core::measures::MeasureKind;
use ctk_core::session::{Algorithm, SessionConfig, UrReport, UrSession};
use ctk_crowd::{Crowd, CrowdSimulator, GroundTruth, NoisyWorker, VotePolicy, WorkerPool};
use ctk_datagen::{generate, gold_questions, spammer_pool, DatasetSpec};
use ctk_prob::UncertainTable;
use ctk_quality::{QualityConfig, QualityCrowd, WorkerSpec};
use ctk_rank::topk::topk_distance;
use ctk_rank::RankList;
use ctk_tpo::build::{Engine, McConfig};

struct Sizes {
    n: usize,
    k: usize,
    reps: u64,
    session_budget: usize,
    roster: usize,
}

const FULL: Sizes = Sizes {
    n: 15,
    k: 5,
    reps: 16,
    session_budget: 20,
    roster: 9,
};

const SMALL: Sizes = Sizes {
    n: 10,
    k: 4,
    reps: 6,
    session_budget: 14,
    roster: 9,
};

const PANEL: usize = 3;
const SPAMMER_FRACTION: f64 = 1.0 / 3.0;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a == "--small" || a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR7.json".to_string());
    let sz = if small { SMALL } else { FULL };
    eprintln!(
        "# quality layer: n={} K={} reps={} budget={}q panel={} spammers={:.0}%{}",
        sz.n,
        sz.k,
        sz.reps,
        sz.session_budget,
        PANEL,
        100.0 * SPAMMER_FRACTION,
        if small { " [small]" } else { "" }
    );

    // --- gate 2: bit identity on a uniform roster (every mode) ----------
    let identical = uniform_pool_bit_identity(&sz);
    eprintln!("# uniform-pool majority_compat bit-identical: {identical}");
    assert!(
        identical,
        "majority_compat diverged from the plain majority simulator"
    );

    // --- gate 1: strict win at equal vote budget -------------------------
    // Equal footing: every worker costs one vote in both arms, so a vote
    // budget of panel * session_budget serves the same question count.
    let vote_budget = PANEL * sz.session_budget;
    let mut majority_sum = 0.0;
    let mut weighted_sum = 0.0;
    let mut wins = 0u64;
    let mut ties = 0u64;
    for rep in 0..sz.reps {
        let table = generate(&DatasetSpec::paper_default(sz.n, 0.4, 100 + rep)).expect("valid");
        let truth = GroundTruth::sample(&table, 1000 + rep);
        let truth_topk = truth.top_k(sz.k);
        let specs: Vec<WorkerSpec> = spammer_pool(sz.roster, SPAMMER_FRACTION, 7000 + rep)
            .iter()
            .map(|s| WorkerSpec::new(s.accuracy()))
            .collect();
        let seed = 0xA5EED ^ rep;

        // Majority arm: the legacy pool, unweighted majority of 3.
        let workers: Vec<NoisyWorker> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| NoisyWorker::adversarial(s.accuracy(), seed.wrapping_add(i as u64)))
            .collect();
        let pool = WorkerPool::from_workers(workers).expect("non-empty roster");
        let mut majority = CrowdSimulator::new(
            truth.clone(),
            pool,
            VotePolicy::Majority(PANEL),
            vote_budget,
        )
        .expect("valid vote policy");
        let d_majority = run_session(&table, &mut majority, &sz, rep)
            .map(|r| distance(&r, &truth_topk))
            .expect("majority session");

        // Weighted arm: same hidden accuracies, same worker seeds, same
        // vote budget — plus the quality layer (gold qualification round,
        // online estimation, log-odds fusion, posterior grading).
        let mut quality = QualityCrowd::new(
            truth.clone(),
            &specs,
            QualityConfig::weighted(PANEL),
            vote_budget,
            seed,
        )
        .expect("valid roster");
        quality.calibrate_gold(&gold_questions(sz.n as u32, 1));
        let d_weighted = run_session(&table, &mut quality, &sz, rep)
            .map(|r| distance(&r, &truth_topk))
            .expect("weighted session");

        majority_sum += d_majority;
        weighted_sum += d_weighted;
        if d_weighted < d_majority {
            wins += 1;
        } else if d_weighted == d_majority {
            ties += 1;
        }
        eprintln!("# rep {rep:>2}: majority D={d_majority:.4}  weighted D={d_weighted:.4}");
    }
    let majority_mean = majority_sum / sz.reps as f64;
    let weighted_mean = weighted_sum / sz.reps as f64;
    eprintln!(
        "# mean top-K distance: majority {majority_mean:.4}  weighted {weighted_mean:.4}  \
         ({wins} wins, {ties} ties, {} losses)",
        sz.reps - wins - ties
    );

    let json = format!(
        "{{\n  \"bench\": \"quality_layer\",\n  \"mode\": \"{}\",\n  \"config\": {{ \"n\": {}, \"k\": {}, \"reps\": {}, \"session_budget\": {}, \"vote_budget\": {}, \"panel\": {}, \"roster\": {}, \"spammer_fraction\": {:.4} }},\n  \"uniform_pool_bit_identical\": {},\n  \"majority_mean_topk_distance\": {:.6},\n  \"weighted_mean_topk_distance\": {:.6},\n  \"weighted_wins\": {},\n  \"ties\": {}\n}}\n",
        if small { "small" } else { "full" },
        sz.n,
        sz.k,
        sz.reps,
        sz.session_budget,
        vote_budget,
        PANEL,
        sz.roster,
        SPAMMER_FRACTION,
        identical,
        majority_mean,
        weighted_mean,
        wins,
        ties,
    );
    std::fs::write(&out, &json).expect("write BENCH_PR7.json");
    eprintln!("# wrote {out}");

    assert!(
        weighted_mean < majority_mean,
        "accuracy-weighted fusion must beat unweighted majority at equal vote budget: \
         weighted {weighted_mean:.4} vs majority {majority_mean:.4}"
    );
}

/// Runs one full top-K session of the bench configuration over `crowd`.
fn run_session<C: Crowd>(
    table: &UncertainTable,
    crowd: &mut C,
    sz: &Sizes,
    rep: u64,
) -> Option<UrReport> {
    let config = SessionConfig {
        k: sz.k,
        budget: sz.session_budget,
        measure: MeasureKind::WeightedEntropy,
        algorithm: Algorithm::T1On,
        engine: Engine::MonteCarlo(McConfig::fixed(2000, 7)),
        seed: rep,
        uncertainty_target: None,
    };
    UrSession::new(config).ok()?.run(table, crowd).ok()
}

/// Top-K distance of a finished session's answer to the true top-K.
fn distance(report: &UrReport, truth_topk: &RankList) -> f64 {
    topk_distance(
        &RankList::new_unchecked(report.final_topk.clone()),
        truth_topk,
    )
}

/// Gate 2: a uniform-quality roster under `majority_compat` must replay
/// the plain `CrowdSimulator<WorkerPool>` session bit for bit.
fn uniform_pool_bit_identity(sz: &Sizes) -> bool {
    let table = generate(&DatasetSpec::paper_default(sz.n, 0.4, 42)).expect("valid");
    let truth = GroundTruth::sample(&table, 4242);
    let accuracies = [0.9, 0.8, 0.85, 0.75, 0.95];
    let seed: u64 = 0xB17;
    let vote_budget = PANEL * sz.session_budget;

    let workers: Vec<NoisyWorker> = accuracies
        .iter()
        .enumerate()
        .map(|(i, &a)| NoisyWorker::adversarial(a, seed.wrapping_add(i as u64)))
        .collect();
    let pool = WorkerPool::from_workers(workers).expect("non-empty roster");
    let mut plain = CrowdSimulator::new(
        truth.clone(),
        pool,
        VotePolicy::Majority(PANEL),
        vote_budget,
    )
    .expect("valid vote policy");
    let reference = run_session(&table, &mut plain, sz, 0).expect("plain session");

    let specs: Vec<WorkerSpec> = accuracies.iter().map(|&a| WorkerSpec::new(a)).collect();
    let mut compat = QualityCrowd::new(
        truth,
        &specs,
        QualityConfig::majority_compat(PANEL),
        vote_budget,
        seed,
    )
    .expect("valid roster");
    let replayed = run_session(&table, &mut compat, sz, 0).expect("compat session");

    reference.same_outcome(&replayed)
}
