//! Uncertain relations: tuples whose query score is a [`ScoreDist`].
//!
//! [`UncertainTable`] is the input to every top-K pipeline in this project.
//! Tuple identifiers are dense indices (`TupleId(i)` is the tuple at
//! position `i`), which lets downstream code use flat vectors and matrices
//! instead of hash maps.

use crate::dist::ScoreDist;
use crate::error::{ProbError, Result};
use std::fmt;

/// Identifier of a tuple in an [`UncertainTable`] (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId(pub u32);

impl TupleId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One tuple: an id, an optional human-readable label, and the uncertain
/// score assigned to it by the query's scoring function.
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainTuple {
    /// Dense identifier (equals the tuple's position in the table).
    pub id: TupleId,
    /// Display label (defaults to `t{id}`).
    pub label: String,
    /// Uncertain score.
    pub dist: ScoreDist,
}

/// A relation with uncertain scores.
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainTable {
    tuples: Vec<UncertainTuple>,
}

impl UncertainTable {
    /// Builds a table from score distributions; ids and default labels are
    /// assigned by position.
    pub fn new(dists: Vec<ScoreDist>) -> Result<Self> {
        if dists.is_empty() {
            return Err(ProbError::EmptyTable);
        }
        let tuples = dists
            .into_iter()
            .enumerate()
            .map(|(i, dist)| UncertainTuple {
                id: TupleId(i as u32),
                label: format!("t{i}"),
                dist,
            })
            .collect();
        Ok(Self { tuples })
    }

    /// Builds a table with explicit labels.
    pub fn with_labels(items: Vec<(String, ScoreDist)>) -> Result<Self> {
        if items.is_empty() {
            return Err(ProbError::EmptyTable);
        }
        let tuples = items
            .into_iter()
            .enumerate()
            .map(|(i, (label, dist))| UncertainTuple {
                id: TupleId(i as u32),
                label,
                dist,
            })
            .collect();
        Ok(Self { tuples })
    }

    /// Number of tuples `N`.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Tables are never empty (enforced at construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Tuple by dense index.
    pub fn get(&self, idx: usize) -> &UncertainTuple {
        &self.tuples[idx]
    }

    /// Score distribution by dense index.
    pub fn dist_at(&self, idx: usize) -> &ScoreDist {
        &self.tuples[idx].dist
    }

    /// Score distribution by tuple id.
    pub fn dist(&self, id: TupleId) -> &ScoreDist {
        &self.tuples[id.index()].dist
    }

    /// Label by tuple id.
    pub fn label(&self, id: TupleId) -> &str {
        &self.tuples[id.index()].label
    }

    /// Iterates over tuples in id order.
    pub fn iter(&self) -> impl Iterator<Item = &UncertainTuple> {
        self.tuples.iter()
    }

    /// All tuple ids in order.
    pub fn ids(&self) -> impl Iterator<Item = TupleId> + '_ {
        (0..self.tuples.len() as u32).map(TupleId)
    }

    /// Union support hull of all score distributions.
    pub fn support_hull(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for t in &self.tuples {
            let (a, b) = t.dist.support();
            lo = lo.min(a);
            hi = hi.max(b);
        }
        (lo, hi)
    }

    /// True when every score distribution is continuous (required by the
    /// exact probability engine).
    pub fn all_continuous(&self) -> bool {
        self.tuples.iter().all(|t| t.dist.is_continuous())
    }

    /// The distributions in id order (convenience for grid construction).
    pub fn dists(&self) -> impl Iterator<Item = &ScoreDist> {
        self.tuples.iter().map(|t| &t.dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_rejected() {
        assert!(matches!(
            UncertainTable::new(vec![]),
            Err(ProbError::EmptyTable)
        ));
        assert!(UncertainTable::with_labels(vec![]).is_err());
    }

    #[test]
    fn ids_are_dense_and_labels_default() {
        let t = UncertainTable::new(vec![
            ScoreDist::point(1.0),
            ScoreDist::uniform(0.0, 1.0).unwrap(),
        ])
        .unwrap();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let ids: Vec<TupleId> = t.ids().collect();
        assert_eq!(ids, vec![TupleId(0), TupleId(1)]);
        assert_eq!(t.label(TupleId(0)), "t0");
        assert_eq!(t.get(1).id, TupleId(1));
        assert_eq!(format!("{}", TupleId(3)), "t3");
    }

    #[test]
    fn labels_are_preserved() {
        let t = UncertainTable::with_labels(vec![
            ("alice".into(), ScoreDist::point(1.0)),
            ("bob".into(), ScoreDist::point(2.0)),
        ])
        .unwrap();
        assert_eq!(t.label(TupleId(0)), "alice");
        assert_eq!(t.label(TupleId(1)), "bob");
    }

    #[test]
    fn support_hull_covers_all() {
        let t = UncertainTable::new(vec![
            ScoreDist::uniform(-1.0, 0.5).unwrap(),
            ScoreDist::uniform(0.0, 2.0).unwrap(),
        ])
        .unwrap();
        assert_eq!(t.support_hull(), (-1.0, 2.0));
    }

    #[test]
    fn continuity_detection() {
        let cont = UncertainTable::new(vec![
            ScoreDist::uniform(0.0, 1.0).unwrap(),
            ScoreDist::gaussian(0.0, 1.0).unwrap(),
        ])
        .unwrap();
        assert!(cont.all_continuous());
        let mixed = UncertainTable::new(vec![
            ScoreDist::uniform(0.0, 1.0).unwrap(),
            ScoreDist::point(0.5),
        ])
        .unwrap();
        assert!(!mixed.all_continuous());
    }
}
