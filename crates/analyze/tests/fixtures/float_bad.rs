//! Positive fixture: every float-discipline rule fires at least once.

pub fn exact_equality(x: f64) -> bool {
    x == 0.5
}

pub fn partial_cmp_unwrapped(xs: &mut [f64]) {
    xs.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn partial_cmp_expected(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).expect("finite")
}

pub fn stable_sort(xs: &mut Vec<(f64, u32)>) {
    xs.sort_by(|a, b| a.1.cmp(&b.1));
}
