//! Positive fixture for the allowlist meta rules: a reason-less
//! directive is malformed (and suppresses nothing), an unknown rule id is
//! reported, and a directive that matches no finding is flagged unused.

pub fn malformed_allow(x: Option<u32>) -> u32 {
    // ctk-allow(panic-unwrap)
    x.unwrap()
}

pub fn unknown_rule(x: Option<u32>) -> u32 {
    x.expect("present") // ctk-allow(no-such-rule): not a real rule id
}

pub fn unused_allow(x: u32) -> u32 {
    // ctk-allow(det-hash-collection): nothing on the next line needs this
    x + 1
}
