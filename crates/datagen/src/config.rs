//! Dataset specification: the structural knobs the paper's evaluation
//! sweeps (table size `N`, score-center layout, pdf family, uncertainty
//! width).

/// How a scalar parameter varies across tuples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WidthSpec {
    /// Same value for every tuple.
    Fixed(f64),
    /// Independently drawn uniformly from `[lo, hi]` per tuple
    /// (heterogeneous uncertainty).
    UniformRange(f64, f64),
}

impl WidthSpec {
    /// Materializes the width for one tuple given a unit-interval draw.
    pub fn materialize(&self, unit_draw: f64) -> f64 {
        match *self {
            WidthSpec::Fixed(w) => w,
            WidthSpec::UniformRange(lo, hi) => lo + unit_draw * (hi - lo),
        }
    }
}

/// Where the score centers (the tuples' "true quality") come from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CenterLayout {
    /// Independently uniform in `[0, 1]` — the paper's default synthetic
    /// data.
    UniformRandom,
    /// Evenly spaced on `[0, 1]` (maximally regular; overlap controlled
    /// purely by width).
    EvenlySpaced,
    /// A few tight clusters (hard case: within-cluster orders are nearly
    /// coin flips).
    Clustered {
        /// Number of clusters.
        clusters: usize,
        /// Standard deviation of centers within a cluster.
        spread: f64,
    },
}

/// The pdf family assigned to tuples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PdfFamily {
    /// Uniform intervals centered on the score center.
    Uniform {
        /// Interval width.
        width: WidthSpec,
    },
    /// Gaussians centered on the score center.
    Gaussian {
        /// Standard deviation.
        sigma: WidthSpec,
    },
    /// Alternating uniform / Gaussian / triangular tuples — the
    /// “non-uniform tuple score distributions” setting of §IV.
    MixedFamilies {
        /// Uniform width (Gaussian sigma is `width / 4`, triangular spread
        /// is `width`, chosen so variances are comparable).
        width: WidthSpec,
    },
}

/// Complete synthetic dataset specification.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Number of tuples `N`.
    pub n: usize,
    /// Score-center layout.
    pub centers: CenterLayout,
    /// Pdf family and uncertainty scale.
    pub family: PdfFamily,
    /// Generation seed (the dataset is a pure function of the spec).
    pub seed: u64,
}

impl DatasetSpec {
    /// The paper's default synthetic workload: `n` tuples, uniform random
    /// centers in `[0, 1]`, uniform score pdfs of fixed `width`.
    pub fn paper_default(n: usize, width: f64, seed: u64) -> Self {
        Self {
            n,
            centers: CenterLayout::UniformRandom,
            family: PdfFamily::Uniform {
                width: WidthSpec::Fixed(width),
            },
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_spec_materialization() {
        assert_eq!(WidthSpec::Fixed(0.4).materialize(0.7), 0.4);
        assert_eq!(WidthSpec::UniformRange(0.2, 0.6).materialize(0.0), 0.2);
        assert_eq!(WidthSpec::UniformRange(0.2, 0.6).materialize(1.0), 0.6);
        assert_eq!(WidthSpec::UniformRange(0.2, 0.6).materialize(0.5), 0.4);
    }

    #[test]
    fn paper_default_shape() {
        let s = DatasetSpec::paper_default(20, 0.4, 1);
        assert_eq!(s.n, 20);
        assert_eq!(s.centers, CenterLayout::UniformRandom);
        assert!(matches!(
            s.family,
            PdfFamily::Uniform {
                width: WidthSpec::Fixed(w)
            } if w == 0.4
        ));
    }
}
