//! Noisy crowds (§III-C): when workers err, answers reweight the space of
//! orderings (Bayesian update) instead of pruning it. This example sweeps
//! worker accuracy and shows what majority-of-3 voting buys.
//!
//! Run with: `cargo run --example noisy_crowd`

use crowd_topk::datagen::scenarios;
use crowd_topk::prelude::*;

fn main() {
    const BUDGET: usize = 20;
    const RUNS: u64 = 12;

    println!("N=15, K=5, B={BUDGET}, T1-on, averaged over {RUNS} runs\n");
    println!("accuracy   single-vote D   majority-3 D   (lower is better)");

    for accuracy in [0.6, 0.7, 0.8, 0.9, 1.0] {
        let mut d_single = 0.0;
        let mut d_major = 0.0;
        for run in 0..RUNS {
            let scenario = scenarios::noise(run);
            let truth = GroundTruth::sample(&scenario.table, 9000 + run);
            let top = truth.top_k(scenario.k);

            for (policy, acc) in [
                (VotePolicy::Single, &mut d_single),
                (VotePolicy::Majority(3), &mut d_major),
            ] {
                // Crowd budgets are vote-denominated: fund the full
                // question budget under either policy (majority-of-3
                // costs three times the money for the same questions).
                let mut crowd = CrowdSimulator::new(
                    GroundTruth::sample(&scenario.table, 9000 + run),
                    NoisyWorker::new(accuracy, 31 * run + 7),
                    policy,
                    BUDGET * policy.votes_per_question(),
                )
                .expect("valid vote policy");
                let report = CrowdTopK::new(scenario.table.clone())
                    .k(scenario.k)
                    .budget(BUDGET)
                    .algorithm(Algorithm::T1On)
                    .monte_carlo(6_000, run)
                    .run_with_truth(&mut crowd, &top)
                    .unwrap();
                *acc += report.final_distance().unwrap();
            }
        }
        println!(
            "{accuracy:8.2}   {:13.4}   {:12.4}",
            d_single / RUNS as f64,
            d_major / RUNS as f64
        );
    }

    println!(
        "\nPerfect workers prune orderings outright; noisy ones only shift\n\
         probability mass, so more budget is needed for the same certainty.\n\
         Majority voting recovers much of the loss at 3x the vote cost."
    );
}
