//! `T1-on` (§III-B): the greedy online strategy. At each round, select the
//! single question minimizing the expected residual uncertainty (budget
//! `B = 1`), ask it, prune/update the tree with the received answer, and
//! repeat. “Early termination may occur if all uncertainty is removed with
//! `|Q*| < B`.”

use super::{relevant_questions, OnlineSelector};
use crate::residual::{expected_residual_single, ResidualCtx};
use ctk_crowd::Question;
use ctk_tpo::PathSet;

/// Greedy one-step-lookahead online selection.
#[derive(Debug, Clone, Default)]
pub struct T1On;

impl OnlineSelector for T1On {
    fn name(&self) -> &'static str {
        "T1-on"
    }

    fn next_question(
        &mut self,
        ps: &PathSet,
        _remaining: usize,
        ctx: &ResidualCtx<'_>,
    ) -> Option<Question> {
        if ps.is_resolved() {
            return None;
        }
        let pool = relevant_questions(ps, ctx);
        pool.into_iter()
            .map(|q| (expected_residual_single(ps, &q, ctx), q))
            .min_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)))
            .map(|(_, q)| q)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::fixture;
    use super::*;
    use crate::measures::Entropy;
    use ctk_tpo::prune::prune;

    #[test]
    fn picks_the_globally_best_single_question() {
        let (_, pw, ps) = fixture();
        let ctx = ResidualCtx {
            measure: &Entropy,
            pairwise: &pw,
        };
        let q = T1On.next_question(&ps, 10, &ctx).unwrap();
        let pool = relevant_questions(&ps, &ctx);
        let best = pool
            .iter()
            .map(|c| expected_residual_single(&ps, c, &ctx))
            .fold(f64::INFINITY, f64::min);
        let got = expected_residual_single(&ps, &q, &ctx);
        assert!((got - best).abs() < 1e-12);
        assert_eq!(T1On.name(), "T1-on");
    }

    #[test]
    fn terminates_on_resolved_sets() {
        let (_, pw, _) = fixture();
        let ctx = ResidualCtx {
            measure: &Entropy,
            pairwise: &pw,
        };
        let resolved = ctk_tpo::PathSet::from_weighted(3, vec![(vec![4, 3, 2], 1.0)]).unwrap();
        assert!(T1On.next_question(&resolved, 10, &ctx).is_none());
    }

    #[test]
    fn interactive_loop_strictly_reduces_orderings_with_perfect_answers() {
        let (table, pw, mut ps) = fixture();
        let ctx = ResidualCtx {
            measure: &Entropy,
            pairwise: &pw,
        };
        // Perfect crowd following a fixed ground truth.
        let truth = ctk_crowd::GroundTruth::sample(&table, 123);
        let mut asked = 0;
        while let Some(q) = T1On.next_question(&ps, 50 - asked, &ctx) {
            let yes = truth.true_answer(&q);
            match prune(&ps, q.i, q.j, yes, ctx.prior(q.i, q.j)) {
                Ok((next, _)) => {
                    assert!(next.len() <= ps.len());
                    ps = next;
                }
                Err(_) => break, // MC tree may lack the true path; stop.
            }
            asked += 1;
            assert!(asked <= 50, "must terminate well within the pool size");
        }
        // After exhausting relevant questions the tree should be small.
        assert!(
            ps.len() <= 2,
            "greedy online should (nearly) resolve: {} left",
            ps.len()
        );
    }
}
