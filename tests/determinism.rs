//! Reproducibility: everything in the stack is a pure function of its
//! seeds — datasets, sampled worlds, ground truths, worker noise, selector
//! randomness, and therefore entire session reports.

use crowd_topk::datagen::{generate, scenarios, DatasetSpec};
use crowd_topk::prelude::*;

fn run(seed: u64, algorithm: Algorithm) -> UrReport {
    let scenario = scenarios::fig1(seed);
    let truth = GroundTruth::sample(&scenario.table, seed);
    let top = truth.top_k(scenario.k);
    let mut crowd = CrowdSimulator::new(
        GroundTruth::sample(&scenario.table, seed),
        NoisyWorker::new(0.85, seed),
        VotePolicy::Single,
        12,
    )
    .expect("valid vote policy");
    CrowdTopK::new(scenario.table)
        .k(scenario.k)
        .budget(12)
        .algorithm(algorithm)
        .monte_carlo(3_000, seed)
        .selector_seed(seed)
        .run_with_truth(&mut crowd, &top)
        .unwrap()
}

#[test]
fn identical_seeds_identical_reports() {
    for algorithm in [
        Algorithm::Random,
        Algorithm::Naive,
        Algorithm::T1On,
        Algorithm::Incr {
            questions_per_round: 4,
        },
    ] {
        let a = run(42, algorithm.clone());
        let b = run(42, algorithm.clone());
        assert_eq!(
            a.steps.len(),
            b.steps.len(),
            "{}: different step counts",
            algorithm.name()
        );
        for (x, y) in a.steps.iter().zip(&b.steps) {
            assert_eq!(x.question, y.question);
            assert_eq!(x.answer_yes, y.answer_yes);
            assert_eq!(x.orderings, y.orderings);
            assert_eq!(x.uncertainty.to_bits(), y.uncertainty.to_bits());
            assert_eq!(
                x.distance_to_truth.map(f64::to_bits),
                y.distance_to_truth.map(f64::to_bits)
            );
        }
        assert_eq!(a.final_topk, b.final_topk);
    }
}

#[test]
fn different_seeds_differ_somewhere() {
    let a = run(1, Algorithm::T1On);
    let b = run(2, Algorithm::T1On);
    // Different datasets and truths: the reports will differ in content.
    let same_questions = a.steps.len() == b.steps.len()
        && a.steps
            .iter()
            .zip(&b.steps)
            .all(|(x, y)| x.question == y.question && x.answer_yes == y.answer_yes);
    assert!(
        !same_questions,
        "distinct seeds produced identical sessions"
    );
}

#[test]
fn dataset_generation_is_pure() {
    let spec = DatasetSpec::paper_default(25, 0.4, 9);
    assert_eq!(generate(&spec).unwrap(), generate(&spec).unwrap());
}

#[test]
fn ground_truth_is_pure() {
    let t = scenarios::fig1(3).table;
    let a = GroundTruth::sample(&t, 5);
    let b = GroundTruth::sample(&t, 5);
    assert_eq!(a.ranking(), b.ranking());
    assert_eq!(a.scores(), b.scores());
}
