//! Minimal, API-compatible shim for the subset of `proptest` this
//! workspace uses: random generation without shrinking, deterministically
//! seeded per (test name, case index). See `shims/README.md`.

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, spread over a wide but tame range.
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            (u - 0.5) * 2e6
        }
    }

    pub struct AnyStrategy<A> {
        _marker: PhantomData<A>,
    }

    impl<A> Clone for AnyStrategy<A> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<A> Copy for AnyStrategy<A> {}

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<A>() -> AnyStrategy<A> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }

    impl<A: Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;

        fn gen_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values. Unlike real proptest there is no shrinking:
    /// `gen_value` simply draws a fresh random value.
    pub trait Strategy {
        type Value;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Map with access to a private RNG fork (`|value, rng| ...`).
        fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value, TestRng) -> O,
        {
            Perturb { inner: self, f }
        }

        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).gen_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).gen_value(rng)
        }
    }

    /// Helper for `prop_oneof!`: erase a strategy's concrete type.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    pub struct Perturb<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Perturb<S, F>
    where
        S: Strategy,
        F: Fn(S::Value, TestRng) -> O,
    {
        type Value = O;

        fn gen_value(&self, rng: &mut TestRng) -> O {
            let v = self.inner.gen_value(rng);
            let fork = rng.fork();
            (self.f)(v, fork)
        }
    }

    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) whence: &'static str,
        pub(crate) f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn gen_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.gen_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 1000 candidates", self.whence);
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, T> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn gen_value(&self, rng: &mut TestRng) -> T::Value {
            let mid = self.inner.gen_value(rng);
            (self.f)(mid).gen_value(rng)
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[i].gen_value(rng)
        }
    }

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let u = rng.unit_f64() as $t;
                    self.start + u * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let u = rng.unit_f64() as $t;
                    *self.start() + u * (*self.end() - *self.start())
                }
            }
        )*};
    }
    impl_float_range_strategy!(f64, f32);

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.gen_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Size specifications accepted by [`vec`].
    pub trait IntoSizeRange {
        /// Inclusive (lo, hi) bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.hi - self.lo) as u64 + 1;
            let len = self.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore as _, SeedableRng};

    /// The per-case RNG handed to strategies (and `prop_perturb` closures).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> Self {
            TestRng {
                inner: StdRng::seed_from_u64(seed),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        pub fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Derive an independent child RNG (for `prop_perturb`).
        pub fn fork(&mut self) -> TestRng {
            TestRng::seed_from_u64(self.inner.next_u64())
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// Subset of proptest's config: only `cases` is meaningful here.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Run `f` for each case with a deterministic per-case RNG derived
        /// from the test name, so repeated runs explore identical inputs.
        pub fn run_named<F>(&mut self, name: &str, mut f: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            let base = fnv1a(name.as_bytes());
            for case in 0..self.config.cases {
                let mut rng = TestRng::seed_from_u64(
                    base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                match f(&mut rng) {
                    Ok(()) => {}
                    Err(TestCaseError::Reject(_)) => {}
                    Err(TestCaseError::Fail(msg)) => {
                        panic!("proptest '{name}' failed at case {case}: {msg}");
                    }
                }
            }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// The main harness macro: expands each `fn name(pat in strategy, ...) { .. }`
/// into a `#[test]` that draws inputs and runs the body per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            #[allow(unreachable_code)]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                runner.run_named(stringify!($name), |__ptrng| {
                    $(let $pat = $crate::strategy::Strategy::gen_value(&($strat), __ptrng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// `prop_assert_eq!(a, b)` / `prop_assert_eq!(a, b, "fmt", ..)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(__l == __r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assert_eq failed: {:?} != {:?}", __l, __r
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(__l == __r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assert_eq failed: {:?} != {:?}: {}", __l, __r, format!($($fmt)+)
            )));
        }
    }};
}

/// `prop_assert_ne!(a, b)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if __l == __r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assert_ne failed: both {:?}", __l
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if __l == __r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assert_ne failed: both {:?}: {}", __l, format!($($fmt)+)
            )));
        }
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}
