#![forbid(unsafe_code)]
#![deny(warnings)]
//! # ctk-analyze — the workspace's own static-analysis pass
//!
//! The `crowd-topk` workspace only makes sense if repeated runs over the
//! same uncertain table produce the same top-K verdicts: reports are
//! bit-identical at any thread count, float fast paths are pinned within
//! 1.2e-7 of their references, and the sans-IO driver's replays are
//! exact. Those invariants are *conventions* — one stray `HashMap`
//! iteration in a result-affecting path, an ad-hoc `thread::spawn`, or an
//! `unwrap()` on a `partial_cmp` silently breaks them. This crate turns
//! the conventions into machine-checked rules:
//!
//! ```text
//! cargo run -p ctk-analyze -- check     # exit 0 = clean, 1 = findings
//! cargo run -p ctk-analyze -- rules    # the rule registry
//! ```
//!
//! The environment has no registry access, so there is no `syn` here:
//! [`lexer`] is a lightweight line/token scanner with comment, string,
//! and `#[cfg(test)]` awareness; [`rules`] holds the rule registry
//! (determinism, float-discipline, panic-freedom, and lint-wall
//! families); [`engine`] maps workspace paths to rule scopes and applies
//! `// ctk-allow(<rule>): <reason>` suppressions.
//!
//! Policy background, rule tables, and allowlist etiquette live in
//! DESIGN.md §11.

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{analyze_source, check_workspace, FileFinding};
pub use lexer::SourceFile;
pub use rules::{missing_lint_wall, Finding, RuleInfo, RuleSet, RULES};
