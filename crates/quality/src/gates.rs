//! Worker gates: who is allowed to answer, and how panel agreement is
//! monitored.
//!
//! Real platforms gate workers on approval rate and minimum completed
//! tasks before trusting them with paid work, and quarantine accounts
//! whose quality collapses. [`GateConfig`] reproduces that policy over
//! the [`crate::posterior::BetaPosterior`] estimates; [`fleiss_kappa`]
//! gives the aggregate inter-worker agreement statistic quality
//! dashboards watch — near 0 on a spammer-dominated pool even when every
//! individual posterior still looks plausible.

use crate::error::QualityError;

/// Quarantine policy over per-worker posteriors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// Graded answers required before the gate judges a worker at all —
    /// the "minimum completed tasks" filter. Below this the worker is
    /// always eligible (everyone must be allowed to build a record).
    pub min_answers: u64,
    /// Posterior-mean approval floor: a judged worker whose mean drops
    /// below this is quarantined.
    pub approval_floor: f64,
    /// Pool questions a quarantined worker sits out before deterministic
    /// re-admission (with a reset posterior — re-judged fresh).
    pub cooldown: u64,
}

impl GateConfig {
    /// Creates a gate policy.
    ///
    /// Fails with [`QualityError::InvalidThreshold`] unless
    /// `approval_floor` is finite and in `[0, 1]`.
    pub fn new(min_answers: u64, approval_floor: f64, cooldown: u64) -> Result<Self, QualityError> {
        if !(approval_floor.is_finite() && (0.0..=1.0).contains(&approval_floor)) {
            return Err(QualityError::InvalidThreshold);
        }
        Ok(Self {
            min_answers,
            approval_floor,
            cooldown,
        })
    }

    /// A gate that never quarantines anyone (the compatibility mode for
    /// plain-majority emulation).
    pub fn disabled() -> Self {
        Self {
            min_answers: u64::MAX,
            approval_floor: 0.0,
            cooldown: 0,
        }
    }

    /// The default spammer gate: judge after 12 graded answers,
    /// quarantine below a 0.62 posterior mean, re-admit after 50 pool
    /// questions. The floor sits between a spammer's asymptote (0.5) and
    /// the nominal prior mean (0.75), so honest workers never trip it
    /// while spammers reliably do once judged.
    pub fn spammer_default() -> Self {
        Self {
            min_answers: 12,
            approval_floor: 0.62,
            cooldown: 50,
        }
    }

    /// True when a worker with the given record should be quarantined.
    pub fn should_quarantine(&self, graded_answers: u64, posterior_mean: f64) -> bool {
        graded_answers >= self.min_answers && posterior_mean < self.approval_floor
    }
}

/// Fleiss' kappa over binary vote panels: chance-corrected inter-worker
/// agreement.
///
/// Input is one `(yes, no)` count pair per question; panels with fewer
/// than two votes carry no pairwise agreement information and are
/// skipped. Returns `None` when nothing is left to measure.
///
/// Edge cases follow the standard convention: when every vote in the
/// window lands on one category, expected agreement Pₑ is 1 and the
/// statistic degenerates — observed agreement is also perfect, so the
/// result is 1.0. Independent coin-flip voters give kappa ≈ 0; a
/// spammer-heavy pool is exactly the low-kappa regime the gate exists
/// to flag.
pub fn fleiss_kappa(panels: &[(usize, usize)]) -> Option<f64> {
    let mut items = 0usize;
    let mut p_bar_sum = 0.0;
    let mut yes_total = 0usize;
    let mut votes_total = 0usize;
    for &(yes, no) in panels {
        let n = yes + no;
        if n < 2 {
            continue;
        }
        items += 1;
        yes_total += yes;
        votes_total += n;
        // Fraction of agreeing ordered pairs within the panel.
        let agreeing = yes * yes.saturating_sub(1) + no * no.saturating_sub(1);
        p_bar_sum += agreeing as f64 / (n * (n - 1)) as f64;
    }
    if items == 0 {
        return None;
    }
    let p_bar = p_bar_sum / items as f64;
    let p_yes = yes_total as f64 / votes_total as f64;
    let p_e = p_yes * p_yes + (1.0 - p_yes) * (1.0 - p_yes);
    let denom = 1.0 - p_e;
    if denom.abs() < 1e-12 {
        // Pₑ = 1 only when all votes are one category, where observed
        // agreement is perfect too.
        return Some(1.0);
    }
    Some((p_bar - p_e) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn gate_thresholds_validated() {
        assert!(GateConfig::new(10, 0.6, 20).is_ok());
        for bad in [-0.1, 1.1, f64::NAN, f64::INFINITY] {
            assert_eq!(
                GateConfig::new(10, bad, 20).unwrap_err(),
                QualityError::InvalidThreshold,
                "floor {bad} must be rejected"
            );
        }
    }

    #[test]
    fn gate_judges_only_after_min_answers() {
        let g = GateConfig::new(10, 0.6, 20).expect("valid gate");
        assert!(!g.should_quarantine(9, 0.1), "unjudged workers pass");
        assert!(g.should_quarantine(10, 0.59));
        assert!(!g.should_quarantine(10, 0.6), "floor is exclusive");
        let off = GateConfig::disabled();
        assert!(!off.should_quarantine(u64::MAX - 1, 0.0));
        let d = GateConfig::spammer_default();
        assert!(d.should_quarantine(12, 0.5));
        assert!(!d.should_quarantine(12, 0.75));
    }

    #[test]
    fn kappa_unanimous_panels_is_one() {
        // Satellite edge case: unanimous agreement — both the one-sided
        // degenerate case and mixed-verdict unanimity — scores 1.0.
        assert_eq!(fleiss_kappa(&[(5, 0), (5, 0), (5, 0)]), Some(1.0));
        let k = fleiss_kappa(&[(5, 0), (0, 5), (5, 0)]).unwrap();
        assert!((k - 1.0).abs() < 1e-12, "kappa = {k}");
    }

    #[test]
    fn kappa_coin_flips_is_near_zero() {
        // Satellite edge case: independent fair-coin voters agree only by
        // chance; kappa concentrates near 0.
        let mut rng = StdRng::seed_from_u64(17);
        let panels: Vec<(usize, usize)> = (0..2000)
            .map(|_| {
                let yes = (0..5).filter(|_| rng.gen::<f64>() < 0.5).count();
                (yes, 5 - yes)
            })
            .collect();
        let k = fleiss_kappa(&panels).unwrap();
        assert!(k.abs() < 0.05, "kappa = {k}");
    }

    #[test]
    fn kappa_reliable_panels_score_high() {
        // 90%-accurate voters on questions with a true answer: agreement
        // well above chance.
        let mut rng = StdRng::seed_from_u64(23);
        let panels: Vec<(usize, usize)> = (0..2000)
            .map(|i| {
                let truth = i % 2 == 0;
                let yes = (0..5)
                    .filter(|_| {
                        let correct = rng.gen::<f64>() < 0.9;
                        correct == truth
                    })
                    .count();
                (yes, 5 - yes)
            })
            .collect();
        let k = fleiss_kappa(&panels).unwrap();
        assert!(k > 0.5, "kappa = {k}");
    }

    #[test]
    fn kappa_skips_degenerate_panels() {
        assert_eq!(fleiss_kappa(&[]), None);
        assert_eq!(fleiss_kappa(&[(1, 0), (0, 1)]), None, "singletons skipped");
        // Singletons among real panels don't distort the statistic.
        let with = fleiss_kappa(&[(3, 0), (1, 0), (0, 3)]).unwrap();
        let without = fleiss_kappa(&[(3, 0), (0, 3)]).unwrap();
        assert!((with - without).abs() < 1e-12);
    }
}
