//! Precision targets for the Monte-Carlo TPO builder.
//!
//! Historically every caller passed a magic `worlds` constant to
//! [`crate::build::build_mc`]; this module makes precision a first-class
//! knob of the stack instead (DESIGN.md §13):
//!
//! * [`PrecisionTarget::FixedWorlds`] — the compat mode: sample exactly
//!   `m` worlds, bit-identical to the historical fixed-M pipeline. The
//!   default is [`DEFAULT_WORLDS`], the single documented source of truth
//!   for the old `worlds = 10_000` knob.
//! * [`PrecisionTarget::Adaptive`] — grow the sample in geometric batches
//!   until an empirical-Bernstein sequential-sampling bound certifies that
//!   every path probability of the top-K posterior is within `epsilon` of
//!   its true value simultaneously, with confidence `1 − delta` — or skip
//!   sampling entirely (zero worlds) when the certain/possible bounds of
//!   [`ctk_prob::TopKBounds`] already pin the whole ordered prefix.
//!
//! Every build reports what actually happened in a [`PrecisionReport`]:
//! worlds drawn, the achieved half-width, and the [`StopReason`].

use crate::error::{Result, TpoError};

/// The historical fixed Monte-Carlo sample size — the one documented
/// source of truth for the old hard-coded `worlds = 10_000` knob. Every
/// example, bench and default routes through this constant.
pub const DEFAULT_WORLDS: usize = 10_000;

/// First batch size of the adaptive builder. Doubles each look.
pub(crate) const ADAPTIVE_INITIAL_BATCH: usize = 1024;

/// Hard cap on adaptively drawn worlds. A build hitting the cap stops
/// with [`StopReason::WorldCap`] and reports the (larger-than-requested)
/// half-width it actually achieved.
pub const ADAPTIVE_MAX_WORLDS: usize = 1 << 19;

/// How precise the Monte-Carlo top-K posterior must be.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrecisionTarget {
    /// Sample exactly this many worlds — bit-identical to the historical
    /// fixed-M pipeline (pinned by tests). No error guarantee is claimed.
    FixedWorlds(usize),
    /// Sample until every path probability is within `epsilon` of its
    /// true value with confidence `1 − delta` (simultaneously over the
    /// observed paths), or the certain bounds decide the query first.
    Adaptive {
        /// Maximum tolerated per-path probability error (0 < ε < 1).
        epsilon: f64,
        /// Tolerated failure probability of the guarantee (0 < δ < 1).
        delta: f64,
    },
}

impl Default for PrecisionTarget {
    fn default() -> Self {
        PrecisionTarget::FixedWorlds(DEFAULT_WORLDS)
    }
}

impl PrecisionTarget {
    /// Human-readable mode name.
    pub fn name(&self) -> &'static str {
        match self {
            PrecisionTarget::FixedWorlds(_) => "fixed",
            PrecisionTarget::Adaptive { .. } => "adaptive",
        }
    }

    /// Validates the target: `FixedWorlds(0)` and out-of-range `(ε, δ)`
    /// are invalid specs (errors, not silent repairs).
    pub fn validate(&self) -> Result<()> {
        match *self {
            PrecisionTarget::FixedWorlds(0) => Err(TpoError::InvalidWorlds),
            PrecisionTarget::FixedWorlds(_) => Ok(()),
            PrecisionTarget::Adaptive { epsilon, delta } => {
                let ok = |x: f64| x > 0.0 && x < 1.0 && x.is_finite();
                if ok(epsilon) && ok(delta) {
                    Ok(())
                } else {
                    Err(TpoError::InvalidPrecision { epsilon, delta })
                }
            }
        }
    }
}

/// Why a Monte-Carlo build stopped sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The certain/possible bounds pinned the full ordered prefix; zero
    /// worlds were drawn.
    CertainOrder,
    /// The sequential bound cleared the requested `(ε, δ)`.
    Converged,
    /// [`ADAPTIVE_MAX_WORLDS`] was reached before convergence.
    WorldCap,
    /// A `FixedWorlds` build spent its fixed budget (compat mode).
    FixedBudget,
    /// The exact nested-quadrature engine ran; no sampling involved.
    Exact,
}

impl StopReason {
    /// Human-readable reason name.
    pub fn name(&self) -> &'static str {
        match self {
            StopReason::CertainOrder => "certain-order",
            StopReason::Converged => "converged",
            StopReason::WorldCap => "world-cap",
            StopReason::FixedBudget => "fixed-budget",
            StopReason::Exact => "exact",
        }
    }
}

/// What a build actually did: worlds drawn, achieved guarantee, and why
/// it stopped. Deterministic given the build inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionReport {
    /// Possible worlds sampled by the build.
    pub worlds_drawn: usize,
    /// Achieved simultaneous half-width (`None` for modes that claim no
    /// guarantee: fixed budgets and the exact engine).
    pub epsilon: Option<f64>,
    /// The requested confidence parameter (`None` outside adaptive mode).
    pub delta: Option<f64>,
    /// Why sampling stopped.
    pub reason: StopReason,
}

impl PrecisionReport {
    /// The compat-mode report of a fixed `m`-world build.
    pub fn fixed(m: usize) -> Self {
        Self {
            worlds_drawn: m,
            epsilon: None,
            delta: None,
            reason: StopReason::FixedBudget,
        }
    }

    /// The exact engine's report: no sampling, no MC error.
    pub fn exact() -> Self {
        Self {
            worlds_drawn: 0,
            epsilon: None,
            delta: None,
            reason: StopReason::Exact,
        }
    }

    /// Bit-exact equality (floats compared by bits, so two deterministic
    /// replays can be asserted identical).
    pub fn same_outcome(&self, other: &Self) -> bool {
        let bits = |x: Option<f64>| x.map(f64::to_bits);
        self.worlds_drawn == other.worlds_drawn
            && bits(self.epsilon) == bits(other.epsilon)
            && bits(self.delta) == bits(other.delta)
            && self.reason == other.reason
    }
}

/// Simultaneous empirical-Bernstein half-width over the observed path
/// frequencies at sequential look `look` (1-based), with `m` worlds drawn
/// and per-path counts `counts`.
///
/// Per look the failure budget is `δ_t = δ / (t(t+1))` (which sums to at
/// most `δ` over all looks), split uniformly over the `L` observed paths
/// plus one collective unseen-mass term. Each observed path `j` with
/// `p̂_j = c_j / m` gets the Audibert–Munos–Szepesvári bound
///
/// ```text
/// eb_j = sqrt(2 · V̂_j · ln(3/δ′) / m) + 3 · ln(3/δ′) / (m − 1)
/// ```
///
/// with `V̂_j` the sample variance `p̂_j (1 − p̂_j) · m/(m−1)`. The unseen
/// term is the `p̂ = 0` case, whose half-width `3·ln(3/δ′)/(m−1)` is
/// dominated by every observed `eb_j`, so the returned maximum covers it.
/// Variance adaptivity is the whole point: on a mostly-decided table the
/// top path has `p̂ ≈ 1`, its variance term vanishes, and the bound clears
/// a 2% target thousands of worlds earlier than the distribution-free
/// `sqrt(ln/m)` rate would (DESIGN.md §13).
pub(crate) fn eb_half_width(counts: &[u64], m: usize, look: usize, delta: f64) -> f64 {
    debug_assert!(m >= 2 && look >= 1);
    let mf = m as f64;
    let delta_look = delta / ((look * (look + 1)) as f64);
    let delta_each = delta_look / (counts.len() + 1) as f64;
    let ln3 = (3.0 / delta_each).ln();
    let linear = 3.0 * ln3 / (mf - 1.0);
    counts
        .iter()
        .map(|&c| {
            let p = c as f64 / mf;
            let var = p * (1.0 - p) * mf / (mf - 1.0);
            (2.0 * var * ln3 / mf).sqrt() + linear
        })
        .fold(linear, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_routes_through_the_single_source_of_truth() {
        assert_eq!(
            PrecisionTarget::default(),
            PrecisionTarget::FixedWorlds(DEFAULT_WORLDS)
        );
        assert_eq!(PrecisionTarget::default().name(), "fixed");
        assert_eq!(
            PrecisionTarget::Adaptive {
                epsilon: 0.02,
                delta: 0.05
            }
            .name(),
            "adaptive"
        );
    }

    #[test]
    fn validation_rejects_bad_specs() {
        assert!(PrecisionTarget::FixedWorlds(1).validate().is_ok());
        assert!(matches!(
            PrecisionTarget::FixedWorlds(0).validate(),
            Err(TpoError::InvalidWorlds)
        ));
        for (epsilon, delta) in [
            (0.0, 0.05),
            (1.0, 0.05),
            (0.02, 0.0),
            (0.02, 1.0),
            (f64::NAN, 0.05),
            (0.02, f64::INFINITY),
        ] {
            assert!(
                matches!(
                    PrecisionTarget::Adaptive { epsilon, delta }.validate(),
                    Err(TpoError::InvalidPrecision { .. })
                ),
                "({epsilon}, {delta}) must be rejected"
            );
        }
        assert!(PrecisionTarget::Adaptive {
            epsilon: 0.02,
            delta: 0.05
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn stop_reasons_have_names() {
        for (r, name) in [
            (StopReason::CertainOrder, "certain-order"),
            (StopReason::Converged, "converged"),
            (StopReason::WorldCap, "world-cap"),
            (StopReason::FixedBudget, "fixed-budget"),
            (StopReason::Exact, "exact"),
        ] {
            assert_eq!(r.name(), name);
        }
    }

    #[test]
    fn report_same_outcome_is_bit_exact() {
        let a = PrecisionReport {
            worlds_drawn: 2048,
            epsilon: Some(0.013),
            delta: Some(0.05),
            reason: StopReason::Converged,
        };
        assert!(a.same_outcome(&a));
        let mut b = a;
        b.epsilon = Some(0.013 + 1e-19);
        assert!(a.same_outcome(&b), "same float value, same bits");
        b.epsilon = Some(0.014);
        assert!(!a.same_outcome(&b));
        assert!(!a.same_outcome(&PrecisionReport::fixed(2048)));
        assert_eq!(PrecisionReport::exact().reason, StopReason::Exact);
    }

    #[test]
    fn eb_half_width_shrinks_with_m_and_variance() {
        // Concentrated posterior (one dominant path) converges much
        // faster than an even split at the same look.
        let concentrated = eb_half_width(&[1990, 10], 2000, 2, 0.05);
        let even = eb_half_width(&[1000, 1000], 2000, 2, 0.05);
        assert!(concentrated < even, "{concentrated} vs {even}");
        // More worlds shrink the bound.
        let fewer = eb_half_width(&[995, 5], 1000, 1, 0.05);
        let more = eb_half_width(&[9950, 50], 10_000, 2, 0.05);
        assert!(more < fewer, "{more} vs {fewer}");
        // The bound is always positive and covers the unseen-mass term.
        assert!(eb_half_width(&[2000], 2000, 1, 0.05) > 0.0);
    }

    #[test]
    fn eb_look_budget_decays() {
        // Later looks pay a larger log factor at the same counts.
        let early = eb_half_width(&[1000, 1000], 2000, 1, 0.05);
        let late = eb_half_width(&[1000, 1000], 2000, 9, 0.05);
        assert!(late > early);
    }
}
