//! Explore the tree of possible orderings itself: build it with both
//! engines, inspect levels and marginals, and export Graphviz DOT — the
//! picture the paper draws when introducing the TPO.
//!
//! Run with: `cargo run --release --example tpo_explore [> tpo.dot]`
//! (the DOT goes to stdout; diagnostics to stderr).

use crowd_topk::prob::compare::PairwiseMatrix;
use crowd_topk::prob::{ScoreDist, UncertainTable};
use crowd_topk::tpo::build::{build_exact, ExactConfig};
use crowd_topk::tpo::stats::{membership_probability, rank_probability};
use crowd_topk::tpo::Tpo;

fn main() {
    // Four contenders; t3 leads but overlaps t2, t2 overlaps t1, t0 trails.
    let table = UncertainTable::with_labels(vec![
        ("bronze".into(), ScoreDist::uniform(0.10, 0.45).unwrap()),
        ("silver".into(), ScoreDist::uniform(0.30, 0.70).unwrap()),
        ("gold".into(), ScoreDist::uniform(0.55, 0.95).unwrap()),
        ("champ".into(), ScoreDist::uniform(0.75, 1.10).unwrap()),
    ])
    .unwrap();
    const K: usize = 3;

    let ps = build_exact(&table, K, &ExactConfig::default()).unwrap();
    eprintln!("space of ordered top-{K} results: {} orderings", ps.len());
    for p in ps.paths() {
        eprintln!("  {p}");
    }

    // Which pairs would a crowd question actually help with?
    let pw = PairwiseMatrix::compute(&table);
    eprintln!("\nuncertain pairs (candidate questions):");
    for i in 0..table.len() {
        for j in (i + 1)..table.len() {
            if pw.uncertain(i, j) {
                eprintln!(
                    "  {} ?≺ {}   P = {:.3}",
                    table.get(i).label,
                    table.get(j).label,
                    pw.pr(i, j)
                );
            }
        }
    }

    // Per-tuple marginals inside the tree.
    eprintln!("\nmarginals:");
    for t in table.iter() {
        eprintln!(
            "  {:6}  P(in top-{K}) = {:.3}   P(rank 1) = {:.3}",
            t.label,
            membership_probability(&ps, t.id.0),
            rank_probability(&ps, t.id.0, 0)
        );
    }

    // The tree itself, as Graphviz DOT on stdout.
    let tree = Tpo::from_path_set(&ps);
    eprintln!(
        "\ntree: {} nodes, {} leaves, depth {K}; DOT on stdout:",
        tree.len(),
        tree.num_orderings()
    );
    println!("{}", tree.to_dot(|id| table.get(id as usize).label.clone()));
}
