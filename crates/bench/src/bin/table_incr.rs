//! T-incr (§III-D, §IV): the incremental algorithm against full-tree
//! T1-on as the table grows — “much lower CPU times … with slightly lower
//! quality (which makes incr suited for large, highly uncertain
//! datasets)”. Also sweeps the round size `n`.
//!
//! `cargo run --release -p ctk-bench --bin table_incr [runs]`

use ctk_bench::{emit_tsv, evaluate, fmt, fmt_secs, runs_from_args, EvalOpts};
use ctk_core::session::Algorithm;
use ctk_datagen::scenarios;

fn main() {
    let runs = runs_from_args(6);
    const BUDGET: usize = 20;
    let opts = EvalOpts {
        runs,
        worlds: 8_000,
        ..EvalOpts::default()
    };

    eprintln!("# T-incr: quality/cost vs N — K=5, B={BUDGET}, {runs} runs");
    let mut rows = Vec::new();
    for n in [20usize, 40, 60] {
        let algorithms = [
            ("T1-on", Algorithm::T1On),
            (
                "incr-n1",
                Algorithm::Incr {
                    questions_per_round: 1,
                },
            ),
            (
                "incr-n5",
                Algorithm::Incr {
                    questions_per_round: 5,
                },
            ),
            (
                "incr-n10",
                Algorithm::Incr {
                    questions_per_round: 10,
                },
            ),
        ];
        for (label, algorithm) in algorithms {
            let s = evaluate(|seed| scenarios::scaling(n, seed), algorithm, BUDGET, &opts);
            rows.push(vec![
                n.to_string(),
                label.to_string(),
                fmt(s.avg_distance),
                fmt_secs(s.avg_total_secs),
                fmt_secs(s.avg_selection_secs),
            ]);
            eprintln!(
                "#   N={n:2} {label:8}  D={:.4}  total={:.3e}s  select={:.3e}s",
                s.avg_distance, s.avg_total_secs, s.avg_selection_secs
            );
        }
    }
    emit_tsv(
        "table_incr",
        &["N", "algorithm", "D", "total_secs", "selection_secs"],
        &rows,
    );
}
