//! Negative fixture: total-order comparisons and unstable sorts over
//! total keys. A doc example with `partial_cmp(..).unwrap()` in a code
//! fence must not fire either:
//!
//! ```
//! let mut xs = vec![2.0_f64, 1.0];
//! xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
//! ```

pub fn total_comparison(x: f64, y: f64) -> std::cmp::Ordering {
    x.total_cmp(&y)
}

pub fn tolerance_check(x: f64) -> bool {
    (x - 0.5).abs() < 1e-9
}

pub fn deterministic_sort(xs: &mut [(f64, u32)]) {
    xs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
}
