//! §III-C / §IV: the system keeps working under noisy crowds — Bayesian
//! updates degrade gracefully with worker accuracy, and majority voting
//! buys accuracy back.

use crowd_topk::datagen::scenarios;
use crowd_topk::prelude::*;

fn avg_final_distance(accuracy: f64, policy: VotePolicy, runs: u64, budget: usize) -> f64 {
    let mut total = 0.0;
    for run in 0..runs {
        let scenario = scenarios::noise(run);
        let truth = GroundTruth::sample(&scenario.table, 400 + run);
        let top = truth.top_k(scenario.k);
        // Crowd budgets are vote-denominated: fund the full question
        // budget under either policy so the comparison stays at equal
        // question counts (majority-of-3 costs 3x the money).
        let mut crowd = CrowdSimulator::new(
            GroundTruth::sample(&scenario.table, 400 + run),
            NoisyWorker::new(accuracy, 77 * run + 3),
            policy,
            budget * policy.votes_per_question(),
        )
        .expect("valid vote policy");
        let r = CrowdTopK::new(scenario.table)
            .k(scenario.k)
            .budget(budget)
            .algorithm(Algorithm::T1On)
            .monte_carlo(4_000, run)
            .run_with_truth(&mut crowd, &top)
            .unwrap();
        total += r.final_distance().unwrap();
    }
    total / runs as f64
}

#[test]
fn accuracy_improves_outcomes() {
    const RUNS: u64 = 8;
    const B: usize = 15;
    let d_low = avg_final_distance(0.6, VotePolicy::Single, RUNS, B);
    let d_high = avg_final_distance(0.95, VotePolicy::Single, RUNS, B);
    assert!(
        d_high < d_low + 0.01,
        "higher accuracy should help: 0.95 -> {d_high:.4}, 0.6 -> {d_low:.4}"
    );
}

#[test]
fn majority_voting_helps_at_moderate_accuracy() {
    const RUNS: u64 = 8;
    const B: usize = 15;
    let single = avg_final_distance(0.7, VotePolicy::Single, RUNS, B);
    let majority = avg_final_distance(0.7, VotePolicy::Majority(3), RUNS, B);
    assert!(
        majority <= single + 0.02,
        "majority-of-3 should not hurt: single {single:.4}, majority {majority:.4}"
    );
}

#[test]
fn noisy_sessions_never_panic_and_keep_all_orderings() {
    let scenario = scenarios::noise(0);
    let truth = GroundTruth::sample(&scenario.table, 5);
    let top = truth.top_k(scenario.k);
    let mut crowd = CrowdSimulator::new(
        GroundTruth::sample(&scenario.table, 5),
        NoisyWorker::new(0.75, 1),
        VotePolicy::Single,
        12,
    )
    .expect("valid vote policy");
    let r = CrowdTopK::new(scenario.table)
        .k(scenario.k)
        .budget(12)
        .algorithm(Algorithm::T1On)
        .monte_carlo(3_000, 0)
        .run_with_truth(&mut crowd, &top)
        .unwrap();
    // Noisy answers only reweight: the ordering count never shrinks.
    for s in &r.steps {
        assert_eq!(
            s.orderings, r.initial_orderings,
            "noisy updates must not prune"
        );
    }
    // But probability mass should still concentrate (uncertainty falls).
    assert!(r.final_uncertainty() <= r.initial_uncertainty + 1e-9);
}

#[test]
fn heterogeneous_pools_work() {
    let scenario = scenarios::noise(2);
    let truth = GroundTruth::sample(&scenario.table, 8);
    let top = truth.top_k(scenario.k);
    let mut crowd = CrowdSimulator::new(
        GroundTruth::sample(&scenario.table, 8),
        WorkerPool::uniform(20, 0.65, 0.95, 3).expect("non-empty pool"),
        VotePolicy::Single,
        15,
    )
    .expect("valid vote policy");
    let r = CrowdTopK::new(scenario.table)
        .k(scenario.k)
        .budget(15)
        .algorithm(Algorithm::T1On)
        .monte_carlo(3_000, 2)
        .run_with_truth(&mut crowd, &top)
        .unwrap();
    assert!(r.questions_asked() > 0);
    assert!(r.final_distance().unwrap() <= r.initial_distance.unwrap() + 0.05);
}
