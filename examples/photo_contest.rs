//! Photo contest: the paper's motivating scenario. An automatic aesthetic
//! model scores contest submissions, but its scores are noisy; human
//! judges are much better at "which photo is nicer?" than at absolute
//! scoring. Crowdsource pairwise judgments to pin down the podium (top-5).
//!
//! Demonstrates: noisy workers, majority voting, and the gap between the
//! smart online strategy (`T1-on`) and the `naive` baseline at equal
//! budget.
//!
//! Run with: `cargo run --example photo_contest`

use crowd_topk::datagen::{generate, CenterLayout, DatasetSpec, PdfFamily, WidthSpec};
use crowd_topk::prelude::*;

fn main() {
    // 24 submissions; the model's score uncertainty varies per photo
    // (heterogeneous widths: some photos are easy to judge, some are not).
    let spec = DatasetSpec {
        n: 24,
        centers: CenterLayout::UniformRandom,
        family: PdfFamily::Uniform {
            width: WidthSpec::UniformRange(0.15, 0.55),
        },
        seed: 77,
    };
    let table = generate(&spec).expect("valid spec");
    const K: usize = 5;
    const BUDGET: usize = 25;

    println!("Photo contest: 24 submissions, top-{K} podium, {BUDGET} crowd questions");
    println!("Judges: 80% accurate; each question answered by a majority of 3.\n");

    let mut rows = Vec::new();
    for algorithm in [Algorithm::T1On, Algorithm::Naive, Algorithm::Random] {
        // Average over independent contest re-runs (different hidden
        // truths and judge noise).
        const RUNS: u64 = 10;
        let mut d_final = 0.0;
        let mut asked = 0usize;
        for run in 0..RUNS {
            let truth = GroundTruth::sample(&table, 1000 + run);
            let podium = truth.top_k(K);
            // Crowd budgets are vote-denominated: a majority-of-3 answer
            // costs 3 votes, so fund the full question budget explicitly.
            let mut crowd = CrowdSimulator::new(
                truth,
                NoisyWorker::new(0.80, 500 + run),
                VotePolicy::Majority(3),
                BUDGET * VotePolicy::Majority(3).votes_per_question(),
            )
            .expect("valid vote policy");
            let report = CrowdTopK::new(table.clone())
                .k(K)
                .budget(BUDGET)
                .algorithm(algorithm.clone())
                .monte_carlo(8_000, 42)
                .selector_seed(run)
                .run_with_truth(&mut crowd, &podium)
                .unwrap();
            d_final += report.final_distance().unwrap();
            asked += report.questions_asked();
        }
        rows.push((
            algorithm.name(),
            d_final / RUNS as f64,
            asked as f64 / RUNS as f64,
        ));
    }

    println!("algorithm  avg D(truth) after budget   avg questions used");
    for (name, d, q) in &rows {
        println!("{name:9}  {d:26.4}   {q:18.1}");
    }
    let t1 = rows[0].1;
    let naive = rows[1].1;
    println!(
        "\nT1-on reaches {:.1}% of naive's residual distance at the same cost.",
        100.0 * t1 / naive.max(1e-9)
    );
}
