//! Typed service-layer errors.
//!
//! The workspace rule is panic-freedom in result-affecting library code:
//! misuse of the service API surfaces as a value the caller can match
//! on, not an `assert!` that takes the process down.

use std::fmt;

/// An error from the serving layer's own API (as opposed to a
/// [`ctk_core::CoreError`] from a session's driver).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServiceError {
    /// A topology knob ([`crate::TopKService::with_shards`]) was turned
    /// after sessions were already submitted. Resharding would re-home
    /// live sessions (`shard = id mod shards`), silently orphaning their
    /// registries — configure the topology first, then submit.
    TopologyAfterSubmit {
        /// Sessions already submitted when the call was made.
        submitted: u64,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::TopologyAfterSubmit { submitted } => write!(
                f,
                "topology must be configured before the first submit \
                 ({submitted} session(s) already registered)"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_misuse() {
        let err = ServiceError::TopologyAfterSubmit { submitted: 3 };
        let s = err.to_string();
        assert!(s.contains("before the first submit"), "{s}");
        assert!(s.contains('3'), "{s}");
    }
}
