//! Adversarial crowds: the paper assumes one uniform worker accuracy,
//! but real pools contain spammers. This example sweeps the spammer
//! fraction and compares unweighted majority-of-3 voting against the
//! quality layer (gold qualification, online Beta/Dawid–Skene accuracy
//! estimation, log-odds-weighted fusion) at the same vote budget.
//!
//! Run with: `cargo run --example adversarial_crowd`

use crowd_topk::datagen::{gold_questions, scenarios, spammer_pool, Scenario};
use crowd_topk::prelude::*;

/// One full top-K session over `crowd`, returning the final distance to
/// the true top-K.
fn run_arm<C: Crowd>(
    scenario: &Scenario,
    budget: usize,
    run: u64,
    top: &RankList,
    crowd: &mut C,
) -> f64 {
    CrowdTopK::new(scenario.table.clone())
        .k(scenario.k)
        .budget(budget)
        .algorithm(Algorithm::T1On)
        .monte_carlo(6_000, run)
        .run_with_truth(crowd, top)
        .unwrap()
        .final_distance()
        .unwrap()
}

fn main() {
    const BUDGET: usize = 18;
    const RUNS: u64 = 8;
    const PANEL: usize = 3;
    const ROSTER: usize = 9;

    println!("N=15, K=5, B={BUDGET}, T1-on, panel of {PANEL}, roster of {ROSTER}, {RUNS} runs\n");
    println!("spammers   majority-3 D   weighted D   quarantined   (lower D is better)");

    for fraction in [0.0, 0.22, 0.33, 0.44] {
        let mut d_major = 0.0;
        let mut d_weighted = 0.0;
        let mut quarantined = 0usize;
        for run in 0..RUNS {
            let scenario = scenarios::noise(run);
            let truth = GroundTruth::sample(&scenario.table, 9000 + run);
            let top = truth.top_k(scenario.k);
            // Strip the preset's expert pricing: both arms pay one vote
            // per vote, so the comparison is at equal money.
            let specs: Vec<WorkerSpec> = spammer_pool(ROSTER, fraction, 70 + run)
                .iter()
                .map(|s| WorkerSpec::new(s.accuracy()))
                .collect();
            let seed = 31 * run + 7;

            // Arm 1: the legacy pool — every vote counts the same.
            let workers: Vec<NoisyWorker> = specs
                .iter()
                .enumerate()
                .map(|(i, s)| NoisyWorker::adversarial(s.accuracy(), seed.wrapping_add(i as u64)))
                .collect();
            let mut majority = CrowdSimulator::new(
                GroundTruth::sample(&scenario.table, 9000 + run),
                WorkerPool::from_workers(workers).expect("non-empty roster"),
                VotePolicy::Majority(PANEL),
                BUDGET * PANEL,
            )
            .expect("valid vote policy");

            // Arm 2: same hidden workers behind the quality layer, after
            // a (budget-free) gold qualification round.
            let mut weighted = QualityCrowd::new(
                GroundTruth::sample(&scenario.table, 9000 + run),
                &specs,
                QualityConfig::weighted(PANEL),
                BUDGET * PANEL,
                seed,
            )
            .expect("valid roster");
            weighted.calibrate_gold(&gold_questions(scenario.table.len() as u32, 1));

            d_major += run_arm(&scenario, BUDGET, run, &top, &mut majority);
            d_weighted += run_arm(&scenario, BUDGET, run, &top, &mut weighted);
            quarantined += weighted.quarantined();
        }
        println!(
            "{:7.0}%   {:12.4}   {:10.4}   {:11}",
            100.0 * fraction,
            d_major / RUNS as f64,
            d_weighted / RUNS as f64,
            quarantined
        );
    }

    println!(
        "\nUnweighted majority degrades as spammers dilute the panel: a\n\
         single reliable vote is outvoted by two coordinated-by-chance\n\
         spammers. The quality layer grades workers on gold + consensus\n\
         agreement, down-weights (or inverts) the unreliable ones in a\n\
         log-odds fusion, and quarantines repeat offenders — recovering\n\
         most of the clean-pool quality at the same vote budget."
    );
}
