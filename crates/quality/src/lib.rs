#![forbid(unsafe_code)]
#![deny(warnings)]
//! # ctk-quality — worker quality estimation, weighted fusion, routing
//!
//! Quality layer of the `crowd-topk` workspace (reproduction of
//! *“Crowdsourcing for Top-K Query Processing over Uncertain Data”*,
//! Ciceri et al., ICDE 2016 / TKDE 28(1)).
//!
//! The paper grades every crowd answer with one nominal accuracy `eta`
//! and aggregates replicated votes by unweighted majority — a uniform
//! idealization real crowds violate: workers differ, spam, and churn.
//! This crate replaces the idealization with estimated, per-worker
//! quality while keeping the engine's interfaces unchanged:
//!
//! * [`BetaPosterior`] — conjugate online estimate of one worker's
//!   latent accuracy, graded against the fused consensus;
//! * [`estimator`] — bounded vote log + binary Dawid–Skene EM that
//!   jointly refines consensus answers and worker accuracies;
//! * [`GateConfig`] / [`fleiss_kappa`] — approval-rate and
//!   min-answer-count gates, spammer quarantine with deterministic
//!   re-admission, and chance-corrected panel agreement;
//! * [`fuse_weighted`] — log-odds-weighted majority whose fused
//!   posterior feeds the engine's per-answer accuracy plumbing
//!   (`SessionDriver::feed_graded`);
//! * [`QuestionRouter`] — belief-margin routing: cheap panels on
//!   wide-margin questions, expert panels on narrow ones, priced by the
//!   crowd's [`ctk_crowd::CostModel`];
//! * [`QualityCrowd`] — a [`ctk_crowd::Crowd`] backend tying it all
//!   together over a heterogeneous worker roster (true accuracies,
//!   per-vote prices, activity windows), with a compatibility mode that
//!   replays the plain majority simulator bit for bit.
//!
//! Everything is deterministic: seeded worker RNGs, `BTreeMap`
//! accumulators, fixed fold orders (see DESIGN.md §12).
//!
//! ## Example
//!
//! ```
//! use ctk_crowd::{Crowd, GroundTruth, Question, WorkerId};
//! use ctk_quality::{QualityConfig, QualityCrowd, WorkerSpec};
//!
//! // Two reliable workers and a systematic liar.
//! let specs = vec![
//!     WorkerSpec::new(0.95),
//!     WorkerSpec::new(0.9),
//!     WorkerSpec::new(0.1),
//! ];
//! let truth = GroundTruth::from_scores(vec![0.2, 0.8]);
//! let mut crowd = QualityCrowd::new(truth, &specs, QualityConfig::weighted(3), 600, 42)
//!     .expect("valid roster");
//! // A gold qualification round tells the estimator who is who...
//! crowd.calibrate_gold(&vec![Question::new(1, 0); 8]);
//! // ...so fused answers discount (or invert) the liar's votes.
//! let answer = crowd.ask(Question::new(1, 0)).expect("within budget");
//! assert!(answer.yes);
//! assert!(crowd.posterior_mean(WorkerId(2)).unwrap() < 0.5);
//! ```

pub mod crowd;
pub mod error;
pub mod estimator;
pub mod fusion;
pub mod gates;
pub mod posterior;
pub mod router;

pub use crowd::{Calibration, Grading, QualityConfig, QualityCrowd, WorkerSpec};
pub use error::QualityError;
pub use estimator::{dawid_skene, EmEvidence, PanelRecord, VoteLog};
pub use fusion::{fuse_weighted, FusedVerdict};
pub use gates::{fleiss_kappa, GateConfig};
pub use posterior::{log_odds, BetaPosterior};
pub use router::QuestionRouter;
