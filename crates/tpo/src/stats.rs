//! Statistics over path sets: level-wise prefix distributions (for the
//! weighted-entropy measure), pairwise precedence probabilities (for
//! question selection), and assorted summaries.

use crate::answers::{implication, Implication};
use crate::path::PathSet;
use std::collections::BTreeMap;

/// For each level `ℓ = 1..=depth`, the probability distribution over the
/// distinct length-`ℓ` prefixes of the path set (each inner vector sums to
/// ~1). Level `ℓ`'s entropy is the paper's `H(T_K, ℓ)` ingredient of
/// `U_Hw`.
pub fn level_distributions(ps: &PathSet) -> Vec<Vec<f64>> {
    let depth = ps.paths().iter().map(|p| p.items.len()).max().unwrap_or(0);
    let mut out = Vec::with_capacity(depth);
    for l in 1..=depth {
        let mut groups: BTreeMap<&[u32], f64> = BTreeMap::new();
        for p in ps.paths() {
            let pre = &p.items[..l.min(p.items.len())];
            *groups.entry(pre).or_insert(0.0) += p.prob;
        }
        let mut probs: Vec<f64> = groups.into_values().collect();
        // Deterministic order for reproducible entropy summation.
        probs.sort_unstable_by(|a, b| b.total_cmp(a));
        out.push(probs);
    }
    out
}

/// Probability that tuple `i` ranks above tuple `j` under the path
/// distribution; paths that do not determine the pair contribute `prior`.
pub fn precedence_probability(ps: &PathSet, i: u32, j: u32, prior: f64) -> f64 {
    let mut p = 0.0;
    for path in ps.paths() {
        p += path.prob
            * match implication(&path.items, i, j) {
                Implication::Yes => 1.0,
                Implication::No => 0.0,
                Implication::Undetermined => prior,
            };
    }
    p.clamp(0.0, 1.0)
}

/// Marginal probability that tuple `t` appears at rank `r` (0-based).
pub fn rank_probability(ps: &PathSet, t: u32, r: usize) -> f64 {
    // `+ 0.0` normalizes the empty sum, which is -0.0 in std.
    ps.paths()
        .iter()
        .filter(|p| p.items.get(r) == Some(&t))
        .map(|p| p.prob)
        .sum::<f64>()
        + 0.0
}

/// Marginal probability that tuple `t` appears anywhere in the top-k.
pub fn membership_probability(ps: &PathSet, t: u32) -> f64 {
    ps.paths()
        .iter()
        .filter(|p| p.items.contains(&t))
        .map(|p| p.prob)
        .sum::<f64>()
        + 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps() -> PathSet {
        PathSet::from_weighted(
            2,
            vec![(vec![0, 1], 0.5), (vec![0, 2], 0.2), (vec![1, 0], 0.3)],
        )
        .unwrap()
    }

    #[test]
    fn level_distributions_shape_and_mass() {
        let levels = level_distributions(&ps());
        assert_eq!(levels.len(), 2);
        // Level 1: prefixes [0] (0.7) and [1] (0.3).
        assert_eq!(levels[0].len(), 2);
        assert!((levels[0].iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((levels[0][0] - 0.7).abs() < 1e-12);
        // Level 2: three distinct prefixes.
        assert_eq!(levels[1].len(), 3);
        assert!((levels[1].iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn precedence_probabilities() {
        let s = ps();
        // 0 above 1: paths [0,1] yes (0.5), [0,2] yes via membership (0.2),
        // [1,0] no. => 0.7
        assert!((precedence_probability(&s, 0, 1, 0.5) - 0.7).abs() < 1e-12);
        assert!((precedence_probability(&s, 1, 0, 0.5) - 0.3).abs() < 1e-12);
        // Pair (5,6) absent everywhere: prior.
        assert!((precedence_probability(&s, 5, 6, 0.25) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rank_and_membership() {
        let s = ps();
        assert!((rank_probability(&s, 0, 0) - 0.7).abs() < 1e-12);
        assert!((rank_probability(&s, 0, 1) - 0.3).abs() < 1e-12);
        assert!((rank_probability(&s, 2, 1) - 0.2).abs() < 1e-12);
        assert!((membership_probability(&s, 0) - 1.0).abs() < 1e-12);
        assert!((membership_probability(&s, 2) - 0.2).abs() < 1e-12);
        assert_eq!(membership_probability(&s, 9), 0.0);
    }

    #[test]
    fn complementarity_of_precedence() {
        let s = ps();
        for &(i, j) in &[(0u32, 1u32), (0, 2), (1, 2)] {
            let p = precedence_probability(&s, i, j, 0.5);
            let q = precedence_probability(&s, j, i, 0.5);
            assert!((p + q - 1.0).abs() < 1e-12, "({i},{j})");
        }
    }
}
