//! `U_MPO`: expected top-k distance of the orderings in `T_K` to the Most
//! Probable Ordering — the cheaper structural cousin of `U_ORA` (the MPO
//! needs no aggregation, just an argmax over leaf probabilities).

use super::UncertaintyMeasure;
use ctk_rank::topk::topk_kendall_normalized;
use ctk_tpo::PathSet;

/// Expected normalized top-k Kendall distance to the MPO.
#[derive(Debug, Clone)]
pub struct MpoDistance {
    /// Fagin penalty parameter for the top-k distance.
    pub penalty: f64,
}

impl Default for MpoDistance {
    fn default() -> Self {
        Self { penalty: 0.5 }
    }
}

impl UncertaintyMeasure for MpoDistance {
    fn name(&self) -> &'static str {
        "UMPO"
    }

    fn uncertainty(&self, ps: &PathSet) -> f64 {
        if ps.is_resolved() {
            return 0.0;
        }
        let mpo = ps.most_probable().rank_list();
        ps.paths()
            .iter()
            .map(|p| p.prob * topk_kendall_normalized(&p.rank_list(), &mpo, self.penalty))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{resolved_set, sample_set};
    use super::*;

    #[test]
    fn zero_on_certain_result() {
        assert_eq!(MpoDistance::default().uncertainty(&resolved_set()), 0.0);
    }

    #[test]
    fn mpo_contributes_zero_to_itself() {
        let s = sample_set();
        let m = MpoDistance::default();
        let u = m.uncertainty(&s);
        // Upper bound: total non-MPO mass (distance <= 1 each).
        let non_mpo: f64 = 1.0 - s.most_probable().prob;
        assert!(u > 0.0 && u <= non_mpo + 1e-12, "u = {u}, bound {non_mpo}");
    }

    #[test]
    fn concentrating_mass_reduces_uncertainty() {
        let spread = ctk_tpo::PathSet::from_weighted(
            2,
            vec![(vec![0, 1], 0.34), (vec![1, 0], 0.33), (vec![1, 2], 0.33)],
        )
        .unwrap();
        let focused = ctk_tpo::PathSet::from_weighted(
            2,
            vec![(vec![0, 1], 0.9), (vec![1, 0], 0.05), (vec![1, 2], 0.05)],
        )
        .unwrap();
        let m = MpoDistance::default();
        assert!(m.uncertainty(&focused) < m.uncertainty(&spread));
    }

    #[test]
    fn respects_penalty_parameter() {
        // Paths over disjoint tails: the penalty parameter affects both the
        // case-4 pair count and the normalizer, so different penalties give
        // different (but always bounded) values.
        let s =
            ctk_tpo::PathSet::from_weighted(3, vec![(vec![0, 1, 2], 0.6), (vec![0, 4, 5], 0.4)])
                .unwrap();
        let optimistic = MpoDistance { penalty: 0.0 }.uncertainty(&s);
        let neutral = MpoDistance { penalty: 0.5 }.uncertainty(&s);
        assert!((neutral - optimistic).abs() > 1e-6, "penalty must matter");
        for v in [optimistic, neutral] {
            assert!((0.0..=1.0).contains(&v), "out of bounds: {v}");
        }
        // Raw (unnormalized) distances do grow with the penalty:
        // d = 4 + 2p for these lists.
        use ctk_rank::topk::topk_kendall;
        let a = ctk_rank::RankList::new(vec![0, 1, 2]).unwrap();
        let b = ctk_rank::RankList::new(vec![0, 4, 5]).unwrap();
        assert!(topk_kendall(&a, &b, 0.5) > topk_kendall(&a, &b, 0.0));
    }
}
