//! The sans-IO session driver: the ask/update loop of a session as a pure
//! state machine.
//!
//! [`SessionDriver`] owns the belief state (a [`PathSet`] or, for `incr`, a
//! [`WorldModel`]) and the selection strategy, but never talks to a crowd.
//! A caller — [`crate::session::UrSession`] for the classic blocking run,
//! or a scheduler multiplexing many sessions over one crowd backend —
//! drives it through the cycle
//!
//! ```text
//! next_batch(crowd_remaining) -> Vec<Question>   // questions to ask now
//! feed(&answers, accuracy)    -> DriverStatus    // apply crowd answers
//! ...                                            // until Done
//! finish()                    -> UrReport
//! ```
//!
//! The driver reproduces the behaviour of the original monolithic loop
//! exactly: for a given configuration, table, truth and answer stream, the
//! report produced by driving this machine equals the one `UrSession::run`
//! produced before the split (and `UrSession::run` is now implemented on
//! top of it, so the property holds by construction).
//!
//! Batching contract: when no early-stop target is configured, offline
//! strategies emit their whole planned batch and `incr` emits a full
//! round in one `next_batch` call — answers cannot change the question
//! set, so a scheduler may farm the batch out at once. With an
//! `uncertainty_target`, questions are emitted one at a time because the
//! legacy loop re-checks the target between answers before spending more
//! budget.
//!
//! Drivers are `Send` (pinned by a compile-time assertion in the tests):
//! calls on *distinct* drivers touch disjoint state, so a serving layer
//! may shard a round's `next_batch`/`feed` work across threads —
//! `ctk-service` does, with bit-identical per-session reports at any
//! thread count.

use crate::error::{CoreError, Result};
use crate::measures::UncertaintyMeasure;
use crate::metrics::expected_distance_to_truth;
use crate::residual::ResidualCtx;
use crate::select::{
    AStarOff, AStarOn, COff, NaiveSelector, OfflineSelector, OnlineSelector, RandomSelector, T1On,
    TbOff,
};
use crate::session::{Algorithm, SessionConfig, StepRecord, UrReport};
use ctk_crowd::{Answer, Question};
use ctk_prob::compare::PairwiseMatrix;
use ctk_prob::{TopKBounds, UncertainTable};
use ctk_rank::RankList;
use ctk_tpo::build::{build_mc_bounded, sample_adaptive, AdaptiveSample, Engine};
use ctk_tpo::prune::prune;
use ctk_tpo::update::bayes_update;
use ctk_tpo::{
    PathSet, PrecisionReport, PrecisionTarget, StopReason, TpoError, WorldModel, DEFAULT_WORLDS,
};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Accuracy at or above which answers are treated as reliable (hard
/// pruning); below it the Bayesian update is used (§III-C).
pub const RELIABLE_ACCURACY: f64 = 1.0 - 1e-9;

/// Where the driver stands after a `feed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverStatus {
    /// The session wants more questions answered.
    Active,
    /// The session is finished; call [`SessionDriver::finish`].
    Done,
}

/// Belief state + selection strategy of one running session.
enum Mode {
    /// Full-depth tree algorithms (everything except `incr`).
    Tree { ps: PathSet, sel: TreeSel },
    /// The incremental §III-D algorithm on a sampled-worlds belief.
    Incr {
        wm: WorldModel,
        depth: usize,
        n_per_round: usize,
    },
}

enum TreeSel {
    Online(Box<dyn OnlineSelector>),
    /// Offline strategies plan the whole batch once; `planned` flips after
    /// that single selection call.
    Offline {
        planned: bool,
    },
}

/// A sans-IO uncertainty-reduction session (see module docs).
pub struct SessionDriver {
    config: SessionConfig,
    measure: Box<dyn UncertaintyMeasure>,
    /// Shared so a serving layer can compute the n² quadratures once per
    /// table and hand the same matrix to every session over it.
    pairwise: Arc<PairwiseMatrix>,
    truth: Option<RankList>,
    report: UrReport,
    selection_time: Duration,
    started: Instant,
    /// Selected but not yet emitted questions.
    pending: VecDeque<Question>,
    /// Emitted questions awaiting answers (in emission order).
    outstanding: VecDeque<Question>,
    done: bool,
    mode: Mode,
}

impl std::fmt::Debug for SessionDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionDriver")
            .field("algorithm", &self.report.algorithm)
            .field("steps", &self.report.steps.len())
            .field("pending", &self.pending.len())
            .field("outstanding", &self.outstanding.len())
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl SessionDriver {
    /// Validates the configuration and builds the initial belief state
    /// (the TPO, or the world sample for `incr`).
    pub fn new(
        config: SessionConfig,
        table: &UncertainTable,
        truth: Option<&RankList>,
    ) -> Result<Self> {
        let pairwise = Arc::new(PairwiseMatrix::compute(table));
        Self::new_with_pairwise(config, table, truth, pairwise)
    }

    /// Like [`SessionDriver::new`] but reusing a precomputed pairwise
    /// matrix for `table` — the n² comparison quadratures are by far the
    /// most expensive part of session setup, and a serving layer
    /// multiplexing many sessions over one table should pay them once
    /// (see `ctk-service`).
    pub fn new_with_pairwise(
        config: SessionConfig,
        table: &UncertainTable,
        truth: Option<&RankList>,
        pairwise: Arc<PairwiseMatrix>,
    ) -> Result<Self> {
        Self::new_shared(config, table, truth, pairwise, None)
    }

    /// Like [`SessionDriver::new_with_pairwise`] but additionally reusing
    /// precomputed certain/possible top-K bounds for `(table, k)` — a
    /// serving layer caches them beside the pairwise matrix so repeat
    /// tenants skip the O(n²) dominance scan. Bounds whose table size or
    /// depth do not match this session are ignored (recomputed), never
    /// trusted.
    pub fn new_shared(
        config: SessionConfig,
        table: &UncertainTable,
        truth: Option<&RankList>,
        pairwise: Arc<PairwiseMatrix>,
        shared_bounds: Option<Arc<TopKBounds>>,
    ) -> Result<Self> {
        if pairwise.len() != table.len() {
            return Err(CoreError::InvalidConfig(format!(
                "pairwise matrix covers {} tuples but the table has {}",
                pairwise.len(),
                table.len()
            )));
        }
        if config.k == 0 {
            return Err(CoreError::InvalidConfig("k must be at least 1".into()));
        }
        if config.k > table.len() {
            return Err(CoreError::InvalidConfig(format!(
                "k = {} exceeds table size {}",
                config.k,
                table.len()
            )));
        }
        if let Algorithm::Incr {
            questions_per_round,
        } = config.algorithm
        {
            if questions_per_round == 0 {
                return Err(CoreError::InvalidConfig(
                    "incr needs questions_per_round >= 1".into(),
                ));
            }
        }
        let measure = config.measure.build();
        let started = Instant::now(); // ctk-allow(det-wall-clock): timing metric for the report only; never feeds a decision
                                      // Certain/possible top-K bounds from the pairwise comparison
                                      // probabilities: an adaptive-precision build consults them before
                                      // sampling a single world, and a fully pinned prefix ends the
                                      // session with zero questions (the scores alone decide the query).
        let bounds = match shared_bounds {
            Some(b) if b.k() == config.k && b.len() == table.len() => b,
            _ => Arc::new(TopKBounds::from_matrix(&pairwise, config.k).map_err(TpoError::from)?),
        };
        let (mode, report);
        let mut done = false;
        match &config.algorithm {
            Algorithm::Incr {
                questions_per_round,
            } => {
                // incr interleaves construction with pruning on a
                // *sampled-worlds* belief (§III-D) — an exact engine cannot
                // drive it. When the config asks for Engine::Exact we fall
                // back to a generously sized world sample rather than
                // erroring, trading exactness for incr's construction
                // savings.
                let (sample, precision) = match &config.engine {
                    Engine::MonteCarlo(mc) => match mc.precision {
                        PrecisionTarget::Adaptive { epsilon, delta } => sample_adaptive(
                            table,
                            config.k,
                            epsilon,
                            delta,
                            mc.seed,
                            Some(bounds.as_ref()),
                        )?,
                        PrecisionTarget::FixedWorlds(m) => (
                            AdaptiveSample::Sampled(WorldModel::sample(table, m, mc.seed)?),
                            PrecisionReport::fixed(m),
                        ),
                    },
                    Engine::Exact(_) => {
                        let m = 2 * DEFAULT_WORLDS;
                        (
                            AdaptiveSample::Sampled(WorldModel::sample(table, m, config.seed)?),
                            PrecisionReport::fixed(m),
                        )
                    }
                };
                match sample {
                    AdaptiveSample::Pinned(prefix) => {
                        // The certain bounds pinned the whole ordered
                        // prefix: the belief is a single path, no crowd
                        // question is relevant, and the session is done
                        // before it starts.
                        let ps = PathSet::from_weighted(config.k, vec![(prefix, 1.0)])?;
                        report = report_skeleton(&config, &ps, measure.as_ref(), truth, &precision);
                        mode = Mode::Tree {
                            ps,
                            sel: TreeSel::Offline { planned: true },
                        };
                        done = true;
                    }
                    AdaptiveSample::Sampled(mut wm) => {
                        // Baseline numbers come from the *full-depth* tree
                        // so reports are comparable with the full-tree
                        // algorithms.
                        let initial_ps = wm.path_set_cached(config.k)?;
                        report = report_skeleton(
                            &config,
                            &initial_ps,
                            measure.as_ref(),
                            truth,
                            &precision,
                        );
                        mode = Mode::Incr {
                            wm,
                            depth: 1,
                            n_per_round: *questions_per_round,
                        };
                    }
                }
            }
            algorithm => {
                let (ps, precision) = match &config.engine {
                    Engine::MonteCarlo(mc) => {
                        build_mc_bounded(table, config.k, mc, Some(bounds.as_ref()))?
                    }
                    Engine::Exact(_) => (
                        config.engine.build(table, config.k)?,
                        PrecisionReport::exact(),
                    ),
                };
                let sel = match algorithm {
                    Algorithm::T1On => TreeSel::Online(Box::new(T1On)),
                    Algorithm::AStarOn {
                        lookahead,
                        max_expansions,
                    } => TreeSel::Online(Box::new(AStarOn {
                        lookahead: *lookahead,
                        max_expansions: *max_expansions,
                    })),
                    _ => TreeSel::Offline { planned: false },
                };
                report = report_skeleton(&config, &ps, measure.as_ref(), truth, &precision);
                mode = Mode::Tree { ps, sel };
            }
        }
        Ok(Self {
            config,
            measure,
            pairwise,
            truth: truth.cloned(),
            report,
            selection_time: Duration::ZERO,
            started,
            pending: VecDeque::new(),
            outstanding: VecDeque::new(),
            done,
            mode,
        })
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The in-progress report (timing fields are filled in by
    /// [`SessionDriver::finish`]).
    pub fn report(&self) -> &UrReport {
        &self.report
    }

    /// True once the session will emit no further questions.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Emitted questions not yet answered via [`SessionDriver::feed`].
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Questions answered so far.
    pub fn questions_asked(&self) -> usize {
        self.report.steps.len()
    }

    /// The belief margin `|2p − 1|` of a question under the session's
    /// pairwise prior `p = P(t_i ≻ t_j)`: 0 for a toss-up, 1 for a pair
    /// the scores already decide. Question-routing layers use it to send
    /// narrow-margin questions to expert workers and wide-margin ones to
    /// cheap panels; indices outside the table grade as margin 0 (an
    /// unknown pair is maximally uncertain).
    pub fn question_margin(&self, q: &Question) -> f64 {
        let (i, j) = (q.i as usize, q.j as usize);
        if i >= self.pairwise.len() || j >= self.pairwise.len() {
            return 0.0;
        }
        (2.0 * self.pairwise.pr(i, j) - 1.0).abs()
    }

    /// Returns the next questions to pose to the crowd. `crowd_remaining`
    /// is how many more answers the caller can deliver (for a standalone
    /// session, the crowd's remaining budget; for a multiplexed session,
    /// the session's remaining allowance — an answer cache may serve
    /// questions the shared crowd can no longer afford). An empty batch
    /// with no outstanding answers means the session is done; an empty
    /// batch *with* outstanding answers means the caller must `feed`
    /// first.
    pub fn next_batch(&mut self, crowd_remaining: usize) -> Result<Vec<Question>> {
        if self.done {
            return Ok(Vec::new());
        }
        if !self.outstanding.is_empty() {
            // Waiting on answers: nothing new until the caller feeds them.
            return Ok(Vec::new());
        }
        if self.pending.is_empty() {
            if self.report.steps.len() >= self.config.budget
                || crowd_remaining == 0
                || target_reached(&self.config, self.report.final_uncertainty())
            {
                self.done = true;
                return Ok(Vec::new());
            }
            self.select_more(crowd_remaining)?;
            if self.pending.is_empty() {
                // No informative question remains (early termination,
                // §III-B) or the offline plan is spent.
                self.done = true;
                return Ok(Vec::new());
            }
        }
        Ok(self.emit())
    }

    /// Applies crowd answers for previously emitted questions, in emission
    /// order (a prefix is accepted: fewer answers than outstanding
    /// questions signals an exhausted crowd and ends the session, exactly
    /// as the legacy loop stopped on the first unanswered question).
    /// `accuracy` is the nominal accuracy of one aggregated answer,
    /// consumed by the Bayesian update when below [`RELIABLE_ACCURACY`].
    pub fn feed(&mut self, answers: &[Answer], accuracy: f64) -> Result<DriverStatus> {
        self.feed_each(answers.len(), answers.iter().map(|a| (*a, accuracy)))
    }

    /// Like [`SessionDriver::feed`] but with a per-answer accuracy — for
    /// callers mixing answer sources of different reliability in one
    /// batch (e.g. a serving layer replaying cached answers bought under
    /// an older vote policy alongside fresh ones).
    pub fn feed_graded(&mut self, answers: &[(Answer, f64)]) -> Result<DriverStatus> {
        self.feed_each(answers.len(), answers.iter().copied())
    }

    fn feed_each(
        &mut self,
        count: usize,
        answers: impl Iterator<Item = (Answer, f64)>,
    ) -> Result<DriverStatus> {
        let expected = self.outstanding.len();
        for (ans, accuracy) in answers {
            let Some(q) = self.outstanding.pop_front() else {
                return Err(CoreError::Driver(format!(
                    "unsolicited answer to {}",
                    ans.question
                )));
            };
            // Accept either orientation of the emitted question.
            let yes = if ans.question == q {
                ans.yes
            } else if ans.question == q.flipped() {
                !ans.yes
            } else {
                return Err(CoreError::Driver(format!(
                    "answer to {} does not match outstanding question {q}",
                    ans.question
                )));
            };
            self.apply(q, yes, accuracy)?;
        }
        if count < expected {
            // The crowd could not serve the whole batch: drop the rest of
            // the plan and end the session with what we have.
            self.pending.clear();
            self.outstanding.clear();
            self.done = true;
        }
        Ok(self.status())
    }

    /// Current status without feeding anything.
    pub fn status(&self) -> DriverStatus {
        if self.done
            || (self.pending.is_empty()
                && self.outstanding.is_empty()
                && (self.report.steps.len() >= self.config.budget
                    || target_reached(&self.config, self.report.final_uncertainty())))
        {
            DriverStatus::Done
        } else {
            DriverStatus::Active
        }
    }

    /// Finalizes and returns the report. Safe to call at any point; steps
    /// recorded so far are kept (an aborted session reports what it
    /// learned).
    pub fn finish(mut self) -> Result<UrReport> {
        match &mut self.mode {
            Mode::Tree { ps, .. } => {
                self.report.resolved = ps.is_resolved();
                self.report.final_topk = ps.most_probable().items.clone();
            }
            Mode::Incr { wm, .. } => {
                // Materialize the final full-depth result (cheap: the
                // belief is already pruned and the prefix groups carry
                // over from the last round).
                let final_ps = wm.path_set_cached(self.config.k)?;
                self.report.resolved = final_ps.is_resolved();
                self.report.final_topk = final_ps.most_probable().items.clone();
                // (On a zero-question run there is nothing to fix up: the
                // baseline was already computed at full depth.)
                if let Some(last) = self.report.steps.last_mut() {
                    last.orderings = final_ps.len();
                    last.uncertainty = self.measure.uncertainty(&final_ps);
                    if let Some(t) = &self.truth {
                        last.distance_to_truth = Some(expected_distance_to_truth(&final_ps, t));
                    }
                }
            }
        }
        self.report.selection_time = self.selection_time;
        self.report.total_time = self.started.elapsed();
        Ok(self.report)
    }

    /// Refills `pending` according to the strategy (runs the selector).
    fn select_more(&mut self, crowd_remaining: usize) -> Result<()> {
        let ctx = ResidualCtx {
            measure: self.measure.as_ref(),
            pairwise: &self.pairwise,
        };
        match &mut self.mode {
            Mode::Tree { ps, sel } => match sel {
                TreeSel::Online(s) => {
                    let t = Instant::now(); // ctk-allow(det-wall-clock): timing metric for the report only; never feeds a decision
                    let q = s.next_question(ps, crowd_remaining, &ctx);
                    self.selection_time += t.elapsed();
                    self.pending.extend(q);
                }
                TreeSel::Offline { planned } => {
                    if !*planned {
                        *planned = true;
                        let mut s: Box<dyn OfflineSelector> = match &self.config.algorithm {
                            Algorithm::Random => Box::new(RandomSelector::new(self.config.seed)),
                            Algorithm::Naive => Box::new(NaiveSelector::new(self.config.seed)),
                            Algorithm::TbOff => Box::new(TbOff),
                            Algorithm::COff => Box::new(COff),
                            Algorithm::AStarOff { max_expansions } => Box::new(AStarOff {
                                max_expansions: *max_expansions,
                            }),
                            other => unreachable!("{} is not an offline strategy", other.name()),
                        };
                        let t = Instant::now(); // ctk-allow(det-wall-clock): timing metric for the report only; never feeds a decision
                        let batch = s.select(ps, self.config.budget.min(crowd_remaining), &ctx);
                        self.selection_time += t.elapsed();
                        self.pending.extend(batch);
                    }
                }
            },
            Mode::Incr {
                wm,
                depth,
                n_per_round,
            } => {
                let k = self.config.k;
                // “We only build new levels if there are not enough
                // questions to ask.” — where "enough" is the *effective*
                // round size: the last round of a nearly spent budget must
                // not force deep tree construction it can never use.
                let cap = (*n_per_round)
                    .min(crowd_remaining)
                    .min(self.config.budget - self.report.steps.len());
                let t = Instant::now(); // ctk-allow(det-wall-clock): timing metric for the report only; never feeds a decision
                let mut ps = wm.path_set_cached(*depth)?;
                let mut pool = crate::select::relevant_questions(&ps, &ctx);
                while pool.len() < cap && *depth < k {
                    *depth += 1;
                    ps = wm.path_set_cached(*depth)?;
                    pool = crate::select::relevant_questions(&ps, &ctx);
                }
                if pool.is_empty() {
                    self.selection_time += t.elapsed();
                    return Ok(()); // fully resolved at full depth
                }
                let n = cap.min(pool.len());
                let round = TbOff.select(&ps, n, &ctx);
                self.selection_time += t.elapsed();
                self.pending.extend(round);
            }
        }
        Ok(())
    }

    /// Moves selected questions to the wire. Without an early-stop target
    /// the whole pending set goes out at once; with one, questions go out
    /// one by one and the target is re-checked before each (mirroring the
    /// per-question check of the legacy loop).
    fn emit(&mut self) -> Vec<Question> {
        let batch: Vec<Question> = if self.config.uncertainty_target.is_none() {
            self.pending.drain(..).collect()
        } else if target_reached(&self.config, self.report.final_uncertainty()) {
            self.pending.clear();
            self.done = true;
            Vec::new()
        } else {
            self.pending.pop_front().into_iter().collect()
        };
        self.outstanding.extend(batch.iter().copied());
        batch
    }

    /// Applies one answer to the belief and records the step.
    fn apply(&mut self, q: Question, yes: bool, accuracy: f64) -> Result<()> {
        let prior = self.pairwise.pr(q.i as usize, q.j as usize);
        match &mut self.mode {
            Mode::Tree { ps, .. } => {
                let updated = if accuracy >= RELIABLE_ACCURACY {
                    prune(ps, q.i, q.j, yes, prior).map(|(s, _)| s)
                } else {
                    bayes_update(ps, q.i, q.j, yes, accuracy, prior)
                };
                match updated {
                    Ok(next) => *ps = next,
                    Err(TpoError::ContradictoryAnswer) => {
                        // Sampled trees can miss the real ordering; skip the
                        // answer rather than emptying the belief (counted in
                        // the report).
                        self.report.contradictions += 1;
                    }
                    Err(_) => unreachable!("prune/update only fail on contradictions"),
                }
                self.report.steps.push(StepRecord {
                    question: q,
                    answer_yes: yes,
                    orderings: ps.len(),
                    uncertainty: self.measure.uncertainty(ps),
                    distance_to_truth: self
                        .truth
                        .as_ref()
                        .map(|t| expected_distance_to_truth(ps, t)),
                });
            }
            Mode::Incr { wm, depth, .. } => {
                let res = if accuracy >= RELIABLE_ACCURACY {
                    wm.apply_answer_hard(q.i, q.j, yes)
                } else {
                    wm.apply_answer_noisy(q.i, q.j, yes, accuracy)
                };
                if res.is_err() {
                    self.report.contradictions += 1;
                }
                // Step records are taken at the current construction depth
                // (all incr can see without the full-depth build it exists
                // to avoid); finish() fixes up the last one. The cached
                // grouping re-sums surviving groups instead of rebuilding
                // a hash map per answer.
                let cur = wm.path_set_cached(*depth)?;
                self.report.steps.push(StepRecord {
                    question: q,
                    answer_yes: yes,
                    orderings: cur.len(),
                    uncertainty: self.measure.uncertainty(&cur),
                    distance_to_truth: self
                        .truth
                        .as_ref()
                        .map(|t| expected_distance_to_truth(&cur, t)),
                });
            }
        }
        Ok(())
    }
}

fn target_reached(config: &SessionConfig, uncertainty: f64) -> bool {
    config
        .uncertainty_target
        .map(|t| uncertainty <= t)
        .unwrap_or(false)
}

fn report_skeleton(
    config: &SessionConfig,
    ps: &PathSet,
    measure: &dyn UncertaintyMeasure,
    truth: Option<&RankList>,
    precision: &PrecisionReport,
) -> UrReport {
    UrReport {
        algorithm: config.algorithm.name(),
        measure: config.measure.name(),
        initial_orderings: ps.len(),
        initial_uncertainty: measure.uncertainty(ps),
        initial_distance: truth.map(|t| expected_distance_to_truth(ps, t)),
        steps: Vec::new(),
        contradictions: 0,
        resolved: ps.is_resolved(),
        final_topk: ps.most_probable().items.clone(),
        worlds_drawn: precision.worlds_drawn,
        achieved_epsilon: precision.epsilon,
        precision_delta: precision.delta,
        certain_early_stop: precision.reason == StopReason::CertainOrder,
        selection_time: Duration::ZERO,
        total_time: Duration::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::MeasureKind;
    use crate::session::UrSession;
    use ctk_crowd::{Crowd, CrowdSimulator, GroundTruth, NoisyWorker, PerfectWorker, VotePolicy};
    use ctk_prob::ScoreDist;
    use ctk_tpo::build::McConfig;

    fn table() -> UncertainTable {
        UncertainTable::new(
            (0..8)
                .map(|i| ScoreDist::uniform_centered(i as f64 * 0.1, 0.35).unwrap())
                .collect(),
        )
        .unwrap()
    }

    fn config(algorithm: Algorithm, budget: usize) -> SessionConfig {
        SessionConfig {
            k: 3,
            budget,
            measure: MeasureKind::WeightedEntropy,
            algorithm,
            engine: Engine::MonteCarlo(McConfig::fixed(3000, 7)),
            seed: 11,
            uncertainty_target: None,
        }
    }

    /// Drives the state machine by hand against a crowd, like a scheduler
    /// would.
    fn drive<C: Crowd>(cfg: SessionConfig, table: &UncertainTable, crowd: &mut C) -> UrReport {
        let truth_top = crowd_truth_top(crowd);
        let mut driver = SessionDriver::new(cfg, table, Some(&truth_top)).unwrap();
        loop {
            let batch = driver.next_batch(crowd.remaining()).unwrap();
            if batch.is_empty() {
                assert!(driver.is_done());
                break;
            }
            let mut answers = Vec::new();
            for q in &batch {
                match crowd.ask(*q) {
                    Some(a) => answers.push(a),
                    None => break,
                }
            }
            let status = driver.feed(&answers, crowd.answer_accuracy()).unwrap();
            if status == DriverStatus::Done {
                break;
            }
        }
        driver.finish().unwrap()
    }

    fn crowd_truth_top<C: Crowd>(_c: &C) -> RankList {
        // Test crowds below are built from GroundTruth::sample(table, 99).
        let truth = GroundTruth::sample(&table(), 99);
        truth.top_k(3)
    }

    #[test]
    fn driver_matches_session_run_for_all_algorithms() {
        for alg in [
            Algorithm::Random,
            Algorithm::Naive,
            Algorithm::TbOff,
            Algorithm::COff,
            Algorithm::T1On,
            Algorithm::Incr {
                questions_per_round: 3,
            },
        ] {
            let table = table();
            let truth = GroundTruth::sample(&table, 99);
            let top = truth.top_k(3);
            let mut crowd_a =
                CrowdSimulator::new(truth.clone(), PerfectWorker, VotePolicy::Single, 8)
                    .expect("valid vote policy");
            let mut crowd_b = CrowdSimulator::new(truth, PerfectWorker, VotePolicy::Single, 8)
                .expect("valid vote policy");
            let name = alg.name();
            let session = UrSession::new(config(alg.clone(), 8)).unwrap();
            let classic = session
                .run_with_truth(&table, &mut crowd_a, Some(&top))
                .unwrap();
            let driven = drive(config(alg, 8), &table, &mut crowd_b);
            assert!(
                classic.same_outcome(&driven),
                "{name}: driver diverged from Session::run"
            );
        }
    }

    #[test]
    fn driver_matches_session_with_noisy_crowd() {
        let table = table();
        let truth = GroundTruth::sample(&table, 99);
        let top = truth.top_k(3);
        let mut crowd_a = CrowdSimulator::new(
            truth.clone(),
            NoisyWorker::new(0.8, 5),
            VotePolicy::Single,
            10,
        )
        .expect("valid vote policy");
        let mut crowd_b =
            CrowdSimulator::new(truth, NoisyWorker::new(0.8, 5), VotePolicy::Single, 10)
                .expect("valid vote policy");
        let session = UrSession::new(config(Algorithm::T1On, 10)).unwrap();
        let classic = session
            .run_with_truth(&table, &mut crowd_a, Some(&top))
            .unwrap();
        let driven = drive(config(Algorithm::T1On, 10), &table, &mut crowd_b);
        assert!(classic.same_outcome(&driven));
    }

    #[test]
    fn offline_batch_is_emitted_whole_without_target() {
        let mut d = SessionDriver::new(config(Algorithm::TbOff, 6), &table(), None).unwrap();
        let batch = d.next_batch(6).unwrap();
        assert!(batch.len() > 1, "offline plan should batch: {batch:?}");
        // Until answers arrive, no further questions are emitted.
        assert!(d.next_batch(6).unwrap().is_empty());
        assert!(!d.is_done());
        assert_eq!(d.outstanding(), batch.len());
    }

    #[test]
    fn target_forces_single_question_batches() {
        let mut cfg = config(Algorithm::TbOff, 6);
        cfg.uncertainty_target = Some(0.0);
        let mut d = SessionDriver::new(cfg, &table(), None).unwrap();
        let batch = d.next_batch(6).unwrap();
        assert_eq!(batch.len(), 1, "target set: one question at a time");
    }

    #[test]
    fn partial_feed_ends_session() {
        let mut d = SessionDriver::new(config(Algorithm::TbOff, 6), &table(), None).unwrap();
        let batch = d.next_batch(6).unwrap();
        assert!(batch.len() >= 2);
        let truth = GroundTruth::sample(&table(), 99);
        let mut crowd = CrowdSimulator::new(truth, PerfectWorker, VotePolicy::Single, 1)
            .expect("valid vote policy");
        let answers: Vec<Answer> = vec![crowd.ask(batch[0]).unwrap()];
        let status = d.feed(&answers, 1.0).unwrap();
        assert_eq!(status, DriverStatus::Done);
        assert!(d.is_done());
        assert_eq!(d.questions_asked(), 1);
        let report = d.finish().unwrap();
        assert_eq!(report.steps.len(), 1);
    }

    #[test]
    fn flipped_answers_are_reoriented() {
        let mut d = SessionDriver::new(config(Algorithm::T1On, 4), &table(), None).unwrap();
        let batch = d.next_batch(4).unwrap();
        assert_eq!(batch.len(), 1);
        let q = batch[0];
        // Answer the flipped question with the opposite polarity: same
        // information, must be accepted and produce an identical step.
        let flipped = Answer {
            question: q.flipped(),
            yes: false,
        };
        d.feed(&[flipped], 1.0).unwrap();
        assert_eq!(d.report().steps[0].question, q);
        assert!(d.report().steps[0].answer_yes);
    }

    #[test]
    fn unsolicited_and_mismatched_answers_are_rejected() {
        let mut d = SessionDriver::new(config(Algorithm::T1On, 4), &table(), None).unwrap();
        let stray = Answer {
            question: Question::new(0, 1),
            yes: true,
        };
        assert!(matches!(d.feed(&[stray], 1.0), Err(CoreError::Driver(_))));
        let batch = d.next_batch(4).unwrap();
        let other = batch[0].i.wrapping_add(batch[0].j).wrapping_add(1) % 8;
        let wrong_pair = Answer {
            question: Question::new(other, (other + 1) % 8),
            yes: true,
        };
        if wrong_pair.question != batch[0] && wrong_pair.question != batch[0].flipped() {
            assert!(matches!(
                d.feed(&[wrong_pair], 1.0),
                Err(CoreError::Driver(_))
            ));
        }
    }

    #[test]
    fn feed_graded_applies_per_answer_accuracy() {
        let mut d = SessionDriver::new(config(Algorithm::TbOff, 6), &table(), None).unwrap();
        let batch = d.next_batch(6).unwrap();
        assert!(batch.len() >= 2);
        let truth = GroundTruth::sample(&table(), 99);
        let mut crowd = CrowdSimulator::new(truth, PerfectWorker, VotePolicy::Single, 10)
            .expect("valid vote policy");
        let a0 = crowd.ask(batch[0]).unwrap();
        let a1 = crowd.ask(batch[1]).unwrap();
        // First answer reliable (hard prune), second noisy (Bayes
        // reweight): the reweight must not shrink the ordering count.
        d.feed_graded(&[(a0, 1.0), (a1, 0.8)]).unwrap();
        let steps = &d.report().steps;
        assert_eq!(steps.len(), 2);
        assert!(steps[0].orderings <= d.report().initial_orderings);
        assert_eq!(
            steps[1].orderings, steps[0].orderings,
            "bayes update reweights instead of pruning"
        );
    }

    #[test]
    fn shared_pairwise_matrix_preserves_outcomes() {
        let table = table();
        let shared = Arc::new(PairwiseMatrix::compute(&table));
        for alg in [
            Algorithm::TbOff,
            Algorithm::Incr {
                questions_per_round: 3,
            },
        ] {
            let truth = GroundTruth::sample(&table, 99);
            let top = truth.top_k(3);
            let mut crowd_a =
                CrowdSimulator::new(truth.clone(), PerfectWorker, VotePolicy::Single, 8)
                    .expect("valid vote policy");
            let mut crowd_b = CrowdSimulator::new(truth, PerfectWorker, VotePolicy::Single, 8)
                .expect("valid vote policy");
            let fresh = drive(config(alg.clone(), 8), &table, &mut crowd_a);
            let mut driver = SessionDriver::new_with_pairwise(
                config(alg, 8),
                &table,
                Some(&top),
                Arc::clone(&shared),
            )
            .unwrap();
            loop {
                let batch = driver.next_batch(crowd_b.remaining()).unwrap();
                if batch.is_empty() {
                    break;
                }
                let answers: Vec<Answer> = batch.iter().filter_map(|q| crowd_b.ask(*q)).collect();
                if driver.feed(&answers, crowd_b.answer_accuracy()).unwrap() == DriverStatus::Done {
                    break;
                }
            }
            let shared_report = driver.finish().unwrap();
            assert!(fresh.same_outcome(&shared_report));
        }
    }

    #[test]
    fn mismatched_pairwise_matrix_rejected() {
        let table = table();
        let small = UncertainTable::new(vec![
            ScoreDist::uniform(0.0, 1.0).unwrap(),
            ScoreDist::uniform(0.5, 1.5).unwrap(),
        ])
        .unwrap();
        let wrong = Arc::new(PairwiseMatrix::compute(&small));
        assert!(matches!(
            SessionDriver::new_with_pairwise(config(Algorithm::T1On, 4), &table, None, wrong),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn drivers_are_send() {
        // The sharded service round loop moves `&mut SessionDriver`s to
        // scoped worker threads; keep that a compile-time guarantee.
        fn assert_send<T: Send>() {}
        assert_send::<SessionDriver>();
    }

    #[test]
    fn adaptive_certain_early_stop_ends_session_before_any_question() {
        // Disjoint staircase: the certain/possible bounds pin the whole
        // top-3 prefix, so every algorithm family ends with zero worlds
        // drawn and zero questions asked.
        let decided = UncertainTable::new(
            (0..6)
                .map(|i| ScoreDist::uniform_centered(i as f64, 0.2).unwrap())
                .collect(),
        )
        .unwrap();
        for alg in [
            Algorithm::T1On,
            Algorithm::TbOff,
            Algorithm::Incr {
                questions_per_round: 2,
            },
        ] {
            let name = alg.name();
            let mut cfg = config(alg, 8);
            cfg.engine = Engine::MonteCarlo(McConfig::adaptive(0.02, 0.05, 7));
            let mut d = SessionDriver::new(cfg, &decided, None).unwrap();
            assert!(d.next_batch(8).unwrap().is_empty(), "{name}");
            assert!(d.is_done(), "{name}");
            let r = d.finish().unwrap();
            assert!(r.certain_early_stop, "{name}");
            assert_eq!(r.worlds_drawn, 0, "{name}");
            assert_eq!(r.achieved_epsilon, Some(0.0), "{name}");
            assert!(r.resolved, "{name}");
            assert_eq!(r.final_topk, vec![5, 4, 3], "{name}");
            assert!(r.steps.is_empty(), "{name}");
        }
    }

    #[test]
    fn adaptive_sessions_report_their_achieved_precision() {
        // Overlapping table: sampling is needed, the report carries the
        // achieved half-width, and the session still answers questions.
        let truth = GroundTruth::sample(&table(), 99);
        for alg in [
            Algorithm::T1On,
            Algorithm::Incr {
                questions_per_round: 2,
            },
        ] {
            let name = alg.name();
            let mut cfg = config(alg, 6);
            cfg.engine = Engine::MonteCarlo(McConfig::adaptive(0.05, 0.05, 7));
            let mut crowd =
                CrowdSimulator::new(truth.clone(), PerfectWorker, VotePolicy::Single, 6)
                    .expect("valid vote policy");
            let r = drive(cfg, &table(), &mut crowd);
            assert!(r.worlds_drawn > 0, "{name}: overlap forces sampling");
            assert!(!r.certain_early_stop, "{name}");
            let achieved = r.achieved_epsilon.expect("adaptive builds report a width");
            assert!(achieved <= 0.05, "{name}: achieved {achieved}");
            assert_eq!(r.precision_delta, Some(0.05), "{name}");
            assert!(r.questions_asked() > 0, "{name}");
        }
    }

    #[test]
    fn fixed_worlds_reports_compat_budget() {
        let d = SessionDriver::new(config(Algorithm::T1On, 4), &table(), None).unwrap();
        let r = d.report();
        assert_eq!(r.worlds_drawn, 3000);
        assert_eq!(r.achieved_epsilon, None);
        assert_eq!(r.precision_delta, None);
        assert!(!r.certain_early_stop);
    }

    #[test]
    fn question_margin_reflects_pairwise_belief() {
        let d = SessionDriver::new(config(Algorithm::T1On, 4), &table(), None).unwrap();
        // Overlapping neighbors are genuinely uncertain; the extremes of
        // the table have disjoint supports and a near-settled ordering.
        let near = d.question_margin(&Question::new(1, 0));
        let far = d.question_margin(&Question::new(7, 0));
        assert!((0.0..=1.0).contains(&near));
        assert!(far > near, "distant pair must be wider: {far} vs {near}");
        assert!(far > 0.9, "disjoint supports are near-certain: {far}");
        // Orientation does not matter — the margin is about the pair.
        let flipped = d.question_margin(&Question::new(0, 1));
        assert!((near - flipped).abs() < 1e-12);
        // Out-of-range indices degrade to maximal uncertainty, no panic.
        assert_eq!(d.question_margin(&Question::new(0, 99)), 0.0);
    }

    #[test]
    fn zero_allowance_finishes_immediately() {
        let mut d = SessionDriver::new(config(Algorithm::T1On, 4), &table(), None).unwrap();
        assert!(d.next_batch(0).unwrap().is_empty());
        assert!(d.is_done());
        let report = d.finish().unwrap();
        assert_eq!(report.steps.len(), 0);
        assert_eq!(report.final_topk.len(), 3);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(SessionDriver::new(
            SessionConfig {
                k: 0,
                ..config(Algorithm::T1On, 4)
            },
            &table(),
            None
        )
        .is_err());
        assert!(SessionDriver::new(
            SessionConfig {
                k: 100,
                ..config(Algorithm::T1On, 4)
            },
            &table(),
            None
        )
        .is_err());
        assert!(SessionDriver::new(
            config(
                Algorithm::Incr {
                    questions_per_round: 0
                },
                4
            ),
            &table(),
            None
        )
        .is_err());
    }
}
