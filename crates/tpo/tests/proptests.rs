//! Property-based tests for the TPO: construction, pruning and Bayesian
//! updates must preserve distribution invariants for arbitrary tables and
//! answer sequences.

use ctk_prob::compare::PairwiseMatrix;
use ctk_prob::{ScoreDist, TopKBounds, UncertainTable};
use ctk_tpo::build::{
    build_exact, build_mc, build_mc_bounded, build_mc_reference, build_mc_with_threads,
    ExactConfig, McConfig,
};
use ctk_tpo::prune::prune;
use ctk_tpo::stats::{level_distributions, membership_probability, precedence_probability};
use ctk_tpo::tree::Tpo;
use ctk_tpo::update::bayes_update;
use ctk_tpo::worlds::WorldModel;
use ctk_tpo::{PrecisionReport, StopReason};
use proptest::prelude::*;

/// A random table of `n` overlapping uniform scores.
fn uniform_table(n: usize) -> impl Strategy<Value = UncertainTable> {
    proptest::collection::vec((0.0..1.0f64, 0.1..0.6f64), n..=n).prop_map(|params| {
        UncertainTable::new(
            params
                .into_iter()
                .map(|(c, w)| ScoreDist::uniform_centered(c, w).unwrap())
                .collect(),
        )
        .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn partial_selection_build_matches_full_sort_reference(
        (table, seed) in (uniform_table(7), any::<u64>()),
    ) {
        // PR 5 pin: the fast builder (compiled sampling + top-K partial
        // selection) is bit-identical to the full-sort WorldModel pipeline
        // at every depth, for the auto and the forced-sequential paths.
        for k in [1usize, 3, 7] {
            let cfg = McConfig::fixed(1200, seed);
            let reference = build_mc_reference(&table, k, 1200, seed).unwrap();
            for fast in [
                build_mc(&table, k, &cfg).unwrap(),
                build_mc_with_threads(&table, k, &cfg, 1).unwrap(),
                build_mc_with_threads(&table, k, &cfg, 3).unwrap(),
            ] {
                prop_assert_eq!(fast.len(), reference.len(), "k = {}", k);
                for (a, b) in fast.paths().iter().zip(reference.paths()) {
                    prop_assert_eq!(&a.items, &b.items, "k = {}", k);
                    prop_assert_eq!(a.prob.to_bits(), b.prob.to_bits(), "k = {}", k);
                }
            }
        }
    }

    #[test]
    fn mc_paths_are_valid_prefixes((table, seed) in (uniform_table(6), any::<u64>())) {
        let ps = build_mc(&table, 3, &McConfig::fixed(2000, seed)).unwrap();
        prop_assert!((ps.total_prob() - 1.0).abs() < 1e-9);
        for p in ps.paths() {
            prop_assert_eq!(p.items.len(), 3);
            let mut sorted = p.items.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), 3, "distinct tuples");
            prop_assert!(p.items.iter().all(|&t| (t as usize) < table.len()));
            prop_assert!(p.prob > 0.0);
        }
    }

    #[test]
    fn exact_children_sum_to_parents(table in uniform_table(5)) {
        let k = 3;
        let ps = build_exact(&table, k, &ExactConfig::default()).unwrap();
        // For every depth-2 prefix: mass equals sum of its depth-3 children
        // (within quadrature tolerance) — verified via the arena tree.
        let tree = Tpo::from_path_set(&ps);
        for idx in 0..tree.len() {
            let node = tree.node(idx);
            if !node.children.is_empty() {
                let child_mass: f64 = node.children.iter().map(|&c| tree.node(c).prob).sum();
                prop_assert!((child_mass - node.prob).abs() < 1e-9,
                    "node depth {} mass {} children {}", node.depth, node.prob, child_mass);
            }
        }
    }

    #[test]
    fn mc_close_to_exact((table, seed) in (uniform_table(4), any::<u64>())) {
        let exact = build_exact(&table, 2, &ExactConfig::default()).unwrap();
        let mc = build_mc(&table, 2, &McConfig::fixed(60_000, seed)).unwrap();
        for ep in exact.paths() {
            let mp = mc.paths().iter().find(|p| p.items == ep.items).map(|p| p.prob).unwrap_or(0.0);
            prop_assert!((ep.prob - mp).abs() < 0.02,
                "path {:?}: exact {} vs mc {}", ep.items, ep.prob, mp);
        }
    }

    #[test]
    fn pruning_conserves_and_shrinks((table, seed) in (uniform_table(6), any::<u64>())) {
        let ps = build_mc(&table, 3, &McConfig::fixed(3000, seed)).unwrap();
        // Take the most probable path's top pair as a consistent answer.
        let best = ps.most_probable().clone();
        let (i, j) = (best.items[0], best.items[1]);
        let (pruned, stats) = prune(&ps, i, j, true, 0.5).unwrap();
        prop_assert!(pruned.len() <= ps.len(), "consistent answers never grow the tree");
        prop_assert!((pruned.total_prob() - 1.0).abs() < 1e-9);
        prop_assert_eq!(stats.paths_before, ps.len());
        prop_assert_eq!(stats.paths_after, pruned.len());
        // Pruning preserves relative masses of surviving paths that
        // *determine* the pair (undetermined paths are scaled by the split
        // factor instead, so they are excluded here).
        for p in pruned.paths() {
            if !(p.items.contains(&i) || p.items.contains(&j)) {
                continue;
            }
            if let Some(orig) = ps.paths().iter().find(|o| o.items == p.items) {
                let ratio = p.prob / orig.prob;
                let expect = 1.0 / (1.0 - stats.mass_removed);
                prop_assert!((ratio - expect).abs() < 1e-6 || stats.mass_removed < 1e-12,
                    "restriction must scale determined paths uniformly");
            }
        }
    }

    #[test]
    fn bayes_update_preserves_support((table, seed, eta) in (uniform_table(5), any::<u64>(), 0.55..0.95f64)) {
        let ps = build_mc(&table, 3, &McConfig::fixed(2000, seed)).unwrap();
        let best = ps.most_probable().clone();
        let updated = bayes_update(&ps, best.items[0], best.items[1], true, eta, 0.5).unwrap();
        prop_assert_eq!(updated.len(), ps.len(), "noisy updates never eliminate paths");
        prop_assert!((updated.total_prob() - 1.0).abs() < 1e-9);
        // The agreeing path's mass must not decrease.
        let new_best = updated.paths().iter().find(|p| p.items == best.items).unwrap();
        prop_assert!(new_best.prob >= best.prob - 1e-12);
    }

    #[test]
    fn world_filtering_matches_path_pruning((table, seed) in (uniform_table(5), any::<u64>())) {
        // Hard-filtering worlds then grouping must equal pruning the grouped
        // paths, for pairs that appear in every path (here: the top pair of
        // the most probable path, answered consistently).
        let mut wm = WorldModel::sample(&table, 4000, seed).unwrap();
        let ps = wm.path_set(3).unwrap();
        let best = ps.most_probable().clone();
        let (i, j) = (best.items[0], best.items[1]);
        if wm.apply_answer_hard(i, j, true).is_ok() {
            let via_worlds = wm.path_set(3).unwrap();
            if let Ok((via_prune, _)) = prune(&ps, i, j, true, wm.pr_precedes(i, j)) {
                // Same support set.
                let a: Vec<&[u32]> = via_worlds.paths().iter().map(|p| p.items.as_slice()).collect();
                for p in via_prune.paths() {
                    // Paths where the pair was determined must survive in both.
                    if p.items.contains(&i) || p.items.contains(&j) {
                        prop_assert!(a.contains(&p.items.as_slice()),
                            "path {:?} missing from world-filtered set", p.items);
                    }
                }
            }
        }
    }

    #[test]
    fn cached_path_sets_are_bit_identical_to_rebuilds(
        (table, seed, answers) in (
            uniform_table(6),
            any::<u64>(),
            proptest::collection::vec((0u32..6, 0u32..6, any::<bool>(), 0.55..1.0f64), 0..12),
        )
    ) {
        // The incr access pattern: nondecreasing depths with interleaved
        // hard/noisy answers, then a shallow call forcing a cache rebuild.
        // Every cached result must be bit-identical to the single-shot
        // hash-map grouping over the same belief.
        let mut wm = WorldModel::sample(&table, 2500, seed).unwrap();
        let mut depth = 1usize;
        for (i, j, yes, eta) in answers {
            if i == j {
                continue;
            }
            let cached = wm.path_set_cached(depth).unwrap();
            let fresh = wm.path_set(depth).unwrap();
            prop_assert_eq!(cached.len(), fresh.len());
            for (a, b) in cached.paths().iter().zip(fresh.paths()) {
                prop_assert_eq!(&a.items, &b.items);
                prop_assert_eq!(a.prob.to_bits(), b.prob.to_bits(),
                    "depth {}: {} vs {}", depth, a.prob, b.prob);
            }
            if eta > 0.97 {
                let _ = wm.apply_answer_hard(i, j, yes);
            } else {
                wm.apply_answer_noisy(i, j, yes, eta).unwrap();
            }
            depth = (depth + 1).min(3);
        }
        let cached = wm.path_set_cached(1).unwrap();
        let fresh = wm.path_set(1).unwrap();
        for (a, b) in cached.paths().iter().zip(fresh.paths()) {
            prop_assert_eq!(&a.items, &b.items);
            prop_assert_eq!(a.prob.to_bits(), b.prob.to_bits());
        }
    }

    #[test]
    fn parallel_builders_match_sequential(
        (table, seed, threads) in (uniform_table(5), any::<u64>(), 2usize..9)
    ) {
        // Thread-count independence of the Monte-Carlo build: sampling,
        // ranking and grouping must be bit-identical however chunked.
        use ctk_tpo::build::build_mc_with_threads;
        let cfg = McConfig::fixed(3000, seed);
        let seq = build_mc_with_threads(&table, 3, &cfg, 1).unwrap();
        let par = build_mc_with_threads(&table, 3, &cfg, threads).unwrap();
        prop_assert_eq!(seq.len(), par.len());
        for (a, b) in seq.paths().iter().zip(par.paths()) {
            prop_assert_eq!(&a.items, &b.items);
            prop_assert_eq!(a.prob.to_bits(), b.prob.to_bits());
        }
    }

    #[test]
    fn noisy_total_weight_stays_bounded(
        (table, seed, rounds) in (uniform_table(4), any::<u64>(), 1usize..200)
    ) {
        // Satellite regression: the renormalized noisy update keeps the
        // total weight pinned at M no matter how long the session runs.
        let mut wm = WorldModel::sample(&table, 300, seed).unwrap();
        for r in 0..rounds {
            wm.apply_answer_noisy(0, 1, r % 2 == 0, 0.55).unwrap();
        }
        let m = wm.num_worlds() as f64;
        prop_assert!((wm.total_weight() - m).abs() < 1e-6 * m);
        // The underflow collapse manifested as pr_precedes falling back to
        // the 0.5 "no surviving weight" default and path_set failing; a
        // unanimous pair may legitimately sit at exactly 0 or 1.
        let p = wm.pr_precedes(0, 1);
        prop_assert!(p.is_finite() && (0.0..=1.0).contains(&p));
        prop_assert!((p + wm.pr_precedes(1, 0) - 1.0).abs() < 1e-9);
        prop_assert_eq!(wm.effective_worlds(), wm.num_worlds(),
            "noisy updates must never zero a world");
        prop_assert!(wm.path_set(2).is_ok());
    }

    #[test]
    fn level_distributions_are_distributions(table in uniform_table(6)) {
        let ps = build_mc(&table, 3, &McConfig::fixed(2000, 1)).unwrap();
        let levels = level_distributions(&ps);
        prop_assert_eq!(levels.len(), 3);
        let mut prev_len = 0usize;
        for l in &levels {
            prop_assert!((l.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(l.iter().all(|&p| p > 0.0));
            prop_assert!(l.len() >= prev_len, "levels refine");
            prev_len = l.len();
        }
    }

    #[test]
    fn bounds_bracket_the_converged_topk(
        (table, seed) in (uniform_table(6), any::<u64>()),
    ) {
        // PR 8 pin: the certain set sits inside, and the possible set
        // outside, every ordered top-K a converged reference build can
        // produce.
        let k = 3;
        let bounds = TopKBounds::from_matrix(&PairwiseMatrix::compute(&table), k).unwrap();
        let reference = build_mc_reference(&table, k, 8000, seed).unwrap();
        for path in reference.paths() {
            for &c in bounds.certain() {
                prop_assert!(
                    path.items.contains(&c),
                    "certain tuple t{} missing from reference path {:?}", c, path.items
                );
            }
            for &t in &path.items {
                prop_assert!(
                    bounds.is_possibly_in(t as usize),
                    "reference path member t{} outside the possible set", t
                );
            }
        }
    }

    #[test]
    fn adaptive_build_meets_its_requested_target(
        (table, seed) in (uniform_table(6), any::<u64>()),
    ) {
        let (epsilon, delta) = (0.05, 0.05);
        let (ps, report) =
            build_mc_bounded(&table, 3, &McConfig::adaptive(epsilon, delta, seed), None).unwrap();
        prop_assert!((ps.total_prob() - 1.0).abs() < 1e-9);
        prop_assert_eq!(report.delta, Some(delta));
        match report.reason {
            StopReason::CertainOrder => {
                // Bounds pinned the prefix: no sampling, exact answer.
                prop_assert_eq!(report.worlds_drawn, 0);
                prop_assert_eq!(report.epsilon, Some(0.0));
                prop_assert_eq!(ps.len(), 1);
            }
            StopReason::Converged => {
                // Never under-run the request; never exceed the cap.
                prop_assert!(report.epsilon.unwrap() <= epsilon);
                prop_assert!(report.worlds_drawn >= 1024);
                prop_assert!(report.worlds_drawn <= 1 << 19);
            }
            StopReason::WorldCap => prop_assert_eq!(report.worlds_drawn, 1 << 19),
            other => prop_assert!(false, "unexpected stop reason {:?}", other),
        }
    }

    #[test]
    fn adaptive_build_tracks_a_converged_reference(
        (table, seed) in (uniform_table(5), any::<u64>()),
    ) {
        // Every adaptive path probability must lie within the requested
        // epsilon of a converged reference (60k worlds), plus a small
        // allowance for the reference's own sampling noise.
        let epsilon = 0.08;
        let (ps, report) =
            build_mc_bounded(&table, 2, &McConfig::adaptive(epsilon, 0.05, seed), None).unwrap();
        let reference = build_mc_reference(&table, 2, 60_000, seed ^ 0xABCD).unwrap();
        for p in ps.paths() {
            let q = reference
                .paths()
                .iter()
                .find(|r| r.items == p.items)
                .map_or(0.0, |r| r.prob);
            prop_assert!(
                (p.prob - q).abs() <= epsilon + 0.03,
                "path {:?}: adaptive {:.4} vs reference {:.4} (reason {:?})",
                p.items, p.prob, q, report.reason
            );
        }
    }

    #[test]
    fn fixed_target_ignores_bounds_bit_for_bit(
        (table, seed) in (uniform_table(6), any::<u64>()),
    ) {
        // Compat mode: FixedWorlds(m) must replay the plain build_mc
        // pipeline bit for bit whether or not bounds are supplied.
        let cfg = McConfig::fixed(1500, seed);
        let plain = build_mc(&table, 3, &cfg).unwrap();
        let bounds = TopKBounds::from_matrix(&PairwiseMatrix::compute(&table), 3).unwrap();
        let (bounded, report) = build_mc_bounded(&table, 3, &cfg, Some(&bounds)).unwrap();
        prop_assert!(report.same_outcome(&PrecisionReport::fixed(1500)));
        prop_assert_eq!(plain.len(), bounded.len());
        for (a, b) in plain.paths().iter().zip(bounded.paths()) {
            prop_assert_eq!(&a.items, &b.items);
            prop_assert_eq!(a.prob.to_bits(), b.prob.to_bits());
        }
    }

    #[test]
    fn precedence_and_membership_consistent(table in uniform_table(5)) {
        let ps = build_mc(&table, 2, &McConfig::fixed(3000, 9)).unwrap();
        for i in 0..table.len() as u32 {
            let m = membership_probability(&ps, i);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&m));
            for j in 0..table.len() as u32 {
                if i != j {
                    let p = precedence_probability(&ps, i, j, 0.5);
                    let q = precedence_probability(&ps, j, i, 0.5);
                    prop_assert!((p + q - 1.0).abs() < 1e-9);
                }
            }
        }
    }
}
