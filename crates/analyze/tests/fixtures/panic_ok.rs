//! Negative fixture: errors are returned, asserts are sanctioned, and
//! test code may unwrap freely.

pub fn checked(x: Option<u32>) -> Result<u32, String> {
    match x {
        Some(v) => Ok(v),
        None => Err("missing".to_string()),
    }
}

pub fn asserted(x: u32) -> u32 {
    assert!(x < 100, "x out of range");
    debug_assert_ne!(x, 13);
    x + 1
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
