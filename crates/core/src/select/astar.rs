//! `A*-off` and `A*-on` (§III-A/B): optimal question-set search.
//!
//! `A*-off` finds the question set of size `B` minimizing the expected
//! residual uncertainty (Theorem 3.2: offline-optimal). The state space is
//! the lattice of question subsets of `Q_K`, explored best-first.
//!
//! * For entropy-family measures, one binary answer removes at most
//!   `ln 2` nats in expectation, so
//!   `f(S) = max(0, R(S) − (B − |S|) · ln 2)` is an admissible *and
//!   consistent* heuristic — the first complete set popped is optimal.
//! * For distance-based measures no sound per-question bound is known, so
//!   the search degrades to exhaustive enumeration of all
//!   `C(|Q_K|, B)` sets (feasible only on the small instances the paper
//!   itself evaluates A* on — its Fig. 1(b) shows `A*` costs up to `1e6`
//!   seconds, which is precisely why the heuristics exist).
//!
//! An optional expansion cap bounds the work; when it trips, the best
//! complete set found so far is returned and the result is flagged
//! non-optimal.

use super::{relevant_questions, OfflineSelector, OnlineSelector};
use crate::residual::{expected_residual_set, ResidualCtx};
use ctk_crowd::Question;
use ctk_tpo::PathSet;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Outcome of an `A*-off` search.
#[derive(Debug, Clone)]
pub struct AStarOutcome {
    /// The selected questions.
    pub questions: Vec<Question>,
    /// Whether optimality is guaranteed (no cap tripped).
    pub optimal: bool,
    /// Number of node expansions / set evaluations performed.
    pub expansions: usize,
}

/// Best-first search over question sets.
#[derive(Debug, Clone, Default)]
pub struct AStarOff {
    /// Optional cap on node expansions (None = run to optimality).
    pub max_expansions: Option<usize>,
}

impl AStarOff {
    /// Unbounded (provably optimal) search.
    pub fn new() -> Self {
        Self::default()
    }

    /// Capped search: returns the best set found within the budget of
    /// expansions, flagged as possibly sub-optimal.
    pub fn with_cap(max_expansions: usize) -> Self {
        Self {
            max_expansions: Some(max_expansions),
        }
    }

    /// Runs the search and reports the outcome.
    pub fn search(&self, ps: &PathSet, budget: usize, ctx: &ResidualCtx<'_>) -> AStarOutcome {
        let pool = relevant_questions(ps, ctx);
        if pool.is_empty() || budget == 0 {
            return AStarOutcome {
                questions: Vec::new(),
                optimal: true,
                expansions: 0,
            };
        }
        if pool.len() <= budget {
            // Asking every relevant question dominates any subset.
            return AStarOutcome {
                questions: pool,
                optimal: true,
                expansions: 0,
            };
        }
        match ctx.measure.per_question_reduction_bound() {
            Some(bound) => self.best_first(ps, &pool, budget, ctx, bound),
            None => self.exhaustive(ps, &pool, budget, ctx),
        }
    }

    fn best_first(
        &self,
        ps: &PathSet,
        pool: &[Question],
        budget: usize,
        ctx: &ResidualCtx<'_>,
        bound: f64,
    ) -> AStarOutcome {
        let root_g = ctx.measure.uncertainty(ps);
        let mut heap: BinaryHeap<HeapNode> = BinaryHeap::new();
        heap.push(HeapNode {
            f: (root_g - budget as f64 * bound).max(0.0),
            set: Vec::new(),
        });
        let mut expansions = 0usize;
        let mut best_complete: Option<(f64, Vec<u16>)> = None;
        let mut scratch: Vec<Question> = Vec::with_capacity(budget);

        while let Some(node) = heap.pop() {
            if node.set.len() == budget {
                return AStarOutcome {
                    questions: to_questions(&node.set, pool),
                    optimal: true,
                    expansions,
                };
            }
            if let Some(cap) = self.max_expansions {
                if expansions >= cap {
                    break;
                }
            }
            expansions += 1;
            let start = node.set.last().map(|&x| x as usize + 1).unwrap_or(0);
            let slots_left = budget - node.set.len();
            // Leave enough higher indices to complete the set.
            let last_start = pool.len() - slots_left;
            for qi in start..=last_start {
                let mut set = node.set.clone();
                set.push(qi as u16);
                scratch.clear();
                scratch.extend(set.iter().map(|&x| pool[x as usize]));
                let g = expected_residual_set(ps, &scratch, ctx);
                let remaining = budget - set.len();
                let f = (g - remaining as f64 * bound).max(0.0);
                if set.len() == budget {
                    let better = best_complete
                        .as_ref()
                        .map(|(bg, _)| g < *bg)
                        .unwrap_or(true);
                    if better {
                        best_complete = Some((g, set.clone()));
                    }
                }
                heap.push(HeapNode { f, set });
            }
        }
        // Cap tripped (or heap exhausted, which cannot happen with a
        // correct expansion): fall back to the best complete set seen.
        let (questions, optimal) = match best_complete {
            Some((_, set)) => (to_questions(&set, pool), false),
            None => (pool[..budget].to_vec(), false),
        };
        AStarOutcome {
            questions,
            optimal,
            expansions,
        }
    }

    fn exhaustive(
        &self,
        ps: &PathSet,
        pool: &[Question],
        budget: usize,
        ctx: &ResidualCtx<'_>,
    ) -> AStarOutcome {
        let mut best: Option<(f64, Vec<u16>)> = None;
        let mut evals = 0usize;
        let mut capped = false;
        let mut stack: Vec<u16> = Vec::with_capacity(budget);
        let mut scratch: Vec<Question> = Vec::with_capacity(budget);

        #[allow(clippy::too_many_arguments)]
        fn rec(
            start: usize,
            stack: &mut Vec<u16>,
            budget: usize,
            pool: &[Question],
            ps: &PathSet,
            ctx: &ResidualCtx<'_>,
            best: &mut Option<(f64, Vec<u16>)>,
            evals: &mut usize,
            cap: Option<usize>,
            capped: &mut bool,
            scratch: &mut Vec<Question>,
        ) {
            if *capped {
                return;
            }
            if stack.len() == budget {
                if let Some(c) = cap {
                    if *evals >= c {
                        *capped = true;
                        return;
                    }
                }
                *evals += 1;
                scratch.clear();
                scratch.extend(stack.iter().map(|&x| pool[x as usize]));
                let g = expected_residual_set(ps, scratch, ctx);
                let better = best.as_ref().map(|(bg, _)| g < *bg).unwrap_or(true);
                if better {
                    *best = Some((g, stack.clone()));
                }
                return;
            }
            let slots_left = budget - stack.len();
            for qi in start..=(pool.len() - slots_left) {
                stack.push(qi as u16);
                rec(
                    qi + 1,
                    stack,
                    budget,
                    pool,
                    ps,
                    ctx,
                    best,
                    evals,
                    cap,
                    capped,
                    scratch,
                );
                stack.pop();
                // Early exit: nothing beats zero residual.
                if let Some((bg, _)) = best {
                    if *bg <= 1e-15 {
                        return;
                    }
                }
                if *capped {
                    return;
                }
            }
        }

        rec(
            0,
            &mut stack,
            budget,
            pool,
            ps,
            ctx,
            &mut best,
            &mut evals,
            self.max_expansions,
            &mut capped,
            &mut scratch,
        );
        let (g_questions, had_best) = match best {
            Some((_, set)) => (to_questions(&set, pool), true),
            None => (pool[..budget.min(pool.len())].to_vec(), false),
        };
        AStarOutcome {
            questions: g_questions,
            optimal: had_best && !capped,
            expansions: evals,
        }
    }
}

impl OfflineSelector for AStarOff {
    fn name(&self) -> &'static str {
        "A*-off"
    }

    fn select(&mut self, ps: &PathSet, budget: usize, ctx: &ResidualCtx<'_>) -> Vec<Question> {
        self.search(ps, budget, ctx).questions
    }
}

/// `A*-on`: re-runs `A*-off` on the pruned tree after every answer and
/// asks the first question of the refreshed plan.
#[derive(Debug, Clone, Default)]
pub struct AStarOn {
    /// Planning horizon per round (`0` = the full remaining budget, as in
    /// the paper; small values trade optimality for speed).
    pub lookahead: usize,
    /// Expansion cap forwarded to the inner `A*-off`.
    pub max_expansions: Option<usize>,
}

impl OnlineSelector for AStarOn {
    fn name(&self) -> &'static str {
        "A*-on"
    }

    fn next_question(
        &mut self,
        ps: &PathSet,
        remaining: usize,
        ctx: &ResidualCtx<'_>,
    ) -> Option<Question> {
        if ps.is_resolved() || remaining == 0 {
            return None;
        }
        let horizon = if self.lookahead == 0 {
            remaining
        } else {
            self.lookahead.min(remaining)
        };
        let inner = AStarOff {
            max_expansions: self.max_expansions,
        };
        inner.search(ps, horizon, ctx).questions.into_iter().next()
    }
}

fn to_questions(set: &[u16], pool: &[Question]) -> Vec<Question> {
    set.iter().map(|&x| pool[x as usize]).collect()
}

/// Heap node ordered by ascending `f` (BinaryHeap is a max-heap, so the
/// comparison is reversed); ties prefer deeper sets (closer to complete).
#[derive(Debug, Clone)]
struct HeapNode {
    f: f64,
    set: Vec<u16>,
}

impl PartialEq for HeapNode {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapNode {}
impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on f (min-heap), then prefer longer sets, then compare
        // sets for total order determinism.
        other
            .f
            .total_cmp(&self.f)
            .then_with(|| self.set.len().cmp(&other.set.len()))
            .then_with(|| other.set.cmp(&self.set))
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{assert_valid_selection, fixture, residual_of};
    use super::*;
    use crate::measures::{Entropy, MpoDistance, WeightedEntropy};
    use crate::select::{COff, TbOff};

    #[test]
    fn astar_matches_exhaustive_for_entropy() {
        let (_, pw, ps) = fixture();
        let m = Entropy;
        let ctx = ResidualCtx {
            measure: &m,
            pairwise: &pw,
        };
        for budget in [1usize, 2, 3] {
            let fast = AStarOff::new().search(&ps, budget, &ctx);
            assert!(fast.optimal);
            // Exhaustive reference (force the no-bound path by evaluating
            // all sets by hand).
            let pool = relevant_questions(&ps, &ctx);
            let mut best = f64::INFINITY;
            enumerate_sets(pool.len(), budget, &mut |set| {
                let qs: Vec<Question> = set.iter().map(|&x| pool[x]).collect();
                let r = crate::residual::expected_residual_set(&ps, &qs, &ctx);
                if r < best {
                    best = r;
                }
            });
            let got = residual_of(&ps, &fast.questions, &m, &pw);
            assert!(
                (got - best).abs() < 1e-9,
                "B={budget}: A* {got} vs exhaustive {best}"
            );
        }
    }

    fn enumerate_sets(n: usize, b: usize, f: &mut impl FnMut(&[usize])) {
        fn rec(
            start: usize,
            n: usize,
            b: usize,
            cur: &mut Vec<usize>,
            f: &mut impl FnMut(&[usize]),
        ) {
            if cur.len() == b {
                f(cur);
                return;
            }
            for i in start..n {
                cur.push(i);
                rec(i + 1, n, b, cur, f);
                cur.pop();
            }
        }
        rec(0, n, b, &mut Vec::new(), f);
    }

    #[test]
    fn astar_never_loses_to_heuristics() {
        let (_, pw, ps) = fixture();
        let m = WeightedEntropy::default();
        let ctx = ResidualCtx {
            measure: &m,
            pairwise: &pw,
        };
        let budget = 3;
        let astar = AStarOff::new().search(&ps, budget, &ctx);
        let ra = residual_of(&ps, &astar.questions, &m, &pw);
        let rt = residual_of(&ps, &TbOff.select(&ps, budget, &ctx), &m, &pw);
        let rc = residual_of(&ps, &COff.select(&ps, budget, &ctx), &m, &pw);
        assert!(ra <= rt + 1e-9, "A* {ra} vs TB-off {rt}");
        assert!(ra <= rc + 1e-9, "A* {ra} vs C-off {rc}");
        assert_valid_selection(&astar.questions, &ps, budget);
    }

    #[test]
    fn distance_measures_use_exhaustive_search() {
        let (_, pw, ps) = fixture();
        let m = MpoDistance::default();
        let ctx = ResidualCtx {
            measure: &m,
            pairwise: &pw,
        };
        let out = AStarOff::new().search(&ps, 2, &ctx);
        assert!(out.optimal);
        assert_eq!(out.questions.len(), 2);
        // Must (weakly) beat the greedy strategies under the same measure.
        let rt = residual_of(&ps, &TbOff.select(&ps, 2, &ctx), &m, &pw);
        let ra = residual_of(&ps, &out.questions, &m, &pw);
        assert!(ra <= rt + 1e-9, "exhaustive {ra} vs TB-off {rt}");
    }

    #[test]
    fn cap_degrades_gracefully() {
        let (_, pw, ps) = fixture();
        let ctx = ResidualCtx {
            measure: &Entropy,
            pairwise: &pw,
        };
        let out = AStarOff::with_cap(1).search(&ps, 3, &ctx);
        assert_eq!(out.questions.len(), 3, "still returns a full set");
        // With such a tiny cap, optimality cannot be guaranteed (though the
        // answer may coincidentally be optimal).
        assert!(!out.optimal);
    }

    #[test]
    fn small_pool_short_circuits() {
        let (_, pw, _) = fixture();
        let ctx = ResidualCtx {
            measure: &Entropy,
            pairwise: &pw,
        };
        // Two-ordering set: exactly one relevant question.
        let tiny =
            ctk_tpo::PathSet::from_weighted(2, vec![(vec![0, 1], 0.6), (vec![1, 0], 0.4)]).unwrap();
        let out = AStarOff::new().search(&tiny, 5, &ctx);
        assert!(out.optimal);
        assert_eq!(out.expansions, 0, "pool <= budget short-circuit");
        assert_eq!(out.questions, vec![Question::new(0, 1)]);
    }

    #[test]
    fn astar_on_plans_and_replans() {
        let (_, pw, ps) = fixture();
        let ctx = ResidualCtx {
            measure: &Entropy,
            pairwise: &pw,
        };
        let mut on = AStarOn {
            lookahead: 2,
            max_expansions: None,
        };
        let q = on.next_question(&ps, 5, &ctx).unwrap();
        // The first planned question must match A*-off's first pick with
        // the same horizon.
        let plan = AStarOff::new().search(&ps, 2, &ctx);
        assert_eq!(q, plan.questions[0]);
        assert_eq!(on.name(), "A*-on");
        // Resolved set: no more questions.
        let resolved = ctk_tpo::PathSet::from_weighted(2, vec![(vec![0, 1], 1.0)]).unwrap();
        assert!(on.next_question(&resolved, 5, &ctx).is_none());
    }
}
