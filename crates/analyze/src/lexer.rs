//! A lightweight Rust lexer: enough syntax awareness to scan library
//! sources for policy violations without a real parser.
//!
//! The environment has no registry access, so `syn` is not an option; the
//! rules in [`crate::rules`] only need three things a plain `grep` cannot
//! give them:
//!
//! 1. **Sanitized text** — the source with every comment, string literal,
//!    and char literal blanked to spaces (byte-for-byte same length, so
//!    offsets and line numbers survive). Doc examples full of `unwrap()`
//!    and prose mentioning `HashMap` stop producing findings.
//! 2. **Test regions** — the byte ranges of items under `#[cfg(test)]` /
//!    `#[test]`, where the panic/determinism/float policies do not apply.
//! 3. **Allow directives** — parsed `// ctk-allow(<rule>): <reason>`
//!    comments, the per-site escape hatch every rule honours.

use std::fmt;

/// One parsed `ctk-allow` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line the directive comment sits on.
    pub line: usize,
    /// Rule ids the directive suppresses (comma-separated in the source).
    pub rules: Vec<String>,
    /// The written justification (required).
    pub reason: String,
    /// Parse error, if the directive is malformed.
    pub malformed: Option<String>,
}

/// A source file after lexing (see module docs).
pub struct SourceFile {
    /// Sanitized source text; same length as the input.
    pub code: String,
    /// Byte offset where each 0-based line starts.
    line_starts: Vec<usize>,
    /// Per 0-based line: is it inside a `#[cfg(test)]`/`#[test]` item?
    test_lines: Vec<bool>,
    /// Every `ctk-allow` directive found in comments.
    pub allows: Vec<Allow>,
}

impl fmt::Debug for SourceFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SourceFile")
            .field("lines", &self.line_starts.len())
            .field("allows", &self.allows.len())
            .finish()
    }
}

impl SourceFile {
    /// Lexes one file.
    pub fn parse(source: &str) -> Self {
        let (code, allows) = sanitize(source);
        let line_starts = line_starts(&code);
        let test_lines = mark_test_lines(&code, &line_starts);
        Self {
            code,
            line_starts,
            test_lines,
            allows,
        }
    }

    /// 1-based line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i, // insertion point = 1 + (line index containing it) - 1
        }
    }

    /// Is 1-based `line` inside a test-only region?
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// Number of lines.
    pub fn num_lines(&self) -> usize {
        self.line_starts.len()
    }

    /// The sanitized text of 1-based `line`.
    pub fn code_line(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map(|&e| e.saturating_sub(1)) // strip the newline
            .unwrap_or(self.code.len());
        &self.code[start..end.max(start)]
    }
}

fn line_starts(code: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in code.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    if starts.last() == Some(&code.len()) && !code.is_empty() {
        starts.pop();
    }
    starts
}

/// Replaces comments, string literals, and char literals with spaces
/// (newlines preserved), collecting `ctk-allow` directives on the way.
fn sanitize(source: &str) -> (String, Vec<Allow>) {
    let bytes = source.as_bytes();
    let mut out = bytes.to_vec();
    let mut allows = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Blanks bytes [from, to) except newlines.
    fn blank(out: &mut [u8], from: usize, to: usize) {
        for b in &mut out[from..to] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let text = &source[start..i];
                // Only plain `//` comments can carry directives; doc
                // comments (`///`, `//!`) are prose and may legitimately
                // *mention* the grammar without invoking it.
                let body = text.trim_start_matches('/');
                let is_doc = text.starts_with("///") || text.starts_with("//!");
                if !is_doc && body.trim_start().starts_with("ctk-allow") {
                    if let Some(allow) = parse_allow(text, line) {
                        allows.push(allow);
                    }
                }
                blank(&mut out, start, i);
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                blank(&mut out, start, i.min(bytes.len()));
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let start = i;
                // Skip the `r`/`br` prefix.
                i += if bytes[i] == b'b' { 2 } else { 1 };
                let mut hashes = 0usize;
                while i < bytes.len() && bytes[i] == b'#' {
                    hashes += 1;
                    i += 1;
                }
                i += 1; // opening quote
                let closer = {
                    let mut c = vec![b'"'];
                    c.extend(std::iter::repeat_n(b'#', hashes));
                    c
                };
                while i < bytes.len() {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i..].starts_with(&closer) {
                        i += closer.len();
                        break;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i.min(bytes.len()));
            }
            b'\'' => {
                // Char literal vs lifetime. `'\...'` and `'x'` are
                // literals; `'ident` (no closing quote in reach) is a
                // lifetime.
                if i + 1 < bytes.len() && bytes[i + 1] == b'\\' {
                    let start = i;
                    i += 2;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        i += 1;
                    }
                    i = (i + 1).min(bytes.len());
                    blank(&mut out, start, i);
                } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                    blank(&mut out, i, i + 3);
                    i += 3;
                } else {
                    i += 1; // lifetime tick: leave the identifier visible
                }
            }
            _ => i += 1,
        }
    }
    // The sanitizer only writes ASCII spaces over existing bytes, so the
    // result is valid UTF-8 whenever the input was (multi-byte chars are
    // either left intact or fully blanked byte-by-byte inside
    // comments/strings, which keeps byte count — and blanking every byte
    // of a multi-byte char yields plain spaces).
    let code = String::from_utf8_lossy(&out).into_owned();
    (code, allows)
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // r"..." | r#"..."# | br"..." | br#"..."# — and not part of an
    // identifier like `number` or `for`.
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return false;
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if j >= bytes.len() || bytes[j] != b'r' {
            return false;
        }
    }
    if bytes[j] != b'r' {
        return false;
    }
    j += 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

/// Is `b` an identifier byte (`[A-Za-z0-9_]`)?
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Parses a `ctk-allow(<rule>[, <rule>...]): <reason>` directive out of a
/// line-comment's text, if present.
fn parse_allow(comment: &str, line: usize) -> Option<Allow> {
    let idx = comment.find("ctk-allow")?;
    let rest = &comment[idx + "ctk-allow".len()..];
    let malformed = |msg: &str| {
        Some(Allow {
            line,
            rules: Vec::new(),
            reason: String::new(),
            malformed: Some(msg.to_string()),
        })
    };
    let Some(rest) = rest.strip_prefix('(') else {
        return malformed("expected `ctk-allow(<rule>): <reason>`");
    };
    let Some(close) = rest.find(')') else {
        return malformed("unclosed `(` in ctk-allow directive");
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return malformed("ctk-allow names no rule");
    }
    let after = rest[close + 1..].trim_start();
    let Some(reason) = after.strip_prefix(':') else {
        return malformed("ctk-allow requires `: <reason>` after the rule list");
    };
    let reason = reason.trim().to_string();
    if reason.is_empty() {
        return malformed("ctk-allow requires a non-empty reason");
    }
    Some(Allow {
        line,
        rules,
        reason,
        malformed: None,
    })
}

/// Marks every line belonging to a `#[cfg(test)]` / `#[test]` item body.
fn mark_test_lines(code: &str, line_starts: &[usize]) -> Vec<bool> {
    let bytes = code.as_bytes();
    let mut test = vec![false; line_starts.len()];
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'#' {
            i += 1;
            continue;
        }
        let attr_start = i;
        let Some((attr_text, attr_end)) = read_attribute(code, i) else {
            i += 1;
            continue;
        };
        i = attr_end;
        if !is_test_attribute(&attr_text) {
            continue;
        }
        // Scan past any further attributes to the item body.
        let mut j = attr_end;
        loop {
            j = skip_ws(code, j);
            if j < bytes.len() && bytes[j] == b'#' {
                match read_attribute(code, j) {
                    Some((_, e)) => j = e,
                    None => break,
                }
            } else {
                break;
            }
        }
        // Find the item's opening `{` (or terminating `;`) at top level.
        let mut depth = 0i32;
        let mut body_open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => {
                    body_open = Some(j);
                    break;
                }
                b';' if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else {
            // `mod tests;` style or end of file: mark just the item line.
            mark_range(&mut test, line_starts, attr_start, j.min(bytes.len()));
            i = j;
            continue;
        };
        // Matching close brace.
        let mut depth = 0i32;
        let mut k = open;
        while k < bytes.len() {
            match bytes[k] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        mark_range(&mut test, line_starts, attr_start, k.min(bytes.len()));
        i = attr_end;
    }
    test
}

fn mark_range(test: &mut [bool], line_starts: &[usize], from: usize, to: usize) {
    let first = match line_starts.binary_search(&from) {
        Ok(i) => i,
        Err(i) => i.saturating_sub(1),
    };
    let last = match line_starts.binary_search(&to) {
        Ok(i) => i,
        Err(i) => i.saturating_sub(1),
    };
    for t in test.iter_mut().take(last + 1).skip(first) {
        *t = true;
    }
}

/// Reads an attribute starting at `#`; returns its inner text (spaces
/// stripped) and the byte offset one past the closing `]`.
fn read_attribute(code: &str, at: usize) -> Option<(String, usize)> {
    let bytes = code.as_bytes();
    let mut i = skip_ws(code, at + 1);
    if i >= bytes.len() || bytes[i] != b'[' {
        return None;
    }
    let open = i;
    let mut depth = 0i32;
    while i < bytes.len() {
        match bytes[i] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    let inner: String = code[open + 1..i]
                        .chars()
                        .filter(|c| !c.is_whitespace())
                        .collect();
                    return Some((inner, i + 1));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Does a (whitespace-stripped) attribute body gate the item to tests?
fn is_test_attribute(attr: &str) -> bool {
    if attr == "test" {
        return true;
    }
    if !attr.starts_with("cfg(") {
        return false;
    }
    // `cfg(test)`, `cfg(all(test, ...))`, `cfg(any(test, ...))` — but not
    // `cfg(not(test))`, which gates *library* code.
    contains_token(attr, "test") && !attr.contains("not(test")
}

/// Whole-token containment check.
pub fn contains_token(haystack: &str, token: &str) -> bool {
    find_tokens(haystack, token).next().is_some()
}

/// Iterator over byte offsets where `token` occurs with identifier
/// boundaries on both sides (when the token edge is an identifier byte).
pub fn find_tokens<'a>(haystack: &'a str, token: &'a str) -> impl Iterator<Item = usize> + 'a {
    let h = haystack.as_bytes();
    let t = token.as_bytes();
    let check_left = t.first().map(|&b| is_ident_byte(b)).unwrap_or(false);
    let check_right = t.last().map(|&b| is_ident_byte(b)).unwrap_or(false);
    let mut from = 0usize;
    std::iter::from_fn(move || {
        while from + t.len() <= h.len() {
            match haystack[from..].find(token) {
                None => return None,
                Some(rel) => {
                    let at = from + rel;
                    from = at + 1;
                    let left_ok = !check_left || at == 0 || !is_ident_byte(h[at - 1]);
                    let right_ok =
                        !check_right || at + t.len() >= h.len() || !is_ident_byte(h[at + t.len()]);
                    if left_ok && right_ok {
                        return Some(at);
                    }
                }
            }
        }
        None
    })
}

/// First index >= `i` holding a non-whitespace byte.
pub fn skip_ws(code: &str, mut i: usize) -> usize {
    let b = code.as_bytes();
    while i < b.len() && b[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Given `i` at an opening `(`, returns the index one past the matching
/// `)`.
pub fn skip_balanced(code: &str, i: usize) -> Option<usize> {
    let b = code.as_bytes();
    if i >= b.len() || b[i] != b'(' {
        return None;
    }
    let mut depth = 0i32;
    let mut j = i;
    while j < b.len() {
        match b[j] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(j + 1);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = \"unwrap()\"; // .unwrap() in comment\nlet y = 1;\n";
        let f = SourceFile::parse(src);
        assert!(!f.code.contains("unwrap"));
        assert!(f.code.contains("let y = 1;"));
        assert_eq!(f.code.len(), src.len());
    }

    #[test]
    fn raw_strings_and_chars() {
        let src = "let s = r#\"panic!(\"x\")\"#; let c = 'a'; let l: &'static str = \"todo!\";";
        let f = SourceFile::parse(src);
        assert!(!f.code.contains("panic!"));
        assert!(!f.code.contains("todo!"));
        assert!(f.code.contains("&'static str"));
    }

    #[test]
    fn doc_examples_do_not_leak() {
        let src = "//! let answer = crowd.ask(q).unwrap();\npub fn f() {}\n";
        let f = SourceFile::parse(src);
        assert!(!f.code.contains("unwrap"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "pub fn lib_code() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\npub fn more() {}\n";
        let f = SourceFile::parse(src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_not_test_is_library_code() {
        let src = "#[cfg(not(test))]\nfn shipped() { x.unwrap(); }\n";
        let f = SourceFile::parse(src);
        assert!(!f.is_test_line(2));
    }

    #[test]
    fn test_attr_functions_are_marked() {
        let src = "fn lib() {}\n#[test]\nfn check() {\n    boom();\n}\n";
        let f = SourceFile::parse(src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
    }

    #[test]
    fn allow_directives_parse() {
        let src = "x.unwrap(); // ctk-allow(panic-unwrap): invariant: x checked above\n";
        let f = SourceFile::parse(src);
        assert_eq!(f.allows.len(), 1);
        let a = &f.allows[0];
        assert_eq!(a.line, 1);
        assert_eq!(a.rules, vec!["panic-unwrap".to_string()]);
        assert!(a.reason.contains("invariant"));
        assert!(a.malformed.is_none());
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let f = SourceFile::parse("// ctk-allow(panic-unwrap)\nx.unwrap();\n");
        assert_eq!(f.allows.len(), 1);
        assert!(f.allows[0].malformed.is_some());
    }

    #[test]
    fn multi_rule_allow() {
        let f = SourceFile::parse("// ctk-allow(a-rule, b-rule): one reason for both\n");
        assert_eq!(f.allows[0].rules.len(), 2);
    }

    #[test]
    fn token_boundaries() {
        assert!(contains_token("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_token("MyHashMapLike", "HashMap"));
        assert!(contains_token("thread::spawn(f)", "thread::spawn"));
        assert!(!contains_token("unwrap_or(0)", "unwrap"));
    }

    #[test]
    fn balanced_paren_skipping() {
        let s = "partial_cmp(&(a + b)).unwrap()";
        let open = s.find('(').unwrap();
        let end = skip_balanced(s, open).unwrap();
        assert_eq!(&s[end..], ".unwrap()");
    }
}
