//! Exact Kemeny/ORA solver: Held-Karp style dynamic programming over
//! subsets. `dp[S]` is the minimum cost of arranging the candidate set `S`
//! as a prefix of the ordering; transitioning appends candidate `v ∉ S` at
//! the next position, paying the weight of all still-unplaced candidates
//! preferred above `v`.
//!
//! Complexity `O(2^n · n^2)` time, `O(2^n)` space — exact up to `n ≈ 20`,
//! although the default threshold in [`super::AggregateConfig`] is 14 to
//! keep worst-case latency in interactive use low.

use crate::tournament::Tournament;

/// Computes the exact minimum-cost ordering (as candidate indices).
///
/// # Panics
/// Panics if the tournament has more than 24 candidates (the DP table would
/// exceed memory) — callers should route big instances to the heuristics.
pub fn exact_kemeny(t: &Tournament) -> Vec<usize> {
    let n = t.len();
    assert!(n <= 24, "exact Kemeny DP limited to 24 candidates, got {n}");
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0];
    }
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let size = 1usize << n;
    let mut dp = vec![f64::INFINITY; size];
    let mut parent = vec![u8::MAX; size];
    dp[0] = 0.0;

    // cost_add(v, S) = sum over u not in S and u != v of w(u, v):
    // placing v next violates every remaining candidate's preference to be
    // above v. Precompute column sums for the rest-of-world term.
    let colsum: Vec<f64> = (0..n)
        .map(|v| (0..n).filter(|&u| u != v).map(|u| t.weight(u, v)).sum())
        .collect();

    for s in 0..size as u32 {
        let base = dp[s as usize];
        if !base.is_finite() {
            continue;
        }
        #[allow(clippy::needless_range_loop)] // v is a bit index, not a slice cursor
        for v in 0..n {
            let bit = 1u32 << v;
            if s & bit != 0 {
                continue;
            }
            // Subtract the placed candidates' contributions from colsum.
            let mut add = colsum[v];
            let mut placed = s;
            while placed != 0 {
                let u = placed.trailing_zeros() as usize;
                add -= t.weight(u, v);
                placed &= placed - 1;
            }
            let ns = s | bit;
            let cand = base + add;
            if cand < dp[ns as usize] {
                dp[ns as usize] = cand;
                parent[ns as usize] = v as u8;
            }
        }
    }

    // Reconstruct.
    let mut order = vec![0usize; n];
    let mut s = full;
    for slot in (0..n).rev() {
        let v = parent[s as usize] as usize;
        order[slot] = v;
        s &= !(1u32 << v);
    }
    debug_assert_eq!(s, 0);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::RankList;

    #[test]
    fn trivial_sizes() {
        let t0 = Tournament::from_weighted_lists(&[]);
        assert!(exact_kemeny(&t0).is_empty());
        let t1 = Tournament::from_weighted_lists(&[(RankList::new(vec![7]).unwrap(), 1.0)]);
        assert_eq!(exact_kemeny(&t1), vec![0]);
    }

    #[test]
    fn unanimous_tournament_is_free() {
        let l = RankList::new(vec![2, 4, 0, 1, 3]).unwrap();
        let t = Tournament::from_weighted_lists(&[(l.clone(), 1.0)]);
        let order = exact_kemeny(&t);
        assert_eq!(t.cost_of_indices(&order), 0.0);
        let items: Vec<u32> = order.iter().map(|&i| t.items()[i]).collect();
        assert_eq!(items, l.items());
    }

    #[test]
    fn breaks_condorcet_cycle_optimally() {
        // 3-cycle with asymmetric strengths: 0>1 (0.9), 1>2 (0.8), 2>0 (0.6).
        // Optimal ordering cuts the weakest edge (2>0): [0,1,2] costs
        // w(1,0)+w(2,0)+w(2,1) = 0.1+0.6+0.2 = 0.9. Alternatives cost more.
        let t = Tournament::from_fn(vec![0, 1, 2], |u, v| match (u, v) {
            (0, 1) => 0.9,
            (1, 0) => 0.1,
            (1, 2) => 0.8,
            (2, 1) => 0.2,
            (2, 0) => 0.6,
            (0, 2) => 0.4,
            _ => 0.5,
        });
        let order = exact_kemeny(&t);
        let items: Vec<u32> = order.iter().map(|&i| t.items()[i]).collect();
        assert_eq!(items, vec![0, 1, 2]);
        assert!((t.cost_of_indices(&order) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        for n in 2..=7usize {
            let mut w = vec![0.5; n * n];
            for a in 0..n {
                for b in (a + 1)..n {
                    let x: f64 = rng.gen();
                    w[a * n + b] = x;
                    w[b * n + a] = 1.0 - x;
                }
            }
            let t = Tournament::from_fn((0..n as u32).collect(), move |u, v| {
                w[u as usize * n + v as usize]
            });
            let dp_cost = t.cost_of_indices(&exact_kemeny(&t));
            // Brute force.
            let mut idx: Vec<usize> = (0..n).collect();
            let mut best = f64::INFINITY;
            permute(&mut idx, 0, &mut |p| {
                best = best.min(t.cost_of_indices(p));
            });
            assert!((dp_cost - best).abs() < 1e-9, "n={n}: {dp_cost} vs {best}");
        }
    }

    fn permute<F: FnMut(&[usize])>(v: &mut Vec<usize>, k: usize, f: &mut F) {
        if k == v.len() {
            f(v);
            return;
        }
        for i in k..v.len() {
            v.swap(k, i);
            permute(v, k + 1, f);
            v.swap(k, i);
        }
    }
}
