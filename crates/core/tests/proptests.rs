//! Property-based tests for measures, residual uncertainty and selection.

use ctk_core::measures::MeasureKind;
use ctk_core::residual::{
    answer_probability, expected_residual_set, expected_residual_set_bruteforce,
    expected_residual_single, AnswerPartition, ResidualCtx,
};
use ctk_core::select::OnlineSelector;
use ctk_core::select::{
    relevant_questions, AStarOff, COff, NaiveSelector, OfflineSelector, RandomSelector, T1On, TbOff,
};
use ctk_crowd::Question;
use ctk_prob::compare::PairwiseMatrix;
use ctk_prob::{ScoreDist, UncertainTable};
use ctk_tpo::build::{build_mc, McConfig};
use ctk_tpo::PathSet;
use proptest::prelude::*;

/// Arbitrary overlapping table of `n` uniform scores, with its pairwise
/// matrix and a depth-3 TPO.
fn fixture(n: usize) -> impl Strategy<Value = (UncertainTable, PairwiseMatrix, PathSet)> {
    (
        proptest::collection::vec((0.0..1.0f64, 0.2..0.6f64), n..=n),
        any::<u64>(),
    )
        .prop_map(|(params, seed)| {
            let table = UncertainTable::new(
                params
                    .into_iter()
                    .map(|(c, w)| ScoreDist::uniform_centered(c, w).unwrap())
                    .collect(),
            )
            .unwrap();
            let pw = PairwiseMatrix::compute(&table);
            let ps = build_mc(&table, 3.min(table.len()), &McConfig::fixed(1500, seed)).unwrap();
            (table, pw, ps)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn measures_are_nonnegative_and_zero_on_resolved((_, _pw, ps) in fixture(5)) {
        for kind in MeasureKind::all() {
            let m = kind.build();
            prop_assert!(m.uncertainty(&ps) >= 0.0, "{}", kind.name());
        }
        let resolved = PathSet::from_weighted(3, vec![(vec![0, 1, 2], 1.0)]).unwrap();
        for kind in MeasureKind::all() {
            prop_assert!(kind.build().uncertainty(&resolved).abs() < 1e-12);
        }
    }

    #[test]
    fn answer_probabilities_complement((_, pw, ps) in fixture(5)) {
        let m = MeasureKind::Entropy.build();
        let ctx = ResidualCtx { measure: m.as_ref(), pairwise: &pw };
        for q in relevant_questions(&ps, &ctx) {
            let p = answer_probability(&ps, &q, &ctx);
            let pr = answer_probability(&ps, &q.flipped(), &ctx);
            prop_assert!((p + pr - 1.0).abs() < 1e-9);
            prop_assert!(p > 0.0 && p < 1.0, "relevant question must be uncertain");
        }
    }

    #[test]
    fn residual_never_exceeds_current_entropy((_, pw, ps) in fixture(5)) {
        // Conditioning reduces entropy in expectation — for every relevant
        // question, with the entropy-family measures.
        for kind in [MeasureKind::Entropy, MeasureKind::WeightedEntropy] {
            let m = kind.build();
            let ctx = ResidualCtx { measure: m.as_ref(), pairwise: &pw };
            let u = m.uncertainty(&ps);
            for q in relevant_questions(&ps, &ctx).into_iter().take(6) {
                let r = expected_residual_single(&ps, &q, &ctx);
                prop_assert!(r <= u + 1e-9, "{}: residual {r} > current {u}", kind.name());
            }
        }
    }

    #[test]
    fn partition_equals_bruteforce((_, pw, ps) in fixture(4)) {
        let m = MeasureKind::WeightedEntropy.build();
        let ctx = ResidualCtx { measure: m.as_ref(), pairwise: &pw };
        let qs: Vec<Question> = relevant_questions(&ps, &ctx).into_iter().take(3).collect();
        if qs.is_empty() { return Ok(()); }
        let fast = expected_residual_set(&ps, &qs, &ctx);
        let brute = expected_residual_set_bruteforce(&ps, &qs, &ctx);
        prop_assert!((fast - brute).abs() < 1e-9, "{fast} vs {brute}");
    }

    #[test]
    fn interned_partition_is_bit_identical_to_reference((_, pw, ps) in fixture(5)) {
        // The scratch/memo evaluation path of the interned partition must
        // reproduce the naive fresh-PathSet-per-class evaluation bit for
        // bit, for every measure, through an arbitrary refine sequence.
        for kind in MeasureKind::all() {
            let m = kind.build();
            let ctx = ResidualCtx { measure: m.as_ref(), pairwise: &pw };
            let qs: Vec<Question> = relevant_questions(&ps, &ctx).into_iter().take(4).collect();
            let mut part = AnswerPartition::root(&ps);
            for q in &qs {
                let reference = part.expected_uncertainty_reference(ctx.measure);
                let fast = part.expected_uncertainty(ctx.measure);
                prop_assert_eq!(fast.to_bits(), reference.to_bits(),
                    "{}: {} vs {}", kind.name(), fast, reference);
                // Memoized re-query must not drift either.
                prop_assert_eq!(part.expected_uncertainty(ctx.measure).to_bits(),
                    reference.to_bits());
                part.refine(q, &ctx);
            }
            let reference = part.expected_uncertainty_reference(ctx.measure);
            prop_assert_eq!(part.expected_uncertainty(ctx.measure).to_bits(),
                reference.to_bits(), "{} after full refine", kind.name());
        }
    }

    #[test]
    fn lookahead_equals_refine_then_reference((_, pw, ps) in fixture(5)) {
        // One-step lookahead over memoized classes == materializing the
        // refine and evaluating with the naive reference path.
        let m = MeasureKind::WeightedEntropy.build();
        let ctx = ResidualCtx { measure: m.as_ref(), pairwise: &pw };
        for q in relevant_questions(&ps, &ctx).into_iter().take(5) {
            let looked = AnswerPartition::root(&ps).expected_with_question(&q, &ctx);
            let mut part = AnswerPartition::root(&ps);
            part.refine(&q, &ctx);
            let reference = part.expected_uncertainty_reference(ctx.measure);
            prop_assert!((looked - reference).abs() < 1e-12,
                "{looked} vs {reference} for {q}");
        }
    }

    #[test]
    fn selectors_return_valid_budgeted_sets((_, pw, ps) in fixture(6), budget in 1usize..6) {
        let m = MeasureKind::WeightedEntropy.build();
        let ctx = ResidualCtx { measure: m.as_ref(), pairwise: &pw };
        let mut selectors: Vec<Box<dyn OfflineSelector>> = vec![
            Box::new(RandomSelector::new(1)),
            Box::new(NaiveSelector::new(2)),
            Box::new(TbOff),
            Box::new(COff),
        ];
        for sel in &mut selectors {
            let qs = sel.select(&ps, budget, &ctx);
            prop_assert!(qs.len() <= budget, "{} overspent", sel.name());
            let mut seen = std::collections::HashSet::new();
            for q in &qs {
                prop_assert!(seen.insert(q.canonical()), "{} duplicated {q}", sel.name());
            }
        }
    }

    #[test]
    fn astar_never_worse_than_greedy((_, pw, ps) in fixture(5), budget in 1usize..4) {
        let m = MeasureKind::Entropy.build();
        let ctx = ResidualCtx { measure: m.as_ref(), pairwise: &pw };
        let a = AStarOff::new().search(&ps, budget, &ctx);
        prop_assert!(a.optimal);
        let ra = expected_residual_set(&ps, &a.questions, &ctx);
        let rt = expected_residual_set(&ps, &TbOff.select(&ps, budget, &ctx), &ctx);
        let rc = expected_residual_set(&ps, &COff.select(&ps, budget, &ctx), &ctx);
        prop_assert!(ra <= rt + 1e-9, "A* {ra} vs TB {rt}");
        prop_assert!(ra <= rc + 1e-9, "A* {ra} vs C {rc}");
    }

    #[test]
    fn t1_on_picks_a_relevant_question((_, pw, ps) in fixture(6)) {
        let m = MeasureKind::WeightedEntropy.build();
        let ctx = ResidualCtx { measure: m.as_ref(), pairwise: &pw };
        let pool = relevant_questions(&ps, &ctx);
        match T1On.next_question(&ps, 10, &ctx) {
            Some(q) => prop_assert!(pool.contains(&q)),
            None => prop_assert!(pool.is_empty() || ps.is_resolved()),
        }
    }
}
