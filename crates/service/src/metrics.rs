//! Service-level observability: throughput, latency and cache economics.
//!
//! Latency is tracked in a deterministic fixed-bucket histogram (bucket
//! `i` holds latencies below `2^i` µs), so `latency_p50/p95/p99` report a
//! bucket upper bound — coarse but allocation-free, mergeable, and stable
//! across runs with the same bucket layout. Per-shard counters feed
//! [`ServiceMetrics::shard_imbalance`], the load-skew signal of the
//! shard-owned serving core (DESIGN.md §14).

use std::time::Duration;

/// Power-of-two µs buckets: bucket `i` covers latencies `< 2^i` µs. 40
/// buckets reach ~12.7 days — everything above clamps into the last one.
const LATENCY_BUCKETS: usize = 40;

/// Counters and timings accumulated over a service's lifetime.
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    /// Sessions accepted by `submit`.
    pub submitted: u64,
    /// Sessions that finished with a report.
    pub completed: u64,
    /// Sessions that ended in a driver error.
    pub failed: u64,
    /// Sessions whose round was cut short by an exhausted crowd at least
    /// once (they still complete, with fewer questions than budgeted).
    pub starved: u64,
    /// Scheduling rounds executed (tick mode: ticks; event mode: pump
    /// sweeps that made progress).
    pub rounds: u64,
    /// Worker threads the round loop shards gather/feed work over (1 =
    /// the sequential loop; reports are identical at every setting).
    pub worker_threads: usize,
    /// Answers delivered to sessions (cached + live).
    pub answers_served: u64,
    /// Questions actually posed to the crowd backend.
    pub crowd_questions: u64,
    /// Answers served from the cross-session answer cache.
    pub cache_hits: u64,
    /// Live questions hinted to expert panels (narrow belief margin;
    /// stays 0 without a configured `QuestionRouter`).
    pub routed_expert: u64,
    /// Live questions hinted to cheap panels (wide belief margin).
    pub routed_cheap: u64,
    /// Possible worlds sampled across all completed sessions' initial
    /// builds (adaptive builds draw fewer on easy tables; certain-order
    /// early stops draw zero).
    pub worlds_drawn: u64,
    /// Completed sessions whose certain/possible bounds pinned the whole
    /// ordered prefix before sampling — decided without any crowd
    /// questions or worlds.
    pub certain_early_stops: u64,
    /// Events drained from the shards' ready-queues (lifecycle markers
    /// only in tick mode; the full event taxonomy in event mode).
    pub events_processed: u64,
    /// Budget-grant units the reconciler issued to shards (0 until a
    /// session parks on an exhausted grant; tick mode grants implicitly
    /// at purchase time, counted in the shard ledgers instead).
    pub budget_granted: u64,
    /// Wall time spent inside the run loop (selection, crowd calls,
    /// updates).
    pub serving_time: Duration,
    /// Wall time spent resolving questions against cache + crowd — the
    /// purchase phase the sharded refactor exists to unblock, broken out
    /// so benches can compare it against the PR 4 baseline.
    pub purchase_time: Duration,
    latency_sum: Duration,
    latency_max: Duration,
    latency_count: u64,
    latency_hist: Vec<u64>,
    shard_answers: Vec<u64>,
    shard_completed: Vec<u64>,
}

/// The histogram bucket `latency` falls into.
fn bucket_index(latency: Duration) -> usize {
    let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
    let idx = (u64::BITS - micros.leading_zeros()) as usize;
    idx.min(LATENCY_BUCKETS - 1)
}

impl ServiceMetrics {
    /// Sizes the per-shard counters (service construction time).
    pub(crate) fn init_shards(&mut self, shards: usize) {
        self.shard_answers = vec![0; shards];
        self.shard_completed = vec![0; shards];
    }

    /// Credits `n` delivered answers to `shard`.
    pub(crate) fn record_shard_answers(&mut self, shard: usize, n: u64) {
        if let Some(slot) = self.shard_answers.get_mut(shard) {
            *slot += n;
        }
    }

    /// Credits one completed session to `shard`.
    pub(crate) fn record_shard_completed(&mut self, shard: usize) {
        if let Some(slot) = self.shard_completed.get_mut(shard) {
            *slot += 1;
        }
    }

    /// Records one finished session's enqueue-to-done latency.
    pub(crate) fn record_latency(&mut self, latency: Duration) {
        self.latency_sum += latency;
        self.latency_max = self.latency_max.max(latency);
        self.latency_count += 1;
        if self.latency_hist.is_empty() {
            self.latency_hist = vec![0; LATENCY_BUCKETS];
        }
        self.latency_hist[bucket_index(latency)] += 1;
    }

    /// Answers delivered per shard (empty before the first submit).
    pub fn shard_answers(&self) -> &[u64] {
        &self.shard_answers
    }

    /// Sessions completed per shard.
    pub fn shard_completed(&self) -> &[u64] {
        &self.shard_completed
    }

    /// Load skew across shards: busiest shard's delivered answers over
    /// the per-shard mean. `1.0` is perfectly balanced; `n` means one
    /// shard did the work of `n`. Degenerate cases (≤ 1 shard, nothing
    /// served) report `1.0`.
    pub fn shard_imbalance(&self) -> f64 {
        let total: u64 = self.shard_answers.iter().sum();
        let n = self.shard_answers.len();
        if n <= 1 || total == 0 {
            return 1.0;
        }
        let busiest = self.shard_answers.iter().copied().max().unwrap_or(0);
        busiest as f64 * n as f64 / total as f64
    }

    /// The latency below which `p` of finished sessions completed, as the
    /// histogram bucket's upper bound (power-of-two µs). `None` before
    /// the first completion.
    fn latency_percentile(&self, p: f64) -> Option<Duration> {
        if self.latency_count == 0 {
            return None;
        }
        let rank = ((p * self.latency_count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &count) in self.latency_hist.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(Duration::from_micros(1u64 << i.min(62)));
            }
        }
        Some(self.latency_max)
    }

    /// Median enqueue-to-done latency (histogram bucket upper bound).
    pub fn latency_p50(&self) -> Option<Duration> {
        self.latency_percentile(0.50)
    }

    /// 95th-percentile enqueue-to-done latency.
    pub fn latency_p95(&self) -> Option<Duration> {
        self.latency_percentile(0.95)
    }

    /// 99th-percentile enqueue-to-done latency.
    pub fn latency_p99(&self) -> Option<Duration> {
        self.latency_percentile(0.99)
    }

    /// Fraction of delivered answers that never touched the crowd.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.answers_served == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.answers_served as f64
        }
    }

    /// Crowd budget saved by deduplication, in questions.
    pub fn questions_saved(&self) -> u64 {
        self.cache_hits
    }

    /// Mean enqueue-to-done latency over finished sessions.
    pub fn avg_latency(&self) -> Option<Duration> {
        (self.latency_count > 0).then(|| self.latency_sum / self.latency_count as u32)
    }

    /// Worst enqueue-to-done latency.
    pub fn max_latency(&self) -> Option<Duration> {
        (self.latency_count > 0).then_some(self.latency_max)
    }

    /// Answers delivered per second of serving time.
    pub fn answers_per_sec(&self) -> f64 {
        let secs = self.serving_time.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.answers_served as f64 / secs
        }
    }

    /// Sessions completed per second of serving time.
    pub fn sessions_per_sec(&self) -> f64 {
        let secs = self.serving_time.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// One-paragraph human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "sessions: {} submitted, {} completed, {} failed, {} starved | \
             rounds: {} ({} worker threads, {} shards, imbalance {:.2}) | \
             answers: {} served ({} live, {} cached, {:.1}% hit rate) | \
             routing: {} expert, {} cheap | \
             precision: {} worlds drawn, {} certain early stops | \
             events: {} drained, {} budget units granted | \
             throughput: {:.0} answers/s, {:.1} sessions/s | \
             latency avg {:?} p50 {:?} p95 {:?} p99 {:?} max {:?} | \
             purchase {:?} of {:?} serving",
            self.submitted,
            self.completed,
            self.failed,
            self.starved,
            self.rounds,
            self.worker_threads.max(1),
            self.shard_answers.len().max(1),
            self.shard_imbalance(),
            self.answers_served,
            self.crowd_questions,
            self.cache_hits,
            100.0 * self.cache_hit_rate(),
            self.routed_expert,
            self.routed_cheap,
            self.worlds_drawn,
            self.certain_early_stops,
            self.events_processed,
            self.budget_granted,
            self.answers_per_sec(),
            self.sessions_per_sec(),
            self.avg_latency().unwrap_or_default(),
            self.latency_p50().unwrap_or_default(),
            self.latency_p95().unwrap_or_default(),
            self.latency_p99().unwrap_or_default(),
            self.max_latency().unwrap_or_default(),
            self.purchase_time,
            self.serving_time,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let m = ServiceMetrics::default();
        assert_eq!(m.cache_hit_rate(), 0.0);
        assert_eq!(m.answers_per_sec(), 0.0);
        assert_eq!(m.sessions_per_sec(), 0.0);
        assert!(m.avg_latency().is_none());
        assert!(m.max_latency().is_none());
        assert!(m.latency_p50().is_none());
        assert!(m.latency_p99().is_none());
        assert_eq!(m.shard_imbalance(), 1.0);
    }

    #[test]
    fn latency_aggregation() {
        let mut m = ServiceMetrics::default();
        m.record_latency(Duration::from_millis(10));
        m.record_latency(Duration::from_millis(30));
        assert_eq!(m.avg_latency(), Some(Duration::from_millis(20)));
        assert_eq!(m.max_latency(), Some(Duration::from_millis(30)));
    }

    #[test]
    fn histogram_percentiles_hit_the_right_buckets() {
        let mut m = ServiceMetrics::default();
        // 98 fast sessions (~100µs), one slow (~50ms), one very slow
        // (~3s): p50 stays in the fast bucket, p99 reaches the slow one,
        // and the max is not a bucket bound but the true maximum.
        for _ in 0..98 {
            m.record_latency(Duration::from_micros(100));
        }
        m.record_latency(Duration::from_millis(50));
        m.record_latency(Duration::from_secs(3));
        // 100µs < 2^7 µs = 128µs.
        assert_eq!(m.latency_p50(), Some(Duration::from_micros(128)));
        assert_eq!(m.latency_p95(), Some(Duration::from_micros(128)));
        // 50ms < 2^16 µs = 65.536ms.
        assert_eq!(m.latency_p99(), Some(Duration::from_micros(1 << 16)));
        assert_eq!(m.max_latency(), Some(Duration::from_secs(3)));
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        let mut m = ServiceMetrics::default();
        for i in 0..200u64 {
            m.record_latency(Duration::from_micros(1 + i * 37));
        }
        let (p50, p95, p99) = (
            m.latency_p50().unwrap(),
            m.latency_p95().unwrap(),
            m.latency_p99().unwrap(),
        );
        assert!(p50 <= p95 && p95 <= p99, "{p50:?} {p95:?} {p99:?}");
    }

    #[test]
    fn shard_imbalance_reads_the_skew() {
        let mut m = ServiceMetrics::default();
        m.init_shards(4);
        assert_eq!(m.shard_imbalance(), 1.0, "nothing served yet");
        for shard in 0..4 {
            m.record_shard_answers(shard, 10);
        }
        assert_eq!(m.shard_imbalance(), 1.0, "perfectly balanced");
        m.record_shard_answers(0, 40);
        // Shard 0 served 50 of 80: busiest/mean = 50 / 20 = 2.5.
        assert!((m.shard_imbalance() - 2.5).abs() < 1e-12);
        assert_eq!(m.shard_answers(), &[50, 10, 10, 10]);
        // Out-of-range shards are ignored, not a panic.
        m.record_shard_answers(99, 1);
        m.record_shard_completed(99);
        assert_eq!(m.shard_completed(), &[0, 0, 0, 0]);
    }

    #[test]
    fn summary_mentions_the_headline_numbers() {
        let mut m = ServiceMetrics {
            submitted: 32,
            completed: 32,
            answers_served: 100,
            cache_hits: 40,
            crowd_questions: 60,
            ..ServiceMetrics::default()
        };
        m.record_latency(Duration::from_millis(5));
        let s = m.summary();
        assert!(s.contains("32 submitted"));
        assert!(s.contains("40.0% hit rate"));
        assert!(s.contains("p95"));
        assert!(s.contains("imbalance"));
    }
}
