//! TPO construction engines.
//!
//! Two ways to materialize the tree of possible orderings of a top-K query
//! (Ciceri et al., §II-B):
//!
//! * [`build_mc`] — Monte-Carlo: sample `M` possible worlds (full score
//!   realizations), rank each, and group the depth-`K` prefixes. Cost
//!   `O(M · N log N)`, error `O(1/√M)` per path.
//! * [`build_exact`] — exact: enumerate prefixes level by level, scoring
//!   each with the nested-quadrature integral of
//!   [`ctk_prob::nested::prefix_probability`] (after Li & Deshpande,
//!   PVLDB'10) and pruning zero-mass branches. Exact up to quadrature
//!   error, but enumeration can explode on highly overlapping tables —
//!   bounded by [`ExactConfig::max_paths`].
//!
//! Both return the flat [`PathSet`]; see `tests/engines_agree.rs` for the
//! cross-validation of the two engines.

use crate::error::{Result, TpoError};
use crate::path::PathSet;
use crate::worlds::{WorldModel, PARALLEL_WORLDS_MIN};
use ctk_prob::compare::{available_cores, planned_threads};
use ctk_prob::nested::{prefix_probability_with, NestedScratch};
use ctk_prob::sample::{top_k_prefix_into, WorldSampler};
use ctk_prob::{ScoreDist, SupportGrid, UncertainTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
// ctk-allow(det-hash-collection): all maps in this module hold exact integer counts merged commutatively and drained through PathSet::from_weighted's canonical sort
use std::collections::HashMap;

/// Configuration of the Monte-Carlo engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McConfig {
    /// Number of sampled possible worlds `M`.
    pub worlds: usize,
    /// PRNG seed (sampling is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for McConfig {
    fn default() -> Self {
        Self {
            worlds: 10_000,
            seed: 0,
        }
    }
}

/// Configuration of the exact nested-quadrature engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactConfig {
    /// Number of uniform quadrature cells over the union support.
    pub resolution: usize,
    /// Abort with [`TpoError::PathExplosion`] once more than this many
    /// prefixes are alive at any level.
    pub max_paths: usize,
    /// Prefixes with probability at or below this mass are pruned during
    /// enumeration (they cannot contribute visible leaves).
    pub prune_threshold: f64,
}

impl Default for ExactConfig {
    fn default() -> Self {
        Self {
            resolution: 4096,
            max_paths: 250_000,
            prune_threshold: 1e-10,
        }
    }
}

/// Which construction engine a session should use.
#[derive(Debug, Clone, PartialEq)]
pub enum Engine {
    /// Monte-Carlo possible worlds.
    MonteCarlo(McConfig),
    /// Exact nested quadrature.
    Exact(ExactConfig),
}

impl Default for Engine {
    fn default() -> Self {
        Engine::MonteCarlo(McConfig::default())
    }
}

impl Engine {
    /// Human-readable engine name.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::MonteCarlo(_) => "mc",
            Engine::Exact(_) => "exact",
        }
    }

    /// Builds the depth-`k` path set of `table` with this engine.
    pub fn build(&self, table: &UncertainTable, k: usize) -> Result<PathSet> {
        match self {
            Engine::MonteCarlo(cfg) => build_mc(table, k, cfg),
            Engine::Exact(cfg) => build_exact(table, k, cfg),
        }
    }
}

/// Monte-Carlo TPO construction: sample `cfg.worlds` possible worlds and
/// group their depth-`k` prefixes into a normalized [`PathSet`].
///
/// `cfg.worlds == 0` is an invalid spec and fails with
/// [`TpoError::InvalidWorlds`] (it used to be silently clamped to 1,
/// masking configuration bugs).
///
/// This is the fast path (DESIGN.md §10): scores come from a per-table
/// compiled [`WorldSampler`] (draw-for-draw identical to the reference
/// sampling), and each world is ranked with an O(n + k·log k) partial
/// selection instead of a full sort — the depth-`k` prefix is
/// bit-identical to the full sort's by the total-order argument, so the
/// result equals [`build_mc_reference`] exactly (pinned by tests). The
/// rank and group phases are chunked across threads above a work cutoff;
/// any thread count produces bit-identical output (score draws are
/// strictly sequential in the seeded PRNG, each world is ranked
/// independently, and per-prefix totals are exact integer counts).
pub fn build_mc(table: &UncertainTable, k: usize, cfg: &McConfig) -> Result<PathSet> {
    build_mc_with_threads(table, k, cfg, 0)
}

/// The pre-PR 5 Monte-Carlo pipeline — materialize a full [`WorldModel`]
/// (complete per-world rankings and position index) and group prefixes —
/// kept as the equivalence and benchmark baseline for [`build_mc`].
pub fn build_mc_reference(table: &UncertainTable, k: usize, cfg: &McConfig) -> Result<PathSet> {
    if k == 0 || k > table.len() {
        return Err(TpoError::InvalidK { k, n: table.len() });
    }
    let wm = WorldModel::sample_with_threads(table, cfg.worlds, cfg.seed, 1)?;
    wm.path_set_uniform(k, 1)
}

/// [`build_mc`] with an explicit thread count for the rank/group phases
/// (`0` = auto, `1` = the sequential reference). Any count produces
/// bit-identical output (pinned by tests).
pub fn build_mc_with_threads(
    table: &UncertainTable,
    k: usize,
    cfg: &McConfig,
    threads: usize,
) -> Result<PathSet> {
    let n = table.len();
    if k == 0 || k > n {
        return Err(TpoError::InvalidK { k, n });
    }
    let m = cfg.worlds;
    if m == 0 {
        return Err(TpoError::InvalidWorlds);
    }
    let threads = if threads == 0 {
        planned_threads(m, PARALLEL_WORLDS_MIN, available_cores())
    } else {
        threads.clamp(1, m)
    };

    let sampler = WorldSampler::new(table);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut prefixes = vec![0u32; m * k];
    if threads == 1 {
        // Streaming: one recycled score row, rank each world as it is
        // drawn — no m×n materialization.
        let mut row = vec![0.0f64; n];
        let mut ids: Vec<u32> = Vec::with_capacity(n);
        for prefix in prefixes.chunks_mut(k) {
            sampler.sample_into(&mut rng, &mut row);
            top_k_prefix_into(&row, &mut ids, prefix);
        }
    } else {
        // Draw all scores sequentially (the PRNG stream is order-defined),
        // then rank world chunks in parallel — each world independently,
        // so chunking cannot change any prefix.
        let mut scores = vec![0.0f64; m * n];
        for row in scores.chunks_mut(n) {
            sampler.sample_into(&mut rng, row);
        }
        let chunk = m.div_ceil(threads);
        // ctk-allow(det-thread-spawn): planned_threads fanout; each thread fills a disjoint pre-chunked slice
        std::thread::scope(|s| {
            for (sc, pc) in scores.chunks(chunk * n).zip(prefixes.chunks_mut(chunk * k)) {
                s.spawn(move || {
                    let mut ids: Vec<u32> = Vec::with_capacity(n);
                    for (row, prefix) in sc.chunks(n).zip(pc.chunks_mut(k)) {
                        top_k_prefix_into(row, &mut ids, prefix);
                    }
                });
            }
        });
    }

    // Group identical prefixes. Totals are exact integer counts, so the
    // chunked merge is bit-identical to a sequential pass.
    // ctk-allow(det-hash-collection): exact integer counts; merge order cannot change them
    let counts: HashMap<&[u32], u64> = if threads == 1 || m < PARALLEL_WORLDS_MIN {
        prefix_counts(&prefixes, k)
    } else {
        let chunk = m.div_ceil(threads);
        // ctk-allow(det-hash-collection, det-thread-spawn): planned_threads fanout over disjoint chunks; integer-count merge is commutative
        let maps: Vec<HashMap<&[u32], u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = prefixes
                .chunks(chunk * k)
                .map(|c| s.spawn(move || prefix_counts(c, k)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(map) => map,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        // ctk-allow(det-hash-collection): exact integer counts; merge order cannot change them
        let mut total: HashMap<&[u32], u64> = HashMap::new();
        for map in maps {
            for (prefix, count) in map {
                *total.entry(prefix).or_insert(0) += count;
            }
        }
        total
    };
    PathSet::from_weighted(
        k,
        counts
            .into_iter()
            .map(|(prefix, count)| (prefix.to_vec(), count as f64))
            .collect(),
    )
}

/// Depth-`k` prefix counts over one chunk of flat prefixes.
// ctk-allow(det-hash-collection): exact integer counts, drained via from_weighted's canonical sort
fn prefix_counts(prefixes: &[u32], k: usize) -> HashMap<&[u32], u64> {
    // ctk-allow(det-hash-collection): exact integer counts, drained via from_weighted's canonical sort
    let mut g: HashMap<&[u32], u64> = HashMap::new();
    for p in prefixes.chunks_exact(k) {
        *g.entry(p).or_insert(0) += 1;
    }
    g
}

/// Exact TPO construction by level-wise prefix enumeration.
///
/// A prefix `t_1 ≻ … ≻ t_d` is scored with the nested integral
/// `P(prefix is exactly the ordered top-d)`; children of zero-mass
/// prefixes are never enumerated (an extension's event is a subset of its
/// parent's, so its probability cannot exceed the parent's).
///
/// Requires every score distribution in `table` to be continuous; returns
/// [`TpoError::PathExplosion`] if more than `cfg.max_paths` prefixes
/// survive at any level.
pub fn build_exact(table: &UncertainTable, k: usize, cfg: &ExactConfig) -> Result<PathSet> {
    let n = table.len();
    if k == 0 || k > n {
        return Err(TpoError::InvalidK { k, n });
    }
    let dists: Vec<&ScoreDist> = table.dists().collect();
    let grid = SupportGrid::build(dists.iter().copied(), cfg.resolution.max(16));
    let mut scratch = NestedScratch::default();

    // Frontier of live prefixes (tuple ids) with their probabilities.
    let mut frontier: Vec<(Vec<u32>, f64)> = vec![(Vec::new(), 1.0)];
    let mut prefix_dists: Vec<&ScoreDist> = Vec::with_capacity(k);
    let mut rest: Vec<&ScoreDist> = Vec::with_capacity(n);
    // Membership flags for the current prefix: O(1) "is t in the prefix?"
    // instead of an O(depth) `contains` scan per candidate/rest tuple.
    let mut in_prefix = vec![false; n];

    for depth in 1..=k {
        let mut next: Vec<(Vec<u32>, f64)> = Vec::new();
        for (prefix, _parent_prob) in &frontier {
            for &i in prefix {
                in_prefix[i as usize] = true;
            }
            for t in 0..n as u32 {
                if in_prefix[t as usize] {
                    continue;
                }
                prefix_dists.clear();
                prefix_dists.extend(prefix.iter().map(|&i| dists[i as usize]));
                prefix_dists.push(dists[t as usize]);
                rest.clear();
                rest.extend(
                    (0..n as u32)
                        .filter(|&i| !in_prefix[i as usize] && i != t)
                        .map(|i| dists[i as usize]),
                );
                let p = prefix_probability_with(&grid, &prefix_dists, &rest, &mut scratch)?;
                if p > cfg.prune_threshold {
                    let mut items = prefix.clone();
                    items.push(t);
                    next.push((items, p));
                }
            }
            for &i in prefix {
                in_prefix[i as usize] = false;
            }
            if next.len() > cfg.max_paths {
                return Err(TpoError::PathExplosion {
                    paths: next.len(),
                    max: cfg.max_paths,
                });
            }
        }
        if next.is_empty() {
            // Numerically possible only on pathological inputs where every
            // extension fell below the prune threshold.
            return Err(TpoError::EmptyPathSet);
        }
        frontier = next;
        let _ = depth;
    }
    PathSet::from_weighted(k, frontier)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize, width: f64) -> UncertainTable {
        UncertainTable::new(
            (0..n)
                .map(|i| ScoreDist::uniform_centered(0.2 * i as f64, width).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn invalid_k_rejected_by_both_engines() {
        let t = table(3, 0.5);
        assert!(matches!(
            build_mc(&t, 0, &McConfig::default()),
            Err(TpoError::InvalidK { .. })
        ));
        assert!(matches!(
            build_exact(&t, 4, &ExactConfig::default()),
            Err(TpoError::InvalidK { .. })
        ));
    }

    #[test]
    fn zero_worlds_rejected_not_repaired() {
        let t = table(3, 0.5);
        assert!(matches!(
            build_mc(&t, 2, &McConfig { worlds: 0, seed: 1 }),
            Err(TpoError::InvalidWorlds)
        ));
    }

    #[test]
    fn fast_build_is_bit_identical_to_reference_full_sort_path() {
        // Partial-selection ranking + compiled sampling must reproduce the
        // full-sort WorldModel pipeline exactly, at every depth.
        let t = table(6, 0.7);
        for seed in [0u64, 9, 31] {
            for k in [1usize, 2, 4, 6] {
                let cfg = McConfig { worlds: 3001, seed };
                let fast = build_mc_with_threads(&t, k, &cfg, 1).unwrap();
                let reference = build_mc_reference(&t, k, &cfg).unwrap();
                assert_eq!(fast.len(), reference.len(), "seed {seed} k {k}");
                for (a, b) in fast.paths().iter().zip(reference.paths()) {
                    assert_eq!(a.items, b.items, "seed {seed} k {k}");
                    assert_eq!(a.prob.to_bits(), b.prob.to_bits(), "seed {seed} k {k}");
                }
            }
        }
    }

    #[test]
    fn parallel_mc_build_is_bit_identical_to_sequential() {
        let t = table(5, 0.6);
        for seed in [0u64, 3, 17] {
            let cfg = McConfig { worlds: 4100, seed };
            let seq = build_mc_with_threads(&t, 3, &cfg, 1).unwrap();
            for threads in [2, 4, 7] {
                let par = build_mc_with_threads(&t, 3, &cfg, threads).unwrap();
                assert_eq!(seq.len(), par.len(), "seed {seed} threads {threads}");
                for (a, b) in seq.paths().iter().zip(par.paths()) {
                    assert_eq!(a.items, b.items, "seed {seed} threads {threads}");
                    assert_eq!(
                        a.prob.to_bits(),
                        b.prob.to_bits(),
                        "seed {seed} threads {threads}: {} vs {}",
                        a.prob,
                        b.prob
                    );
                }
            }
        }
    }

    #[test]
    fn disjoint_supports_give_single_path() {
        // Far-apart narrow supports: the ordering is certain.
        let t = table(4, 0.1);
        let exact = build_exact(&t, 3, &ExactConfig::default()).unwrap();
        assert!(exact.is_resolved());
        assert_eq!(exact.paths()[0].items, vec![3, 2, 1]);
        let mc = build_mc(&t, 3, &McConfig::default()).unwrap();
        assert_eq!(mc.paths()[0].items, vec![3, 2, 1]);
    }

    #[test]
    fn iid_pair_is_even_money() {
        let t = UncertainTable::new(vec![
            ScoreDist::uniform(0.0, 1.0).unwrap(),
            ScoreDist::uniform(0.0, 1.0).unwrap(),
        ])
        .unwrap();
        let exact = build_exact(&t, 2, &ExactConfig::default()).unwrap();
        assert_eq!(exact.len(), 2);
        for p in exact.paths() {
            assert!((p.prob - 0.5).abs() < 1e-6, "{p}");
        }
    }

    #[test]
    fn engines_roughly_agree_here_too() {
        let t = table(4, 0.6);
        let exact = build_exact(&t, 2, &ExactConfig::default()).unwrap();
        let mc = build_mc(
            &t,
            2,
            &McConfig {
                worlds: 60_000,
                seed: 3,
            },
        )
        .unwrap();
        for p in exact.paths() {
            let q = mc
                .paths()
                .iter()
                .find(|m| m.items == p.items)
                .map(|m| m.prob)
                .unwrap_or(0.0);
            assert!(
                (p.prob - q).abs() < 0.02,
                "{:?}: {} vs {q}",
                p.items,
                p.prob
            );
        }
    }

    #[test]
    fn path_explosion_is_reported() {
        // 7 iid tuples, k=4: 7·6·5·4 = 840 paths > 100.
        let t = UncertainTable::new(
            (0..7)
                .map(|_| ScoreDist::uniform(0.0, 1.0).unwrap())
                .collect(),
        )
        .unwrap();
        let err = build_exact(
            &t,
            4,
            &ExactConfig {
                max_paths: 100,
                ..ExactConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, TpoError::PathExplosion { .. }));
    }

    #[test]
    fn engine_dispatch_and_default() {
        let t = table(3, 0.5);
        assert_eq!(Engine::default().name(), "mc");
        let ps = Engine::Exact(ExactConfig::default()).build(&t, 2).unwrap();
        assert!((ps.total_prob() - 1.0).abs() < 1e-9);
        let ps = Engine::default().build(&t, 2).unwrap();
        assert!((ps.total_prob() - 1.0).abs() < 1e-9);
    }
}
