//! Budget accounting: the paper's budget `B` bounds the crowd work a
//! session may buy. The ledger prices that work in one of two explicit
//! denominations — aggregated answers ([`CostModel::PerQuestion`]) or raw
//! worker votes ([`CostModel::PerVote`], where a majority-of-`n` answer
//! costs `n`) — and keeps the full question/answer history for reports.

use crate::question::{Answer, Question};

/// How a [`BudgetLedger`] prices crowd work.
///
/// The distinction only matters under replicated voting: a
/// `Majority(3)` answer engages three workers. Pricing it as one unit
/// (`PerQuestion`) makes "budget B" mean *B aggregated answers, whatever
/// they cost*; pricing it as three (`PerVote`) makes "budget B" mean *B
/// worker engagements* — the monetary denomination the paper's §III-C
/// majority analysis uses when it calls replication "triple the cost".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModel {
    /// Budget `B` buys `B` aggregated answers regardless of replication.
    #[default]
    PerQuestion,
    /// Budget `B` buys `B` worker votes: a `Majority(n)` answer costs `n`.
    PerVote,
}

/// Tracks budget consumption (in the configured [`CostModel`]) and
/// history.
#[derive(Debug, Clone)]
pub struct BudgetLedger {
    budget: usize,
    cost_model: CostModel,
    questions_asked: usize,
    votes_collected: usize,
    history: Vec<Answer>,
}

impl BudgetLedger {
    /// Creates a question-denominated ledger: budget `b` aggregated
    /// answers.
    pub fn new(b: usize) -> Self {
        Self::with_cost_model(b, CostModel::PerQuestion)
    }

    /// Creates a vote-denominated ledger: budget `b` worker votes.
    pub fn per_vote(b: usize) -> Self {
        Self::with_cost_model(b, CostModel::PerVote)
    }

    /// Creates a ledger with an explicit denomination.
    pub fn with_cost_model(b: usize, cost_model: CostModel) -> Self {
        Self {
            budget: b,
            cost_model,
            questions_asked: 0,
            votes_collected: 0,
            history: Vec::new(),
        }
    }

    /// The configured budget `B`, in units of the cost model.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The denomination this ledger charges in.
    pub fn cost_model(&self) -> CostModel {
        self.cost_model
    }

    /// Questions asked so far.
    pub fn asked(&self) -> usize {
        self.questions_asked
    }

    /// Raw worker votes collected so far (>= questions when majority
    /// policies are used).
    pub fn votes(&self) -> usize {
        self.votes_collected
    }

    /// Budget units spent so far (questions or votes, per the model).
    pub fn spent(&self) -> usize {
        match self.cost_model {
            CostModel::PerQuestion => self.questions_asked,
            CostModel::PerVote => self.votes_collected,
        }
    }

    /// Budget units still unspent. Saturating: even if a ledger is ever
    /// driven past its budget (a bug elsewhere, or a deserialized
    /// snapshot), `remaining` reports 0 instead of underflowing to
    /// `usize::MAX` and unleashing an unbounded question spree.
    pub fn remaining(&self) -> usize {
        self.budget.saturating_sub(self.spent())
    }

    /// True when nothing more can be bought (not even a single-vote
    /// question).
    pub fn exhausted(&self) -> bool {
        self.spent() >= self.budget
    }

    /// What one question answered with `votes` worker votes costs under
    /// this ledger's denomination.
    pub fn question_cost(&self, votes: usize) -> usize {
        match self.cost_model {
            CostModel::PerQuestion => 1,
            CostModel::PerVote => votes,
        }
    }

    /// True when a question costing `votes` worker votes still fits in
    /// the remaining budget.
    pub fn can_afford(&self, votes: usize) -> bool {
        self.question_cost(votes).max(1) <= self.remaining()
    }

    /// How many more questions of `votes_per_question` votes each the
    /// remaining budget affords.
    pub fn questions_affordable(&self, votes_per_question: usize) -> usize {
        self.remaining() / self.question_cost(votes_per_question).max(1)
    }

    /// Records one asked question with its aggregated answer and the number
    /// of votes spent on it. Returns `false` (recording nothing) if the
    /// remaining budget cannot cover the question's cost.
    pub fn record(&mut self, answer: Answer, votes: usize) -> bool {
        if !self.can_afford(votes) {
            return false;
        }
        self.questions_asked += 1;
        self.votes_collected += votes;
        self.history.push(answer);
        #[cfg(feature = "debug-invariants")]
        assert!(
            self.spent() <= self.budget,
            "BudgetLedger overspent: spent {} of {} (cost model {:?})",
            self.spent(),
            self.budget,
            self.cost_model
        );
        true
    }

    /// Full answer history in ask order.
    pub fn history(&self) -> &[Answer] {
        &self.history
    }

    /// True if this exact question (in either orientation) was asked
    /// before.
    pub fn already_asked(&self, q: &Question) -> bool {
        let c = q.canonical();
        self.history.iter().any(|a| a.question.canonical() == c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ans(i: u32, j: u32, yes: bool) -> Answer {
        Answer {
            question: Question::new(i, j),
            yes,
        }
    }

    #[test]
    fn budget_lifecycle() {
        let mut l = BudgetLedger::new(2);
        assert_eq!(l.budget(), 2);
        assert_eq!(l.remaining(), 2);
        assert!(!l.exhausted());
        assert!(l.record(ans(0, 1, true), 1));
        assert!(l.record(ans(1, 2, false), 3));
        assert!(l.exhausted());
        assert!(!l.record(ans(2, 3, true), 1), "over-budget record refused");
        assert_eq!(l.asked(), 2);
        assert_eq!(l.votes(), 4);
        assert_eq!(l.history().len(), 2);
    }

    #[test]
    fn vote_denomination_charges_votes() {
        // Regression for the budget denomination mismatch: a majority-of-3
        // answer must cost 3 vote units, not 1, so "budget 7" affords two
        // majority questions plus nothing — the third no longer fits.
        let mut l = BudgetLedger::per_vote(7);
        assert_eq!(l.cost_model(), CostModel::PerVote);
        assert_eq!(l.question_cost(3), 3);
        assert_eq!(l.questions_affordable(3), 2);
        assert!(l.record(ans(0, 1, true), 3));
        assert!(l.record(ans(1, 2, false), 3));
        assert_eq!(l.spent(), 6);
        assert_eq!(l.remaining(), 1);
        assert!(!l.exhausted(), "one vote unit left");
        assert!(!l.can_afford(3), "but not three");
        assert!(!l.record(ans(2, 3, true), 3), "unaffordable record refused");
        assert!(l.record(ans(2, 3, true), 1), "a single-vote question fits");
        assert!(l.exhausted());
        assert_eq!(l.asked(), 3);
        assert_eq!(l.votes(), 7);
    }

    #[test]
    fn question_denomination_ignores_replication() {
        let mut l = BudgetLedger::with_cost_model(2, CostModel::PerQuestion);
        assert!(l.record(ans(0, 1, true), 5));
        assert_eq!(l.spent(), 1, "one question, whatever it cost in votes");
        assert_eq!(l.questions_affordable(5), 1);
        assert!(l.can_afford(5));
        assert!(l.record(ans(1, 2, true), 5));
        assert!(l.exhausted());
        assert_eq!(l.votes(), 10);
    }

    #[test]
    fn duplicate_detection_is_orientation_insensitive() {
        let mut l = BudgetLedger::new(5);
        l.record(ans(0, 1, true), 1);
        assert!(l.already_asked(&Question::new(0, 1)));
        assert!(l.already_asked(&Question::new(1, 0)));
        assert!(!l.already_asked(&Question::new(0, 2)));
    }

    #[test]
    fn asking_past_the_budget_never_underflows_remaining() {
        // Regression: `remaining` used plain subtraction; a ledger whose
        // `questions_asked` ever exceeded `budget` would report
        // usize::MAX remaining questions. Hammer past the budget and
        // check the invariant after every attempt.
        let mut l = BudgetLedger::new(3);
        for attempt in 0..10 {
            l.record(ans(0, 1, attempt % 2 == 0), 1);
            assert!(
                l.remaining() <= l.budget(),
                "remaining {} escaped budget {} after attempt {attempt}",
                l.remaining(),
                l.budget()
            );
        }
        assert_eq!(l.asked(), 3);
        assert_eq!(l.remaining(), 0);
        assert!(l.exhausted());
    }

    #[test]
    fn zero_budget() {
        let mut l = BudgetLedger::new(0);
        assert!(l.exhausted());
        assert!(!l.record(ans(0, 1, true), 1));
        let mut v = BudgetLedger::per_vote(0);
        assert!(v.exhausted());
        assert!(!v.record(ans(0, 1, true), 1));
    }
}
