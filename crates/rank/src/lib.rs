#![forbid(unsafe_code)]
#![deny(warnings)]
//! # ctk-rank — rankings, top-K distances, and rank aggregation
//!
//! Ranking substrate for the `crowd-topk` workspace (reproduction of
//! *“Crowdsourcing for Top-K Query Processing over Uncertain Data”*, Ciceri
//! et al., ICDE 2016 / TKDE 28(1)).
//!
//! The paper's uncertainty measures and its headline metric `D(ω_r, T_K)`
//! are all built on distances between *top-k lists* and on representative
//! orderings of a distribution over lists:
//!
//! * [`RankList`] — an ordered list of distinct items (a TPO path, a true
//!   top-K, a full permutation);
//! * [`kendall`] — classic Kendall tau for full permutations
//!   (`O(n log n)`);
//! * [`topk`] — Fagin/Kumar/Sivakumar `K^(p)` distance for top-k lists (the
//!   paper's `D`), with the neutral penalty `p = 1/2` as default;
//! * [`footrule`] — Spearman footrule with location parameter, as a
//!   cross-check metric;
//! * [`Tournament`] — pairwise precedence weights of a weighted set of
//!   lists;
//! * [`aggregate`] — the Optimal Rank Aggregation (Soliman et al.
//!   SIGMOD'11): exact bitmask DP for small candidate sets, polished
//!   heuristics (Borda / Copeland / KwikSort + local search) for large
//!   ones.
//!
//! ## Example
//!
//! ```
//! use ctk_rank::{RankList, Tournament};
//! use ctk_rank::aggregate::{optimal_rank_aggregation, AggregateConfig};
//! use ctk_rank::topk::topk_distance;
//!
//! // Three possible top-3 results with probabilities.
//! let lists = [
//!     (RankList::new(vec![0, 1, 2]).unwrap(), 0.5),
//!     (RankList::new(vec![1, 0, 2]).unwrap(), 0.3),
//!     (RankList::new(vec![0, 2, 1]).unwrap(), 0.2),
//! ];
//! let t = Tournament::from_weighted_lists(&lists);
//! let ora = optimal_rank_aggregation(&t, &AggregateConfig::default()).unwrap();
//! assert_eq!(ora.ordering.items(), &[0, 1, 2]);
//!
//! // How far is the second-most-likely list from the ORA?
//! let d = topk_distance(&lists[1].0, &ora.ordering);
//! assert!(d > 0.0 && d < 0.5);
//! ```

pub mod aggregate;
pub mod error;
pub mod footrule;
pub mod kendall;
pub mod list;
pub mod topk;
pub mod tournament;

pub use error::{RankError, Result};
pub use list::RankList;
pub use tournament::Tournament;
