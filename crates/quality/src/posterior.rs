//! Per-worker accuracy belief: a Beta posterior over the latent
//! probability that the worker answers a pairwise question correctly.
//!
//! The conjugate Beta(α, β) model is the standard online estimator for a
//! Bernoulli rate: each answer graded correct bumps α, each graded wrong
//! bumps β, and the mean α/(α+β) is the point estimate the fusion and
//! routing layers consume. Grading is against the *fused consensus* (the
//! platform never sees ground truth), optionally refined by the EM pass
//! in [`crate::estimator`] or seeded by gold questions.

use crate::error::QualityError;

/// How hard the mean is clamped before converting to log-odds: bounds the
/// weight any single worker can carry (|w| <= ln(99) ≈ 4.6) and keeps the
/// conversion finite at the posterior extremes.
const LOG_ODDS_CLAMP: f64 = 0.01;

/// Conjugate Beta posterior over one worker's accuracy.
#[derive(Debug, Clone, PartialEq)]
pub struct BetaPosterior {
    alpha: f64,
    beta: f64,
    prior_alpha: f64,
    prior_beta: f64,
    observations: u64,
}

impl BetaPosterior {
    /// Creates a posterior at its prior Beta(α₀, β₀).
    ///
    /// Fails with [`QualityError::InvalidPrior`] unless both pseudo-counts
    /// are positive and finite.
    pub fn new(prior_alpha: f64, prior_beta: f64) -> Result<Self, QualityError> {
        let valid = |c: f64| c > 0.0 && c.is_finite();
        if !valid(prior_alpha) || !valid(prior_beta) {
            return Err(QualityError::InvalidPrior);
        }
        Ok(Self {
            alpha: prior_alpha,
            beta: prior_beta,
            prior_alpha,
            prior_beta,
            observations: 0,
        })
    }

    /// The default prior Beta(3, 1): mean 0.75, i.e. "workers are
    /// probably decent but far from certain" — weak enough that a dozen
    /// graded answers dominate it.
    pub fn nominal() -> Self {
        Self {
            alpha: 3.0,
            beta: 1.0,
            prior_alpha: 3.0,
            prior_beta: 1.0,
            observations: 0,
        }
    }

    /// Records one answer graded against the consensus.
    pub fn observe(&mut self, correct: bool) {
        if correct {
            self.alpha += 1.0;
        } else {
            self.beta += 1.0;
        }
        self.observations += 1;
    }

    /// Records one answer with soft credit `p_correct` in `[0, 1]` (the
    /// EM E-step's responsibility).
    pub fn observe_soft(&mut self, p_correct: f64) {
        let p = p_correct.clamp(0.0, 1.0);
        self.alpha += p;
        self.beta += 1.0 - p;
        self.observations += 1;
    }

    /// Replaces the accumulated evidence with `correct`/`wrong` soft
    /// counts on top of the prior, keeping the observation counter (the
    /// history was re-interpreted, not re-collected). Negative or
    /// non-finite counts are treated as zero.
    pub fn set_evidence(&mut self, correct: f64, wrong: f64) {
        let sane = |x: f64| if x.is_finite() && x > 0.0 { x } else { 0.0 };
        self.alpha = self.prior_alpha + sane(correct);
        self.beta = self.prior_beta + sane(wrong);
    }

    /// Forgets all evidence: back to the prior, zero observations. Used
    /// on quarantine re-admission so a returning worker is re-judged
    /// fresh rather than instantly re-quarantined on stale counts.
    pub fn reset(&mut self) {
        self.alpha = self.prior_alpha;
        self.beta = self.prior_beta;
        self.observations = 0;
    }

    /// Posterior mean `α / (α + β)` — the point estimate of the worker's
    /// accuracy.
    pub fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// Answers graded into this posterior (hard or soft).
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// The prior pseudo-counts (α₀, β₀) this posterior started from.
    pub fn prior(&self) -> (f64, f64) {
        (self.prior_alpha, self.prior_beta)
    }

    /// The fusion weight: `ln(p / (1 - p))` of the clamped posterior
    /// mean. Positive for better-than-coin-flip workers, negative for
    /// adversarial ones (whose votes then count as evidence for the
    /// opposite answer), zero at exactly 0.5.
    pub fn log_odds(&self) -> f64 {
        log_odds(self.mean())
    }
}

/// `ln(p / (1 - p))` with `p` clamped away from {0, 1} (see
/// [`LOG_ODDS_CLAMP`]) so the weight stays finite and bounded.
pub fn log_odds(p: f64) -> f64 {
    let p = p.clamp(LOG_ODDS_CLAMP, 1.0 - LOG_ODDS_CLAMP);
    (p / (1.0 - p)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_validation() {
        assert!(BetaPosterior::new(1.0, 1.0).is_ok());
        for (a, b) in [(0.0, 1.0), (1.0, 0.0), (-1.0, 1.0), (f64::NAN, 1.0)] {
            assert_eq!(
                BetaPosterior::new(a, b).unwrap_err(),
                QualityError::InvalidPrior,
                "Beta({a}, {b}) must be rejected"
            );
        }
        assert_eq!(
            BetaPosterior::new(1.0, f64::INFINITY).unwrap_err(),
            QualityError::InvalidPrior
        );
    }

    #[test]
    fn nominal_prior_mean() {
        let p = BetaPosterior::nominal();
        assert!((p.mean() - 0.75).abs() < 1e-12);
        assert_eq!(p.observations(), 0);
        assert_eq!(p.prior(), (3.0, 1.0));
    }

    #[test]
    fn converges_to_known_accuracy() {
        // Satellite edge case: a worker correct 80% of the time should
        // pull the posterior mean to ~0.8 regardless of the prior.
        let mut p = BetaPosterior::nominal();
        for i in 0..1000u32 {
            p.observe(i % 5 != 0); // 800 correct, 200 wrong
        }
        assert!((p.mean() - 0.8).abs() < 0.01, "mean = {}", p.mean());
        assert_eq!(p.observations(), 1000);

        // Spammer: posterior collapses toward 0.5 from a deliberately
        // alternating record.
        let mut s = BetaPosterior::nominal();
        for i in 0..1000u32 {
            s.observe(i % 2 == 0);
        }
        assert!((s.mean() - 0.5).abs() < 0.01, "mean = {}", s.mean());
    }

    #[test]
    fn soft_observations_accumulate_fractionally() {
        let mut p = BetaPosterior::new(1.0, 1.0).expect("valid prior");
        for _ in 0..100 {
            p.observe_soft(0.9);
        }
        assert!((p.mean() - 0.9).abs() < 0.02, "mean = {}", p.mean());
        // Out-of-range responsibilities are clamped, not amplified.
        p.observe_soft(7.0);
        p.observe_soft(-3.0);
        assert!(p.mean() <= 1.0 && p.mean() >= 0.0);
    }

    #[test]
    fn set_evidence_replaces_counts_on_top_of_prior() {
        let mut p = BetaPosterior::new(2.0, 2.0).expect("valid prior");
        p.observe(true);
        p.observe(true);
        p.set_evidence(8.0, 2.0);
        // Beta(2+8, 2+2) -> mean 10/14.
        assert!((p.mean() - 10.0 / 14.0).abs() < 1e-12);
        assert_eq!(p.observations(), 2, "observation count is preserved");
        // Garbage evidence degrades to the prior, not to NaN.
        p.set_evidence(f64::NAN, -1.0);
        assert!((p.mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_restores_the_prior() {
        let mut p = BetaPosterior::nominal();
        for _ in 0..50 {
            p.observe(false);
        }
        assert!(p.mean() < 0.2);
        p.reset();
        assert!((p.mean() - 0.75).abs() < 1e-12);
        assert_eq!(p.observations(), 0);
    }

    #[test]
    fn log_odds_signs_and_bounds() {
        assert!(log_odds(0.5).abs() < 1e-12);
        assert!(log_odds(0.9) > 0.0);
        assert!(log_odds(0.1) < 0.0);
        assert!((log_odds(0.9) + log_odds(0.1)).abs() < 1e-12, "symmetry");
        // Clamped at the extremes: finite and bounded.
        assert!(log_odds(1.0).is_finite());
        assert!(log_odds(0.0).is_finite());
        assert!(log_odds(1.0) <= (99.0f64).ln() + 1e-12);
    }
}
