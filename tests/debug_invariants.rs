//! Exercises the `debug-invariants` runtime checks end to end. The whole
//! file is compiled only with the feature on (CI's debug-invariants job);
//! each test drives a path whose gated asserts would fire on a violation:
//! the budget ledger's overspend check, the world model's
//! renormalize-to-M check, and the scheduler's ceil(n / fanout) deficit
//! bound.

#![cfg(feature = "debug-invariants")]

use crowd_topk::crowd::worker::NoisyWorker;
use crowd_topk::crowd::{CrowdSimulator, GroundTruth, VotePolicy};
use crowd_topk::prelude::*;
use crowd_topk::tpo::build::{Engine, McConfig};

fn overlapping_table(n: usize) -> UncertainTable {
    UncertainTable::new(
        (0..n)
            .map(|i| ScoreDist::uniform_centered(0.15 * i as f64, 0.6).unwrap())
            .collect(),
    )
    .unwrap()
}

/// A noisy incremental session: every answer routes through
/// `apply_answer_noisy` (renormalize-to-M assert) and every purchase
/// through `BudgetLedger::record` (overspend assert).
#[test]
fn noisy_session_passes_ledger_and_world_checks() {
    let table = overlapping_table(8);
    let truth = GroundTruth::sample(&table, 7);
    let top = truth.top_k(3);
    let mut crowd = CrowdSimulator::new(
        GroundTruth::sample(&table, 7),
        NoisyWorker::new(0.8, 11),
        VotePolicy::Majority(3),
        36,
    )
    .expect("valid vote policy");
    let report = CrowdTopK::new(table)
        .k(3)
        .budget(12)
        .algorithm(Algorithm::Incr {
            questions_per_round: 2,
        })
        .monte_carlo(3_000, 5)
        .run_with_truth(&mut crowd, &top)
        .unwrap();
    assert!(report.questions_asked() <= 12);
    assert!(crowd.ledger().spent() <= crowd.ledger().budget());
}

/// A multi-tenant service under bounded fanout: every `tick` runs the
/// scheduler's deficit tracker.
#[test]
fn sharded_service_respects_scheduler_deficit_bound() {
    let table = overlapping_table(6);
    let config = SessionConfig {
        k: 2,
        budget: 4,
        measure: MeasureKind::WeightedEntropy,
        algorithm: Algorithm::T1On,
        engine: Engine::MonteCarlo(McConfig::fixed(2_000, 3)),
        seed: 3,
        uncertainty_target: None,
    };
    let mut svc = TopKService::new(
        CrowdSimulator::new(
            GroundTruth::sample(&table, 3),
            NoisyWorker::new(0.9, 5),
            VotePolicy::Single,
            1_000,
        )
        .expect("valid vote policy"),
    )
    .with_fanout(2);
    let mut ids = Vec::new();
    for _ in 0..5 {
        ids.push(
            svc.submit(&table, SessionSpec::new(config.clone()))
                .unwrap(),
        );
    }
    svc.run_to_completion();
    for id in ids {
        assert_eq!(svc.state(id), Some(SessionState::Done));
    }
}
