//! # ctk-service — multi-session query serving
//!
//! Serving layer of the `crowd-topk` workspace (reproduction of
//! *“Crowdsourcing for Top-K Query Processing over Uncertain Data”*,
//! Ciceri et al., ICDE 2016 / TKDE 28(1)): runs many uncertainty-reduction
//! sessions concurrently against **one** shared crowd backend — the regime
//! a real crowdsourcing platform operates in, where questions from many
//! simultaneous queries are multiplexed over the same worker pool.
//!
//! The layer is built on the sans-IO [`ctk_core::driver::SessionDriver`]:
//! each session is a state machine that emits question batches and absorbs
//! answers, and this crate owns the dispatch:
//!
//! * [`registry`] — session registry: per-session budgets and lifecycle
//!   states (queued / awaiting-answers / done / failed);
//! * [`scheduler`] — priority-first, round-robin-within-priority round
//!   planning with bounded fanout;
//! * [`batcher`] — cross-session question batching with an
//!   [`AnswerCache`]: identical pairwise questions from different tenants
//!   are answered once, then served from memory, before any crowd budget
//!   is spent;
//! * [`service`] — [`TopKService`], the round loop tying them together;
//! * [`metrics`] — throughput / latency / cache-hit accounting.
//!
//! With reliable (accuracy-1) workers the multiplexing is *lossless*:
//! every session's final report equals the one the standalone blocking
//! [`ctk_core::session::UrSession::run`] produces under the same seed —
//! the integration suite pins this for 32 concurrent tenants. See
//! DESIGN.md §7 for the architecture discussion.

pub mod batcher;
pub mod metrics;
pub mod registry;
pub mod scheduler;
pub mod service;

pub use batcher::{AnswerCache, RoundStats, ServedAnswer, SessionAnswers};
pub use metrics::ServiceMetrics;
pub use registry::{Registry, SessionId, SessionSpec, SessionState};
pub use scheduler::Scheduler;
pub use service::{RoundOutcome, TopKService};
