#![forbid(unsafe_code)]
#![deny(warnings)]
//! # ctk-core — crowdsourced uncertainty reduction for top-K queries
//!
//! The primary contribution of the `crowd-topk` workspace: a faithful
//! implementation of *“Crowdsourcing for Top-K Query Processing over
//! Uncertain Data”* (Ciceri, Fraternali, Martinenghi, Tagliasacchi — ICDE
//! 2016 / TKDE 28(1):41–53).
//!
//! Given a relation whose tuple scores are uncertain (pdfs), a top-K query
//! admits a whole *space of possible orderings*. This crate selects the
//! pairwise questions to pose to a crowd so that, within a budget `B`, the
//! expected residual uncertainty of the result is minimized:
//!
//! * [`measures`] — the four uncertainty measures `U_H`, `U_Hw`, `U_ORA`,
//!   `U_MPO` (§II);
//! * [`residual`] — expected residual uncertainty `R_q` / `R_Q` via
//!   answer-signature partitioning (§III);
//! * [`select`] — the seven selection strategies: `A*-off`, `TB-off`,
//!   `C-off` (offline), `A*-on`, `T1-on` (online), `random`, `naive`
//!   (baselines) (§III-A/B);
//! * [`driver`] — the sans-IO session state machine
//!   (`next_batch`/`feed`), the unit a scheduler multiplexes;
//! * [`session`] — the uncertainty-reduction loop, including noisy-worker
//!   Bayesian updates (§III-C) and the incremental `incr` algorithm
//!   (§III-D), as a thin blocking wrapper over the driver;
//! * [`metrics`] — evaluation metrics (`D(ω_r, T_K)`, Fig. 1(a));
//! * [`engine`] — the [`engine::CrowdTopK`] facade.
//!
//! ## Quick start
//!
//! ```
//! use ctk_core::prelude::*;
//! use ctk_prob::{ScoreDist, UncertainTable};
//!
//! // Five items with overlapping uncertain scores.
//! let table = UncertainTable::new((0..5).map(|i| {
//!     ScoreDist::uniform_centered(i as f64 * 0.2, 0.5).unwrap()
//! }).collect()).unwrap();
//!
//! // A simulated crowd that knows the hidden true scores.
//! let truth = GroundTruth::sample(&table, 2024);
//! let real_top2 = truth.top_k(2);
//! let mut crowd = CrowdSimulator::new(truth, PerfectWorker, VotePolicy::Single, 12).expect("valid vote policy");
//!
//! let report = CrowdTopK::new(table)
//!     .k(2)
//!     .budget(12)
//!     .algorithm(Algorithm::T1On)
//!     .monte_carlo(4_000, 7)
//!     .run_with_truth(&mut crowd, &real_top2)
//!     .unwrap();
//!
//! // Crowd answers shrink the space of orderings monotonically.
//! assert!(report.final_orderings() <= report.initial_orderings);
//! ```

pub mod driver;
pub mod engine;
pub mod error;
pub mod measures;
pub mod metrics;
pub mod residual;
pub mod select;
pub mod session;

pub use error::{CoreError, Result};

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::driver::{DriverStatus, SessionDriver};
    pub use crate::engine::CrowdTopK;
    pub use crate::measures::MeasureKind;
    pub use crate::metrics::expected_distance_to_truth;
    pub use crate::session::{Algorithm, SessionConfig, UrReport, UrSession};
    pub use ctk_crowd::{
        Crowd, CrowdSimulator, GroundTruth, NoisyWorker, PerfectWorker, Question, VotePolicy,
        WorkerPool,
    };
}
