//! What a top-k path implies about a pairwise question.
//!
//! The crowd question `q = (t_i ?≺ t_j)` asks whether `t_i` ranks above
//! `t_j`. A top-k path constrains the answer in three ways (§III of the
//! paper, extended to top-k membership semantics):
//!
//! * both tuples on the path — the path fixes their order;
//! * exactly one on the path — the present tuple is in the top-k and the
//!   absent one below it, so the present tuple ranks above;
//! * neither on the path — both are below rank k and the path says nothing.

/// What a path implies about “does `i` rank above `j`?”.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Implication {
    /// The path implies `i` ranks above `j`.
    Yes,
    /// The path implies `j` ranks above `i`.
    No,
    /// The path does not determine the pair's order.
    Undetermined,
}

impl Implication {
    /// True if an answer `yes` to the question is consistent with this
    /// implication.
    pub fn consistent_with(self, yes: bool) -> bool {
        match self {
            Implication::Yes => yes,
            Implication::No => !yes,
            Implication::Undetermined => true,
        }
    }
}

/// Implication of path `items` (best first) for the question
/// “does `i` rank above `j`?”.
pub fn implication(items: &[u32], i: u32, j: u32) -> Implication {
    let mut pos_i = None;
    let mut pos_j = None;
    for (p, &it) in items.iter().enumerate() {
        if it == i {
            pos_i = Some(p);
        } else if it == j {
            pos_j = Some(p);
        }
        if pos_i.is_some() && pos_j.is_some() {
            break;
        }
    }
    match (pos_i, pos_j) {
        (Some(a), Some(b)) => {
            if a < b {
                Implication::Yes
            } else {
                Implication::No
            }
        }
        (Some(_), None) => Implication::Yes,
        (None, Some(_)) => Implication::No,
        (None, None) => Implication::Undetermined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_present() {
        assert_eq!(implication(&[3, 1, 2], 3, 2), Implication::Yes);
        assert_eq!(implication(&[3, 1, 2], 2, 3), Implication::No);
        assert_eq!(implication(&[3, 1, 2], 1, 2), Implication::Yes);
    }

    #[test]
    fn one_present_membership_semantics() {
        // 5 is not in the top-3: everything on the path ranks above it.
        assert_eq!(implication(&[3, 1, 2], 1, 5), Implication::Yes);
        assert_eq!(implication(&[3, 1, 2], 5, 1), Implication::No);
    }

    #[test]
    fn neither_present() {
        assert_eq!(implication(&[3, 1, 2], 7, 5), Implication::Undetermined);
        assert_eq!(implication(&[], 0, 1), Implication::Undetermined);
    }

    #[test]
    fn consistency() {
        assert!(Implication::Yes.consistent_with(true));
        assert!(!Implication::Yes.consistent_with(false));
        assert!(Implication::No.consistent_with(false));
        assert!(!Implication::No.consistent_with(true));
        assert!(Implication::Undetermined.consistent_with(true));
        assert!(Implication::Undetermined.consistent_with(false));
    }

    #[test]
    fn antisymmetry() {
        // implication(i, j) == Yes  <=>  implication(j, i) == No.
        let path = [4u32, 0, 2];
        for &(i, j) in &[(4u32, 0u32), (0, 2), (4, 2), (0, 9), (9, 7)] {
            let ij = implication(&path, i, j);
            let ji = implication(&path, j, i);
            match ij {
                Implication::Yes => assert_eq!(ji, Implication::No),
                Implication::No => assert_eq!(ji, Implication::Yes),
                Implication::Undetermined => assert_eq!(ji, Implication::Undetermined),
            }
        }
    }
}
