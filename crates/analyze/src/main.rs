#![forbid(unsafe_code)]
#![deny(warnings)]
//! `ctk-analyze` CLI: the blocking CI gate.
//!
//! ```text
//! ctk-analyze check [--root <path>]   # scan the workspace; exit 1 on findings
//! ctk-analyze rules                   # print the rule registry
//! ```

use ctk_analyze::{check_workspace, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: ctk-analyze <check [--root <path>] | rules>");
            ExitCode::from(2)
        }
    }
}

fn run_check(args: &[String]) -> ExitCode {
    let root = match parse_root(args) {
        Ok(root) => root,
        Err(msg) => {
            eprintln!("ctk-analyze: {msg}");
            return ExitCode::from(2);
        }
    };
    match check_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("ctk-analyze: workspace clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{}", f.render());
            }
            println!(
                "ctk-analyze: {} finding(s). Fix them or suppress a site with \
                 `// ctk-allow(<rule>): <reason>` (see DESIGN.md §11).",
                findings.len()
            );
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("ctk-analyze: {msg}");
            ExitCode::from(2)
        }
    }
}

fn parse_root(args: &[String]) -> Result<PathBuf, String> {
    match args {
        [] => {
            // Built by cargo inside the workspace: the manifest dir is
            // crates/analyze, two levels below the workspace root.
            let manifest: PathBuf = env!("CARGO_MANIFEST_DIR").into();
            manifest
                .parent()
                .and_then(|p| p.parent())
                .map(PathBuf::from)
                .ok_or_else(|| "cannot locate the workspace root; pass --root".to_string())
        }
        [flag, path] if flag == "--root" => Ok(PathBuf::from(path)),
        other => Err(format!("unrecognized arguments: {other:?}")),
    }
}

fn print_rules() {
    println!("{:<26} {:<12} summary", "rule id", "family");
    for r in RULES {
        println!("{:<26} {:<12} {}", r.id, r.family, r.summary);
    }
}
