//! Borda-count heuristic: rank candidates by total pairwise support.
//!
//! A 5-approximation for Kemeny aggregation on majority tournaments; cheap
//! (`O(n^2)`) and a strong seed for local search.

use crate::tournament::Tournament;

/// Orders candidate indices by descending Borda score
/// `score(a) = Σ_b w(a, b)`; ties break by candidate index for determinism.
pub fn borda(t: &Tournament) -> Vec<usize> {
    let n = t.len();
    let mut scored: Vec<(f64, usize)> = (0..n)
        .map(|a| {
            let s: f64 = (0..n).filter(|&b| b != a).map(|b| t.weight(a, b)).sum();
            (s, a)
        })
        .collect();
    scored.sort_unstable_by(|x, y| y.0.total_cmp(&x.0).then(x.1.cmp(&y.1)));
    scored.into_iter().map(|(_, a)| a).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::RankList;

    #[test]
    fn unanimous_input_is_recovered() {
        let l = RankList::new(vec![2, 0, 1]).unwrap();
        let t = Tournament::from_weighted_lists(&[(l, 1.0)]);
        let order = borda(&t);
        let items: Vec<u32> = order.iter().map(|&i| t.items()[i]).collect();
        assert_eq!(items, vec![2, 0, 1]);
    }

    #[test]
    fn output_is_a_permutation() {
        let t = Tournament::from_fn((0..7).collect(), |u, v| if u < v { 0.3 } else { 0.7 });
        let mut order = borda(&t);
        order.sort_unstable();
        assert_eq!(order, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn reversed_majority_reverses_order() {
        // w(u,v) = 0.7 when u > v: larger ids tend to precede.
        let t = Tournament::from_fn((0..5).collect(), |u, v| if u > v { 0.7 } else { 0.3 });
        let order = borda(&t);
        let items: Vec<u32> = order.iter().map(|&i| t.items()[i]).collect();
        assert_eq!(items, vec![4, 3, 2, 1, 0]);
    }
}
