//! The serving loop: multiplexes many [`SessionDriver`]s over one shared
//! crowd backend, in one of two run modes over a shard-owned core
//! (DESIGN.md §14).
//!
//! Sessions are strided across [`Shard`]s by id; each shard owns its
//! registry, scheduler queues, budget-grant ledger and an event
//! ready-queue end to end. The answer cache shards separately, by
//! question hash, because an answer is a fact about a pair of objects,
//! not about the session that asked.
//!
//! **Tick mode** ([`RunMode::Tick`], the default) preserves the classic
//! barrier round bit-exactly: the **gather** phase (sharded across
//! `std::thread::scope` worker chunks) asks every scheduled driver for
//! its next question batch; the **purchase** phase (sequential, single
//! crowd) funnels the merged demand through the cache-first batcher so
//! budget accounting and cache semantics are identical to the
//! single-threaded loop; the **feed** phase (sharded again) applies the
//! answers to each session's belief. At one shard this *is* the
//! pre-refactor loop — pinned by the `many_tenants` suite.
//!
//! **Event mode** ([`RunMode::Event`]) replaces the barrier with
//! [`TopKService::pump`] sweeps that drain each shard's typed ready-queue
//! ([`Event`]): sessions resolve their batches independently, spend crowd
//! budget only through grants the reconciler issues against parked
//! demand, and a sweep that neither schedules, drains, nor grants is
//! decisively *not* progress — which is how
//! [`TopKService::run_until_quiescent`] tells "blocked on the crowd"
//! ([`Quiescence::BlockedOnCrowd`]) apart from a livelock.
//!
//! **Threaded event mode** ([`RunMode::EventThreaded`], DESIGN.md §15)
//! runs the same event sweeps with each shard owned end to end by a
//! dedicated worker thread, the calling thread coordinating the two
//! global phases — the cache-first purchase merge and the grant
//! reconciler — over `mpsc` channels at an explicit shard-order barrier
//! (see the `topology` module). Reports are `same_outcome` with
//! single-threaded event mode at every (shards, threads) combination,
//! because both modes drive one shared purchase-loop implementation
//! through the identical global operation order.
//!
//! Drivers are independent state machines (`SessionDriver: Send`,
//! disjoint `&mut` borrows via the shard-aware registry); every
//! cross-session effect — scheduling order, crowd spending, cache
//! population, metrics — happens sequentially in shard-index order, so
//! per-tenant reports are deterministic at any worker thread count and
//! any fixed shard count.

use crate::batcher::{
    resolve_pending, resolve_round_routed, Disposition, SessionAnswers, ShardedAnswerCache,
};
use crate::error::ServiceError;
use crate::metrics::ServiceMetrics;
use crate::registry::{Registry, SessionEntry, SessionId, SessionSpec, SessionState};
use crate::scheduler::Scheduler;
use crate::shard::{Event, Quiescence, Shard, ShardLedger};
use ctk_core::driver::{DriverStatus, SessionDriver};
use ctk_core::session::UrReport;
use ctk_core::{CoreError, Result};
use ctk_crowd::{Crowd, Question, RouteHint};
use ctk_prob::compare::PairwiseMatrix;
use ctk_prob::{TopKBounds, UncertainTable};
use ctk_quality::QuestionRouter;
use ctk_rank::RankList;
use ctk_tpo::build::Engine;
use std::sync::Arc;
use std::time::Instant;

/// How the service advances its sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunMode {
    /// Classic barrier rounds: every [`TopKService::tick`] plans,
    /// gathers, purchases and feeds in lock-step. At one shard this is
    /// the pre-shard loop, preserved bit-exactly.
    #[default]
    Tick,
    /// Event-driven sweeps: [`TopKService::pump`] drains each shard's
    /// ready-queue and resolves sessions independently, spending crowd
    /// budget only through reconciled grants. Blocked-on-crowd is
    /// distinguishable from idle (see [`Quiescence`]).
    Event,
    /// Event sweeps on the threaded topology: one worker thread per
    /// shard, the calling thread coordinating purchases and grants at a
    /// shard-order barrier (DESIGN.md §15). Per-tenant reports are
    /// `same_outcome` with [`RunMode::Event`] at any (shards, threads)
    /// combination; the threads only buy wall clock.
    EventThreaded,
}

/// What one scheduling round (tick) or sweep (pump) did.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundOutcome {
    /// Sessions the scheduler picked.
    pub scheduled: usize,
    /// Answers delivered to sessions.
    pub answers_served: u64,
    /// Answers that came from the cache.
    pub cache_hits: u64,
    /// Sessions that reached `Done` or `Failed`.
    pub finished: usize,
    /// Events drained from shard ready-queues (lifecycle markers, answer
    /// deliveries, budget grants being consumed).
    pub events: u64,
    /// Budget-grant units the reconciler issued this sweep (event mode).
    pub budget_granted: u64,
}

impl RoundOutcome {
    /// True when the round moved any session forward — or issued a grant
    /// that will. A sweep that neither schedules, drains, finishes, nor
    /// grants cannot unblock anything by being repeated.
    pub fn progressed(&self) -> bool {
        self.scheduled > 0
            || self.finished > 0
            || self.answers_served > 0
            || self.events > 0
            || self.budget_granted > 0
    }

    /// Folds a sub-outcome in (the threaded coordinator merges worker
    /// sweep outcomes in shard order).
    pub(crate) fn merge(&mut self, other: &RoundOutcome) {
        self.scheduled += other.scheduled;
        self.answers_served += other.answers_served;
        self.cache_hits += other.cache_hits;
        self.finished += other.finished;
        self.events += other.events;
        self.budget_granted += other.budget_granted;
    }
}

/// One served table's shared derived state: the pairwise matrix plus the
/// certain/possible top-K bounds per query depth seen so far.
struct TableCacheEntry {
    table: UncertainTable,
    pairwise: Arc<PairwiseMatrix>,
    bounds: Vec<(usize, Arc<TopKBounds>)>,
}

/// Read-only view over every shard's registry, presented as one logical
/// session table (what [`TopKService::registry`] hands out).
pub struct RegistryView<'a> {
    shards: &'a [Shard],
}

impl RegistryView<'_> {
    fn registry_of(&self, id: SessionId) -> &Registry {
        &self.shards[(id.0 % self.shards.len() as u64) as usize].registry
    }

    /// Total registered sessions.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|sh| sh.registry.len()).sum()
    }

    /// True when nothing was ever submitted.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|sh| sh.registry.is_empty())
    }

    /// Sessions not yet done or failed.
    pub fn active(&self) -> usize {
        self.shards.iter().map(|sh| sh.registry.active()).sum()
    }

    /// Lifecycle state of a session.
    pub fn state(&self, id: SessionId) -> Option<SessionState> {
        self.registry_of(id).state(id)
    }

    /// Final report of a `Done` session.
    pub fn report(&self, id: SessionId) -> Option<&UrReport> {
        self.registry_of(id).report(id)
    }

    /// Error of a `Failed` session.
    pub fn error(&self, id: SessionId) -> Option<&CoreError> {
        self.registry_of(id).error(id)
    }

    /// Questions answered for a session so far (cached + live).
    pub fn questions_served(&self, id: SessionId) -> Option<usize> {
        self.registry_of(id).questions_served(id)
    }

    /// Enqueue-to-done latency of a finished session.
    pub fn latency(&self, id: SessionId) -> Option<std::time::Duration> {
        self.registry_of(id).latency(id)
    }

    /// All session ids in submission order.
    pub fn ids(&self) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = self
            .shards
            .iter()
            .flat_map(|sh| sh.registry.ids())
            .collect();
        ids.sort_unstable();
        ids
    }
}

/// A multi-tenant top-K query service over one crowd backend.
///
/// Sessions are submitted with [`TopKService::submit`] and served in
/// rounds: each [`TopKService::tick`] asks the scheduler which sessions
/// run, gathers their next question batches from the sans-IO drivers,
/// deduplicates the batch through the answer cache, spends crowd budget
/// only on cache misses, and feeds the answers back. With reliable
/// (accuracy-1) workers, every session's final report is identical to the
/// one a standalone [`ctk_core::session::UrSession::run`] produces under
/// the same seed — the cache serves facts, not approximations.
///
/// ```
/// use ctk_core::measures::MeasureKind;
/// use ctk_core::session::{Algorithm, SessionConfig};
/// use ctk_crowd::{CrowdSimulator, GroundTruth, PerfectWorker, VotePolicy};
/// use ctk_prob::{ScoreDist, UncertainTable};
/// use ctk_service::{SessionSpec, TopKService};
/// use ctk_tpo::build::{Engine, McConfig};
///
/// let table = UncertainTable::new((0..5).map(|i| {
///     ScoreDist::uniform_centered(0.2 * i as f64, 0.5).unwrap()
/// }).collect()).unwrap();
/// let truth = GroundTruth::sample(&table, 1);
/// let crowd = CrowdSimulator::new(truth, PerfectWorker, VotePolicy::Single, 1000).expect("valid vote policy");
///
/// let mut service = TopKService::new(crowd);
/// let config = SessionConfig {
///     k: 2,
///     budget: 6,
///     measure: MeasureKind::WeightedEntropy,
///     algorithm: Algorithm::T1On,
///     engine: Engine::MonteCarlo(McConfig::fixed(1500, 3)),
///     seed: 0,
///     uncertainty_target: None,
/// };
/// let a = service.submit(&table, SessionSpec::new(config.clone())).unwrap();
/// let b = service.submit(&table, SessionSpec::new(config)).unwrap();
/// service.run_to_completion();
///
/// // Identical configs: the second tenant rides the first one's answers.
/// assert!(service.report(a).unwrap().same_outcome(service.report(b).unwrap()));
/// assert!(service.metrics().cache_hits > 0);
/// ```
pub struct TopKService<C: Crowd> {
    crowd: C,
    cache: ShardedAnswerCache,
    shards: Vec<Shard>,
    /// Per-shard budget-grant ledgers, indexed like `shards`. Kept beside
    /// the crowd (not inside [`Shard`]) because grants are coordinator
    /// state: in the threaded topology the workers own the shards while
    /// the coordinator owns crowd + cache + ledgers, and every spend goes
    /// through the sequential purchase path.
    ledgers: Vec<ShardLedger>,
    /// Global id counter; ids stride across shards (`shard = id mod n`).
    next_id: u64,
    run_mode: RunMode,
    metrics: ServiceMetrics,
    /// Worker threads the gather/feed phases shard over (>= 1; 1 runs the
    /// classic sequential loop, any value produces bit-identical reports).
    threads: usize,
    /// Per-shard scheduler fanout, remembered so `with_shards` can rebuild.
    fanout: Option<usize>,
    /// One pairwise matrix per distinct table served: the n² comparisons
    /// dominate session setup, and tenants querying the same relation
    /// share a single `Arc` instead of recomputing per submit. Cache
    /// misses run `PairwiseMatrix::compute` — since PR 5 the analytic
    /// sweep-line fast path (DESIGN.md §10), so even the first tenant on
    /// a table pays milliseconds, not the old per-pair quadratures. Each
    /// entry also caches the certain/possible [`TopKBounds`] per query
    /// depth served over the table, so repeat tenants skip the O(n²)
    /// dominance scan too.
    pairwise_cache: Vec<TableCacheEntry>,
    /// Optional belief-margin routing policy: when set, each live
    /// question carries a [`RouteHint`] derived from the asking session's
    /// current belief margin, which hint-aware crowds (e.g.
    /// `ctk_quality::QualityCrowd`) use to pick cheap vs expert panels.
    /// Hint-blind crowds ignore it, so routing never changes verdicts on
    /// the plain simulator.
    router: Option<QuestionRouter>,
}

impl<C: Crowd> TopKService<C> {
    /// A service over `crowd` with one shard, unbounded per-round fanout,
    /// tick run mode, sharding round work over all available cores.
    pub fn new(crowd: C) -> Self {
        let threads = default_threads();
        let mut metrics = ServiceMetrics::default();
        metrics.worker_threads = threads;
        metrics.init_shards(1);
        Self {
            crowd,
            cache: ShardedAnswerCache::new(1),
            shards: vec![Shard::new(None)],
            ledgers: vec![ShardLedger::default()],
            next_id: 0,
            run_mode: RunMode::default(),
            metrics,
            threads,
            fanout: None,
            pairwise_cache: Vec::new(),
            router: None,
        }
    }

    /// Partitions the serving core into `shards` shards (builder style;
    /// clamped to >= 1). Sessions stride across shards by id, the answer
    /// cache partitions by question hash, and each shard gets its own
    /// scheduler queues and budget ledger.
    ///
    /// # Errors
    ///
    /// [`ServiceError::TopologyAfterSubmit`] when sessions were already
    /// submitted — resharding would re-home live sessions
    /// (`shard = id mod shards`) and orphan their registries.
    pub fn with_shards(mut self, shards: usize) -> std::result::Result<Self, ServiceError> {
        if self.next_id != 0 {
            return Err(ServiceError::TopologyAfterSubmit {
                submitted: self.next_id,
            });
        }
        let n = shards.max(1);
        self.shards = (0..n).map(|_| Shard::new(self.fanout)).collect();
        self.ledgers = vec![ShardLedger::default(); n];
        self.cache = ShardedAnswerCache::new(n);
        self.metrics.init_shards(n);
        Ok(self)
    }

    /// Bounds how many sessions are served per round *per shard*
    /// (builder style).
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        self.fanout = Some(fanout);
        for shard in &mut self.shards {
            shard.scheduler = Scheduler::with_fanout(fanout);
        }
        self
    }

    /// Selects the run mode (builder style): barrier ticks or
    /// event-driven sweeps. Both modes produce equal per-tenant reports
    /// on reliable crowds with sufficient budget (pinned by tests).
    pub fn with_run_mode(mut self, mode: RunMode) -> Self {
        self.run_mode = mode;
        self
    }

    /// Sets how many worker threads the round loop shards session work
    /// over (builder style). `0` means all available cores; `1` runs the
    /// sequential loop. Reports are bit-identical at every setting — the
    /// knob only trades wall clock.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            default_threads()
        } else {
            threads
        };
        self.metrics.worker_threads = self.threads;
        self
    }

    /// Worker threads the round loop shards over.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of shards the serving core is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configured run mode.
    pub fn run_mode(&self) -> RunMode {
        self.run_mode
    }

    /// Budget-grant ledger of one shard (observability): lifetime grants,
    /// spends and reclaims, plus what is currently available.
    pub fn shard_ledger(&self, shard: usize) -> Option<&ShardLedger> {
        self.ledgers.get(shard)
    }

    /// Routes live questions by belief margin (builder style): questions
    /// the asking session is still torn about (margin below the router's
    /// narrow threshold) are hinted [`RouteHint::Expert`], near-settled
    /// ones [`RouteHint::Cheap`]. Only crowds that implement
    /// [`Crowd::ask_routed`] beyond the default act on the hints.
    pub fn with_router(mut self, router: QuestionRouter) -> Self {
        self.router = Some(router);
        self
    }

    /// The configured routing policy, if any.
    pub fn router(&self) -> Option<&QuestionRouter> {
        self.router.as_ref()
    }

    /// Registers a session over `table`. The TPO (or world sample) is
    /// built now, so an invalid configuration fails fast.
    pub fn submit(&mut self, table: &UncertainTable, spec: SessionSpec) -> Result<SessionId> {
        self.submit_with_truth(table, spec, None)
    }

    /// Like [`TopKService::submit`], additionally recording
    /// `D(ω_r, T_K)` per step against the given ground-truth top-K.
    pub fn submit_with_truth(
        &mut self,
        table: &UncertainTable,
        spec: SessionSpec,
        truth: Option<&RankList>,
    ) -> Result<SessionId> {
        let mut config = spec.config;
        if let (Some(p), Engine::MonteCarlo(mc)) = (spec.precision, &mut config.engine) {
            mc.precision = p;
        }
        let (pairwise, bounds) = self.table_entry_for(table, config.k);
        let driver = SessionDriver::new_shared(config, table, truth, pairwise, bounds)?;
        let id = SessionId(self.next_id);
        self.next_id += 1;
        let s = self.shard_of(id);
        self.shards[s].registry.insert(id, driver, spec.priority);
        self.shards[s].ready.push_back(Event::Submitted(id));
        self.metrics.submitted += 1;
        Ok(id)
    }

    /// At most this many distinct tables keep a cached pairwise matrix;
    /// beyond it the oldest entry is evicted (running sessions keep their
    /// matrix alive through their own `Arc`). Bounds both the memory held
    /// by retired tables and the per-submit equality scan.
    const MAX_PAIRWISE_CACHE: usize = 32;

    /// The shared pairwise matrix and certain/possible top-K bounds for
    /// `(table, k)`, computing both on first use. Bounds for an invalid
    /// depth are not computed (`None`): the driver rejects the config
    /// with its usual error instead.
    fn table_entry_for(
        &mut self,
        table: &UncertainTable,
        k: usize,
    ) -> (Arc<PairwiseMatrix>, Option<Arc<TopKBounds>>) {
        let idx = match self.pairwise_cache.iter().position(|e| &e.table == table) {
            Some(idx) => {
                // Move to the back so eviction is least-recently-used.
                let entry = self.pairwise_cache.remove(idx);
                self.pairwise_cache.push(entry);
                self.pairwise_cache.len() - 1
            }
            None => {
                let pw = Arc::new(PairwiseMatrix::compute(table));
                if self.pairwise_cache.len() >= Self::MAX_PAIRWISE_CACHE {
                    self.pairwise_cache.remove(0);
                }
                self.pairwise_cache.push(TableCacheEntry {
                    table: table.clone(),
                    pairwise: pw,
                    bounds: Vec::new(),
                });
                self.pairwise_cache.len() - 1
            }
        };
        let entry = &mut self.pairwise_cache[idx];
        let pw = Arc::clone(&entry.pairwise);
        if k == 0 || k > table.len() {
            return (pw, None);
        }
        if let Some((_, b)) = entry.bounds.iter().find(|(depth, _)| *depth == k) {
            return (pw, Some(Arc::clone(b)));
        }
        match TopKBounds::from_matrix(&pw, k) {
            Ok(b) => {
                let b = Arc::new(b);
                entry.bounds.push((k, Arc::clone(&b)));
                (pw, Some(b))
            }
            Err(_) => (pw, None),
        }
    }

    /// Distinct tables whose pairwise matrices are cached (observability
    /// for tests and dashboards).
    pub fn pairwise_tables_cached(&self) -> usize {
        self.pairwise_cache.len()
    }

    /// Distinct `(table, k)` certain/possible bound sets currently cached
    /// beside the pairwise matrices.
    pub fn bounds_cached(&self) -> usize {
        self.pairwise_cache.iter().map(|e| e.bounds.len()).sum()
    }

    /// The shard owning `id` (ids stride: `shard = id mod shards`).
    fn shard_of(&self, id: SessionId) -> usize {
        (id.0 % self.shards.len() as u64) as usize
    }

    /// Sessions not yet done or failed, across all shards.
    fn active(&self) -> usize {
        self.shards.iter().map(|sh| sh.registry.active()).sum()
    }

    /// Runs one barrier scheduling round. Returns what happened; a round
    /// over an idle service is a no-op.
    ///
    /// The round is three phases: gather (sharded), purchase
    /// (sequential), feed (sharded) — see the module docs. All lifecycle
    /// transitions and metrics happen in the sequential merge steps, in
    /// shard-major plan order, so the outcome is independent of the
    /// thread count, and at one shard bit-identical to the pre-shard
    /// loop.
    pub fn tick(&mut self) -> RoundOutcome {
        // ctk-allow(det-wall-clock): round-duration metric only; never feeds a decision
        let t0 = Instant::now();
        let mut outcome = RoundOutcome::default();
        for s in 0..self.shards.len() {
            self.drain_ready(s, &mut outcome);
        }
        // Mixed-mode safety: sessions parked by event pumping resume here
        // ungated (tick spends at purchase time, not through grants).
        let parked: Vec<(usize, SessionId)> = self
            .shards
            .iter()
            .enumerate()
            .flat_map(|(s, sh)| sh.registry.parked().into_iter().map(move |id| (s, id)))
            .collect();
        if !parked.is_empty() {
            for (s, id) in parked {
                self.resolve_session(s, id, false, &mut outcome);
            }
            for s in 0..self.shards.len() {
                self.drain_ready(s, &mut outcome);
            }
        }

        if self
            .shards
            .iter()
            .all(|sh| sh.registry.runnable().is_empty())
        {
            return outcome;
        }
        self.metrics.rounds += 1;
        let plans: Vec<Vec<SessionId>> = self
            .shards
            .iter_mut()
            .map(|sh| {
                let runnable = sh.registry.runnable();
                sh.scheduler.plan_round(&runnable)
            })
            .collect();
        let planned: Vec<(usize, SessionId)> = plans
            .iter()
            .enumerate()
            .flat_map(|(s, plan)| plan.iter().map(move |&id| (s, id)))
            .collect();
        outcome.scheduled = planned.len();

        // Gather phase (sharded): every scheduled driver computes its
        // next batch. The allowance is the *session's* remaining budget
        // only — the shared crowd's budget deliberately does not gate
        // emission, because the answer cache can serve a question at zero
        // crowd cost; only questions that actually need a live answer
        // starve (per-question, in the batcher below).
        let gathered = {
            let mut entries: Vec<&mut SessionEntry> = self
                .shards
                .iter_mut()
                .zip(&plans)
                .flat_map(|(sh, plan)| sh.registry.entries_mut_in_order(plan))
                .collect();
            run_sharded(&mut entries, self.threads, |entry| {
                let allowance = entry.ledger.remaining();
                // ctk-allow(panic-unwrap): queued entries always hold a driver; a silent skip would misattribute answers
                let driver = entry.driver.as_mut().expect("queued session has driver");
                driver.next_batch(allowance)
            })
        };

        // Merge: per-shard question demand funnels into one request list
        // in shard-major plan order; lifecycle transitions happen here,
        // sequentially. When a router is configured, each question is
        // tagged with the hint its session's *current* belief margin
        // implies — computed here, before any of this round's answers
        // move the belief.
        let router = self.router;
        let mut requests: Vec<(SessionId, Vec<(Question, RouteHint)>)> =
            Vec::with_capacity(planned.len());
        for (&(s, id), batch) in planned.iter().zip(gathered) {
            match batch {
                Ok(batch) if batch.is_empty() => {
                    self.finalize(id);
                    outcome.finished += 1;
                }
                Ok(batch) => {
                    let entry = self.shards[s]
                        .registry
                        .get_mut(id)
                        .expect("scheduled id exists"); // ctk-allow(panic-unwrap): plan ids come from this shard's registry this round
                    entry.state = SessionState::AwaitingAnswers;
                    requests.push((id, hint_batch(router.as_ref(), entry, batch)));
                }
                Err(err) => {
                    self.fail(id, err);
                    outcome.finished += 1;
                }
            }
        }

        // Purchase phase (sequential): resolve the cross-session batch
        // cache-first, crowd-second. The single crowd walk in plan order
        // keeps budget accounting and cache population identical to the
        // sequential loop regardless of how the other phases shard.
        // ctk-allow(det-wall-clock): purchase-duration metric only; never feeds a decision
        let p0 = Instant::now();
        let (served, stats) = resolve_round_routed(&requests, &mut self.crowd, &mut self.cache);
        self.metrics.purchase_time += p0.elapsed();
        for sa in &served {
            let s = self.shard_of(sa.id);
            let live = sa.answers.iter().filter(|a| !a.cached).count() as u64;
            self.ledgers[s].note_spend(live);
            self.metrics
                .record_shard_answers(s, sa.answers.len() as u64);
        }

        // Feed phase (sharded): apply each session's answers, each with
        // the accuracy it was actually bought at (a cached answer keeps
        // its purchase-time accuracy even if the backend's policy drifted
        // since). Ledger votes count *live* crowd interactions; cache
        // hits consume session budget but no crowd budget.
        let fed = {
            let mut by_shard: Vec<Vec<SessionId>> = vec![Vec::new(); self.shards.len()];
            for sa in &served {
                by_shard[self.shard_of(sa.id)].push(sa.id);
            }
            // `served` is in shard-major plan order, so the per-shard
            // concatenation below aligns positionally with it.
            let entries: Vec<&mut SessionEntry> = self
                .shards
                .iter_mut()
                .zip(&by_shard)
                .flat_map(|(sh, ids)| sh.registry.entries_mut_in_order(ids))
                .collect();
            let mut work: Vec<(&mut SessionEntry, &SessionAnswers)> =
                entries.into_iter().zip(served.iter()).collect();
            run_sharded(&mut work, self.threads, |(entry, sa)| {
                for ans in &sa.answers {
                    entry.ledger.record(ans.answer, usize::from(!ans.cached));
                }
                let graded: Vec<_> = sa.answers.iter().map(|a| (a.answer, a.accuracy)).collect();
                // ctk-allow(panic-unwrap): awaiting entries always hold a driver; loud failure beats misattribution
                let driver = entry.driver.as_mut().expect("awaiting session has driver");
                driver.feed_graded(&graded)
            })
        };
        for (sa, status) in served.iter().zip(fed) {
            if sa.starved() {
                self.metrics.starved += 1;
            }
            match status {
                Ok(DriverStatus::Done) => {
                    self.finalize(sa.id);
                    outcome.finished += 1;
                }
                Ok(DriverStatus::Active) => {
                    let s = self.shard_of(sa.id);
                    self.shards[s]
                        .registry
                        .get_mut(sa.id)
                        .expect("served id exists") // ctk-allow(panic-unwrap): served ids come from this round's plan
                        .state = SessionState::Queued;
                }
                Err(err) => {
                    self.fail(sa.id, err);
                    outcome.finished += 1;
                }
            }
        }

        outcome.answers_served += stats.answers_served;
        outcome.cache_hits += stats.cache_hits;
        self.metrics.answers_served += stats.answers_served;
        self.metrics.crowd_questions += stats.crowd_questions;
        self.metrics.cache_hits += stats.cache_hits;
        self.metrics.routed_expert += stats.routed_expert;
        self.metrics.routed_cheap += stats.routed_cheap;
        self.metrics.serving_time += t0.elapsed();
        outcome
    }

    /// Runs one event-driven sweep: per shard in index order, drain the
    /// ready-queue, schedule and gather runnable sessions, resolve each
    /// batch against cache and grants, drain again so same-sweep
    /// deliveries complete, then reconcile budget grants against parked
    /// demand. Deterministic at any fixed shard count. (Calling this
    /// directly on an [`RunMode::EventThreaded`] service runs the
    /// identical sweep in place — manual pumping is single-threaded; the
    /// worker topology exists only inside
    /// [`TopKService::run_until_quiescent`], and produces the same
    /// reports.)
    pub fn pump(&mut self) -> RoundOutcome {
        // ctk-allow(det-wall-clock): sweep-duration metric only; never feeds a decision
        let t0 = Instant::now();
        let mut outcome = RoundOutcome::default();
        let router = self.router;
        for s in 0..self.shards.len() {
            self.drain_ready(s, &mut outcome);
            let plan = {
                let sh = &mut self.shards[s];
                let runnable = sh.registry.runnable();
                sh.scheduler.plan_round(&runnable)
            };
            outcome.scheduled += plan.len();
            let gathered = {
                let sh = &mut self.shards[s];
                let mut entries = sh.registry.entries_mut_in_order(&plan);
                run_sharded(&mut entries, self.threads, |entry| {
                    let allowance = entry.ledger.remaining();
                    // ctk-allow(panic-unwrap): queued entries always hold a driver; a silent skip would misattribute answers
                    let driver = entry.driver.as_mut().expect("queued session has driver");
                    driver.next_batch(allowance)
                })
            };
            for (id, batch) in plan.iter().copied().zip(gathered) {
                match batch {
                    Ok(batch) if batch.is_empty() => {
                        self.finalize(id);
                        outcome.finished += 1;
                    }
                    Ok(batch) => {
                        let entry = self.shards[s]
                            .registry
                            .get_mut(id)
                            .expect("scheduled id exists"); // ctk-allow(panic-unwrap): plan ids come from this shard's registry this sweep
                        let hinted = hint_batch(router.as_ref(), entry, batch);
                        entry.begin_batch(hinted);
                        self.resolve_session(s, id, true, &mut outcome);
                    }
                    Err(err) => {
                        self.fail(id, err);
                        outcome.finished += 1;
                    }
                }
            }
            self.drain_ready(s, &mut outcome);
        }
        self.reconcile_budget(&mut outcome);
        if outcome.progressed() {
            self.metrics.rounds += 1;
        }
        self.metrics.serving_time += t0.elapsed();
        outcome
    }

    /// Drains one shard's ready-queue: delivers resolved batches, resumes
    /// granted sessions, and counts lifecycle markers. Events pushed
    /// while draining (e.g. `AnswersReady` from a resumed session) are
    /// drained in the same call.
    fn drain_ready(&mut self, s: usize, outcome: &mut RoundOutcome) {
        while let Some(event) = self.shards[s].ready.pop_front() {
            self.metrics.events_processed += 1;
            outcome.events += 1;
            match event {
                Event::Submitted(_) | Event::Finished(_) => {}
                Event::AnswersReady(id) => self.deliver(s, id, outcome),
                Event::BudgetGranted { .. } => {
                    // Resume every parked session in id order; those the
                    // grant cannot reach serve their cache hits and park
                    // again.
                    for id in self.shards[s].registry.parked() {
                        self.resolve_session(s, id, true, outcome);
                    }
                }
            }
        }
    }

    /// Resolves a session's pending questions cache-first, crowd-second,
    /// through the shared purchase loop
    /// ([`crate::batcher::resolve_pending`] — the same implementation the
    /// threaded coordinator drives). Gated (event mode), a cache miss
    /// with no grant available parks the session `AwaitingBudget`;
    /// ungated (tick-style), live asks spend crowd budget directly. A
    /// crowd that cannot answer decisively starves the batch (prefix-cut,
    /// exactly the tick batcher's semantics). A fully resolved or starved
    /// batch posts [`Event::AnswersReady`].
    fn resolve_session(
        &mut self,
        s: usize,
        id: SessionId,
        gated: bool,
        outcome: &mut RoundOutcome,
    ) {
        // ctk-allow(det-wall-clock): purchase-duration metric only; never feeds a decision
        let p0 = Instant::now();
        let Self {
            crowd,
            cache,
            shards,
            ledgers,
            metrics,
            ..
        } = self;
        let Shard {
            registry, ready, ..
        } = &mut shards[s];
        // ctk-allow(panic-unwrap): resolve targets come from this shard's registry
        let entry = registry.get_mut(id).expect("resolved id exists");
        let resolution = resolve_pending(
            &mut entry.pending,
            gated,
            &mut ledgers[s],
            cache,
            crowd,
            metrics,
        );
        outcome.cache_hits += resolution.cache_hits;
        entry.batch_hits += resolution.cache_hits as usize;
        entry.served.extend(resolution.served);
        match resolution.disposition {
            Disposition::Parked => {
                // No grant to spend: park and let the reconciler decide.
                entry.state = SessionState::AwaitingBudget;
            }
            Disposition::Resolved | Disposition::Starved => {
                entry.state = SessionState::AwaitingAnswers;
                ready.push_back(Event::AnswersReady(id));
            }
        }
        metrics.purchase_time += p0.elapsed();
    }

    /// Delivers a resolved batch from the session's mailbox to its
    /// driver, then advances the lifecycle (requeue, finalize or fail).
    /// Delegates to the shard-local [`Shard::deliver`] the threaded
    /// workers share.
    fn deliver(&mut self, s: usize, id: SessionId, outcome: &mut RoundOutcome) {
        self.shards[s].deliver(s, id, &mut self.metrics, outcome);
    }

    /// Reconciles budget grants against parked demand: reclaim every
    /// shard's unspent grant, then re-grant from the crowd's *current*
    /// remaining budget in shard order. The reclaim-first discipline
    /// keeps the sum of outstanding grants within what the crowd can
    /// serve; issuing zero grants is not progress, which is what lets
    /// quiescence detection distinguish blocked-on-crowd from livelock.
    fn reconcile_budget(&mut self, outcome: &mut RoundOutcome) {
        for ledger in &mut self.ledgers {
            ledger.reclaim();
        }
        let mut pool = self.crowd.remaining();
        for (shard, ledger) in self.shards.iter_mut().zip(&mut self.ledgers) {
            if pool == 0 {
                break;
            }
            let want = shard.registry.parked_demand();
            let granted = want.min(pool);
            if granted > 0 {
                pool -= granted;
                ledger.grant(granted);
                shard.ready.push_back(Event::BudgetGranted { granted });
                self.metrics.budget_granted += granted as u64;
                outcome.budget_granted += granted as u64;
            }
        }
    }

    /// Runs rounds/sweeps until no further progress is possible by
    /// computation alone. In tick mode this is completion (tick's
    /// purchase phase starves sessions decisively, so nothing parks); in
    /// event mode it is either completion ([`Quiescence::Idle`]) or a set
    /// of sessions parked on crowd budget that does not exist
    /// ([`Quiescence::BlockedOnCrowd`]) — the caller decides whether to
    /// wait for external budget or force-starve
    /// ([`TopKService::run_to_completion`]).
    pub fn run_until_quiescent(&mut self) -> Quiescence {
        match self.run_mode {
            RunMode::Tick => {
                while self.active() > 0 {
                    if !self.tick().progressed() {
                        break;
                    }
                }
                Quiescence::Idle
            }
            RunMode::Event => {
                while self.pump().progressed() {}
                let sessions: Vec<SessionId> = self
                    .shards
                    .iter()
                    .flat_map(|sh| sh.registry.parked())
                    .collect();
                if sessions.is_empty() {
                    Quiescence::Idle
                } else {
                    Quiescence::BlockedOnCrowd { sessions }
                }
            }
            RunMode::EventThreaded => {
                let Self {
                    crowd,
                    cache,
                    shards,
                    ledgers,
                    metrics,
                    router,
                    threads,
                    ..
                } = self;
                crate::topology::run_threaded(
                    crowd, cache, shards, ledgers, metrics, *router, *threads,
                )
            }
        }
    }

    /// Runs until every session is done or failed. When event-mode
    /// quiescence reports sessions blocked on crowd budget, they are
    /// force-starved: each parked session is delivered the prefix it did
    /// resolve — exactly what tick mode's exhausted-crowd path does — so
    /// its driver winds down and finishes. Returns the accumulated
    /// metrics.
    pub fn run_to_completion(&mut self) -> &ServiceMetrics {
        loop {
            match self.run_until_quiescent() {
                Quiescence::Idle => break,
                Quiescence::BlockedOnCrowd { sessions } => {
                    for id in sessions {
                        let s = self.shard_of(id);
                        self.shards[s].force_starve(id);
                    }
                }
            }
        }
        &self.metrics
    }

    /// Lifecycle state of a session.
    pub fn state(&self, id: SessionId) -> Option<SessionState> {
        self.shards[self.shard_of(id)].registry.state(id)
    }

    /// Final report of a `Done` session.
    pub fn report(&self, id: SessionId) -> Option<&UrReport> {
        self.shards[self.shard_of(id)].registry.report(id)
    }

    /// Error of a `Failed` session.
    pub fn error(&self, id: SessionId) -> Option<&CoreError> {
        self.shards[self.shard_of(id)].registry.error(id)
    }

    /// Accumulated service metrics.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Read-only view over all shards' session registries.
    pub fn registry(&self) -> RegistryView<'_> {
        RegistryView {
            shards: &self.shards,
        }
    }

    /// The shared crowd backend.
    pub fn crowd(&self) -> &C {
        &self.crowd
    }

    /// The shared (question-hash-partitioned) answer cache.
    pub fn cache(&self) -> &ShardedAnswerCache {
        &self.cache
    }

    fn finalize(&mut self, id: SessionId) {
        let s = self.shard_of(id);
        self.shards[s].finalize_session(s, id, &mut self.metrics);
    }

    fn fail(&mut self, id: SessionId, err: CoreError) {
        let s = self.shard_of(id);
        self.shards[s].fail_session(id, err, &mut self.metrics);
    }
}

/// Attaches a [`RouteHint`] to every question of a batch: the hint the
/// session's *current* belief margin implies when a router is
/// configured, [`RouteHint::Any`] otherwise.
pub(crate) fn hint_batch(
    router: Option<&QuestionRouter>,
    entry: &SessionEntry,
    batch: Vec<Question>,
) -> Vec<(Question, RouteHint)> {
    match router {
        Some(r) => {
            // ctk-allow(panic-unwrap): awaiting entries always hold a driver
            let driver = entry.driver.as_ref().expect("awaiting session has driver");
            batch
                .into_iter()
                .map(|q| {
                    let hint = r.hint(driver.question_margin(&q));
                    (q, hint)
                })
                .collect()
        }
        None => batch.into_iter().map(|q| (q, RouteHint::Any)).collect(),
    }
}

/// All available cores (the service's `threads = 0` resolution), read
/// through the workspace's single cached accessor.
fn default_threads() -> usize {
    ctk_prob::compare::available_cores()
}

/// Below this many sessions a sharded phase runs inline: spawning scoped
/// threads costs more than the work they would split.
const PARALLEL_SESSIONS_MIN: usize = 3;

/// Applies `work` to every item, fanning out over at most `threads`
/// scoped worker chunks, and returns the results in item order.
///
/// Determinism argument: `work` runs once per item on disjoint `&mut`
/// state, chunk boundaries only decide *where* an item runs, and results
/// are reassembled by chunk order (= item order). The sequential path is
/// the `threads == 1` special case of the same code shape, so any thread
/// count computes the identical result vector.
pub(crate) fn run_sharded<T: Send, R: Send>(
    items: &mut [T],
    threads: usize,
    work: impl Fn(&mut T) -> R + Sync,
) -> Vec<R> {
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 || n < PARALLEL_SESSIONS_MIN {
        return items.iter_mut().map(&work).collect();
    }
    let chunk = n.div_ceil(threads);
    let work = &work;
    // ctk-allow(det-thread-spawn): disjoint pre-chunked shards; merge happens sequentially in plan order
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .map(|c| s.spawn(move || c.iter_mut().map(work).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(results) => results,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctk_core::measures::MeasureKind;
    use ctk_core::session::{Algorithm, SessionConfig, UrSession};
    use ctk_crowd::{CrowdSimulator, GroundTruth, PerfectWorker, VotePolicy};
    use ctk_prob::ScoreDist;
    use ctk_tpo::build::{Engine, McConfig};

    fn table() -> UncertainTable {
        UncertainTable::new(
            (0..7)
                .map(|i| ScoreDist::uniform_centered(i as f64 * 0.12, 0.4).unwrap())
                .collect(),
        )
        .unwrap()
    }

    fn config(algorithm: Algorithm, seed: u64) -> SessionConfig {
        SessionConfig {
            k: 3,
            budget: 6,
            measure: MeasureKind::WeightedEntropy,
            algorithm,
            engine: Engine::MonteCarlo(McConfig::fixed(2000, 7)),
            seed,
            uncertainty_target: None,
        }
    }

    fn service(budget: usize) -> TopKService<CrowdSimulator<PerfectWorker>> {
        let truth = GroundTruth::sample(&table(), 99);
        TopKService::new(
            CrowdSimulator::new(truth, PerfectWorker, VotePolicy::Single, budget)
                .expect("valid vote policy"),
        )
    }

    #[test]
    fn lifecycle_reaches_done() {
        let mut svc = service(1000);
        let id = svc
            .submit(&table(), SessionSpec::new(config(Algorithm::T1On, 0)))
            .unwrap();
        assert_eq!(svc.state(id), Some(SessionState::Queued));
        assert!(svc.report(id).is_none());
        svc.run_to_completion();
        assert_eq!(svc.state(id), Some(SessionState::Done));
        let report = svc.report(id).unwrap();
        assert!(report.questions_asked() > 0);
        assert_eq!(svc.metrics().completed, 1);
        assert_eq!(svc.metrics().failed, 0);
        assert!(svc.registry().latency(id).is_some());
    }

    #[test]
    fn invalid_config_fails_at_submit() {
        let mut svc = service(100);
        let mut bad = config(Algorithm::T1On, 0);
        bad.k = 100;
        assert!(svc.submit(&table(), SessionSpec::new(bad)).is_err());
        assert_eq!(svc.metrics().submitted, 0);
    }

    #[test]
    fn identical_tenants_share_crowd_answers() {
        let mut svc = service(1000);
        let a = svc
            .submit(&table(), SessionSpec::new(config(Algorithm::TbOff, 1)))
            .unwrap();
        let b = svc
            .submit(&table(), SessionSpec::new(config(Algorithm::TbOff, 1)))
            .unwrap();
        svc.run_to_completion();
        let (ra, rb) = (svc.report(a).unwrap(), svc.report(b).unwrap());
        assert!(ra.same_outcome(rb));
        assert!(svc.metrics().cache_hits > 0, "dedup must kick in");
        // The cache paid for half the questions.
        assert!(svc.metrics().crowd_questions < svc.metrics().answers_served);
    }

    #[test]
    fn starved_sessions_still_complete() {
        // Crowd can only afford 3 questions for two 6-question tenants
        // asking different things (different algorithms/seeds).
        let mut svc = service(3).with_fanout(1);
        let a = svc
            .submit(&table(), SessionSpec::new(config(Algorithm::T1On, 0)))
            .unwrap();
        let b = svc
            .submit(&table(), SessionSpec::new(config(Algorithm::Random, 5)))
            .unwrap();
        svc.run_to_completion();
        assert_eq!(svc.state(a), Some(SessionState::Done));
        assert_eq!(svc.state(b), Some(SessionState::Done));
        let asked: usize = [a, b]
            .iter()
            .map(|id| svc.report(*id).unwrap().questions_asked())
            .sum();
        // Cache hits can stretch 3 crowd questions further, but live asks
        // cannot exceed the crowd budget.
        assert!(svc.metrics().crowd_questions <= 3);
        assert!(asked >= 3usize.min(asked), "sessions still made progress");
        assert_eq!(svc.metrics().completed, 2);
    }

    #[test]
    fn cache_rescues_sessions_after_crowd_exhaustion() {
        // Regression: the shared crowd affords exactly one tenant's
        // budget. Tenant A spends it all; identical tenant B must still
        // complete its FULL session from the cache — an exhausted crowd
        // must not gate questions the cache can answer for free.
        let mut svc = service(6).with_fanout(1);
        let cfg = config(Algorithm::TbOff, 1);
        let a = svc.submit(&table(), SessionSpec::new(cfg.clone())).unwrap();
        let b = svc.submit(&table(), SessionSpec::new(cfg.clone())).unwrap();
        svc.run_to_completion();
        assert_eq!(svc.state(a), Some(SessionState::Done));
        assert_eq!(svc.state(b), Some(SessionState::Done));
        let (ra, rb) = (svc.report(a).unwrap(), svc.report(b).unwrap());
        assert!(
            rb.questions_asked() == ra.questions_asked() && rb.same_outcome(ra),
            "tenant B must ride the cache to a full run: A {} steps, B {} steps",
            ra.questions_asked(),
            rb.questions_asked()
        );
        assert_eq!(
            svc.metrics().crowd_questions,
            ra.questions_asked() as u64,
            "only A's run spends crowd budget"
        );
        assert_eq!(svc.metrics().cache_hits, rb.questions_asked() as u64);
        // And B equals its standalone run, preserving losslessness.
        let truth = GroundTruth::sample(&table(), 99);
        let mut own = CrowdSimulator::new(truth, PerfectWorker, VotePolicy::Single, 6)
            .expect("valid vote policy");
        let standalone = UrSession::new(cfg)
            .unwrap()
            .run(&table(), &mut own)
            .unwrap();
        assert!(rb.same_outcome(&standalone));
    }

    #[test]
    fn priorities_finish_first_under_bounded_fanout() {
        let mut svc = service(1000).with_fanout(1);
        let low = svc
            .submit(
                &table(),
                SessionSpec::new(config(Algorithm::T1On, 0)).with_priority(0),
            )
            .unwrap();
        let high = svc
            .submit(
                &table(),
                SessionSpec::new(config(Algorithm::T1On, 1)).with_priority(9),
            )
            .unwrap();
        // Tick until one finishes: it must be the high-priority one.
        loop {
            svc.tick();
            let done_high = svc.state(high) == Some(SessionState::Done);
            let done_low = svc.state(low) == Some(SessionState::Done);
            if done_high || done_low {
                assert!(done_high, "high priority must finish first");
                break;
            }
        }
        svc.run_to_completion();
        assert_eq!(svc.metrics().completed, 2);
    }

    #[test]
    fn pairwise_matrix_shared_across_tenants_per_table() {
        let mut svc = service(1000);
        let t = table();
        svc.submit(&t, SessionSpec::new(config(Algorithm::T1On, 0)))
            .unwrap();
        svc.submit(&t, SessionSpec::new(config(Algorithm::TbOff, 1)))
            .unwrap();
        assert_eq!(svc.pairwise_tables_cached(), 1, "same table, one matrix");
        let other = UncertainTable::new(
            (0..4)
                .map(|i| ScoreDist::uniform_centered(i as f64 * 0.2, 0.5).unwrap())
                .collect(),
        )
        .unwrap();
        svc.submit(&other, SessionSpec::new(config(Algorithm::T1On, 2)))
            .unwrap();
        assert_eq!(svc.pairwise_tables_cached(), 2, "new table, new matrix");
        svc.run_to_completion();
        assert_eq!(svc.metrics().completed, 3);
    }

    #[test]
    fn pairwise_cache_is_bounded_lru() {
        let mut svc = service(1000);
        let distinct = TopKService::<CrowdSimulator<PerfectWorker>>::MAX_PAIRWISE_CACHE + 3;
        for d in 0..distinct {
            let t = UncertainTable::new(
                (0..4)
                    .map(|i| {
                        ScoreDist::uniform_centered(i as f64 * 0.2 + d as f64 * 1e-3, 0.5).unwrap()
                    })
                    .collect(),
            )
            .unwrap();
            svc.submit(&t, SessionSpec::new(config(Algorithm::T1On, d as u64)))
                .unwrap();
        }
        assert_eq!(
            svc.pairwise_tables_cached(),
            TopKService::<CrowdSimulator<PerfectWorker>>::MAX_PAIRWISE_CACHE,
            "cache must evict beyond its bound"
        );
        svc.run_to_completion();
        assert_eq!(svc.metrics().completed, distinct as u64);
    }

    #[test]
    fn per_tenant_precision_override_and_bounds_cache() {
        use ctk_tpo::PrecisionTarget;
        // A staircase with disjoint supports: the certain bounds pin the
        // whole top-3 prefix, so adaptive tenants stop at zero worlds and
        // zero questions while fixed-budget tenants still sample.
        let decided = UncertainTable::new(
            (0..5)
                .map(|i| ScoreDist::uniform_centered(i as f64, 0.1).unwrap())
                .collect(),
        )
        .unwrap();
        let mut svc = service(1000);
        let spec = SessionSpec::new(config(Algorithm::T1On, 0)).with_precision(
            PrecisionTarget::Adaptive {
                epsilon: 0.02,
                delta: 0.05,
            },
        );
        let a = svc.submit(&decided, spec.clone()).unwrap();
        let b = svc.submit(&decided, spec).unwrap();
        assert_eq!(svc.bounds_cached(), 1, "same (table, k): one bound set");
        svc.run_to_completion();
        for id in [a, b] {
            let r = svc.report(id).unwrap();
            assert!(r.certain_early_stop, "decided table must pin the prefix");
            assert_eq!(r.worlds_drawn, 0);
            assert_eq!(r.questions_asked(), 0);
            assert_eq!(r.final_topk, vec![4, 3, 2]);
        }
        assert_eq!(svc.metrics().certain_early_stops, 2);
        assert_eq!(svc.metrics().worlds_drawn, 0);
        assert!(svc.metrics().summary().contains("certain early stops"));
        // A fixed-budget tenant (no override) still draws its configured
        // worlds, and a new depth on the same table adds a bound set.
        let c = svc
            .submit(&table(), SessionSpec::new(config(Algorithm::T1On, 0)))
            .unwrap();
        svc.run_to_completion();
        assert_eq!(svc.report(c).unwrap().worlds_drawn, 2000);
        assert!(!svc.report(c).unwrap().certain_early_stop);
        assert_eq!(svc.metrics().worlds_drawn, 2000);
        assert_eq!(svc.bounds_cached(), 2, "second table, second bound set");
    }

    #[test]
    fn idle_tick_is_a_noop() {
        let mut svc = service(10);
        let outcome = svc.tick();
        assert!(!outcome.progressed());
        assert_eq!(svc.metrics().rounds, 0);
    }

    #[test]
    fn services_are_send() {
        // Benches run whole services on spawned threads; the shard phases
        // move `&mut SessionEntry`s into scoped workers. Both require the
        // service (and thus crowd + drivers) to be `Send` at compile time.
        fn assert_send<T: Send>() {}
        assert_send::<TopKService<CrowdSimulator<PerfectWorker>>>();
    }

    #[test]
    fn reports_bit_identical_across_worker_threads() {
        // The sharded round loop must be invisible in the results: the
        // same mixed-tenant workload (bounded fanout, mixed priorities,
        // every algorithm family) produces bit-identical per-tenant
        // reports at 1, 2 and 4 worker threads.
        let algorithms = [
            Algorithm::T1On,
            Algorithm::TbOff,
            Algorithm::Random,
            Algorithm::COff,
            Algorithm::Incr {
                questions_per_round: 2,
            },
            Algorithm::Naive,
            Algorithm::T1On,
            Algorithm::TbOff,
        ];
        let run = |threads: usize| {
            let mut svc = service(1000).with_fanout(3).with_threads(threads);
            let ids: Vec<_> = algorithms
                .iter()
                .enumerate()
                .map(|(t, alg)| {
                    let spec = SessionSpec::new(config(alg.clone(), t as u64))
                        .with_priority((t % 3) as u8);
                    svc.submit(&table(), spec).unwrap()
                })
                .collect();
            svc.run_to_completion();
            assert_eq!(svc.metrics().completed as usize, algorithms.len());
            ids.into_iter()
                .map(|id| svc.report(id).unwrap().clone())
                .collect::<Vec<_>>()
        };
        let sequential = run(1);
        for threads in [2usize, 4] {
            let sharded = run(threads);
            for (tenant, (a, b)) in sequential.iter().zip(&sharded).enumerate() {
                assert!(
                    a.same_outcome(b),
                    "tenant {tenant} diverged between 1 and {threads} worker threads"
                );
            }
        }
    }

    #[test]
    fn event_mode_matches_tick_mode_at_shard_counts() {
        // The run mode and the shard count must both be invisible in the
        // results: a mixed workload on a reliable, amply-budgeted crowd
        // produces per-tenant reports equal to the classic single-shard
        // tick loop in every (mode, shards) combination.
        let algorithms = [
            Algorithm::T1On,
            Algorithm::TbOff,
            Algorithm::Random,
            Algorithm::COff,
            Algorithm::Incr {
                questions_per_round: 2,
            },
            Algorithm::Naive,
            Algorithm::T1On,
            Algorithm::TbOff,
        ];
        let run = |mode: RunMode, shards: usize, threads: usize| {
            let mut svc = service(1000)
                .with_shards(shards)
                .expect("configured before submit")
                .with_fanout(3)
                .with_run_mode(mode)
                .with_threads(threads);
            let ids: Vec<_> = algorithms
                .iter()
                .enumerate()
                .map(|(t, alg)| {
                    let spec = SessionSpec::new(config(alg.clone(), t as u64))
                        .with_priority((t % 3) as u8);
                    svc.submit(&table(), spec).unwrap()
                })
                .collect();
            svc.run_to_completion();
            assert_eq!(svc.metrics().completed as usize, algorithms.len());
            ids.into_iter()
                .map(|id| svc.report(id).unwrap().clone())
                .collect::<Vec<_>>()
        };
        let reference = run(RunMode::Tick, 1, 1);
        for shards in [1usize, 2, 4] {
            for mode in [RunMode::Tick, RunMode::Event] {
                let got = run(mode, shards, 1);
                for (tenant, (a, b)) in reference.iter().zip(&got).enumerate() {
                    assert!(
                        a.same_outcome(b),
                        "tenant {tenant} diverged in {mode:?} mode at {shards} shards"
                    );
                }
            }
            // The threaded topology must agree at every (shards, threads)
            // combination — the tentpole's acceptance matrix.
            for threads in [1usize, 2, 4] {
                let got = run(RunMode::EventThreaded, shards, threads);
                for (tenant, (a, b)) in reference.iter().zip(&got).enumerate() {
                    assert!(
                        a.same_outcome(b),
                        "tenant {tenant} diverged in threaded event mode at \
                         {shards} shards / {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn starved_event_service_blocks_then_completes() {
        // Event-mode counterpart of `starved_sessions_still_complete`,
        // and the livelock regression: with the crowd able to afford 3 of
        // the ~12 demanded questions, quiescence must report the parked
        // sessions as blocked on the crowd — and pumping a blocked
        // service must NOT count as progress (zero grants are not
        // progress). run_to_completion then force-starves them to Done.
        let mut svc = service(3)
            .with_shards(2)
            .expect("configured before submit")
            .with_run_mode(RunMode::Event);
        let a = svc
            .submit(&table(), SessionSpec::new(config(Algorithm::T1On, 0)))
            .unwrap();
        let b = svc
            .submit(&table(), SessionSpec::new(config(Algorithm::Random, 5)))
            .unwrap();
        match svc.run_until_quiescent() {
            Quiescence::BlockedOnCrowd { sessions } => {
                assert!(!sessions.is_empty(), "someone must be parked");
                for id in &sessions {
                    assert_eq!(svc.state(*id), Some(SessionState::AwaitingBudget));
                }
            }
            Quiescence::Idle => panic!("a starved crowd must block, not idle"),
        }
        assert!(!svc.pump().progressed(), "blocked sweeps must not spin");
        assert!(!svc.pump().progressed(), "…no matter how often pumped");
        svc.run_to_completion();
        assert_eq!(svc.state(a), Some(SessionState::Done));
        assert_eq!(svc.state(b), Some(SessionState::Done));
        assert!(svc.metrics().crowd_questions <= 3);
        assert!(
            svc.metrics().starved >= 1,
            "the cut batches count as starved"
        );
        assert_eq!(svc.metrics().completed, 2);
    }

    #[test]
    fn event_mode_lifecycle_grants_and_accounts_per_shard() {
        // Every live question in event mode is bought through an explicit
        // grant, and the per-shard ledgers must reconcile exactly with
        // the global metrics.
        let mut svc = service(1000)
            .with_shards(4)
            .expect("configured before submit")
            .with_run_mode(RunMode::Event);
        let ids: Vec<_> = (0..6)
            .map(|t| {
                svc.submit(&table(), SessionSpec::new(config(Algorithm::T1On, t)))
                    .unwrap()
            })
            .collect();
        svc.run_to_completion();
        for id in &ids {
            assert_eq!(svc.state(*id), Some(SessionState::Done));
        }
        let m = svc.metrics().clone();
        assert_eq!(m.completed, 6);
        assert!(m.budget_granted > 0, "live asks require grants");
        assert!(m.events_processed > 0);
        let granted: u64 = (0..svc.shard_count())
            .map(|s| svc.shard_ledger(s).unwrap().total_granted())
            .sum();
        let spent: u64 = (0..svc.shard_count())
            .map(|s| svc.shard_ledger(s).unwrap().total_spent())
            .sum();
        assert_eq!(granted, m.budget_granted);
        assert_eq!(spent, m.crowd_questions);
        // Per-shard attribution adds up exactly, and sessions actually
        // spread over more than one shard.
        assert_eq!(m.shard_answers().iter().sum::<u64>(), m.answers_served);
        assert_eq!(m.shard_completed().iter().sum::<u64>(), m.completed);
        assert!(m.shard_completed().iter().filter(|&&c| c > 0).count() > 1);
        assert!(m.shard_imbalance() >= 1.0);
    }

    #[test]
    fn shard_imbalance_moves_off_one_under_skew() {
        // BENCH_PR9 reported `shard_imbalance == 1.000` in every cell —
        // correct for its uniform per-tenant budgets, but that never
        // exercised the metric's skew arm. Heavy-tailed workload: both
        // big-budget tenants land on shard 0 (`shard = id % 4`), the six
        // one-answer tenants spread over the rest.
        let mut svc = service(1000)
            .with_shards(4)
            .expect("configured before submit")
            .with_run_mode(RunMode::Event);
        for t in 0..8u64 {
            let mut cfg = config(Algorithm::T1On, t);
            cfg.budget = if t % 4 == 0 { 6 } else { 1 };
            svc.submit(&table(), SessionSpec::new(cfg)).unwrap();
        }
        svc.run_to_completion();
        let m = svc.metrics().clone();
        assert_eq!(m.completed, 8);
        // Light tenants deliver exactly 1 answer; the two heavy ones at
        // least 2 each (a 1-question budget cannot certify a top-3 over
        // these overlapping distributions). Worst case: shard 0 serves 4
        // of 10 answers -> imbalance = 4 * 4 / 10 = 1.6.
        assert!(
            m.shard_imbalance() > 1.5,
            "heavy-tailed workload must skew the imbalance gauge, got {:.3} over {:?}",
            m.shard_imbalance(),
            m.shard_answers()
        );
    }

    #[test]
    fn threaded_starvation_blocks_the_same_sessions_as_event() {
        // Crowd starvation under the threaded topology: the coordinator's
        // zero-grant reconcile must diagnose BlockedOnCrowd with exactly
        // the session set the single-threaded event loop reports, and
        // force-starved completion must agree too.
        let run = |mode: RunMode| {
            let mut svc = service(3)
                .with_shards(2)
                .expect("configured before submit")
                .with_run_mode(mode)
                .with_threads(2);
            let ids: Vec<_> = (0..4)
                .map(|t| {
                    svc.submit(&table(), SessionSpec::new(config(Algorithm::Random, t)))
                        .unwrap()
                })
                .collect();
            let blocked = match svc.run_until_quiescent() {
                Quiescence::BlockedOnCrowd { mut sessions } => {
                    sessions.sort_unstable();
                    sessions
                }
                Quiescence::Idle => panic!("a starved crowd must block, not idle"),
            };
            svc.run_to_completion();
            let reports: Vec<_> = ids.iter().map(|id| svc.report(*id).cloned()).collect();
            (blocked, reports, svc.metrics().starved)
        };
        let (blocked_e, reports_e, starved_e) = run(RunMode::Event);
        let (blocked_t, reports_t, starved_t) = run(RunMode::EventThreaded);
        assert!(!blocked_e.is_empty(), "someone must be parked");
        assert_eq!(blocked_e, blocked_t, "blocked session sets must agree");
        assert_eq!(starved_e, starved_t);
        for (tenant, (a, b)) in reports_e.iter().zip(&reports_t).enumerate() {
            match (a, b) {
                (Some(a), Some(b)) => assert!(
                    a.same_outcome(b),
                    "tenant {tenant} diverged between event and threaded event"
                ),
                _ => panic!("tenant {tenant} missing a report"),
            }
        }
    }

    #[test]
    fn shards_cannot_be_reconfigured_after_submit() {
        // Workspace panic-freedom rule: topology misuse is a typed error
        // the caller can match on, not an assert.
        let mut svc = service(10);
        svc.submit(&table(), SessionSpec::new(config(Algorithm::T1On, 0)))
            .unwrap();
        match svc.with_shards(2) {
            Err(ServiceError::TopologyAfterSubmit { submitted }) => {
                assert_eq!(submitted, 1);
            }
            Ok(_) => panic!("resharding after submit must be rejected"),
        }
        // Before any submit the same call succeeds (and clamps to >= 1).
        let svc = service(10).with_shards(0).expect("no sessions yet");
        assert_eq!(svc.shard_count(), 1);
    }

    /// A crowd whose answer accuracy drifts between rounds — the scenario
    /// that distinguishes per-answer accuracy plumbing from a scalar: a
    /// cached answer must be replayed at its *purchase-time* accuracy
    /// while fresh answers in the same batch carry the current one.
    struct DriftingCrowd {
        inner: CrowdSimulator<PerfectWorker>,
        accuracies: Vec<f64>,
        asked: usize,
    }

    impl Crowd for DriftingCrowd {
        fn ask(&mut self, q: ctk_crowd::Question) -> Option<ctk_crowd::Answer> {
            let ans = self.inner.ask(q)?;
            self.asked += 1;
            Some(ans)
        }
        fn remaining(&self) -> usize {
            self.inner.remaining()
        }
        fn answer_accuracy(&self) -> f64 {
            // Accuracy of the most recent purchase (the batcher reads it
            // right after `ask`): question #k was bought at accuracy[k-1].
            let k = self.asked.saturating_sub(1);
            self.accuracies[k.min(self.accuracies.len() - 1)]
        }
        fn history(&self) -> &[ctk_crowd::Answer] {
            self.inner.history()
        }
    }

    #[test]
    fn cached_answers_replay_their_purchase_time_accuracy() {
        // Tenant A buys its answers while the crowd advertises 0.9; by
        // the time tenant B runs, the policy has drifted to 0.7. B's
        // cache hits must be graded 0.9 (what they were bought at) and
        // only genuinely fresh purchases graded at the drifted accuracy.
        let table = table();
        let truth = GroundTruth::sample(&table, 99);
        let a_cfg = config(Algorithm::TbOff, 1);
        let mut b_cfg = config(Algorithm::TbOff, 1);
        b_cfg.budget = a_cfg.budget + 2; // B outruns the cache at the end
        let accuracies: Vec<f64> = (0..a_cfg.budget)
            .map(|_| 0.9)
            .chain(std::iter::repeat(0.7))
            .take(a_cfg.budget + 16)
            .collect();
        let crowd = DriftingCrowd {
            inner: CrowdSimulator::new(truth.clone(), PerfectWorker, VotePolicy::Single, 1000)
                .expect("valid vote policy"),
            accuracies,
            asked: 0,
        };
        // Fanout 1 serializes the tenants: A completes (buying at 0.9)
        // before B asks anything.
        let mut svc = TopKService::new(crowd).with_fanout(1);
        let a = svc.submit(&table, SessionSpec::new(a_cfg.clone())).unwrap();
        let b = svc.submit(&table, SessionSpec::new(b_cfg.clone())).unwrap();
        svc.run_to_completion();
        assert_eq!(svc.state(a), Some(SessionState::Done));
        assert_eq!(svc.state(b), Some(SessionState::Done));
        assert!(svc.metrics().cache_hits > 0, "B must hit A's answers");
        let served_b = svc.report(b).unwrap();

        // Reference: drive B's config by hand, grading each answer with
        // the accuracy the service should have used — purchase-time for
        // answers A already bought, drifted for fresh ones.
        let bought: std::collections::HashSet<_> = svc
            .crowd()
            .history()
            .iter()
            .take(svc.report(a).unwrap().questions_asked())
            .map(|ans| ans.question.canonical())
            .collect();
        let mut reference = SessionDriver::new(b_cfg.clone(), &table, None).expect("valid config");
        let mut oracle = CrowdSimulator::new(truth, PerfectWorker, VotePolicy::Single, 1000)
            .expect("valid vote policy");
        loop {
            let batch = reference.next_batch(usize::MAX).unwrap();
            if batch.is_empty() {
                break;
            }
            let graded: Vec<_> = batch
                .iter()
                .map(|q| {
                    let accuracy = if bought.contains(&q.canonical()) {
                        0.9
                    } else {
                        0.7
                    };
                    (oracle.ask(*q).unwrap(), accuracy)
                })
                .collect();
            if reference.feed_graded(&graded).unwrap() == DriverStatus::Done {
                break;
            }
        }
        let expected = reference.finish().unwrap();
        assert!(
            served_b.same_outcome(&expected),
            "B must mix purchase-time (0.9) and drifted (0.7) accuracies"
        );

        // And the scalar-accuracy grading would have produced a different
        // belief trajectory — the distinction this test exists to pin.
        let mut uniform = SessionDriver::new(b_cfg, &table, None).unwrap();
        let mut oracle2 = CrowdSimulator::new(
            GroundTruth::sample(&table, 99),
            PerfectWorker,
            VotePolicy::Single,
            1000,
        )
        .expect("valid vote policy");
        loop {
            let batch = uniform.next_batch(usize::MAX).unwrap();
            if batch.is_empty() {
                break;
            }
            let answers: Vec<_> = batch.iter().map(|q| oracle2.ask(*q).unwrap()).collect();
            if uniform.feed(&answers, 0.7).unwrap() == DriverStatus::Done {
                break;
            }
        }
        let flattened = uniform.finish().unwrap();
        assert!(
            !served_b.same_outcome(&flattened),
            "uniform 0.7 grading must be distinguishable, or the test is vacuous"
        );
    }

    #[test]
    fn routing_is_invisible_to_hint_blind_crowds() {
        // The plain simulator ignores hints (trait default), so a routed
        // service must produce bit-identical reports to an unrouted one —
        // routing only annotates, the backend decides whether to act.
        let run = |router: Option<QuestionRouter>| {
            let mut svc = service(1000);
            if let Some(r) = router {
                svc = svc.with_router(r);
            }
            let a = svc
                .submit(&table(), SessionSpec::new(config(Algorithm::T1On, 0)))
                .unwrap();
            let b = svc
                .submit(&table(), SessionSpec::new(config(Algorithm::TbOff, 1)))
                .unwrap();
            svc.run_to_completion();
            let reports = vec![
                svc.report(a).unwrap().clone(),
                svc.report(b).unwrap().clone(),
            ];
            (reports, svc.metrics().clone())
        };
        let (plain, plain_m) = run(None);
        // Thresholds (1, 1): every live question is hinted — sub-certain
        // margins go Expert, fully settled pairs Cheap — so the counter
        // arithmetic is exact: expert + cheap = live questions.
        let (routed, routed_m) = run(Some(QuestionRouter::new(1.0, 1.0).unwrap()));
        for (t, (x, y)) in plain.iter().zip(&routed).enumerate() {
            assert!(x.same_outcome(y), "tenant {t} diverged under routing");
        }
        assert_eq!(plain_m.routed_expert + plain_m.routed_cheap, 0);
        assert_eq!(
            routed_m.routed_expert + routed_m.routed_cheap,
            routed_m.crowd_questions,
            "with thresholds (1,1) every live ask carries a hint"
        );
        assert!(routed_m.routed_expert > 0, "uncertain pairs must exist");
        assert!(routed_m.summary().contains("expert"));
    }

    #[test]
    fn routed_service_completes_on_a_quality_crowd() {
        use ctk_quality::{QualityConfig, QualityCrowd, WorkerSpec};
        // End-to-end: a hint-aware quality crowd (cheap spammers, pricey
        // experts) behind the router. The session must complete, spend
        // live budget, and have its wide-margin questions routed cheap.
        let specs = vec![
            WorkerSpec::new(0.97).with_cost(5),
            WorkerSpec::new(0.95).with_cost(5),
            WorkerSpec::new(0.9).with_cost(5),
            WorkerSpec::new(0.55),
            WorkerSpec::new(0.55),
            WorkerSpec::new(0.5),
        ];
        let truth = GroundTruth::sample(&table(), 99);
        let crowd = QualityCrowd::new(truth, &specs, QualityConfig::weighted(3), 10_000, 13)
            .expect("valid roster");
        // Thresholds (0.5, 0.5): an empty Any band, so every live ask is
        // decisively routed and the counter assertion below is exact.
        let mut svc = TopKService::new(crowd).with_router(QuestionRouter::new(0.5, 0.5).unwrap());
        let id = svc
            .submit(&table(), SessionSpec::new(config(Algorithm::T1On, 3)))
            .unwrap();
        svc.run_to_completion();
        assert_eq!(svc.state(id), Some(SessionState::Done));
        assert!(svc.crowd().asked() > 0, "live questions were purchased");
        assert_eq!(
            svc.metrics().crowd_questions,
            svc.crowd().asked(),
            "service accounting must match the backend's"
        );
        assert_eq!(
            svc.metrics().routed_cheap + svc.metrics().routed_expert,
            svc.metrics().crowd_questions,
            "an empty Any band routes every live ask decisively"
        );
    }
}
