//! Named experiment scenarios: one preset per figure/table of the paper
//! (see DESIGN.md §6 for the experiment index). Every preset is a pure
//! function of the run seed, so experiment repetitions are fully
//! reproducible.

use crate::config::{CenterLayout, DatasetSpec, PdfFamily, WidthSpec};
use crate::generator::generate;
use ctk_prob::UncertainTable;

/// A ready-to-run scenario: the dataset plus the query depth the paper
/// uses for it.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable scenario name (used in harness output).
    pub name: &'static str,
    /// The uncertain relation.
    pub table: UncertainTable,
    /// Query depth `K`.
    pub k: usize,
}

/// Figure 1(a)/(b) workload: `N = 20`, uniform pdfs of width 0.4 over
/// random centers in `[0, 1]`, `K = 5`.
pub fn fig1(seed: u64) -> Scenario {
    Scenario {
        name: "fig1",
        table: generate(&DatasetSpec::paper_default(20, 0.4, seed)).expect("preset spec is valid"), // ctk-allow(panic-unwrap): static preset, pinned by tests
        k: 5,
    }
}

/// Measures-comparison workload (T-measures): smaller table so all four
/// measures (including the ORA-based one) stay cheap across many runs.
pub fn measures(seed: u64) -> Scenario {
    Scenario {
        name: "measures",
        table: generate(&DatasetSpec::paper_default(15, 0.4, seed)).expect("preset spec is valid"), // ctk-allow(panic-unwrap): static preset, pinned by tests
        k: 5,
    }
}

/// A*-comparison workload (T-astar): tiny instance where the optimal
/// algorithms are feasible.
pub fn astar(seed: u64) -> Scenario {
    Scenario {
        name: "astar",
        table: generate(&DatasetSpec::paper_default(10, 0.35, seed)).expect("preset spec is valid"), // ctk-allow(panic-unwrap): static preset, pinned by tests
        k: 3,
    }
}

/// Noisy-crowd workload (T-noise).
pub fn noise(seed: u64) -> Scenario {
    Scenario {
        name: "noise",
        table: generate(&DatasetSpec::paper_default(15, 0.4, seed)).expect("preset spec is valid"), // ctk-allow(panic-unwrap): static preset, pinned by tests
        k: 5,
    }
}

/// Heterogeneous-distribution workloads (T-hetero): four variants on the
/// same centers.
pub fn hetero(variant: HeteroVariant, seed: u64) -> Scenario {
    let family = match variant {
        HeteroVariant::Uniform => PdfFamily::Uniform {
            width: WidthSpec::Fixed(0.4),
        },
        HeteroVariant::Gaussian => PdfFamily::Gaussian {
            sigma: WidthSpec::Fixed(0.1),
        },
        HeteroVariant::MixedWidths => PdfFamily::Uniform {
            width: WidthSpec::UniformRange(0.1, 0.7),
        },
        HeteroVariant::MixedFamilies => PdfFamily::MixedFamilies {
            width: WidthSpec::Fixed(0.4),
        },
    };
    Scenario {
        name: variant.name(),
        table: generate(&DatasetSpec {
            n: 20,
            centers: CenterLayout::UniformRandom,
            family,
            seed,
        })
        .expect("preset spec is valid"), // ctk-allow(panic-unwrap): static preset, pinned by tests // ctk-allow(panic-unwrap): static preset, pinned by tests
        k: 5,
    }
}

/// The four §IV “non-uniform score distribution” variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeteroVariant {
    /// Fixed-width uniforms (baseline).
    Uniform,
    /// Gaussian pdfs.
    Gaussian,
    /// Uniforms with per-tuple random widths.
    MixedWidths,
    /// Alternating uniform / Gaussian / triangular.
    MixedFamilies,
}

impl HeteroVariant {
    /// Scenario name.
    pub fn name(&self) -> &'static str {
        match self {
            HeteroVariant::Uniform => "hetero-uniform",
            HeteroVariant::Gaussian => "hetero-gaussian",
            HeteroVariant::MixedWidths => "hetero-mixed-widths",
            HeteroVariant::MixedFamilies => "hetero-mixed-families",
        }
    }

    /// All variants, for sweeps.
    pub fn all() -> [HeteroVariant; 4] {
        [
            HeteroVariant::Uniform,
            HeteroVariant::Gaussian,
            HeteroVariant::MixedWidths,
            HeteroVariant::MixedFamilies,
        ]
    }
}

/// Scaling workload (T-incr / T-scaling): `n` tuples, `K = 5`, moderate
/// overlap.
pub fn scaling(n: usize, seed: u64) -> Scenario {
    Scenario {
        name: "scaling",
        table: generate(&DatasetSpec::paper_default(n, 0.3, seed)).expect("preset spec has n >= 1"), // ctk-allow(panic-unwrap): caller-supplied n is the only free input; spec is otherwise static
        k: 5.min(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape() {
        let s = fig1(0);
        assert_eq!(s.table.len(), 20);
        assert_eq!(s.k, 5);
        assert_eq!(s.name, "fig1");
        assert!(s.table.all_continuous());
    }

    #[test]
    fn scenarios_are_seed_deterministic() {
        assert_eq!(fig1(7).table, fig1(7).table);
        assert_ne!(fig1(7).table, fig1(8).table);
        assert_eq!(astar(1).table.len(), 10);
        assert_eq!(noise(1).table.len(), 15);
        assert_eq!(measures(1).table.len(), 15);
    }

    #[test]
    fn hetero_variants_differ() {
        let seed = 3;
        let u = hetero(HeteroVariant::Uniform, seed);
        let g = hetero(HeteroVariant::Gaussian, seed);
        assert_ne!(u.table, g.table);
        assert_eq!(HeteroVariant::all().len(), 4);
        for v in HeteroVariant::all() {
            let s = hetero(v, seed);
            assert_eq!(s.table.len(), 20);
            assert!(s.name.starts_with("hetero-"));
        }
    }

    #[test]
    fn scaling_adapts_k() {
        assert_eq!(scaling(3, 0).k, 3);
        assert_eq!(scaling(40, 0).k, 5);
        assert_eq!(scaling(40, 0).table.len(), 40);
    }
}
