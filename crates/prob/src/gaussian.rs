//! Gaussian score distribution `N(mu, sigma^2)`.
//!
//! Used by the paper's “non-uniform score distribution” experiments. The cdf
//! is computed with the crate-local `erf`; sampling uses inverse-cdf
//! transform so that a single `u64` seed fully determines every possible
//! world (important for reproducible experiments).

use crate::error::{ProbError, Result};
use crate::special::{normal_cdf, normal_pdf, normal_quantile};
use rand::Rng;

/// Number of standard deviations treated as the effective support for grid
/// construction. The mass outside `mu +- 8 sigma` is ~1.2e-15 — far below
/// every tolerance used by the exact probability engine.
pub const EFFECTIVE_SIGMAS: f64 = 8.0;

/// Gaussian distribution with mean `mu` and standard deviation `sigma > 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct Gaussian {
    mu: f64,
    sigma: f64,
}

impl Gaussian {
    /// Creates a Gaussian; fails unless `sigma > 0` and both params finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(ProbError::InvalidParameter {
                param: "mu",
                reason: format!("must be finite, got {mu}"),
            });
        }
        if !sigma.is_finite() || sigma <= 0.0 {
            return Err(ProbError::InvalidParameter {
                param: "sigma",
                reason: format!("must be positive and finite, got {sigma}"),
            });
        }
        Ok(Self { mu, sigma })
    }

    /// Mean parameter.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Standard deviation parameter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        normal_pdf((x - self.mu) / self.sigma) / self.sigma
    }

    /// Cumulative distribution `P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        normal_cdf((x - self.mu) / self.sigma)
    }

    /// Quantile function (inverse cdf).
    pub fn quantile(&self, p: f64) -> f64 {
        self.mu + self.sigma * normal_quantile(p)
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mu
    }

    /// Variance of the distribution.
    pub fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }

    /// Effective support `mu +- 8 sigma` used for quadrature grids; the
    /// neglected tail mass is ~1e-15.
    pub fn support(&self) -> (f64, f64) {
        (
            self.mu - EFFECTIVE_SIGMAS * self.sigma,
            self.mu + EFFECTIVE_SIGMAS * self.sigma,
        )
    }

    /// Draws one sample via inverse-cdf transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Open interval avoids the infinite quantiles at 0 and 1.
        let u: f64 = rng.gen_range(f64::EPSILON..(1.0 - f64::EPSILON));
        self.quantile(u)
    }

    /// Closed-form `P(X > Y)` for two independent Gaussians.
    pub fn pr_greater_than(&self, other: &Gaussian) -> f64 {
        let denom = (self.variance() + other.variance()).sqrt();
        normal_cdf((self.mu - other.mu) / denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        assert!(Gaussian::new(0.0, 1.0).is_ok());
        assert!(Gaussian::new(0.0, 0.0).is_err());
        assert!(Gaussian::new(0.0, -1.0).is_err());
        assert!(Gaussian::new(f64::NAN, 1.0).is_err());
        assert!(Gaussian::new(0.0, f64::NAN).is_err());
    }

    #[test]
    fn cdf_reference_points() {
        let g = Gaussian::new(10.0, 2.0).unwrap();
        assert!((g.cdf(10.0) - 0.5).abs() < 1e-9);
        assert!((g.cdf(12.0) - 0.841_344_7).abs() < 1e-6);
        assert!((g.cdf(8.0) - 0.158_655_3).abs() < 1e-6);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let g = Gaussian::new(-3.0, 0.5).unwrap();
        let (lo, hi) = g.support();
        let val = crate::quad::adaptive_simpson(&|x| g.pdf(x), lo, hi, 1e-10);
        assert!((val - 1.0).abs() < 1e-8, "integral = {val}");
    }

    #[test]
    fn quantile_inverts_cdf() {
        let g = Gaussian::new(5.0, 3.0).unwrap();
        for i in 1..100 {
            let p = i as f64 / 100.0;
            assert!((g.cdf(g.quantile(p)) - p).abs() < 1e-6);
        }
    }

    #[test]
    fn closed_form_comparison_matches_symmetry() {
        let a = Gaussian::new(1.0, 1.0).unwrap();
        let b = Gaussian::new(0.0, 2.0).unwrap();
        let p = a.pr_greater_than(&b);
        let q = b.pr_greater_than(&a);
        assert!((p + q - 1.0).abs() < 1e-9);
        assert!(p > 0.5, "higher-mean Gaussian should win more often");
        // Equal distributions tie at exactly 1/2.
        assert!((a.pr_greater_than(&a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn samples_match_moments() {
        let g = Gaussian::new(2.0, 0.7).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        const N: usize = 40_000;
        let xs: Vec<f64> = (0..N).map(|_| g.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / N as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / N as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean = {mean}");
        assert!((var - 0.49).abs() < 0.02, "var = {var}");
    }
}
