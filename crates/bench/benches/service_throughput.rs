//! Serving-layer throughput: N concurrent sessions multiplexed over one
//! shared crowd (with cross-session answer caching) versus the same N
//! sessions run standalone, each with a private crowd.
//!
//! The service side pays scheduling overhead but buys every duplicated
//! pairwise question exactly once; the standalone side re-buys it per
//! session. The gap is the batching economics the serving layer exists
//! for. A second group sweeps the round loop's worker thread count at a
//! fixed tenant count (reports are bit-identical at every setting; see
//! the `service_scaling` bin for the committed grid numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctk_core::measures::MeasureKind;
use ctk_core::session::{Algorithm, SessionConfig, UrSession};
use ctk_crowd::{CrowdSimulator, GroundTruth, PerfectWorker, VotePolicy};
use ctk_datagen::scenarios;
use ctk_service::{SessionSpec, TopKService};
use ctk_tpo::build::{Engine, McConfig};
use std::time::Duration;

const BUDGET: usize = 6;

fn tenant_config(tenant: usize) -> SessionConfig {
    let algorithm = match tenant % 4 {
        0 => Algorithm::T1On,
        1 => Algorithm::TbOff,
        2 => Algorithm::Naive,
        _ => Algorithm::Random,
    };
    SessionConfig {
        k: 3,
        budget: BUDGET,
        measure: MeasureKind::WeightedEntropy,
        algorithm,
        engine: Engine::MonteCarlo(McConfig::fixed(1500, 17)),
        seed: (tenant % 4) as u64,
        uncertainty_target: None,
    }
}

fn bench_service_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    let scenario = scenarios::astar(7);
    let truth = GroundTruth::sample(&scenario.table, 4242);

    for tenants in [8usize, 32] {
        group.bench_with_input(
            BenchmarkId::new("multiplexed", tenants),
            &tenants,
            |b, &n| {
                b.iter(|| {
                    let crowd = CrowdSimulator::new(
                        truth.clone(),
                        PerfectWorker,
                        VotePolicy::Single,
                        100_000,
                    )
                    .expect("valid vote policy");
                    let mut service = TopKService::new(crowd);
                    let ids: Vec<_> = (0..n)
                        .map(|t| {
                            service
                                .submit(&scenario.table, SessionSpec::new(tenant_config(t)))
                                .expect("valid config")
                        })
                        .collect();
                    service.run_to_completion();
                    ids.iter()
                        .map(|id| service.report(*id).unwrap().questions_asked())
                        .sum::<usize>()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("standalone", tenants),
            &tenants,
            |b, &n| {
                b.iter(|| {
                    (0..n)
                        .map(|t| {
                            let mut crowd = CrowdSimulator::new(
                                truth.clone(),
                                PerfectWorker,
                                VotePolicy::Single,
                                BUDGET,
                            )
                            .expect("valid vote policy");
                            UrSession::new(tenant_config(t))
                                .expect("valid config")
                                .run(&scenario.table, &mut crowd)
                                .expect("session runs")
                                .questions_asked()
                        })
                        .sum::<usize>()
                });
            },
        );
    }
    group.finish();
}

fn bench_sharded_round_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_round_loop_threads");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    let scenario = scenarios::astar(7);
    let truth = GroundTruth::sample(&scenario.table, 4242);
    const TENANTS: usize = 32;

    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let crowd = CrowdSimulator::new(
                        truth.clone(),
                        PerfectWorker,
                        VotePolicy::Single,
                        100_000,
                    )
                    .expect("valid vote policy");
                    let mut service = TopKService::new(crowd).with_threads(threads);
                    let ids: Vec<_> = (0..TENANTS)
                        .map(|t| {
                            service
                                .submit(&scenario.table, SessionSpec::new(tenant_config(t)))
                                .expect("valid config")
                        })
                        .collect();
                    service.run_to_completion();
                    ids.iter()
                        .map(|id| service.report(*id).unwrap().questions_asked())
                        .sum::<usize>()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_service_throughput, bench_sharded_round_loop);
criterion_main!(benches);
