//! `U_Hw`: weighted combination of the entropies at the first `K` levels
//! of the TPO — unlike plain `U_H`, it accounts for the *structure* of the
//! tree: uncertainty near the top of the ranking (level 1) weighs more
//! than uncertainty at the bottom.

use super::UncertaintyMeasure;
use ctk_tpo::stats::level_distributions;
use ctk_tpo::PathSet;

/// Level-weighted entropy with weights `w_ℓ ∝ K - ℓ + 1` by default
/// (top ranks matter most), normalized to sum to one so the measure is
/// comparable to `U_H` and the `A*` information bound applies.
#[derive(Debug, Clone, Default)]
pub struct WeightedEntropy {
    /// Optional explicit per-level weights (1-based levels). When `None`,
    /// the default linear-decay weights are used.
    pub weights: Option<Vec<f64>>,
}

impl WeightedEntropy {
    /// Measure with explicit level weights (will be normalized).
    pub fn with_weights(weights: Vec<f64>) -> Self {
        Self {
            weights: Some(weights),
        }
    }

    fn level_weights(&self, depth: usize) -> Vec<f64> {
        let raw: Vec<f64> = match &self.weights {
            Some(w) => (0..depth)
                .map(|l| w.get(l).copied().unwrap_or(0.0).max(0.0))
                .collect(),
            None => (0..depth).map(|l| (depth - l) as f64).collect(),
        };
        let total: f64 = raw.iter().sum();
        if total <= 0.0 {
            // Degenerate explicit weights: fall back to uniform.
            return vec![1.0 / depth as f64; depth];
        }
        raw.into_iter().map(|w| w / total).collect()
    }
}

impl UncertaintyMeasure for WeightedEntropy {
    fn name(&self) -> &'static str {
        "UHw"
    }

    fn uncertainty(&self, ps: &PathSet) -> f64 {
        let levels = level_distributions(ps);
        if levels.is_empty() {
            return 0.0;
        }
        let weights = self.level_weights(levels.len());
        levels
            .iter()
            .zip(&weights)
            .map(|(probs, w)| w * shannon(probs))
            .sum()
    }

    fn per_question_reduction_bound(&self) -> Option<f64> {
        // Each level's entropy drops by at most ln 2 in expectation per
        // binary answer; weights are normalized to sum 1.
        Some(std::f64::consts::LN_2)
    }
}

fn shannon(probs: &[f64]) -> f64 {
    -probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| p * p.ln())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{resolved_set, sample_set};
    use super::*;

    #[test]
    fn zero_on_certain_result() {
        assert_eq!(WeightedEntropy::default().uncertainty(&resolved_set()), 0.0);
    }

    #[test]
    fn combines_level_entropies() {
        let s = sample_set();
        // Level 1: {0: 0.7, 1: 0.3}; level 2: {0.5, 0.2, 0.3}.
        let h1 = -(0.7f64 * 0.7f64.ln() + 0.3 * 0.3f64.ln());
        let h2 = -(0.5f64 * 0.5f64.ln() + 0.2 * 0.2f64.ln() + 0.3 * 0.3f64.ln());
        // Default weights for depth 2: (2, 1)/3.
        let expect = (2.0 * h1 + 1.0 * h2) / 3.0;
        let got = WeightedEntropy::default().uncertainty(&s);
        assert!((got - expect).abs() < 1e-12, "{got} vs {expect}");
    }

    #[test]
    fn top_level_uncertainty_weighs_more() {
        // Same leaf entropy, different level-1 entropy.
        // A: uncertainty at the top (two distinct first elements).
        let top =
            ctk_tpo::PathSet::from_weighted(2, vec![(vec![0, 2], 0.5), (vec![1, 2], 0.5)]).unwrap();
        // B: uncertainty at the bottom (same first element).
        let bottom =
            ctk_tpo::PathSet::from_weighted(2, vec![(vec![0, 1], 0.5), (vec![0, 2], 0.5)]).unwrap();
        let m = WeightedEntropy::default();
        assert!(
            m.uncertainty(&top) > m.uncertainty(&bottom),
            "top-level ambiguity must weigh more: {} vs {}",
            m.uncertainty(&top),
            m.uncertainty(&bottom)
        );
        // Plain entropy cannot distinguish them.
        let e = super::super::Entropy;
        assert!((e.uncertainty(&top) - e.uncertainty(&bottom)).abs() < 1e-12);
    }

    #[test]
    fn explicit_weights_respected() {
        let s = sample_set();
        // All weight on level 1.
        let m = WeightedEntropy::with_weights(vec![1.0, 0.0]);
        let h1 = -(0.7f64 * 0.7f64.ln() + 0.3 * 0.3f64.ln());
        assert!((m.uncertainty(&s) - h1).abs() < 1e-12);
        // Degenerate all-zero weights: uniform fallback, still finite.
        let z = WeightedEntropy::with_weights(vec![0.0, 0.0]);
        assert!(z.uncertainty(&s).is_finite());
    }
}
