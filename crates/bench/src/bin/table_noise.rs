//! T-noise (§III-C, §IV): noisy crowds. Sweeps worker accuracy η and
//! compares single-vote against majority-of-3 answering, with T1-on and
//! Bayesian belief updates.
//!
//! `cargo run --release -p ctk-bench --bin table_noise [runs]`

use ctk_bench::{emit_tsv, evaluate, fmt, runs_from_args, EvalOpts};
use ctk_core::session::Algorithm;
use ctk_crowd::VotePolicy;
use ctk_datagen::scenarios;

fn main() {
    let runs = runs_from_args(10);
    const BUDGET: usize = 20;

    eprintln!("# T-noise: D(omega_r, T_K) vs worker accuracy — N=15, K=5, B={BUDGET}, {runs} runs");
    let mut rows = Vec::new();
    for accuracy in [0.6f64, 0.7, 0.8, 0.9, 1.0] {
        for (policy, policy_name) in [
            (VotePolicy::Single, "single"),
            (VotePolicy::Majority(3), "majority3"),
        ] {
            let opts = EvalOpts {
                runs,
                worlds: 3_000,
                accuracy,
                policy,
                ..EvalOpts::default()
            };
            let s = evaluate(scenarios::noise, Algorithm::T1On, BUDGET, &opts);
            let effective = policy.effective_accuracy(accuracy);
            rows.push(vec![
                fmt(accuracy),
                policy_name.to_string(),
                fmt(effective),
                fmt(s.avg_distance),
            ]);
            eprintln!(
                "#   eta={accuracy:.2} {policy_name:9} (effective {effective:.3})  D={:.4}",
                s.avg_distance
            );
        }
    }
    emit_tsv(
        "table_noise",
        &["accuracy", "policy", "effective_accuracy", "D"],
        &rows,
    );
}
