//! Numerical integration primitives: trapezoid rules on fixed grids (used by
//! the exact TPO probability engine) and adaptive Simpson for one-off
//! integrals in tests and diagnostics.

/// Integrates samples `y` taken at (sorted, not necessarily uniform) points
/// `x` with the composite trapezoid rule.
///
/// # Panics
/// Panics if `x.len() != y.len()` or fewer than two points are given.
pub fn trapezoid(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "x/y length mismatch");
    assert!(x.len() >= 2, "need at least two samples");
    let mut acc = 0.0;
    for i in 1..x.len() {
        acc += (x[i] - x[i - 1]) * (y[i] + y[i - 1]) * 0.5;
    }
    acc
}

/// Cumulative trapezoid: returns `out[i] = Int_{x[0]}^{x[i]} y dx` computed
/// with the composite trapezoid rule (`out[0] = 0`).
pub fn cumulative_trapezoid(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "x/y length mismatch");
    let mut out = Vec::with_capacity(x.len());
    out.push(0.0);
    let mut acc = 0.0;
    for i in 1..x.len() {
        acc += (x[i] - x[i - 1]) * (y[i] + y[i - 1]) * 0.5;
        out.push(acc);
    }
    out
}

/// In-place variant of [`cumulative_trapezoid`] that reuses an output buffer,
/// avoiding per-call allocations in the hot nested-integration loop.
pub fn cumulative_trapezoid_into(x: &[f64], y: &[f64], out: &mut Vec<f64>) {
    assert_eq!(x.len(), y.len(), "x/y length mismatch");
    out.clear();
    out.reserve(x.len());
    out.push(0.0);
    let mut acc = 0.0;
    for i in 1..x.len() {
        acc += (x[i] - x[i - 1]) * (y[i] + y[i - 1]) * 0.5;
        out.push(acc);
    }
}

/// Adaptive Simpson integration of `f` over `[a, b]` to absolute tolerance
/// `tol`. Recursion depth is capped at 50 to guarantee termination on
/// pathological integrands.
pub fn adaptive_simpson<F: Fn(f64) -> f64>(f: &F, a: f64, b: f64, tol: f64) -> f64 {
    fn simpson<F: Fn(f64) -> f64>(f: &F, a: f64, fa: f64, b: f64, fb: f64) -> (f64, f64, f64) {
        let m = 0.5 * (a + b);
        let fm = f(m);
        let s = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
        (m, fm, s)
    }
    #[allow(clippy::too_many_arguments)]
    fn recurse<F: Fn(f64) -> f64>(
        f: &F,
        a: f64,
        fa: f64,
        b: f64,
        fb: f64,
        m: f64,
        fm: f64,
        whole: f64,
        tol: f64,
        depth: u32,
    ) -> f64 {
        let (lm, flm, left) = simpson(f, a, fa, m, fm);
        let (rm, frm, right) = simpson(f, m, fm, b, fb);
        let delta = left + right - whole;
        if depth >= 50 || delta.abs() <= 15.0 * tol {
            left + right + delta / 15.0
        } else {
            recurse(f, a, fa, m, fm, lm, flm, left, tol * 0.5, depth + 1)
                + recurse(f, m, fm, b, fb, rm, frm, right, tol * 0.5, depth + 1)
        }
    }

    if a == b {
        return 0.0;
    }
    let fa = f(a);
    let fb = f(b);
    let (m, fm, whole) = simpson(f, a, fa, b, fb);
    recurse(f, a, fa, b, fb, m, fm, whole, tol, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trapezoid_integrates_linear_exactly() {
        let x: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        // Int_0^1 (3x + 1) dx = 2.5, exact for trapezoid on linear integrands.
        assert!((trapezoid(&x, &y) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn trapezoid_handles_nonuniform_grids() {
        let x = [0.0, 0.1, 0.5, 0.6, 1.0];
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();
        assert!((trapezoid(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cumulative_matches_total() {
        let x: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
        let y: Vec<f64> = x.iter().map(|v| v * v).collect();
        let cum = cumulative_trapezoid(&x, &y);
        assert_eq!(cum[0], 0.0);
        assert!((cum.last().unwrap() - trapezoid(&x, &y)).abs() < 1e-14);
        // monotone for nonnegative integrand
        for w in cum.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn cumulative_into_matches_allocating_version() {
        let x: Vec<f64> = (0..=50).map(|i| i as f64 / 50.0).collect();
        let y: Vec<f64> = x.iter().map(|v| (3.0 * v).sin().abs()).collect();
        let a = cumulative_trapezoid(&x, &y);
        let mut b = vec![1.0; 3]; // stale contents must be cleared
        cumulative_trapezoid_into(&x, &y, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn simpson_integrates_smooth_functions() {
        let val = adaptive_simpson(&|x: f64| x.exp(), 0.0, 1.0, 1e-10);
        assert!((val - (std::f64::consts::E - 1.0)).abs() < 1e-9);

        let val = adaptive_simpson(&|x: f64| (x * x).sin(), 0.0, 2.0, 1e-10);
        // Reference computed with high-resolution trapezoid.
        let x: Vec<f64> = (0..=200_000).map(|i| i as f64 * 2.0 / 200_000.0).collect();
        let y: Vec<f64> = x.iter().map(|v| (v * v).sin()).collect();
        assert!((val - trapezoid(&x, &y)).abs() < 1e-7);
    }

    #[test]
    fn simpson_degenerate_interval_is_zero() {
        assert_eq!(adaptive_simpson(&|x: f64| x, 2.0, 2.0, 1e-9), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn trapezoid_rejects_mismatched_lengths() {
        trapezoid(&[0.0, 1.0], &[1.0]);
    }
}
