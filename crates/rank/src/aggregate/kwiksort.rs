//! KwikSort (Ailon, Charikar & Newman): randomized quicksort on the
//! majority tournament — an expected 11/7-approximation for weighted
//! feedback arc set on majority tournaments.

use crate::tournament::Tournament;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs one seeded KwikSort pass and returns the ordering (indices).
pub fn kwiksort(t: &Tournament, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let idx: Vec<usize> = (0..t.len()).collect();
    let mut out = Vec::with_capacity(idx.len());
    sort(t, &mut rng, &idx, &mut out);
    out
}

fn sort(t: &Tournament, rng: &mut StdRng, items: &[usize], out: &mut Vec<usize>) {
    match items.len() {
        0 => {}
        1 => out.push(items[0]),
        _ => {
            let pivot = items[rng.gen_range(0..items.len())];
            let mut left = Vec::new();
            let mut right = Vec::new();
            for &a in items.iter() {
                if a == pivot {
                    continue;
                }
                // a goes before the pivot if the majority prefers it above.
                if t.weight(a, pivot) > 0.5 {
                    left.push(a);
                } else {
                    right.push(a);
                }
            }
            sort(t, rng, &left, out);
            out.push(pivot);
            sort(t, rng, &right, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::RankList;

    #[test]
    fn unanimous_input_is_recovered() {
        let l = RankList::new(vec![4, 1, 0, 3, 2]).unwrap();
        let t = Tournament::from_weighted_lists(&[(l, 1.0)]);
        for seed in 0..5 {
            let order = kwiksort(&t, seed);
            let items: Vec<u32> = order.iter().map(|&i| t.items()[i]).collect();
            assert_eq!(items, vec![4, 1, 0, 3, 2], "seed {seed}");
        }
    }

    #[test]
    fn output_is_a_permutation() {
        let t = Tournament::from_fn((0..11).collect(), |u, v| {
            if (u * 7 + v) % 3 == 0 {
                0.7
            } else {
                0.4
            }
        });
        for seed in 0..8 {
            let mut order = kwiksort(&t, seed);
            order.sort_unstable();
            assert_eq!(order, (0..11).collect::<Vec<_>>(), "seed {seed}");
        }
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let t = Tournament::from_fn((0..9).collect(), |u, v| {
            if u.wrapping_mul(31) % 5 > v % 5 {
                0.8
            } else {
                0.2
            }
        });
        assert_eq!(kwiksort(&t, 123), kwiksort(&t, 123));
    }

    #[test]
    fn empty_tournament() {
        let t = Tournament::from_weighted_lists(&[]);
        assert!(kwiksort(&t, 0).is_empty());
    }
}
