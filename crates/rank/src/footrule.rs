//! Spearman footrule distance with location parameter (Fagin et al.'s
//! `F^(ℓ)`), an alternative to the top-k Kendall distance. Provided both for
//! completeness of the rank substrate and as a cross-check metric in the
//! experiment harness (footrule and Kendall are within a factor 2 of each
//! other, a classic diaconis–graham bound the tests verify).

use crate::list::RankList;

/// Raw footrule distance: items absent from a list are charged position
/// `len + 1` (1-based ranks).
pub fn topk_footrule(a: &RankList, b: &RankList) -> f64 {
    let la = a.len() + 1;
    let lb = b.len() + 1;
    let mut union: Vec<u32> = a.items().to_vec();
    for &it in b.items() {
        if !a.contains(it) {
            union.push(it);
        }
    }
    union
        .iter()
        .map(|&it| {
            let pa = a.position(it).map(|p| p + 1).unwrap_or(la) as f64;
            let pb = b.position(it).map(|p| p + 1).unwrap_or(lb) as f64;
            (pa - pb).abs()
        })
        .sum()
}

/// Maximum footrule for lists of lengths `ka`, `kb` (disjoint lists).
pub fn topk_footrule_max(ka: usize, kb: usize) -> f64 {
    // Each item of a: |r - (kb+1)|; summed r=1..ka, plus symmetric term.
    let sum_to =
        |k: usize, l: usize| -> f64 { (1..=k).map(|r| (l as f64 + 1.0 - r as f64).abs()).sum() };
    sum_to(ka, kb) + sum_to(kb, ka)
}

/// Footrule normalized to `[0, 1]`.
pub fn topk_footrule_normalized(a: &RankList, b: &RankList) -> f64 {
    let max = topk_footrule_max(a.len(), b.len());
    if max <= 0.0 {
        return 0.0;
    }
    (topk_footrule(a, b) / max).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kendall::kendall_distance;

    fn rl(items: &[u32]) -> RankList {
        RankList::new(items.to_vec()).unwrap()
    }

    #[test]
    fn identical_lists_at_zero() {
        let a = rl(&[2, 0, 1]);
        assert_eq!(topk_footrule(&a, &a.clone()), 0.0);
        assert_eq!(topk_footrule_normalized(&a, &a.clone()), 0.0);
    }

    #[test]
    fn full_permutation_footrule() {
        // a=[0,1,2], b=[2,1,0]: |1-3| + |2-2| + |3-1| = 4.
        let a = rl(&[0, 1, 2]);
        let b = rl(&[2, 1, 0]);
        assert_eq!(topk_footrule(&a, &b), 4.0);
    }

    #[test]
    fn disjoint_lists_hit_max() {
        let a = rl(&[0, 1]);
        let b = rl(&[2, 3]);
        let d = topk_footrule(&a, &b);
        assert!((d - topk_footrule_max(2, 2)).abs() < 1e-12);
        assert_eq!(topk_footrule_normalized(&a, &b), 1.0);
    }

    #[test]
    fn symmetry() {
        let a = rl(&[0, 1, 2]);
        let b = rl(&[1, 4, 0]);
        assert_eq!(topk_footrule(&a, &b), topk_footrule(&b, &a));
    }

    #[test]
    fn diaconis_graham_bound_on_permutations() {
        // For full permutations: K <= F <= 2K.
        let perms = [
            vec![0u32, 1, 2, 3],
            vec![3, 2, 1, 0],
            vec![1, 0, 3, 2],
            vec![2, 3, 0, 1],
            vec![0, 2, 1, 3],
        ];
        let base = rl(&[0, 1, 2, 3]);
        for p in &perms {
            let l = rl(p);
            let k = kendall_distance(&base, &l).unwrap() as f64;
            let f = topk_footrule(&base, &l);
            assert!(k <= f + 1e-12, "K={k} F={f}");
            assert!(f <= 2.0 * k + 1e-12, "K={k} F={f}");
        }
    }

    #[test]
    fn empty_lists() {
        let e = rl(&[]);
        assert_eq!(topk_footrule(&e, &e.clone()), 0.0);
        assert_eq!(topk_footrule_normalized(&e, &e.clone()), 0.0);
    }
}
