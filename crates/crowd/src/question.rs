//! Crowd tasks: pairwise ranking questions and their answers.
//!
//! A question `q = (t_i ?≺ t_j)` shows two items to a worker and asks which
//! one ranks higher (§III: “crowd tasks expressed as questions of the form
//! `q = t_i ?≺ t_j`”).

use std::fmt;

/// “Does tuple `i` rank above tuple `j`?”
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Question {
    /// First compared tuple.
    pub i: u32,
    /// Second compared tuple.
    pub j: u32,
}

impl Question {
    /// Creates a question; `i` and `j` must differ.
    pub fn new(i: u32, j: u32) -> Self {
        assert_ne!(i, j, "a question must compare two distinct tuples");
        Self { i, j }
    }

    /// The same comparison with the smaller id first (questions `(i, j)`
    /// and `(j, i)` carry identical information; the canonical form is used
    /// for deduplication in question pools).
    pub fn canonical(self) -> Self {
        if self.i <= self.j {
            self
        } else {
            Self {
                i: self.j,
                j: self.i,
            }
        }
    }

    /// The reversed question.
    pub fn flipped(self) -> Self {
        Self {
            i: self.j,
            j: self.i,
        }
    }
}

impl fmt::Display for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{} ?≺ t{}", self.i, self.j)
    }
}

/// A collected (possibly noisy, possibly aggregated) answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Answer {
    /// The question as it was asked.
    pub question: Question,
    /// `true` iff the crowd said `i` ranks above `j`.
    pub yes: bool,
}

impl Answer {
    /// The `(winner, loser)` pair asserted by this answer.
    pub fn implied_order(&self) -> (u32, u32) {
        if self.yes {
            (self.question.i, self.question.j)
        } else {
            (self.question.j, self.question.i)
        }
    }
}

impl fmt::Display for Answer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (w, l) = self.implied_order();
        write!(f, "t{w} ≺ t{l}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "distinct")]
    fn self_comparison_rejected() {
        Question::new(3, 3);
    }

    #[test]
    fn canonicalization() {
        assert_eq!(Question::new(5, 2).canonical(), Question::new(2, 5));
        assert_eq!(Question::new(2, 5).canonical(), Question::new(2, 5));
        assert_eq!(Question::new(2, 5).flipped(), Question::new(5, 2));
    }

    #[test]
    fn implied_order() {
        let q = Question::new(1, 4);
        assert_eq!(
            Answer {
                question: q,
                yes: true
            }
            .implied_order(),
            (1, 4)
        );
        assert_eq!(
            Answer {
                question: q,
                yes: false
            }
            .implied_order(),
            (4, 1)
        );
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Question::new(0, 2)), "t0 ?≺ t2");
        let a = Answer {
            question: Question::new(0, 2),
            yes: false,
        };
        assert_eq!(format!("{a}"), "t2 ≺ t0");
    }
}
