//! Question-selection strategies (§III-A/B): the paper's contribution.
//!
//! Offline strategies commit to all `B` questions before any answer
//! arrives (a batch posted to a crowd market); online strategies pick each
//! question after seeing the previous answers (interactive posting).
//!
//! | paper name | type | here |
//! |-----------|------|------|
//! | `A*-off`  | offline, offline-optimal | [`AStarOff`] |
//! | `TB-off`  | offline, top-B singles   | [`TbOff`] |
//! | `C-off`   | offline, conditional greedy | [`COff`] |
//! | `A*-on`   | online, re-planning      | [`AStarOn`] |
//! | `T1-on`   | online, greedy           | [`T1On`] |
//! | `Random`  | baseline                 | [`RandomSelector`] |
//! | `Naive`   | baseline                 | [`NaiveSelector`] |
//! | `incr`    | hybrid (see [`crate::session`]) | `Algorithm::Incr` |

mod astar;
mod c_off;
mod common;
mod naive;
mod random;
mod t1_on;
mod tb_off;

pub use astar::{AStarOff, AStarOn};
pub use c_off::COff;
pub use common::{all_tree_pairs, relevant_questions};
pub use naive::NaiveSelector;
pub use random::RandomSelector;
pub use t1_on::T1On;
pub use tb_off::TbOff;

use crate::residual::ResidualCtx;
use ctk_crowd::Question;
use ctk_tpo::PathSet;

/// A strategy that commits to a batch of questions up front.
///
/// `Send` is a supertrait (as on [`OnlineSelector`]) so boxed strategies —
/// and the `SessionDriver`s holding them — can migrate between the worker
/// threads of a sharded serving loop.
pub trait OfflineSelector: Send {
    /// Paper name of the strategy.
    fn name(&self) -> &'static str;

    /// Selects up to `budget` questions for the given belief state. May
    /// return fewer when the relevant question pool is smaller.
    fn select(&mut self, ps: &PathSet, budget: usize, ctx: &ResidualCtx<'_>) -> Vec<Question>;
}

/// A strategy that picks one question at a time, seeing updated beliefs.
pub trait OnlineSelector: Send {
    /// Paper name of the strategy.
    fn name(&self) -> &'static str;

    /// Chooses the next question, or `None` when no informative question
    /// remains (early termination, §III-B).
    fn next_question(
        &mut self,
        ps: &PathSet,
        remaining: usize,
        ctx: &ResidualCtx<'_>,
    ) -> Option<Question>;
}

#[cfg(test)]
pub(crate) mod test_util {
    use crate::measures::UncertaintyMeasure;
    use ctk_prob::compare::PairwiseMatrix;
    use ctk_prob::{ScoreDist, UncertainTable};
    use ctk_tpo::build::{build_mc, McConfig};
    use ctk_tpo::PathSet;

    /// A 5-tuple overlapping table, its pairwise matrix and the TPO at
    /// k=3 — the shared fixture for selector tests.
    pub fn fixture() -> (UncertainTable, PairwiseMatrix, PathSet) {
        let table = UncertainTable::new(vec![
            ScoreDist::uniform(0.00, 0.50).unwrap(),
            ScoreDist::uniform(0.20, 0.70).unwrap(),
            ScoreDist::uniform(0.40, 0.90).unwrap(),
            ScoreDist::uniform(0.60, 1.10).unwrap(),
            ScoreDist::uniform(0.80, 1.30).unwrap(),
        ])
        .unwrap();
        let pw = PairwiseMatrix::compute(&table);
        let ps = build_mc(&table, 3, &McConfig::fixed(4000, 42)).unwrap();
        (table, pw, ps)
    }

    /// Asserts the selection is a set of distinct canonical questions over
    /// valid tuples.
    pub fn assert_valid_selection(qs: &[ctk_crowd::Question], ps: &PathSet, budget: usize) {
        assert!(qs.len() <= budget, "selection exceeds budget");
        let tuples = ps.tuples();
        let mut seen = std::collections::HashSet::new();
        for q in qs {
            assert_ne!(q.i, q.j);
            assert!(tuples.contains(&q.i), "unknown tuple t{}", q.i);
            assert!(tuples.contains(&q.j), "unknown tuple t{}", q.j);
            assert!(seen.insert(q.canonical()), "duplicate question {q}");
        }
    }

    /// Expected residual of a selection under a measure (for quality
    /// comparisons between strategies).
    pub fn residual_of(
        ps: &PathSet,
        qs: &[ctk_crowd::Question],
        measure: &dyn UncertaintyMeasure,
        pw: &PairwiseMatrix,
    ) -> f64 {
        let ctx = crate::residual::ResidualCtx {
            measure,
            pairwise: pw,
        };
        crate::residual::expected_residual_set(ps, qs, &ctx)
    }
}
