//! [`ScoreDist`]: the unified uncertain-score type consumed by the rest of
//! the system.
//!
//! The paper models the score of tuple `t_i` as a random variable with pdf
//! `f_i`; this enum is that random variable. Enum dispatch (rather than
//! `dyn Trait`) keeps scores `Clone + PartialEq`, avoids allocation in the
//! hot sampling loop, and lets the comparison code exploit closed forms for
//! specific pairs (e.g. Gaussian–Gaussian).

use crate::discrete::Discrete;
use crate::error::Result;
use crate::gaussian::Gaussian;
use crate::histogram::Histogram;
use crate::mixture::Mixture;
use crate::piecewise::PiecewiseLinear;
use crate::uniform::Uniform;
use rand::Rng;

/// An uncertain score: a univariate distribution over real score values.
#[derive(Debug, Clone, PartialEq)]
pub enum ScoreDist {
    /// Exactly known score (no uncertainty).
    Point(f64),
    /// Uniform over an interval.
    Uniform(Uniform),
    /// Gaussian.
    Gaussian(Gaussian),
    /// Finite set of possible values.
    Discrete(Discrete),
    /// Piecewise-constant density.
    Histogram(Histogram),
    /// Piecewise-linear density.
    Piecewise(PiecewiseLinear),
    /// Finite mixture of score distributions.
    Mixture(Mixture),
}

impl ScoreDist {
    /// Certain score `x`.
    pub fn point(x: f64) -> Self {
        ScoreDist::Point(x)
    }

    /// Uniform over `[lo, hi]`.
    pub fn uniform(lo: f64, hi: f64) -> Result<Self> {
        Ok(ScoreDist::Uniform(Uniform::new(lo, hi)?))
    }

    /// Uniform centered at `center` with width `width`.
    pub fn uniform_centered(center: f64, width: f64) -> Result<Self> {
        Ok(ScoreDist::Uniform(Uniform::centered(center, width)?))
    }

    /// Gaussian with mean `mu`, standard deviation `sigma`.
    pub fn gaussian(mu: f64, sigma: f64) -> Result<Self> {
        Ok(ScoreDist::Gaussian(Gaussian::new(mu, sigma)?))
    }

    /// Discrete over `(value, weight)` pairs.
    pub fn discrete(pairs: &[(f64, f64)]) -> Result<Self> {
        Ok(ScoreDist::Discrete(Discrete::new(pairs)?))
    }

    /// Histogram with explicit `edges` and per-bin `weights`.
    pub fn histogram(edges: &[f64], weights: &[f64]) -> Result<Self> {
        Ok(ScoreDist::Histogram(Histogram::new(edges, weights)?))
    }

    /// Piecewise-linear density through `knots`.
    pub fn piecewise(knots: &[(f64, f64)]) -> Result<Self> {
        Ok(ScoreDist::Piecewise(PiecewiseLinear::new(knots)?))
    }

    /// Triangular distribution on `[lo, hi]` with mode `mode`.
    pub fn triangular(lo: f64, mode: f64, hi: f64) -> Result<Self> {
        Ok(ScoreDist::Piecewise(PiecewiseLinear::triangular(
            lo, mode, hi,
        )?))
    }

    /// Finite mixture of `(weight, component)` pairs.
    pub fn mixture(parts: Vec<(f64, ScoreDist)>) -> Result<Self> {
        Ok(ScoreDist::Mixture(Mixture::new(parts)?))
    }

    /// Two-component mixture (the common bimodal case).
    pub fn bimodal(w1: f64, d1: ScoreDist, w2: f64, d2: ScoreDist) -> Result<Self> {
        Ok(ScoreDist::Mixture(Mixture::bimodal(w1, d1, w2, d2)?))
    }

    /// True if the distribution has a density (no point masses).
    pub fn is_continuous(&self) -> bool {
        match self {
            ScoreDist::Point(_) | ScoreDist::Discrete(_) => false,
            ScoreDist::Mixture(m) => m.is_continuous(),
            _ => true,
        }
    }

    /// Probability density at `x` (0 for purely discrete distributions —
    /// use [`Self::mass_at`] for atoms).
    pub fn pdf(&self, x: f64) -> f64 {
        match self {
            ScoreDist::Point(_) | ScoreDist::Discrete(_) => 0.0,
            ScoreDist::Uniform(d) => d.pdf(x),
            ScoreDist::Gaussian(d) => d.pdf(x),
            ScoreDist::Histogram(d) => d.pdf(x),
            ScoreDist::Piecewise(d) => d.pdf(x),
            ScoreDist::Mixture(m) => m.pdf(x),
        }
    }

    /// Point mass at exactly `x` (non-zero only for `Point`/`Discrete`).
    pub fn mass_at(&self, x: f64) -> f64 {
        match self {
            // ctk-allow(float-eq): atom mass lives at exactly *v — bitwise match is the semantics
            ScoreDist::Point(v) if *v == x => 1.0,
            ScoreDist::Point(_) => 0.0,
            ScoreDist::Discrete(d) => d.pmf(x),
            ScoreDist::Mixture(m) => m.mass_at(x),
            _ => 0.0,
        }
    }

    /// Cumulative distribution `P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        match self {
            ScoreDist::Point(v) => {
                if x >= *v {
                    1.0
                } else {
                    0.0
                }
            }
            ScoreDist::Uniform(d) => d.cdf(x),
            ScoreDist::Gaussian(d) => d.cdf(x),
            ScoreDist::Discrete(d) => d.cdf(x),
            ScoreDist::Histogram(d) => d.cdf(x),
            ScoreDist::Piecewise(d) => d.cdf(x),
            ScoreDist::Mixture(m) => m.cdf(x),
        }
    }

    /// Quantile function; `p` clamped to `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        match self {
            ScoreDist::Point(v) => *v,
            ScoreDist::Uniform(d) => d.quantile(p),
            ScoreDist::Gaussian(d) => d.quantile(p.clamp(1e-16, 1.0 - 1e-16)),
            ScoreDist::Discrete(d) => d.quantile(p),
            ScoreDist::Histogram(d) => d.quantile(p),
            ScoreDist::Piecewise(d) => d.quantile(p),
            ScoreDist::Mixture(m) => m.quantile(p),
        }
    }

    /// Mean score.
    pub fn mean(&self) -> f64 {
        match self {
            ScoreDist::Point(v) => *v,
            ScoreDist::Uniform(d) => d.mean(),
            ScoreDist::Gaussian(d) => d.mean(),
            ScoreDist::Discrete(d) => d.mean(),
            ScoreDist::Histogram(d) => d.mean(),
            ScoreDist::Piecewise(d) => d.mean(),
            ScoreDist::Mixture(m) => m.mean(),
        }
    }

    /// Score variance.
    pub fn variance(&self) -> f64 {
        match self {
            ScoreDist::Point(_) => 0.0,
            ScoreDist::Uniform(d) => d.variance(),
            ScoreDist::Gaussian(d) => d.variance(),
            ScoreDist::Discrete(d) => d.variance(),
            ScoreDist::Histogram(d) => d.variance(),
            ScoreDist::Piecewise(d) => d.variance(),
            ScoreDist::Mixture(m) => m.variance(),
        }
    }

    /// Support hull `(lo, hi)`; effective (`mu +- 8 sigma`) for Gaussians.
    pub fn support(&self) -> (f64, f64) {
        match self {
            ScoreDist::Point(v) => (*v, *v),
            ScoreDist::Uniform(d) => d.support(),
            ScoreDist::Gaussian(d) => d.support(),
            ScoreDist::Discrete(d) => d.support(),
            ScoreDist::Histogram(d) => d.support(),
            ScoreDist::Piecewise(d) => d.support(),
            ScoreDist::Mixture(m) => m.support(),
        }
    }

    /// Draws one score sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            ScoreDist::Point(v) => *v,
            ScoreDist::Uniform(d) => d.sample(rng),
            ScoreDist::Gaussian(d) => d.sample(rng),
            ScoreDist::Discrete(d) => d.sample(rng),
            ScoreDist::Histogram(d) => d.sample(rng),
            ScoreDist::Piecewise(d) => d.sample(rng),
            ScoreDist::Mixture(m) => m.sample(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn all_families() -> Vec<ScoreDist> {
        vec![
            ScoreDist::point(0.5),
            ScoreDist::uniform(0.0, 1.0).unwrap(),
            ScoreDist::gaussian(0.5, 0.1).unwrap(),
            ScoreDist::discrete(&[(0.2, 1.0), (0.8, 3.0)]).unwrap(),
            ScoreDist::histogram(&[0.0, 0.5, 1.0], &[1.0, 3.0]).unwrap(),
            ScoreDist::triangular(0.0, 0.4, 1.0).unwrap(),
            ScoreDist::bimodal(
                0.4,
                ScoreDist::uniform(0.0, 0.3).unwrap(),
                0.6,
                ScoreDist::gaussian(0.7, 0.05).unwrap(),
            )
            .unwrap(),
        ]
    }

    #[test]
    fn cdf_is_monotone_for_every_family() {
        for d in all_families() {
            let (lo, hi) = d.support();
            let span = (hi - lo).max(1e-6);
            let mut prev = -1.0;
            for i in 0..=100 {
                let x = lo - 0.1 * span + i as f64 / 100.0 * 1.2 * span;
                let c = d.cdf(x);
                assert!((0.0..=1.0).contains(&c), "{d:?} cdf({x}) = {c}");
                assert!(c >= prev - 1e-12, "{d:?} non-monotone at {x}");
                prev = c;
            }
        }
    }

    #[test]
    fn quantile_roundtrip_continuous() {
        for d in all_families().into_iter().filter(|d| d.is_continuous()) {
            for i in 1..20 {
                let p = i as f64 / 20.0;
                let x = d.quantile(p);
                assert!((d.cdf(x) - p).abs() < 1e-5, "{d:?} p={p}");
            }
        }
    }

    #[test]
    fn samples_inside_support() {
        let mut rng = StdRng::seed_from_u64(42);
        for d in all_families() {
            let (lo, hi) = d.support();
            for _ in 0..500 {
                let s = d.sample(&mut rng);
                assert!(
                    s >= lo - 1e-9 && s <= hi + 1e-9,
                    "{d:?} sampled {s} outside [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn sample_mean_approximates_mean() {
        let mut rng = StdRng::seed_from_u64(1234);
        for d in all_families() {
            const N: usize = 20_000;
            let m: f64 = (0..N).map(|_| d.sample(&mut rng)).sum::<f64>() / N as f64;
            assert!(
                (m - d.mean()).abs() < 0.02,
                "{d:?}: sample mean {m} vs analytic {}",
                d.mean()
            );
        }
    }

    #[test]
    fn point_semantics() {
        let p = ScoreDist::point(2.0);
        assert!(!p.is_continuous());
        assert_eq!(p.mass_at(2.0), 1.0);
        assert_eq!(p.mass_at(2.1), 0.0);
        assert_eq!(p.cdf(1.999), 0.0);
        assert_eq!(p.cdf(2.0), 1.0);
        assert_eq!(p.variance(), 0.0);
        assert_eq!(p.support(), (2.0, 2.0));
    }

    #[test]
    fn constructors_propagate_errors() {
        assert!(ScoreDist::uniform(1.0, 0.0).is_err());
        assert!(ScoreDist::gaussian(0.0, -1.0).is_err());
        assert!(ScoreDist::discrete(&[]).is_err());
        assert!(ScoreDist::histogram(&[0.0], &[]).is_err());
        assert!(ScoreDist::piecewise(&[(0.0, 1.0)]).is_err());
        assert!(ScoreDist::triangular(1.0, 2.0, 0.0).is_err());
    }
}
