//! Negative fixture: findings suppressed by well-formed `ctk-allow`
//! directives, both standalone (covers the next line) and trailing
//! (covers its own line).
use std::collections::HashMap; // ctk-allow(det-hash-collection): lookup-only map, never iterated

pub fn allowed_lookup_map(xs: &[u32]) -> usize {
    // ctk-allow(det-hash-collection): lookup-only map, never iterated
    let mut m: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        m.insert(x, x);
    }
    m.len()
}

pub fn allowed_unwrap(x: Option<u32>) -> u32 {
    x.expect("checked by caller") // ctk-allow(panic-unwrap): caller validates x upstream
}

pub fn allowed_sentinel(w: f64) -> bool {
    // ctk-allow(float-eq): exact-zero sentinel
    w == 0.0
}
