//! Frame types and the top-level codec.
//!
//! Layout (all integers LE, floats as IEEE-754 bits — DESIGN.md §14):
//!
//! ```text
//! frame     := version:u8  tag:u8  len:u32  payload[len]
//! question  := i:u32  j:u32                    (i != j enforced on decode)
//! hint      := u8                              (0 Any, 1 Cheap, 2 Expert)
//! answer    := question  yes:bool
//! graded    := answer  accuracy:f64  cached:bool
//! step      := question  answer_yes:bool  orderings:u64  uncertainty:f64
//!              distance:opt<f64>
//! vec<T>    := count:u32  T{count}
//! opt<f64>  := flag:bool  bits:f64?
//! string    := len:u32  utf8[len]
//! ```
//!
//! Tags: `1` question batch, `2` graded answer batch, `3` UrReport
//! summary, `4` precision summary. Unknown tags and versions are typed
//! errors; payloads must consume exactly `len` bytes.

use crate::codec::{Reader, Writer};
use crate::error::WireError;
use crate::{Result, WIRE_VERSION};
use ctk_core::session::UrReport;
use ctk_crowd::{Answer, Question, RouteHint};
use ctk_tpo::{PrecisionReport, StopReason};

/// Frame header bytes before the payload: version, tag, length.
const HEADER_LEN: usize = 6;

const TAG_QUESTIONS: u8 = 1;
const TAG_ANSWERS: u8 = 2;
const TAG_REPORT: u8 = 3;
const TAG_PRECISION: u8 = 4;

/// A batch of routed questions one session puts on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuestionBatch {
    /// The asking session, as the service numbers it.
    pub session: u64,
    /// Questions with the routing hint each one carries.
    pub items: Vec<(Question, RouteHint)>,
}

/// One answer graded with the accuracy it was produced at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradedAnswer {
    /// The answer, oriented as the question was asked.
    pub answer: Answer,
    /// Nominal accuracy of the (aggregated) answer.
    pub accuracy: f64,
    /// True when the gateway served it from memory rather than workers.
    pub cached: bool,
}

/// The gateway's reply to a [`QuestionBatch`]: answers in request order
/// (possibly a prefix when the crowd starves), plus the crowd budget left.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerBatch {
    /// The session the answers belong to.
    pub session: u64,
    /// Questions the gateway-side crowd can still afford after this
    /// batch — lets the service-side proxy answer `Crowd::remaining`
    /// without an extra round trip.
    pub crowd_remaining: u64,
    /// The graded answers.
    pub items: Vec<GradedAnswer>,
}

/// One step of a session, as [`UrReport`] records it (timing-free).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepSummary {
    /// The question as asked.
    pub question: Question,
    /// The aggregated answer.
    pub answer_yes: bool,
    /// Orderings remaining after the update.
    pub orderings: u64,
    /// Uncertainty after the update.
    pub uncertainty: f64,
    /// `D(ω_r, T_K)` after the update, when ground truth was provided.
    pub distance_to_truth: Option<f64>,
}

/// The timing-free summary of a finished session's [`UrReport`] — every
/// field `UrReport::same_outcome` compares, so two peers agreeing on a
/// `ReportSummary` agree on the session's outcome bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportSummary {
    /// The session the report belongs to.
    pub session: u64,
    /// Strategy name.
    pub algorithm: String,
    /// Measure name.
    pub measure: String,
    /// Orderings in the initial tree.
    pub initial_orderings: u64,
    /// Uncertainty of the initial tree.
    pub initial_uncertainty: f64,
    /// Initial distance to ground truth, when recorded.
    pub initial_distance: Option<f64>,
    /// One record per asked question.
    pub steps: Vec<StepSummary>,
    /// Answers that contradicted every remaining ordering.
    pub contradictions: u64,
    /// True when the session ended with a single ordering.
    pub resolved: bool,
    /// The reported top-K.
    pub final_topk: Vec<u32>,
    /// Possible worlds sampled by the initial build.
    pub worlds_drawn: u64,
    /// Achieved simultaneous half-width of an adaptive build.
    pub achieved_epsilon: Option<f64>,
    /// Requested confidence parameter of an adaptive build.
    pub precision_delta: Option<f64>,
    /// True when the certain bounds decided the query before sampling.
    pub certain_early_stop: bool,
}

impl ReportSummary {
    /// The summary of `report`, attributed to `session`.
    pub fn from_report(session: u64, report: &UrReport) -> Self {
        Self {
            session,
            algorithm: report.algorithm.to_string(),
            measure: report.measure.to_string(),
            initial_orderings: report.initial_orderings as u64,
            initial_uncertainty: report.initial_uncertainty,
            initial_distance: report.initial_distance,
            steps: report
                .steps
                .iter()
                .map(|s| StepSummary {
                    question: s.question,
                    answer_yes: s.answer_yes,
                    orderings: s.orderings as u64,
                    uncertainty: s.uncertainty,
                    distance_to_truth: s.distance_to_truth,
                })
                .collect(),
            contradictions: report.contradictions as u64,
            resolved: report.resolved,
            final_topk: report.final_topk.clone(),
            worlds_drawn: report.worlds_drawn as u64,
            achieved_epsilon: report.achieved_epsilon,
            precision_delta: report.precision_delta,
            certain_early_stop: report.certain_early_stop,
        }
    }

    /// Bit-exact agreement with `report`, over exactly the fields
    /// [`UrReport::same_outcome`] compares (floats via `to_bits`, timing
    /// ignored). A decoded summary matching the local report proves the
    /// wire path reproduced the in-process outcome.
    pub fn matches(&self, report: &UrReport) -> bool {
        let opt_bits = |a: Option<f64>, b: Option<f64>| match (a, b) {
            (None, None) => true,
            (Some(x), Some(y)) => x.to_bits() == y.to_bits(),
            _ => false,
        };
        self.algorithm == report.algorithm
            && self.measure == report.measure
            && self.initial_orderings == report.initial_orderings as u64
            && self.initial_uncertainty.to_bits() == report.initial_uncertainty.to_bits()
            && opt_bits(self.initial_distance, report.initial_distance)
            && self.steps.len() == report.steps.len()
            && self.steps.iter().zip(&report.steps).all(|(a, b)| {
                a.question == b.question
                    && a.answer_yes == b.answer_yes
                    && a.orderings == b.orderings as u64
                    && a.uncertainty.to_bits() == b.uncertainty.to_bits()
                    && opt_bits(a.distance_to_truth, b.distance_to_truth)
            })
            && self.contradictions == report.contradictions as u64
            && self.resolved == report.resolved
            && self.final_topk == report.final_topk
            && self.worlds_drawn == report.worlds_drawn as u64
            && opt_bits(self.achieved_epsilon, report.achieved_epsilon)
            && opt_bits(self.precision_delta, report.precision_delta)
            && self.certain_early_stop == report.certain_early_stop
    }
}

/// A build's [`PrecisionReport`], attributed to a session.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecisionSummary {
    /// The session the build belonged to.
    pub session: u64,
    /// Possible worlds sampled by the build.
    pub worlds_drawn: u64,
    /// Achieved simultaneous half-width, when one is claimed.
    pub epsilon: Option<f64>,
    /// Requested confidence parameter of an adaptive build.
    pub delta: Option<f64>,
    /// Why sampling stopped.
    pub reason: StopReason,
}

impl PrecisionSummary {
    /// The summary of `report`, attributed to `session`.
    pub fn from_report(session: u64, report: &PrecisionReport) -> Self {
        Self {
            session,
            worlds_drawn: report.worlds_drawn as u64,
            epsilon: report.epsilon,
            delta: report.delta,
            reason: report.reason,
        }
    }
}

/// Everything that travels on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A session's next routed question batch (service → gateway).
    Questions(QuestionBatch),
    /// The graded answers (gateway → service).
    Answers(AnswerBatch),
    /// A finished session's timing-free report summary.
    Report(ReportSummary),
    /// A build's precision summary.
    Precision(PrecisionSummary),
}

impl Frame {
    fn tag(&self) -> u8 {
        match self {
            Frame::Questions(_) => TAG_QUESTIONS,
            Frame::Answers(_) => TAG_ANSWERS,
            Frame::Report(_) => TAG_REPORT,
            Frame::Precision(_) => TAG_PRECISION,
        }
    }
}

fn write_question(w: &mut Writer, q: Question) {
    w.u32(q.i);
    w.u32(q.j);
}

fn read_question(r: &mut Reader<'_>) -> Result<Question> {
    let i = r.u32()?;
    let j = r.u32()?;
    if i == j {
        return Err(WireError::Malformed("question compares a tuple to itself"));
    }
    Ok(Question { i, j })
}

fn write_hint(w: &mut Writer, hint: RouteHint) {
    w.u8(match hint {
        RouteHint::Any => 0,
        RouteHint::Cheap => 1,
        RouteHint::Expert => 2,
    });
}

fn read_hint(r: &mut Reader<'_>) -> Result<RouteHint> {
    match r.u8()? {
        0 => Ok(RouteHint::Any),
        1 => Ok(RouteHint::Cheap),
        2 => Ok(RouteHint::Expert),
        _ => Err(WireError::Malformed("route hint out of range")),
    }
}

fn write_stop_reason(w: &mut Writer, reason: StopReason) {
    w.u8(match reason {
        StopReason::CertainOrder => 0,
        StopReason::Converged => 1,
        StopReason::WorldCap => 2,
        StopReason::FixedBudget => 3,
        StopReason::Exact => 4,
    });
}

fn read_stop_reason(r: &mut Reader<'_>) -> Result<StopReason> {
    match r.u8()? {
        0 => Ok(StopReason::CertainOrder),
        1 => Ok(StopReason::Converged),
        2 => Ok(StopReason::WorldCap),
        3 => Ok(StopReason::FixedBudget),
        4 => Ok(StopReason::Exact),
        _ => Err(WireError::Malformed("stop reason out of range")),
    }
}

fn write_payload(w: &mut Writer, frame: &Frame) {
    match frame {
        Frame::Questions(b) => {
            w.u64(b.session);
            w.u32(b.items.len() as u32);
            for (q, hint) in &b.items {
                write_question(w, *q);
                write_hint(w, *hint);
            }
        }
        Frame::Answers(b) => {
            w.u64(b.session);
            w.u64(b.crowd_remaining);
            w.u32(b.items.len() as u32);
            for g in &b.items {
                write_question(w, g.answer.question);
                w.bool(g.answer.yes);
                w.f64(g.accuracy);
                w.bool(g.cached);
            }
        }
        Frame::Report(s) => {
            w.u64(s.session);
            w.str(&s.algorithm);
            w.str(&s.measure);
            w.u64(s.initial_orderings);
            w.f64(s.initial_uncertainty);
            w.opt_f64(s.initial_distance);
            w.u32(s.steps.len() as u32);
            for step in &s.steps {
                write_question(w, step.question);
                w.bool(step.answer_yes);
                w.u64(step.orderings);
                w.f64(step.uncertainty);
                w.opt_f64(step.distance_to_truth);
            }
            w.u64(s.contradictions);
            w.bool(s.resolved);
            w.u32(s.final_topk.len() as u32);
            for t in &s.final_topk {
                w.u32(*t);
            }
            w.u64(s.worlds_drawn);
            w.opt_f64(s.achieved_epsilon);
            w.opt_f64(s.precision_delta);
            w.bool(s.certain_early_stop);
        }
        Frame::Precision(p) => {
            w.u64(p.session);
            w.u64(p.worlds_drawn);
            w.opt_f64(p.epsilon);
            w.opt_f64(p.delta);
            write_stop_reason(w, p.reason);
        }
    }
}

fn read_payload(tag: u8, payload: &[u8]) -> Result<Frame> {
    let mut r = Reader::new(payload);
    let frame = match tag {
        TAG_QUESTIONS => {
            let session = r.u64()?;
            let count = r.u32()?;
            let mut items = Vec::new();
            for _ in 0..count {
                let q = read_question(&mut r)?;
                let hint = read_hint(&mut r)?;
                items.push((q, hint));
            }
            Frame::Questions(QuestionBatch { session, items })
        }
        TAG_ANSWERS => {
            let session = r.u64()?;
            let crowd_remaining = r.u64()?;
            let count = r.u32()?;
            let mut items = Vec::new();
            for _ in 0..count {
                let question = read_question(&mut r)?;
                let yes = r.bool()?;
                let accuracy = r.f64()?;
                let cached = r.bool()?;
                items.push(GradedAnswer {
                    answer: Answer { question, yes },
                    accuracy,
                    cached,
                });
            }
            Frame::Answers(AnswerBatch {
                session,
                crowd_remaining,
                items,
            })
        }
        TAG_REPORT => {
            let session = r.u64()?;
            let algorithm = r.str()?;
            let measure = r.str()?;
            let initial_orderings = r.u64()?;
            let initial_uncertainty = r.f64()?;
            let initial_distance = r.opt_f64()?;
            let count = r.u32()?;
            let mut steps = Vec::new();
            for _ in 0..count {
                let question = read_question(&mut r)?;
                let answer_yes = r.bool()?;
                let orderings = r.u64()?;
                let uncertainty = r.f64()?;
                let distance_to_truth = r.opt_f64()?;
                steps.push(StepSummary {
                    question,
                    answer_yes,
                    orderings,
                    uncertainty,
                    distance_to_truth,
                });
            }
            let contradictions = r.u64()?;
            let resolved = r.bool()?;
            let k = r.u32()?;
            let mut final_topk = Vec::new();
            for _ in 0..k {
                final_topk.push(r.u32()?);
            }
            let worlds_drawn = r.u64()?;
            let achieved_epsilon = r.opt_f64()?;
            let precision_delta = r.opt_f64()?;
            let certain_early_stop = r.bool()?;
            Frame::Report(ReportSummary {
                session,
                algorithm,
                measure,
                initial_orderings,
                initial_uncertainty,
                initial_distance,
                steps,
                contradictions,
                resolved,
                final_topk,
                worlds_drawn,
                achieved_epsilon,
                precision_delta,
                certain_early_stop,
            })
        }
        TAG_PRECISION => {
            let session = r.u64()?;
            let worlds_drawn = r.u64()?;
            let epsilon = r.opt_f64()?;
            let delta = r.opt_f64()?;
            let reason = read_stop_reason(&mut r)?;
            Frame::Precision(PrecisionSummary {
                session,
                worlds_drawn,
                epsilon,
                delta,
                reason,
            })
        }
        other => return Err(WireError::UnknownTag(other)),
    };
    r.finish()?;
    Ok(frame)
}

/// Encodes one frame: `version, tag, payload-length, payload`.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut payload = Writer::new();
    write_payload(&mut payload, frame);
    let payload = payload.into_bytes();
    let mut w = Writer::new();
    w.u8(WIRE_VERSION);
    w.u8(frame.tag());
    w.u32(payload.len() as u32);
    w.bytes(&payload);
    w.into_bytes()
}

/// Decodes the frame at the start of `buf`, returning it together with
/// the bytes it occupied — the streaming entry point: call again on
/// `&buf[consumed..]` for the next frame.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize)> {
    let mut r = Reader::new(buf);
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnknownVersion {
            found: version,
            expected: WIRE_VERSION,
        });
    }
    let tag = r.u8()?;
    let len = r.u32()? as usize;
    let payload = r.bytes(len)?;
    let frame = read_payload(tag, payload)?;
    Ok((frame, HEADER_LEN + len))
}

/// Decodes a buffer that must hold exactly one frame; any suffix beyond
/// the frame is [`WireError::TrailingGarbage`].
pub fn decode_frame_exact(buf: &[u8]) -> Result<Frame> {
    let (frame, consumed) = decode_frame(buf)?;
    if consumed != buf.len() {
        return Err(WireError::TrailingGarbage {
            consumed,
            total: buf.len(),
        });
    }
    Ok(frame)
}
