//! PR 9 acceptance numbers: the shard-owned serving core over a
//! tenants × shards × run-mode grid, up to 10 000 concurrent tenants.
//! Emits `BENCH_PR9.json`.
//!
//! `cargo run --release -p ctk-bench --bin bench_pr9 [--small] [--out FILE]`
//!
//! Every cell is compared per-tenant (`UrReport::same_outcome`) against
//! the tick-mode single-shard reference for its tenant count — the
//! refactor's core claim is that run mode and shard count are invisible
//! in the results. Timing records both the whole run loop and the
//! purchase phase alone (`ServiceMetrics::purchase_time`), the
//! crowd-facing slice PR 4's `service_scaling` bench could not separate;
//! `--small` shrinks the grid for the CI smoke step.

use ctk_core::measures::MeasureKind;
use ctk_core::session::{Algorithm, SessionConfig, UrReport};
use ctk_crowd::{CrowdSimulator, GroundTruth, PerfectWorker, VotePolicy};
use ctk_datagen::{generate, DatasetSpec};
use ctk_prob::UncertainTable;
use ctk_service::{RunMode, SessionSpec, TopKService};
use ctk_tpo::build::{Engine, McConfig};
use std::time::Instant;

struct Grid {
    tenants: Vec<usize>,
    shards: Vec<usize>,
    tuples: usize,
    worlds: usize,
    budget: usize,
}

fn full() -> Grid {
    Grid {
        tenants: vec![100, 1_000, 10_000],
        shards: vec![1, 2, 4],
        tuples: 9,
        worlds: 600,
        budget: 4,
    }
}

fn small() -> Grid {
    Grid {
        tenants: vec![48],
        shards: vec![1, 2],
        tuples: 8,
        worlds: 400,
        budget: 3,
    }
}

/// Mixed per-tenant workloads, cheap enough that a 10k-tenant cell is
/// dominated by the serving loop rather than the submit-time TPO builds.
fn tenant_config(tenant: usize, worlds: usize, budget: usize) -> SessionConfig {
    let algorithm = match tenant % 4 {
        0 | 1 => Algorithm::T1On,
        2 => Algorithm::TbOff,
        _ => Algorithm::Incr {
            questions_per_round: 2,
        },
    };
    SessionConfig {
        k: 2 + tenant % 2,
        budget,
        measure: MeasureKind::WeightedEntropy,
        algorithm,
        engine: Engine::MonteCarlo(McConfig::fixed(worlds, 17 + (tenant % 4) as u64)),
        seed: (tenant % 16) as u64,
        uncertainty_target: None,
    }
}

struct Cell {
    tenants: usize,
    shards: usize,
    mode: RunMode,
    elapsed_ms: f64,
    purchase_ms: f64,
    rounds: u64,
    answers_served: u64,
    cache_hits: u64,
    events: u64,
    budget_granted: u64,
    shard_imbalance: f64,
}

fn run_cell(
    table: &UncertainTable,
    truth: &GroundTruth,
    grid: &Grid,
    tenants: usize,
    shards: usize,
    mode: RunMode,
) -> (Cell, Vec<UrReport>) {
    let crowd = CrowdSimulator::new(truth.clone(), PerfectWorker, VotePolicy::Single, 10_000_000)
        .expect("valid vote policy");
    let mut service = TopKService::new(crowd)
        .with_shards(shards)
        .with_run_mode(mode)
        .with_fanout(64);
    let ids: Vec<_> = (0..tenants)
        .map(|t| {
            service
                .submit(
                    table,
                    SessionSpec::new(tenant_config(t, grid.worlds, grid.budget)),
                )
                .expect("valid tenant config")
        })
        .collect();
    // Time only the serving loop: session construction (TPO build) is
    // submit-time work, identical across shards and run modes.
    let t0 = Instant::now();
    let metrics = service.run_to_completion().clone();
    let elapsed = t0.elapsed();
    assert_eq!(
        metrics.completed as usize, tenants,
        "every tenant completes"
    );
    assert_eq!(metrics.failed, 0);
    let reports: Vec<UrReport> = ids
        .iter()
        .map(|id| service.report(*id).expect("done").clone())
        .collect();
    (
        Cell {
            tenants,
            shards,
            mode,
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            purchase_ms: metrics.purchase_time.as_secs_f64() * 1e3,
            rounds: metrics.rounds,
            answers_served: metrics.answers_served,
            cache_hits: metrics.cache_hits,
            events: metrics.events_processed,
            budget_granted: metrics.budget_granted,
            shard_imbalance: metrics.shard_imbalance(),
        },
        reports,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small_mode = args.iter().any(|a| a == "--small");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR9.json".to_string());
    let grid = if small_mode { small() } else { full() };
    eprintln!(
        "# shard-owned core: tenants {:?} x shards {:?} x modes [tick, event] (n={}, worlds={}, budget={}){}",
        grid.tenants,
        grid.shards,
        grid.tuples,
        grid.worlds,
        grid.budget,
        if small_mode { " [small]" } else { "" }
    );

    let table = generate(&DatasetSpec::paper_default(grid.tuples, 0.4, 7)).expect("valid spec");
    let truth = GroundTruth::sample(&table, 4242);

    let mut cells: Vec<Cell> = Vec::new();
    for &tenants in &grid.tenants {
        let mut reference: Vec<UrReport> = Vec::new();
        for &shards in &grid.shards {
            for mode in [RunMode::Tick, RunMode::Event] {
                let (cell, reports) = run_cell(&table, &truth, &grid, tenants, shards, mode);
                if reference.is_empty() {
                    // First cell of the row is tick mode at one shard —
                    // the configuration bit-compatible with the
                    // pre-refactor loop — and anchors the row.
                    assert_eq!(shards, 1);
                    assert_eq!(mode, RunMode::Tick);
                    reference = reports;
                } else {
                    for (t, (a, b)) in reference.iter().zip(&reports).enumerate() {
                        assert!(
                            a.same_outcome(b),
                            "tenant {t} diverged at {tenants} tenants / {shards} shards / {mode:?}"
                        );
                    }
                }
                eprintln!(
                    "# tenants {:>6} shards {:>2} {:<5}: {:>9.1} ms total, {:>8.1} ms purchase, {:>5} rounds, {:>6} answers ({} cached), {:>7} events, imbalance {:.3}",
                    cell.tenants,
                    cell.shards,
                    format!("{:?}", cell.mode).to_lowercase(),
                    cell.elapsed_ms,
                    cell.purchase_ms,
                    cell.rounds,
                    cell.answers_served,
                    cell.cache_hits,
                    cell.events,
                    cell.shard_imbalance,
                );
                cells.push(cell);
            }
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"bench_pr9\",\n  \"mode\": \"{}\",\n  \"config\": {{ \"tuples\": {}, \"worlds\": {}, \"budget\": {}, \"fanout\": 64 }},\n  \"cells\": [\n{}\n  ]\n}}\n",
        if small_mode { "small" } else { "full" },
        grid.tuples,
        grid.worlds,
        grid.budget,
        cells
            .iter()
            .map(|c| format!(
                "    {{ \"tenants\": {}, \"shards\": {}, \"run_mode\": \"{}\", \"elapsed_ms\": {:.1}, \"purchase_ms\": {:.1}, \"rounds\": {}, \"answers_served\": {}, \"cache_hits\": {}, \"events\": {}, \"budget_granted\": {}, \"shard_imbalance\": {:.3} }}",
                c.tenants,
                c.shards,
                format!("{:?}", c.mode).to_lowercase(),
                c.elapsed_ms,
                c.purchase_ms,
                c.rounds,
                c.answers_served,
                c.cache_hits,
                c.events,
                c.budget_granted,
                c.shard_imbalance,
            ))
            .collect::<Vec<_>>()
            .join(",\n")
    );
    std::fs::write(&out, &json).expect("write BENCH_PR9.json");
    eprintln!("# wrote {out}");
}
