//! Ground truth: the hidden “real” ordering `ω_r`.
//!
//! In the paper's evaluation the data's true scores are drawn from the
//! tuple score distributions; crowd workers observe the true relative order
//! of a pair (with some accuracy). This module is the simulated substitute
//! for the real world that a production deployment would query.

use crate::question::Question;
use ctk_prob::sample::{ranking_from_scores, sample_scores};
use ctk_prob::UncertainTable;
use ctk_rank::RankList;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The hidden true scores and the total ordering they induce.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    scores: Vec<f64>,
    ranking: Vec<u32>,
    /// `positions[id]` = 0-based rank of tuple `id`.
    positions: Vec<usize>,
}

impl GroundTruth {
    /// Builds from explicit true scores.
    pub fn from_scores(scores: Vec<f64>) -> Self {
        let ranking = ranking_from_scores(&scores);
        let mut positions = vec![0usize; scores.len()];
        for (pos, &id) in ranking.iter().enumerate() {
            positions[id as usize] = pos;
        }
        Self {
            scores,
            ranking,
            positions,
        }
    }

    /// Samples one true world from the table's score distributions
    /// (deterministic given `seed`).
    pub fn sample(table: &UncertainTable, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self::from_scores(sample_scores(table, &mut rng))
    }

    /// The hidden true scores, by tuple id.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// The real total ordering `ω_r` (tuple ids, best first).
    pub fn ranking(&self) -> &[u32] {
        &self.ranking
    }

    /// The real top-k list.
    pub fn top_k(&self, k: usize) -> RankList {
        RankList::new_unchecked(self.ranking[..k.min(self.ranking.len())].to_vec())
    }

    /// 0-based true rank of a tuple.
    pub fn rank_of(&self, id: u32) -> usize {
        self.positions[id as usize]
    }

    /// The correct answer to a question under `ω_r`.
    pub fn true_answer(&self, q: &Question) -> bool {
        self.positions[q.i as usize] < self.positions[q.j as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctk_prob::ScoreDist;

    #[test]
    fn ranking_and_positions_agree() {
        let t = GroundTruth::from_scores(vec![0.3, 0.9, 0.5]);
        assert_eq!(t.ranking(), &[1, 2, 0]);
        assert_eq!(t.rank_of(1), 0);
        assert_eq!(t.rank_of(2), 1);
        assert_eq!(t.rank_of(0), 2);
        assert_eq!(t.top_k(2).items(), &[1, 2]);
        assert_eq!(t.scores().len(), 3);
    }

    #[test]
    fn answers_follow_the_ranking() {
        let t = GroundTruth::from_scores(vec![0.3, 0.9, 0.5]);
        assert!(t.true_answer(&Question::new(1, 0)));
        assert!(!t.true_answer(&Question::new(0, 1)));
        assert!(t.true_answer(&Question::new(2, 0)));
    }

    #[test]
    fn sampling_is_deterministic_and_within_supports() {
        let table = UncertainTable::new(vec![
            ScoreDist::uniform(0.0, 1.0).unwrap(),
            ScoreDist::uniform(2.0, 3.0).unwrap(),
        ])
        .unwrap();
        let a = GroundTruth::sample(&table, 99);
        let b = GroundTruth::sample(&table, 99);
        assert_eq!(a.scores(), b.scores());
        assert_eq!(a.ranking(), &[1, 0], "disjoint supports force the order");
        assert!(a.scores()[0] >= 0.0 && a.scores()[0] <= 1.0);
    }

    #[test]
    fn ties_break_by_id() {
        let t = GroundTruth::from_scores(vec![0.5, 0.5]);
        assert_eq!(t.ranking(), &[0, 1]);
        assert!(t.true_answer(&Question::new(0, 1)));
    }
}
