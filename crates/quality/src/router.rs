//! Margin-aware question routing: spend experts where the belief is
//! tight.
//!
//! The engine's pairwise prior `p = P(t_i ≻ t_j)` prices how much a
//! crowd answer is worth: at margin `|2p − 1| ≈ 1` the answer is nearly
//! known already and a cheap worker panel merely confirms it, while at
//! margin ≈ 0 the answer flips a genuinely uncertain comparison and
//! deserves the highest-posterior workers the roster has. The router
//! maps that margin to a [`RouteHint`] the quality crowd honors when
//! selecting panels under its [`ctk_crowd::CostModel`] pricing.

use crate::error::QualityError;
use ctk_crowd::RouteHint;

/// Maps belief margins to routing hints via two thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuestionRouter {
    narrow_below: f64,
    wide_above: f64,
}

impl QuestionRouter {
    /// Creates a router: margins below `narrow_below` route to experts,
    /// margins at or above `wide_above` to cheap workers, the band in
    /// between is left to the backend's default rotation.
    ///
    /// Fails with [`QualityError::InvalidThreshold`] unless
    /// `0 <= narrow_below <= wide_above <= 1` and both are finite.
    pub fn new(narrow_below: f64, wide_above: f64) -> Result<Self, QualityError> {
        let valid = |x: f64| x.is_finite() && (0.0..=1.0).contains(&x);
        if !valid(narrow_below) || !valid(wide_above) || narrow_below > wide_above {
            return Err(QualityError::InvalidThreshold);
        }
        Ok(Self {
            narrow_below,
            wide_above,
        })
    }

    /// The default policy: experts below margin 0.3, cheap workers from
    /// margin 0.7 up.
    pub fn standard() -> Self {
        Self {
            narrow_below: 0.3,
            wide_above: 0.7,
        }
    }

    /// Routes a belief margin `|2p − 1|` (clamped to `[0, 1]`; NaN is
    /// treated as zero margin, i.e. maximal uncertainty).
    pub fn hint(&self, margin: f64) -> RouteHint {
        let m = if margin.is_nan() {
            0.0
        } else {
            margin.clamp(0.0, 1.0)
        };
        if m < self.narrow_below {
            RouteHint::Expert
        } else if m >= self.wide_above {
            RouteHint::Cheap
        } else {
            RouteHint::Any
        }
    }

    /// The expert threshold.
    pub fn narrow_below(&self) -> f64 {
        self.narrow_below
    }

    /// The cheap threshold.
    pub fn wide_above(&self) -> f64 {
        self.wide_above
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_validated() {
        assert!(QuestionRouter::new(0.0, 1.0).is_ok());
        assert!(QuestionRouter::new(0.4, 0.4).is_ok(), "empty Any band");
        for (lo, hi) in [(0.7, 0.3), (-0.1, 0.5), (0.1, 1.5), (f64::NAN, 0.5)] {
            assert_eq!(
                QuestionRouter::new(lo, hi).unwrap_err(),
                QualityError::InvalidThreshold,
                "({lo}, {hi}) must be rejected"
            );
        }
    }

    #[test]
    fn margins_route_by_band() {
        let r = QuestionRouter::standard();
        assert_eq!(r.hint(0.0), RouteHint::Expert);
        assert_eq!(r.hint(0.29), RouteHint::Expert);
        assert_eq!(r.hint(0.3), RouteHint::Any);
        assert_eq!(r.hint(0.5), RouteHint::Any);
        assert_eq!(r.hint(0.7), RouteHint::Cheap);
        assert_eq!(r.hint(1.0), RouteHint::Cheap);
        assert!((r.narrow_below() - 0.3).abs() < 1e-12);
        assert!((r.wide_above() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn degenerate_margins_are_safe() {
        let r = QuestionRouter::standard();
        assert_eq!(r.hint(f64::NAN), RouteHint::Expert, "unknown = uncertain");
        assert_eq!(r.hint(-3.0), RouteHint::Expert);
        assert_eq!(r.hint(7.0), RouteHint::Cheap);
    }
}
