//! Budget accounting: the paper's budget `B` is the number of questions
//! that may be posed to the crowd; the ledger additionally tracks raw votes
//! (majority policies collect several votes per question) and keeps the
//! full question/answer history for reports.

use crate::question::{Answer, Question};

/// Tracks question budget consumption and history.
#[derive(Debug, Clone)]
pub struct BudgetLedger {
    budget: usize,
    questions_asked: usize,
    votes_collected: usize,
    history: Vec<Answer>,
}

impl BudgetLedger {
    /// Creates a ledger with a budget of `b` questions.
    pub fn new(b: usize) -> Self {
        Self {
            budget: b,
            questions_asked: 0,
            votes_collected: 0,
            history: Vec::with_capacity(b),
        }
    }

    /// The configured budget `B`.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Questions asked so far.
    pub fn asked(&self) -> usize {
        self.questions_asked
    }

    /// Raw worker votes collected so far (>= questions when majority
    /// policies are used).
    pub fn votes(&self) -> usize {
        self.votes_collected
    }

    /// Questions still allowed. Saturating: even if a ledger is ever
    /// driven past its budget (a bug elsewhere, or a deserialized
    /// snapshot), `remaining` reports 0 instead of underflowing to
    /// `usize::MAX` and unleashing an unbounded question spree.
    pub fn remaining(&self) -> usize {
        self.budget.saturating_sub(self.questions_asked)
    }

    /// True when no more questions may be asked.
    pub fn exhausted(&self) -> bool {
        self.questions_asked >= self.budget
    }

    /// Records one asked question with its aggregated answer and the number
    /// of votes spent on it. Returns `false` (recording nothing) if the
    /// budget was already exhausted.
    pub fn record(&mut self, answer: Answer, votes: usize) -> bool {
        if self.exhausted() {
            return false;
        }
        self.questions_asked += 1;
        self.votes_collected += votes;
        self.history.push(answer);
        true
    }

    /// Full answer history in ask order.
    pub fn history(&self) -> &[Answer] {
        &self.history
    }

    /// True if this exact question (in either orientation) was asked
    /// before.
    pub fn already_asked(&self, q: &Question) -> bool {
        let c = q.canonical();
        self.history.iter().any(|a| a.question.canonical() == c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ans(i: u32, j: u32, yes: bool) -> Answer {
        Answer {
            question: Question::new(i, j),
            yes,
        }
    }

    #[test]
    fn budget_lifecycle() {
        let mut l = BudgetLedger::new(2);
        assert_eq!(l.budget(), 2);
        assert_eq!(l.remaining(), 2);
        assert!(!l.exhausted());
        assert!(l.record(ans(0, 1, true), 1));
        assert!(l.record(ans(1, 2, false), 3));
        assert!(l.exhausted());
        assert!(!l.record(ans(2, 3, true), 1), "over-budget record refused");
        assert_eq!(l.asked(), 2);
        assert_eq!(l.votes(), 4);
        assert_eq!(l.history().len(), 2);
    }

    #[test]
    fn duplicate_detection_is_orientation_insensitive() {
        let mut l = BudgetLedger::new(5);
        l.record(ans(0, 1, true), 1);
        assert!(l.already_asked(&Question::new(0, 1)));
        assert!(l.already_asked(&Question::new(1, 0)));
        assert!(!l.already_asked(&Question::new(0, 2)));
    }

    #[test]
    fn asking_past_the_budget_never_underflows_remaining() {
        // Regression: `remaining` used plain subtraction; a ledger whose
        // `questions_asked` ever exceeded `budget` would report
        // usize::MAX remaining questions. Hammer past the budget and
        // check the invariant after every attempt.
        let mut l = BudgetLedger::new(3);
        for attempt in 0..10 {
            l.record(ans(0, 1, attempt % 2 == 0), 1);
            assert!(
                l.remaining() <= l.budget(),
                "remaining {} escaped budget {} after attempt {attempt}",
                l.remaining(),
                l.budget()
            );
        }
        assert_eq!(l.asked(), 3);
        assert_eq!(l.remaining(), 0);
        assert!(l.exhausted());
    }

    #[test]
    fn zero_budget() {
        let mut l = BudgetLedger::new(0);
        assert!(l.exhausted());
        assert!(!l.record(ans(0, 1, true), 1));
    }
}
