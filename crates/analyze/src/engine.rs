//! Workspace walking, scope classification, allowlist filtering, and the
//! lint wall — everything between the rule registry and the CLI.
//!
//! Scope policy (calibrated against this tree, documented in DESIGN.md
//! §11):
//!
//! * **Result-affecting crates** — `ctk-prob`, `ctk-rank`, `ctk-tpo`,
//!   `ctk-crowd`, `ctk-quality`, `ctk-datagen`, `ctk-core`,
//!   `ctk-service`, and the facade `src/` — get every rule family: a
//!   wrong iteration order or a stray panic in any of them changes or
//!   kills a top-K verdict.
//! * **`ctk-analyze` itself** — panic rules only: the tool must not crash
//!   on arbitrary source, but it handles no floats and spawns no threads.
//! * **`ctk-bench`** — exempt from per-file rules (a diagnostics harness
//!   that *should* read clocks and core counts) but inside the lint wall.
//! * **`shims/`** — stand-ins for external crates; never analyzed.
//! * Test code (`#[cfg(test)]` / `#[test]` regions) is exempt everywhere,
//!   as are `tests/`, `benches/`, `examples/`, and `src/bin` trees.
//!
//! Two file-level blessings exist: `crates/prob/src/compare.rs` may read
//! `available_parallelism` (it *is* the cached accessor every other call
//! site must use), and `crates/service/src/metrics.rs` may read the wall
//! clock (it is the metrics sink).

use crate::lexer::SourceFile;
use crate::rules::{known_rule, missing_lint_wall, scan, Finding, RuleSet};
use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose library code is result-affecting (full rule coverage).
pub const RESULT_AFFECTING_CRATES: &[&str] = &[
    "prob", "rank", "tpo", "crowd", "quality", "datagen", "core", "service", "wire",
];

/// Crate roots inside the lint wall, as paths relative to the workspace
/// root. The facade's root is `src/lib.rs`.
pub const LINT_WALL_ROOTS: &[&str] = &[
    "src/lib.rs",
    "crates/prob/src/lib.rs",
    "crates/rank/src/lib.rs",
    "crates/tpo/src/lib.rs",
    "crates/crowd/src/lib.rs",
    "crates/quality/src/lib.rs",
    "crates/datagen/src/lib.rs",
    "crates/core/src/lib.rs",
    "crates/service/src/lib.rs",
    "crates/wire/src/lib.rs",
    "crates/bench/src/lib.rs",
    "crates/analyze/src/lib.rs",
];

/// A finding located in a file.
#[derive(Debug, Clone)]
pub struct FileFinding {
    /// Path relative to the workspace root (unix separators).
    pub path: String,
    /// The diagnostic.
    pub finding: Finding,
}

impl FileFinding {
    /// `path:line: [rule] message` — the CLI output format.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.path, self.finding.line, self.finding.rule, self.finding.message
        )
    }
}

/// Which rule families apply to the file at workspace-relative `path`.
pub fn rule_set_for(path: &str) -> RuleSet {
    let mut rs = RuleSet::default();
    // Only library sources are in scope; integration tests, benches,
    // examples, and binaries are not result-affecting.
    let in_aux_tree = path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
        || path.contains("/bin/")
        || path.starts_with("tests/")
        || path.starts_with("benches/")
        || path.starts_with("examples/");
    if in_aux_tree || path.starts_with("shims/") {
        return rs;
    }
    let result_affecting = path.starts_with("src/")
        || RESULT_AFFECTING_CRATES
            .iter()
            .any(|c| path.starts_with(&format!("crates/{c}/src/")));
    if result_affecting {
        rs.determinism = true;
        rs.float = true;
        rs.panic = true;
        rs.bless_parallelism = path == "crates/prob/src/compare.rs";
        rs.bless_wall_clock = path == "crates/service/src/metrics.rs";
    } else if path.starts_with("crates/analyze/src/") {
        rs.panic = true;
    }
    rs
}

/// Analyzes one file's source as if it lived at workspace-relative
/// `path`. Applies `ctk-allow` filtering; reports meta findings
/// (`allow-syntax`, `unused-allow`) alongside rule findings.
pub fn analyze_source(path: &str, source: &str) -> Vec<FileFinding> {
    let rules = rule_set_for(path);
    let file = SourceFile::parse(source);
    let raw = scan(&file, rules);
    let mut out: Vec<FileFinding> = Vec::new();
    let mut used = vec![false; file.allows.len()];

    // A directive on a comment-only line covers the next line; a trailing
    // directive covers its own line.
    let standalone =
        |line: usize| line <= file.num_lines() && file.code_line(line).trim().is_empty();
    for f in raw {
        let suppressed = file.allows.iter().enumerate().any(|(i, a)| {
            let covered = if standalone(a.line) {
                a.line + 1 == f.line
            } else {
                a.line == f.line
            };
            let applies = a.malformed.is_none() && covered && a.rules.iter().any(|r| r == f.rule);
            if applies {
                used[i] = true;
            }
            applies
        });
        if !suppressed {
            out.push(FileFinding {
                path: path.to_string(),
                finding: f,
            });
        }
    }

    for (i, a) in file.allows.iter().enumerate() {
        if file.is_test_line(a.line) {
            continue; // test code is out of scope, directives there inert
        }
        if let Some(msg) = &a.malformed {
            out.push(FileFinding {
                path: path.to_string(),
                finding: Finding {
                    rule: "allow-syntax",
                    line: a.line,
                    message: msg.clone(),
                },
            });
            continue;
        }
        for r in &a.rules {
            if !known_rule(r) {
                out.push(FileFinding {
                    path: path.to_string(),
                    finding: Finding {
                        rule: "allow-syntax",
                        line: a.line,
                        message: format!(
                            "unknown rule `{r}` in ctk-allow (see `ctk-analyze rules`)"
                        ),
                    },
                });
            }
        }
        if !used[i] && a.rules.iter().all(|r| known_rule(r)) {
            out.push(FileFinding {
                path: path.to_string(),
                finding: Finding {
                    rule: "unused-allow",
                    line: a.line,
                    message: format!(
                        "ctk-allow({}) suppressed nothing — remove it or move it next to \
                         the finding it excuses",
                        a.rules.join(", ")
                    ),
                },
            });
        }
    }
    out.sort_by(|a, b| (a.finding.line, a.finding.rule).cmp(&(b.finding.line, b.finding.rule)));
    out
}

/// Runs the whole check over the workspace at `root`.
pub fn check_workspace(root: &Path) -> Result<Vec<FileFinding>, String> {
    let mut findings = Vec::new();

    // Per-file rules over every library source tree.
    let mut files: Vec<PathBuf> = Vec::new();
    let src_roots: Vec<PathBuf> = std::iter::once(root.join("src"))
        .chain(
            list_dir(&root.join("crates"))?
                .into_iter()
                .map(|c| c.join("src")),
        )
        .collect();
    for dir in src_roots {
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    for file in &files {
        let rel = rel_path(root, file);
        let source = fs::read_to_string(file)
            .map_err(|e| format!("failed to read {}: {e}", file.display()))?;
        findings.extend(analyze_source(&rel, &source));
    }

    // The lint wall over every crate root.
    for rel in LINT_WALL_ROOTS {
        let path = root.join(rel);
        let source = fs::read_to_string(&path)
            .map_err(|e| format!("failed to read crate root {}: {e}", path.display()))?;
        for missing in missing_lint_wall(&source) {
            findings.push(FileFinding {
                path: (*rel).to_string(),
                finding: Finding {
                    rule: "lint-wall",
                    line: 1,
                    message: format!("crate root is missing `{missing}`"),
                },
            });
        }
    }

    findings.sort_by(|a, b| {
        (a.path.as_str(), a.finding.line, a.finding.rule).cmp(&(
            b.path.as_str(),
            b.finding.line,
            b.finding.rule,
        ))
    });
    Ok(findings)
}

fn list_dir(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let entries =
        fs::read_dir(dir).map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
        out.push(entry.path());
    }
    out.sort();
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for path in list_dir(dir)? {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_classification() {
        assert!(rule_set_for("crates/tpo/src/worlds.rs").determinism);
        assert!(rule_set_for("crates/tpo/src/precision.rs").determinism);
        assert!(rule_set_for("crates/tpo/src/precision.rs").float);
        assert!(rule_set_for("crates/prob/src/bounds.rs").panic);
        assert!(rule_set_for("crates/quality/src/estimator.rs").determinism);
        assert!(rule_set_for("crates/quality/src/crowd.rs").panic);
        assert!(rule_set_for("crates/wire/src/codec.rs").panic);
        assert!(rule_set_for("crates/wire/src/frames.rs").determinism);
        assert!(!rule_set_for("crates/wire/tests/roundtrip.rs").panic);
        assert!(!rule_set_for("crates/quality/tests/x.rs").panic);
        assert!(rule_set_for("src/lib.rs").float);
        assert!(rule_set_for("crates/analyze/src/engine.rs").panic);
        assert!(!rule_set_for("crates/analyze/src/engine.rs").determinism);
        assert!(!rule_set_for("crates/bench/src/lib.rs").panic);
        assert!(!rule_set_for("crates/tpo/tests/proptests.rs").panic);
        assert!(!rule_set_for("crates/bench/src/bin/run_all.rs").determinism);
        assert!(!rule_set_for("shims/rand/src/lib.rs").panic);
        assert!(rule_set_for("crates/prob/src/compare.rs").bless_parallelism);
        assert!(rule_set_for("crates/service/src/metrics.rs").bless_wall_clock);
        assert!(!rule_set_for("crates/prob/src/grid.rs").bless_parallelism);
        // The threaded topology and the typed service error are
        // result-affecting library code: full determinism + panic scope.
        assert!(rule_set_for("crates/service/src/topology.rs").determinism);
        assert!(rule_set_for("crates/service/src/topology.rs").panic);
        assert!(!rule_set_for("crates/service/src/topology.rs").bless_wall_clock);
        assert!(rule_set_for("crates/service/src/error.rs").panic);
    }

    #[test]
    fn allow_suppresses_same_and_next_line() {
        let src = "fn f() {\n    // ctk-allow(panic-unwrap): invariant: non-empty by construction\n    x.unwrap();\n    y.unwrap(); // ctk-allow(panic-unwrap): checked above\n    z.unwrap();\n}\n";
        let out = analyze_source("crates/tpo/src/x.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].finding.line, 5);
    }

    #[test]
    fn unused_allow_is_reported() {
        let src = "// ctk-allow(panic-unwrap): nothing here needs it\nfn f() {}\n";
        let out = analyze_source("crates/tpo/src/x.rs", src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].finding.rule, "unused-allow");
    }

    #[test]
    fn unknown_rule_in_allow_is_reported() {
        let src = "// ctk-allow(no-such-rule): reason text\nfn f() {}\n";
        let out = analyze_source("crates/tpo/src/x.rs", src);
        assert!(
            out.iter().any(|f| f.finding.rule == "allow-syntax"),
            "{out:?}"
        );
    }

    #[test]
    fn malformed_allow_is_reported() {
        let src = "fn f() { x.unwrap() } // ctk-allow(panic-unwrap)\n";
        let out = analyze_source("crates/tpo/src/x.rs", src);
        assert!(out.iter().any(|f| f.finding.rule == "allow-syntax"));
        // The malformed directive must not suppress the finding.
        assert!(out.iter().any(|f| f.finding.rule == "panic-unwrap"));
    }
}
