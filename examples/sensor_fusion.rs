//! Sensor fusion: rank monitoring stations by a measured quantity when
//! each station's reading carries a different error model — Gaussian
//! thermistors, uniformly-quantized legacy sensors, triangular
//! field-calibrated probes. A technician (the "crowd" of one, perfectly
//! accurate but expensive to dispatch) can compare two stations directly.
//!
//! Demonstrates: mixed distribution families, the exact nested-quadrature
//! engine vs the Monte-Carlo engine, and offline batch selection (`C-off`)
//! when all site visits must be scheduled up front.
//!
//! Run with: `cargo run --example sensor_fusion`

use crowd_topk::prelude::*;
use crowd_topk::prob::{ScoreDist, UncertainTable};
use crowd_topk::tpo::build::{build_exact, build_mc, ExactConfig, McConfig};

fn main() {
    // Twelve stations; readings normalized to [0, 1].
    let mut dists = Vec::new();
    for i in 0..12u32 {
        let center = 0.08 * i as f64 + 0.1;
        let d = match i % 3 {
            0 => ScoreDist::gaussian(center, 0.05).unwrap(),
            1 => ScoreDist::uniform_centered(center, 0.18).unwrap(),
            _ => ScoreDist::triangular(center - 0.12, center, center + 0.12).unwrap(),
        };
        dists.push(d);
    }
    let table = UncertainTable::new(dists).unwrap();
    const K: usize = 4;

    // Cross-check the two TPO engines on this mixed-family table.
    let exact = build_exact(&table, K, &ExactConfig::default()).unwrap();
    let mc = build_mc(&table, K, &McConfig::fixed(100_000, 9)).unwrap();
    println!(
        "TPO size: exact engine {} orderings, Monte-Carlo {} orderings",
        exact.len(),
        mc.len()
    );
    let mpo_e = exact.most_probable();
    let mpo_m = mc.most_probable();
    println!(
        "Most probable ordering: exact {:?} (p={:.3}) vs MC {:?} (p={:.3})\n",
        mpo_e.items, mpo_e.prob, mpo_m.items, mpo_m.prob
    );

    // The technician's schedule must be fixed in advance: offline C-off.
    const BUDGET: usize = 10;
    let truth = GroundTruth::sample(&table, 31);
    let top = truth.top_k(K);
    let mut crowd = CrowdSimulator::new(truth, PerfectWorker, VotePolicy::Single, BUDGET)
        .expect("valid vote policy");

    let report = CrowdTopK::new(table)
        .k(K)
        .budget(BUDGET)
        .algorithm(Algorithm::COff)
        .exact_engine(ExactConfig::default())
        .run_with_truth(&mut crowd, &top)
        .unwrap();

    println!(
        "Scheduled {} site visits (C-off batch):",
        report.questions_asked()
    );
    for s in &report.steps {
        println!(
            "  station {:2} vs station {:2}  ->  {}   ({} orderings left, D={:.4})",
            s.question.i,
            s.question.j,
            if s.answer_yes {
                "first is higher"
            } else {
                "second is higher"
            },
            s.orderings,
            s.distance_to_truth.unwrap()
        );
    }
    println!(
        "\nD(truth) {:.4} -> {:.4}; resolved: {}",
        report.initial_distance.unwrap(),
        report.final_distance().unwrap(),
        report.resolved
    );
}
