//! Runs every experiment binary's logic in sequence, writing all TSVs to
//! `target/experiments/`. Equivalent to invoking each `fig*`/`table_*`
//! binary, with per-experiment default run counts scaled by the optional
//! argument (1 = quick pass, default; larger = tighter averages).
//!
//! `cargo run --release -p ctk-bench --bin run_all [scale]`

use std::process::Command;

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let experiments: [(&str, u64); 8] = [
        ("fig1a", 5 * scale),
        ("fig1b", 3 * scale),
        ("table_measures", 6 * scale),
        ("table_astar", 5 * scale),
        ("table_noise", 6 * scale),
        ("table_hetero", 5 * scale),
        ("table_incr", 4 * scale),
        ("table_scaling", 2 * scale),
    ];
    let exe = std::env::current_exe().expect("own path");
    let bin_dir = exe.parent().expect("bin dir");
    for (name, runs) in experiments {
        eprintln!("== {name} (runs = {runs}) ==");
        let status = Command::new(bin_dir.join(name))
            .arg(runs.to_string())
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        assert!(status.success(), "{name} failed");
    }
    eprintln!("== all experiments written to target/experiments/ ==");
}
