//! Accuracy-weighted vote fusion: log-odds-weighted majority.
//!
//! Under the naive Bayes model (workers err independently with known
//! accuracies p_w, answers a priori equiprobable), the posterior
//! log-odds of "yes" given the votes is exactly
//! `s = Σ_v ±ln(p_w / (1 - p_w))` — each vote contributes its worker's
//! log-odds weight, signed by the vote's direction. The fused verdict is
//! `sign(s)` and the probability that verdict is correct is
//! `σ(|s|) = 1 / (1 + e^{-|s|})`, which is what the Bayesian belief
//! update in `ctk-core` consumes as the per-answer accuracy.
//!
//! With equal weights `w > 0` the score reduces to `w · (#yes − #no)`,
//! whose sign is the plain majority — weighted fusion strictly
//! generalizes `majority_vote`, and the uniform-pool arm of `bench_pr7`
//! checks the reduction is bit-identical end to end.

/// A fused verdict with its evidence mass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusedVerdict {
    /// The weighted-majority answer.
    pub yes: bool,
    /// The signed log-odds score `Σ ±w_v` (positive favors yes). Folded
    /// in vote order, so identical inputs fuse bit-identically.
    pub score: f64,
    /// Posterior probability the verdict is correct: `σ(|score|)`. A
    /// zero-information panel (score 0) grades 0.5 — the Bayesian update
    /// downstream then treats the answer as worthless, which it is.
    pub posterior: f64,
}

/// Fuses `(vote, weight)` pairs, where `weight` is the voter's accuracy
/// log-odds (see [`crate::posterior::log_odds`]). Returns `None` on an
/// empty panel.
///
/// Ties (score neither positive nor negative — e.g. all weights zero, or
/// exactly opposed evidence) fall back to the unweighted vote count, and
/// a tie there resolves to "no" deterministically; either way the
/// posterior is 0.5, so downstream treats the answer as uninformative.
pub fn fuse_weighted(votes: &[(bool, f64)]) -> Option<FusedVerdict> {
    if votes.is_empty() {
        return None;
    }
    let mut score = 0.0;
    for &(yes, w) in votes {
        // Non-finite weights would poison the fold; treat them as
        // zero-information votes.
        if w.is_finite() {
            score += if yes { w } else { -w };
        }
    }
    let yes = if score > 0.0 {
        true
    } else if score < 0.0 {
        false
    } else {
        let yeas = votes.iter().filter(|&&(v, _)| v).count();
        yeas * 2 > votes.len()
    };
    let posterior = 1.0 / (1.0 + (-score.abs()).exp());
    Some(FusedVerdict {
        yes,
        score,
        posterior,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posterior::log_odds;
    use ctk_crowd::aggregate::majority_vote;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_panel_fuses_to_none() {
        assert!(fuse_weighted(&[]).is_none());
    }

    #[test]
    fn one_expert_outvotes_three_spammers() {
        let w_exp = log_odds(0.99);
        let w_spam = log_odds(0.55);
        let votes = [
            (true, w_exp),
            (false, w_spam),
            (false, w_spam),
            (false, w_spam),
        ];
        let f = fuse_weighted(&votes).unwrap();
        assert!(f.yes, "the expert's evidence dominates");
        assert!(f.posterior > 0.5);
        // The plain majority would have said no.
        assert!(!majority_vote(&[true, false, false, false, false]));
    }

    #[test]
    fn adversarial_weights_flip_the_vote() {
        // A worker estimated *below* 0.5 carries negative weight: their
        // "yes" is evidence for "no".
        let w_bad = log_odds(0.1);
        assert!(w_bad < 0.0);
        let f = fuse_weighted(&[(true, w_bad)]).unwrap();
        assert!(!f.yes);
        assert!(f.posterior > 0.5, "a reliable liar is informative");
    }

    #[test]
    fn equal_weights_reduce_to_exact_majority() {
        // Satellite edge case: uniform-accuracy pools must fuse to the
        // same verdict as `majority_vote`, for every panel.
        let w = log_odds(0.8);
        let mut rng = StdRng::seed_from_u64(9);
        for n in [1usize, 3, 5, 7, 9] {
            for _ in 0..200 {
                let bools: Vec<bool> = (0..n).map(|_| rng.gen::<f64>() < 0.5).collect();
                let weighted: Vec<(bool, f64)> = bools.iter().map(|&b| (b, w)).collect();
                let f = fuse_weighted(&weighted).unwrap();
                assert_eq!(f.yes, majority_vote(&bools), "panel {bools:?}");
            }
        }
    }

    #[test]
    fn zero_information_panels_grade_half() {
        // All-zero weights: tie falls back to the raw count; posterior 0.5.
        let f = fuse_weighted(&[(true, 0.0), (true, 0.0), (false, 0.0)]).unwrap();
        assert!(f.yes, "count fallback");
        assert!((f.posterior - 0.5).abs() < 1e-12);
        // Exactly opposed evidence, even panel: deterministic "no".
        let w = log_odds(0.8);
        let f = fuse_weighted(&[(true, w), (false, w)]).unwrap();
        assert!(!f.yes);
        assert!((f.posterior - 0.5).abs() < 1e-12);
    }

    #[test]
    fn non_finite_weights_are_ignored() {
        let w = log_odds(0.9);
        let f = fuse_weighted(&[(false, f64::NAN), (true, w), (false, f64::INFINITY)]).unwrap();
        assert!(f.yes);
        assert!(f.score.is_finite() && f.posterior.is_finite());
    }

    #[test]
    fn posterior_matches_closed_form_for_one_voter() {
        // One voter of accuracy p: posterior must be exactly p (after the
        // log-odds clamp): σ(ln(p/(1-p))) = p.
        for p in [0.55, 0.7, 0.9, 0.95] {
            let f = fuse_weighted(&[(true, log_odds(p))]).unwrap();
            assert!((f.posterior - p).abs() < 1e-12, "p = {p}");
        }
    }
}
