//! Shard-owned serving state: each shard owns its sessions end to end —
//! registry, scheduler queues and an event ready-queue — so nothing a
//! shard does to its own sessions contends with another shard
//! (DESIGN.md §14). Under the threaded topology (§15) a whole [`Shard`]
//! moves onto a dedicated worker thread.
//!
//! Sessions are strided across shards by id (`shard = id mod shards`);
//! the answer cache shards separately by question hash (see
//! `ShardedAnswerCache`), because an answer is a fact about a pair of
//! objects, not about the session that asked.
//!
//! Budget is reconciled, not shared: the crowd's remaining budget is the
//! single source of truth, and shards spend it only through explicit
//! [`ShardLedger`] grants issued by the service's reconciler in shard
//! order. The ledgers live beside the crowd on the coordinator side (the
//! service in the in-place modes, the coordinator thread in the threaded
//! topology) — a shard never spends crowd budget except through the
//! sequential purchase path. Every reconcile first reclaims all unspent
//! grants and then re-grants against current demand, so the sum of
//! outstanding grants never exceeds what the crowd can actually serve —
//! and a zero-grant reconcile is *not* progress, which is what lets the
//! event loop tell "blocked on the crowd" apart from livelock.

use crate::metrics::ServiceMetrics;
use crate::registry::{Registry, SessionId, SessionState};
use crate::scheduler::Scheduler;
use crate::service::RoundOutcome;
use ctk_core::driver::DriverStatus;
use ctk_core::CoreError;
use std::collections::VecDeque;

/// One unit of work the event loop drains from a shard's ready-queue.
///
/// Events are the only cross-phase signal in event mode: a slow session
/// parks itself (leaving an event trail) instead of stalling a barrier
/// everyone else waits on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A session was submitted to this shard (observability; the
    /// scheduler picks it up from the registry's runnable set).
    Submitted(SessionId),
    /// A session's current batch is fully resolved (or decisively
    /// starved): its mailbox holds the answers, ready to feed.
    AnswersReady(SessionId),
    /// The reconciler issued this shard budget to spend on live crowd
    /// questions; parked sessions may resume.
    BudgetGranted {
        /// Grant units added to the shard's ledger (always > 0).
        granted: usize,
    },
    /// A session reached `Done` or `Failed` (observability).
    Finished(SessionId),
}

/// Per-shard budget grants: the admission-control layer between a shard's
/// live crowd asks and the crowd's own budget.
#[derive(Debug, Clone, Default)]
pub struct ShardLedger {
    /// Grant units currently available to spend.
    available: usize,
    /// Lifetime units granted by the reconciler.
    total_granted: u64,
    /// Lifetime live questions spent against grants (in tick mode, live
    /// questions attributed to this shard's sessions — tick's sequential
    /// purchase phase grants and spends in the same step).
    total_spent: u64,
    /// Lifetime units reclaimed unspent at reconcile time.
    reclaimed: u64,
}

impl ShardLedger {
    /// Grant units currently available.
    pub fn available(&self) -> usize {
        self.available
    }

    /// Lifetime units granted.
    pub fn total_granted(&self) -> u64 {
        self.total_granted
    }

    /// Lifetime live questions spent.
    pub fn total_spent(&self) -> u64 {
        self.total_spent
    }

    /// Lifetime units reclaimed unspent.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed
    }

    /// Adds `n` grant units (reconciler only).
    pub(crate) fn grant(&mut self, n: usize) {
        self.available += n;
        self.total_granted += n as u64;
    }

    /// Spends one grant unit on a live crowd question.
    pub(crate) fn spend_one(&mut self) {
        debug_assert!(self.available > 0, "spend without a grant");
        self.available = self.available.saturating_sub(1);
        self.total_spent += 1;
    }

    /// Tick mode: account a live purchase made in the sequential phase
    /// (grant-and-spend in one step, so `available` stays 0).
    pub(crate) fn note_spend(&mut self, n: u64) {
        self.total_granted += n;
        self.total_spent += n;
    }

    /// Takes back every unspent unit; returns how many were reclaimed.
    pub(crate) fn reclaim(&mut self) -> usize {
        let unspent = self.available;
        self.available = 0;
        self.reclaimed += unspent as u64;
        unspent
    }
}

/// One shard of the serving core: the sessions it owns, their scheduler,
/// and the event queue the run loop drains. Shards are processed in
/// index order everywhere — in-place sweeps iterate them, the threaded
/// coordinator serves their purchase requests — which is what makes the
/// event loop deterministic at any fixed shard count.
pub(crate) struct Shard {
    pub(crate) registry: Registry,
    pub(crate) scheduler: Scheduler,
    pub(crate) ready: VecDeque<Event>,
}

impl Shard {
    pub(crate) fn new(fanout: Option<usize>) -> Self {
        Self {
            registry: Registry::new(),
            scheduler: match fanout {
                Some(f) => Scheduler::with_fanout(f),
                None => Scheduler::new(),
            },
            ready: VecDeque::new(),
        }
    }

    /// Finishes a `Done`/about-to-be-`Done` session: takes the driver,
    /// produces the report, and records completion metrics against shard
    /// index `s`. Purely shard-local — shared by the in-place loops and
    /// the per-shard worker threads.
    pub(crate) fn finalize_session(
        &mut self,
        s: usize,
        id: SessionId,
        metrics: &mut ServiceMetrics,
    ) {
        let entry = self.registry.get_mut(id).expect("finalized id exists"); // ctk-allow(panic-unwrap): finalize is called once per done/failed id
        let driver = entry.driver.take().expect("finalize once"); // ctk-allow(panic-unwrap): state machine guarantees a live driver here
        match driver.finish() {
            Ok(report) => {
                metrics.worlds_drawn += report.worlds_drawn as u64;
                metrics.certain_early_stops += u64::from(report.certain_early_stop);
                entry.report = Some(report);
                entry.state = SessionState::Done;
                let latency = entry.submitted_at.elapsed();
                entry.latency = Some(latency);
                metrics.completed += 1;
                metrics.record_latency(latency);
                metrics.record_shard_completed(s);
            }
            Err(err) => {
                entry.error = Some(err);
                entry.state = SessionState::Failed;
                metrics.failed += 1;
            }
        }
        self.ready.push_back(Event::Finished(id));
    }

    /// Marks a session `Failed` with `err` (driver dropped). Shard-local.
    pub(crate) fn fail_session(
        &mut self,
        id: SessionId,
        err: CoreError,
        metrics: &mut ServiceMetrics,
    ) {
        let entry = self.registry.get_mut(id).expect("failed id exists"); // ctk-allow(panic-unwrap): fail() receives ids from this round's plan
        entry.driver = None;
        entry.error = Some(err);
        entry.state = SessionState::Failed;
        metrics.failed += 1;
        self.ready.push_back(Event::Finished(id));
    }

    /// Delivers a resolved batch from the session's mailbox to its
    /// driver, then advances the lifecycle (requeue, finalize or fail).
    /// Purely shard-local: the answers were already bought through the
    /// sequential purchase path.
    pub(crate) fn deliver(
        &mut self,
        s: usize,
        id: SessionId,
        metrics: &mut ServiceMetrics,
        outcome: &mut RoundOutcome,
    ) {
        let (served_n, requested, status) = {
            let entry = self.registry.get_mut(id).expect("delivered id exists"); // ctk-allow(panic-unwrap): AnswersReady events name ids of this shard's registry
            let served = std::mem::take(&mut entry.served);
            let requested = std::mem::replace(&mut entry.requested, 0);
            entry.pending.clear();
            entry.batch_hits = 0;
            for sa in &served {
                entry.ledger.record(sa.answer, usize::from(!sa.cached));
            }
            let graded: Vec<_> = served.iter().map(|a| (a.answer, a.accuracy)).collect();
            // ctk-allow(panic-unwrap): awaiting entries always hold a driver; loud failure beats misattribution
            let driver = entry.driver.as_mut().expect("awaiting session has driver");
            (served.len(), requested, driver.feed_graded(&graded))
        };
        metrics.answers_served += served_n as u64;
        metrics.record_shard_answers(s, served_n as u64);
        outcome.answers_served += served_n as u64;
        if served_n < requested {
            metrics.starved += 1;
        }
        match status {
            Ok(DriverStatus::Done) => {
                self.finalize_session(s, id, metrics);
                outcome.finished += 1;
            }
            Ok(DriverStatus::Active) => {
                self.registry
                    .get_mut(id)
                    .expect("delivered id exists") // ctk-allow(panic-unwrap): same id as above
                    .state = SessionState::Queued;
            }
            Err(err) => {
                self.fail_session(id, err, metrics);
                outcome.finished += 1;
            }
        }
    }

    /// Force-starves a parked session: its unresolved questions are
    /// dropped and the prefix it did resolve is queued for delivery —
    /// exactly what tick mode's exhausted-crowd path does.
    pub(crate) fn force_starve(&mut self, id: SessionId) {
        let entry = self.registry.get_mut(id).expect("parked id exists"); // ctk-allow(panic-unwrap): quiescence lists ids from this registry
        entry.pending.clear();
        entry.state = SessionState::AwaitingAnswers;
        self.ready.push_back(Event::AnswersReady(id));
    }
}

/// Why [`crate::TopKService::run_until_quiescent`] stopped pumping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Quiescence {
    /// Nothing left to do: every session is `Done` or `Failed`.
    Idle,
    /// No sweep can make progress *by computation alone*: these sessions
    /// hold unresolved questions the crowd has no budget for. The caller
    /// decides — wait for external budget, or force-starve (what
    /// `run_to_completion` does, matching tick-mode semantics).
    BlockedOnCrowd {
        /// The parked sessions, in shard order then id order.
        sessions: Vec<SessionId>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_grant_spend_reclaim_accounting() {
        let mut l = ShardLedger::default();
        l.grant(5);
        assert_eq!(l.available(), 5);
        l.spend_one();
        l.spend_one();
        assert_eq!(l.available(), 3);
        assert_eq!(l.reclaim(), 3);
        assert_eq!(l.available(), 0);
        assert_eq!(l.total_granted(), 5);
        assert_eq!(l.total_spent(), 2);
        assert_eq!(l.reclaimed(), 3);
    }

    #[test]
    fn tick_spend_keeps_available_at_zero() {
        let mut l = ShardLedger::default();
        l.note_spend(7);
        assert_eq!(l.available(), 0);
        assert_eq!(l.total_granted(), 7);
        assert_eq!(l.total_spent(), 7);
    }
}
