//! Dataset materialization: turns a [`DatasetSpec`] into an
//! [`UncertainTable`], deterministically.

use crate::config::{CenterLayout, DatasetSpec, PdfFamily};
use crate::error::{DatagenError, Result};
use ctk_prob::{ScoreDist, UncertainTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates the table described by `spec`. The same spec always produces
/// the same table. A malformed spec (zero tuples, NaN knobs, …) is
/// reported as a [`DatagenError`] rather than aborting the process, so
/// externally supplied scenario configurations are safe to materialize.
pub fn generate(spec: &DatasetSpec) -> Result<UncertainTable> {
    if spec.n == 0 {
        return Err(DatagenError::EmptyTable);
    }
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let centers = generate_centers(&spec.centers, spec.n, &mut rng);
    let dists = centers
        .iter()
        .enumerate()
        .map(|(idx, &c)| make_dist(&spec.family, c, idx, &mut rng))
        .collect::<Result<Vec<_>>>()?;
    // Table-level failure (not attributable to one tuple); with the n == 0
    // guard above this is currently unreachable, but future table-wide
    // validation in ctk-prob would surface here.
    UncertainTable::new(dists)
        .map_err(|e| DatagenError::InvalidSpec(format!("table construction failed: {e}")))
}

fn generate_centers(layout: &CenterLayout, n: usize, rng: &mut StdRng) -> Vec<f64> {
    match *layout {
        CenterLayout::UniformRandom => (0..n).map(|_| rng.gen::<f64>()).collect(),
        CenterLayout::EvenlySpaced => {
            if n == 1 {
                vec![0.5]
            } else {
                (0..n).map(|i| i as f64 / (n - 1) as f64).collect()
            }
        }
        CenterLayout::Clustered { clusters, spread } => {
            let clusters = clusters.max(1);
            let anchors: Vec<f64> = (0..clusters)
                .map(|c| (c as f64 + 0.5) / clusters as f64)
                .collect();
            (0..n)
                .map(|i| {
                    let anchor = anchors[i % clusters];
                    // Box-Muller-free Gaussian-ish jitter: sum of uniforms
                    // (Irwin–Hall with 4 terms, rescaled) keeps datagen free
                    // of distribution machinery.
                    let jitter: f64 = (0..4).map(|_| rng.gen::<f64>()).sum::<f64>() / 4.0 - 0.5;
                    anchor + jitter * spread * 3.46 // std of IH(4)/4 ≈ 0.144
                })
                .collect()
        }
    }
}

fn make_dist(family: &PdfFamily, center: f64, idx: usize, rng: &mut StdRng) -> Result<ScoreDist> {
    if !center.is_finite() {
        return Err(DatagenError::InvalidSpec(format!(
            "tuple {idx}: score center is {center} (check the center layout knobs)"
        )));
    }
    // `f64::max` ignores NaN operands, so the 1e-6 floor below would
    // silently launder a NaN width into a valid one — reject it first.
    let scale = |w: f64, what: &str| -> Result<f64> {
        if w.is_finite() {
            Ok(w.max(1e-6))
        } else {
            Err(DatagenError::InvalidSpec(format!(
                "tuple {idx}: {what} is {w}"
            )))
        }
    };
    let wrap = |r: ctk_prob::Result<ScoreDist>| {
        r.map_err(|source| DatagenError::Distribution { index: idx, source })
    };
    match *family {
        PdfFamily::Uniform { width } => {
            let w = scale(width.materialize(rng.gen::<f64>()), "width")?;
            wrap(ScoreDist::uniform_centered(center, w))
        }
        PdfFamily::Gaussian { sigma } => {
            let s = scale(sigma.materialize(rng.gen::<f64>()), "sigma")?;
            wrap(ScoreDist::gaussian(center, s))
        }
        PdfFamily::MixedFamilies { width } => {
            let w = scale(width.materialize(rng.gen::<f64>()), "width")?;
            wrap(match idx % 3 {
                0 => ScoreDist::uniform_centered(center, w),
                1 => ScoreDist::gaussian(center, w / 4.0),
                _ => ScoreDist::triangular(center - w / 2.0, center, center + w / 2.0),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WidthSpec;

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::paper_default(15, 0.4, 42);
        assert_eq!(generate(&spec).unwrap(), generate(&spec).unwrap());
        let other = DatasetSpec::paper_default(15, 0.4, 43);
        assert_ne!(generate(&spec).unwrap(), generate(&other).unwrap());
    }

    #[test]
    fn paper_default_produces_uniform_pdfs() {
        let t = generate(&DatasetSpec::paper_default(10, 0.4, 1)).unwrap();
        assert_eq!(t.len(), 10);
        for tu in t.iter() {
            assert!(
                matches!(&tu.dist, ScoreDist::Uniform(u) if (u.hi() - u.lo() - 0.4).abs() < 1e-12),
                "expected width-0.4 uniform, got {:?}",
                tu.dist
            );
        }
    }

    #[test]
    fn empty_spec_is_an_error_not_a_panic() {
        let spec = DatasetSpec::paper_default(0, 0.4, 1);
        assert_eq!(generate(&spec), Err(DatagenError::EmptyTable));
    }

    #[test]
    fn nan_knobs_are_an_error_not_a_panic() {
        let spec = DatasetSpec {
            n: 3,
            centers: CenterLayout::UniformRandom,
            family: PdfFamily::Gaussian {
                sigma: WidthSpec::Fixed(f64::NAN),
            },
            seed: 0,
        };
        let err = generate(&spec).expect_err("NaN sigma must not abort");
        assert!(matches!(err, DatagenError::InvalidSpec(_)), "got {err:?}");
        // NaN centers poison uniform bounds the same way.
        let spec = DatasetSpec {
            n: 2,
            centers: CenterLayout::Clustered {
                clusters: 1,
                spread: f64::NAN,
            },
            family: PdfFamily::Uniform {
                width: WidthSpec::Fixed(0.2),
            },
            seed: 0,
        };
        assert!(generate(&spec).is_err());
    }

    #[test]
    fn evenly_spaced_centers() {
        let spec = DatasetSpec {
            n: 5,
            centers: CenterLayout::EvenlySpaced,
            family: PdfFamily::Uniform {
                width: WidthSpec::Fixed(0.1),
            },
            seed: 0,
        };
        let t = generate(&spec).unwrap();
        let means: Vec<f64> = t.iter().map(|tu| tu.dist.mean()).collect();
        for (i, m) in means.iter().enumerate() {
            assert!((m - i as f64 * 0.25).abs() < 1e-9, "mean {m} at {i}");
        }
    }

    #[test]
    fn heterogeneous_widths_vary() {
        let spec = DatasetSpec {
            n: 30,
            centers: CenterLayout::UniformRandom,
            family: PdfFamily::Uniform {
                width: WidthSpec::UniformRange(0.1, 0.8),
            },
            seed: 5,
        };
        let t = generate(&spec).unwrap();
        let widths: Vec<f64> = t
            .iter()
            .map(|tu| {
                let (lo, hi) = tu.dist.support();
                hi - lo
            })
            .collect();
        let min = widths.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = widths.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.2, "widths should spread: [{min}, {max}]");
        assert!(min >= 0.1 - 1e-9 && max <= 0.8 + 1e-9);
    }

    #[test]
    fn mixed_families_cycle() {
        let spec = DatasetSpec {
            n: 6,
            centers: CenterLayout::EvenlySpaced,
            family: PdfFamily::MixedFamilies {
                width: WidthSpec::Fixed(0.3),
            },
            seed: 9,
        };
        let t = generate(&spec).unwrap();
        assert!(matches!(t.dist_at(0), ScoreDist::Uniform(_)));
        assert!(matches!(t.dist_at(1), ScoreDist::Gaussian(_)));
        assert!(matches!(t.dist_at(2), ScoreDist::Piecewise(_)));
        assert!(matches!(t.dist_at(3), ScoreDist::Uniform(_)));
    }

    #[test]
    fn clustered_centers_form_groups() {
        let spec = DatasetSpec {
            n: 40,
            centers: CenterLayout::Clustered {
                clusters: 2,
                spread: 0.01,
            },
            family: PdfFamily::Uniform {
                width: WidthSpec::Fixed(0.05),
            },
            seed: 3,
        };
        let t = generate(&spec).unwrap();
        let mut means: Vec<f64> = t.iter().map(|tu| tu.dist.mean()).collect();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Two groups near 0.25 and 0.75: the largest gap should be big.
        let max_gap = means.windows(2).map(|w| w[1] - w[0]).fold(0.0f64, f64::max);
        assert!(
            max_gap > 0.2,
            "expected a clear inter-cluster gap, got {max_gap}"
        );
    }
}
