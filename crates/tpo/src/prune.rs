//! Hard pruning of a path set by a (reliable) crowd answer.
//!
//! “Given a crowd worker's answer, we can prune from `T_K` all the paths
//! disagreeing with the answer” (§III). Paths the answer leaves
//! undetermined (neither tuple in the top-k) keep a fraction of their mass
//! equal to the probability that their hidden below-k order agrees with the
//! answer — supplied by the caller as `undetermined_split` (typically the
//! marginal `P(s_i > s_j)`).

use crate::answers::{implication, Implication};
use crate::error::{Result, TpoError};
use crate::path::{Path, PathSet};

/// Outcome statistics of a pruning step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneStats {
    /// Orderings before pruning.
    pub paths_before: usize,
    /// Orderings after pruning.
    pub paths_after: usize,
    /// Probability mass removed (before renormalization).
    pub mass_removed: f64,
}

/// Prunes `ps` with the answer to “does `i` rank above `j`?”.
///
/// * `yes` — the received answer;
/// * `undetermined_split` — `P(i above j)` for paths containing neither
///   tuple (pass `0.5` when no marginal is available).
///
/// Returns the pruned, renormalized path set and statistics, or
/// [`TpoError::ContradictoryAnswer`] if no mass survives.
pub fn prune(
    ps: &PathSet,
    i: u32,
    j: u32,
    yes: bool,
    undetermined_split: f64,
) -> Result<(PathSet, PruneStats)> {
    let split = undetermined_split.clamp(0.0, 1.0);
    let mut kept: Vec<Path> = Vec::with_capacity(ps.len());
    for p in ps.paths() {
        let factor = match implication(&p.items, i, j) {
            Implication::Yes => {
                if yes {
                    1.0
                } else {
                    0.0
                }
            }
            Implication::No => {
                if yes {
                    0.0
                } else {
                    1.0
                }
            }
            Implication::Undetermined => {
                if yes {
                    split
                } else {
                    1.0 - split
                }
            }
        };
        let mass = p.prob * factor;
        if mass > 0.0 {
            kept.push(Path {
                items: p.items.clone(),
                prob: mass,
            });
        }
    }
    let surviving: f64 = kept.iter().map(|p| p.prob).sum();
    if kept.is_empty() || surviving <= 0.0 {
        return Err(TpoError::ContradictoryAnswer);
    }
    let stats = PruneStats {
        paths_before: ps.len(),
        paths_after: kept.len(),
        mass_removed: 1.0 - surviving,
    };
    for p in &mut kept {
        p.prob /= surviving;
    }
    Ok((PathSet::from_parts_unchecked(ps.k(), kept), stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps3() -> PathSet {
        PathSet::from_weighted(
            2,
            vec![(vec![0, 1], 0.5), (vec![1, 0], 0.3), (vec![1, 2], 0.2)],
        )
        .unwrap()
    }

    #[test]
    fn prunes_disagreeing_paths() {
        let (pruned, stats) = prune(&ps3(), 0, 1, true, 0.5).unwrap();
        // Only [0,1] says 0 above 1; [1,0] and [1,2] (0 absent, 1 present -> No) drop.
        assert_eq!(pruned.len(), 1);
        assert_eq!(pruned.paths()[0].items, vec![0, 1]);
        assert!((pruned.total_prob() - 1.0).abs() < 1e-12);
        assert_eq!(stats.paths_before, 3);
        assert_eq!(stats.paths_after, 1);
        assert!((stats.mass_removed - 0.5).abs() < 1e-12);
    }

    #[test]
    fn opposite_answer_keeps_the_complement() {
        let (pruned, _) = prune(&ps3(), 0, 1, false, 0.5).unwrap();
        assert_eq!(pruned.len(), 2);
        let items: Vec<&[u32]> = pruned.paths().iter().map(|p| p.items.as_slice()).collect();
        assert!(items.contains(&[1u32, 0].as_slice()));
        assert!(items.contains(&[1u32, 2].as_slice()));
        // Renormalized: 0.3/0.5 and 0.2/0.5.
        assert!((pruned.paths()[0].prob - 0.6).abs() < 1e-12);
    }

    #[test]
    fn undetermined_mass_splits() {
        // Question about tuples absent from some path.
        let s = PathSet::from_weighted(2, vec![(vec![0, 1], 0.5), (vec![2, 3], 0.5)]).unwrap();
        // Ask about (4,5): both absent everywhere -> all paths undetermined.
        let (pruned, stats) = prune(&s, 4, 5, true, 0.7).unwrap();
        assert_eq!(pruned.len(), 2);
        // Mass scaled uniformly then renormalized -> unchanged distribution.
        assert!((pruned.paths()[0].prob - 0.5).abs() < 1e-12);
        assert!((stats.mass_removed - 0.3).abs() < 1e-12);
    }

    #[test]
    fn contradiction_detected() {
        let s = PathSet::from_weighted(2, vec![(vec![0, 1], 1.0)]).unwrap();
        assert!(matches!(
            prune(&s, 1, 0, true, 0.5),
            Err(TpoError::ContradictoryAnswer)
        ));
    }

    #[test]
    fn consistent_answer_never_increases_paths() {
        let s = ps3();
        for &(i, j, yes) in &[
            (0u32, 1u32, true),
            (0, 1, false),
            (1, 2, true),
            (0, 2, false),
        ] {
            if let Ok((pruned, _)) = prune(&s, i, j, yes, 0.5) {
                assert!(pruned.len() <= s.len());
                assert!((pruned.total_prob() - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn membership_pruning() {
        // "0 ranks above 2", answered false: [0,1] has 0 present and 2
        // absent (implies Yes) -> drop; [1,0] likewise -> drop; [1,2] has 2
        // present, 0 absent (implies No) -> keep.
        let (pruned, _) = prune(&ps3(), 0, 2, false, 0.5).unwrap();
        assert_eq!(pruned.len(), 1);
        assert_eq!(pruned.paths()[0].items, vec![1, 2]);
    }

    #[test]
    fn membership_pruning_error_case() {
        // "2 above 1" contradicts every path: [0,1] and [1,0] have 1
        // present / 2 absent (1 above 2), and [1,2] orders 1 before 2.
        assert!(matches!(
            prune(&ps3(), 2, 1, true, 0.5),
            Err(TpoError::ContradictoryAnswer)
        ));
    }
}
