//! Continuous uniform score distribution `U[lo, hi]`.
//!
//! This is the pdf family the paper's main experiments use: a tuple's score
//! is known up to an interval (e.g. a sensor reading with symmetric error),
//! and the interval width controls how much the orderings overlap.

use crate::error::{ProbError, Result};
use rand::Rng;

/// Uniform distribution on the closed interval `[lo, hi]`, `lo < hi`.
#[derive(Debug, Clone, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution; fails unless `lo < hi` and both are
    /// finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if !lo.is_finite() || !hi.is_finite() {
            return Err(ProbError::InvalidParameter {
                param: "lo/hi",
                reason: format!("bounds must be finite, got [{lo}, {hi}]"),
            });
        }
        if lo >= hi {
            return Err(ProbError::InvalidParameter {
                param: "lo/hi",
                reason: format!("require lo < hi, got [{lo}, {hi}]"),
            });
        }
        Ok(Self { lo, hi })
    }

    /// Uniform centered at `center` with total width `width`.
    pub fn centered(center: f64, width: f64) -> Result<Self> {
        if width <= 0.0 {
            return Err(ProbError::InvalidParameter {
                param: "width",
                reason: format!("must be positive, got {width}"),
            });
        }
        Self::new(center - width * 0.5, center + width * 0.5)
    }

    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            0.0
        } else {
            1.0 / (self.hi - self.lo)
        }
    }

    /// Cumulative distribution `P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            (x - self.lo) / (self.hi - self.lo)
        }
    }

    /// Quantile function; `p` is clamped to `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        self.lo + p * (self.hi - self.lo)
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Variance of the distribution.
    pub fn variance(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }

    /// Support interval (exact).
    pub fn support(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.gen_range(self.lo..self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        assert!(Uniform::new(0.0, 1.0).is_ok());
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(2.0, 1.0).is_err());
        assert!(Uniform::new(f64::NAN, 1.0).is_err());
        assert!(Uniform::new(0.0, f64::INFINITY).is_err());
        assert!(Uniform::centered(0.5, 0.0).is_err());
        let u = Uniform::centered(0.5, 0.2).unwrap();
        assert!((u.lo() - 0.4).abs() < 1e-15);
        assert!((u.hi() - 0.6).abs() < 1e-15);
    }

    #[test]
    fn pdf_cdf_quantile_coherence() {
        let u = Uniform::new(2.0, 6.0).unwrap();
        assert_eq!(u.pdf(1.9), 0.0);
        assert_eq!(u.pdf(6.1), 0.0);
        assert!((u.pdf(3.0) - 0.25).abs() < 1e-15);
        assert_eq!(u.cdf(2.0), 0.0);
        assert_eq!(u.cdf(6.0), 1.0);
        assert!((u.cdf(4.0) - 0.5).abs() < 1e-15);
        for i in 0..=10 {
            let p = i as f64 / 10.0;
            assert!((u.cdf(u.quantile(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn moments() {
        let u = Uniform::new(0.0, 1.0).unwrap();
        assert!((u.mean() - 0.5).abs() < 1e-15);
        assert!((u.variance() - 1.0 / 12.0).abs() < 1e-15);
    }

    #[test]
    fn samples_stay_in_support_and_average_to_mean() {
        let u = Uniform::new(-1.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut acc = 0.0;
        const N: usize = 20_000;
        for _ in 0..N {
            let s = u.sample(&mut rng);
            assert!((-1.0..3.0).contains(&s));
            acc += s;
        }
        assert!((acc / N as f64 - u.mean()).abs() < 0.05);
    }
}
