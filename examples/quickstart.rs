//! Quickstart: resolve a top-3 query over uncertain scores with a handful
//! of crowd questions.
//!
//! Run with: `cargo run --example quickstart`

use crowd_topk::prelude::*;
use crowd_topk::prob::{ScoreDist, UncertainTable};
use crowd_topk::tpo::{build::Engine, Tpo};

fn main() {
    // A relation of 8 restaurants with uncertain review scores: each score
    // is known only up to an interval (aggregated star ratings with small
    // samples).
    let table = UncertainTable::with_labels(
        [
            ("Trattoria Da Nadia", 0.82, 0.20),
            ("Osteria del Ponte", 0.78, 0.30),
            ("La Lanterna", 0.74, 0.25),
            ("Il Girasole", 0.70, 0.35),
            ("Piccola Cucina", 0.66, 0.30),
            ("Bar Centrale", 0.55, 0.25),
            ("Paninoteca 21", 0.42, 0.30),
            ("Chiosco Verde", 0.30, 0.20),
        ]
        .into_iter()
        .map(|(name, center, width)| {
            (
                name.to_string(),
                ScoreDist::uniform_centered(center, width).unwrap(),
            )
        })
        .collect(),
    )
    .unwrap();

    // How uncertain is the top-3 before asking anyone anything?
    let ps = Engine::default().build(&table, 3).unwrap();
    println!("Initial space of possible top-3 orderings: {}", ps.len());
    let tree = Tpo::from_path_set(&ps);
    println!(
        "TPO: {} nodes, {} leaves (export with Tpo::to_dot for graphviz)\n",
        tree.len(),
        tree.num_orderings()
    );

    // Hidden reality (in production this is the world; here we sample it).
    let truth = GroundTruth::sample(&table, 2024);
    let real_top3 = truth.top_k(3);

    // A perfect crowd with a budget of 12 pairwise questions.
    let mut crowd = CrowdSimulator::new(truth, PerfectWorker, VotePolicy::Single, 12)
        .expect("valid vote policy");

    let report = CrowdTopK::new(table.clone())
        .k(3)
        .budget(12)
        .measure(MeasureKind::WeightedEntropy)
        .algorithm(Algorithm::T1On)
        .run_with_truth(&mut crowd, &real_top3)
        .unwrap();

    println!("question                         answer   orderings  D(truth)");
    for s in &report.steps {
        let qi = table.label(crowd_topk::prob::TupleId(s.question.i));
        let qj = table.label(crowd_topk::prob::TupleId(s.question.j));
        println!(
            "{:20} ≻ {:12}? {:6}   {:9}  {:.4}",
            qi,
            qj,
            if s.answer_yes { "yes" } else { "no" },
            s.orderings,
            s.distance_to_truth.unwrap()
        );
    }

    println!(
        "\nAsked {} of 12 budgeted questions (early termination: {}).",
        report.questions_asked(),
        report.resolved
    );
    println!("Reported top-3:");
    for (rank, id) in report.final_topk.iter().enumerate() {
        println!(
            "  {}. {}",
            rank + 1,
            table.label(crowd_topk::prob::TupleId(*id))
        );
    }
    println!("True top-3:");
    for (rank, id) in real_top3.items().iter().enumerate() {
        println!(
            "  {}. {}",
            rank + 1,
            table.label(crowd_topk::prob::TupleId(*id))
        );
    }
}
