//! Arena representation of the tree of possible orderings.
//!
//! The flat [`PathSet`] is the workhorse for measures and selection; this
//! explicit tree provides the level structure (node = prefix, edge =
//! “ranked immediately after”), counts, and Graphviz export for
//! visualization — the shape the paper draws in its figures.

use crate::path::PathSet;
use std::fmt::Write as _;

/// One node of the TPO arena.
#[derive(Debug, Clone, PartialEq)]
pub struct TpoNode {
    /// Tuple id at this node (`None` for the root).
    pub tuple: Option<u32>,
    /// Probability mass of the prefix ending at this node.
    pub prob: f64,
    /// Depth (root = 0, first ranked tuple = 1).
    pub depth: usize,
    /// Parent index (`None` for the root).
    pub parent: Option<usize>,
    /// Child indices, ordered by descending probability then tuple id.
    pub children: Vec<usize>,
}

/// Tree of possible orderings, materialized as an arena.
#[derive(Debug, Clone)]
pub struct Tpo {
    nodes: Vec<TpoNode>,
    k: usize,
}

impl Tpo {
    /// Builds the trie of a path set (prefix probabilities are the sums of
    /// their descendant paths).
    pub fn from_path_set(ps: &PathSet) -> Self {
        let mut nodes = vec![TpoNode {
            tuple: None,
            prob: 1.0,
            depth: 0,
            parent: None,
            children: Vec::new(),
        }];
        for path in ps.paths() {
            let mut cur = 0usize;
            for (d, &t) in path.items.iter().enumerate() {
                // Find or create the child with this tuple.
                let child = nodes[cur]
                    .children
                    .iter()
                    .copied()
                    .find(|&c| nodes[c].tuple == Some(t));
                let child = match child {
                    Some(c) => {
                        nodes[c].prob += path.prob;
                        c
                    }
                    None => {
                        let idx = nodes.len();
                        nodes.push(TpoNode {
                            tuple: Some(t),
                            prob: path.prob,
                            depth: d + 1,
                            parent: Some(cur),
                            children: Vec::new(),
                        });
                        nodes[cur].children.push(idx);
                        idx
                    }
                };
                cur = child;
            }
        }
        // Deterministic child ordering.
        let order: Vec<(usize, f64, Option<u32>)> = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (i, n.prob, n.tuple))
            .collect();
        for node in &mut nodes {
            node.children.sort_unstable_by(|&a, &b| {
                order[b]
                    .1
                    .total_cmp(&order[a].1)
                    .then(order[a].2.cmp(&order[b].2))
            });
        }
        Self { nodes, k: ps.k() }
    }

    /// Root node index (always 0).
    pub fn root(&self) -> usize {
        0
    }

    /// Target depth `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Node accessor.
    pub fn node(&self, idx: usize) -> &TpoNode {
        &self.nodes[idx]
    }

    /// Total number of nodes (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Trees always contain at least the root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Indices of all nodes at `depth`.
    pub fn level(&self, depth: usize) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].depth == depth)
            .collect()
    }

    /// Leaf indices (nodes with no children).
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].children.is_empty())
            .collect()
    }

    /// Number of distinct orderings (= leaves).
    pub fn num_orderings(&self) -> usize {
        self.leaves().len()
    }

    /// The tuple sequence of the path from the root to `idx`.
    pub fn path_to(&self, idx: usize) -> Vec<u32> {
        let mut items = Vec::new();
        let mut cur = Some(idx);
        while let Some(i) = cur {
            if let Some(t) = self.nodes[i].tuple {
                items.push(t);
            }
            cur = self.nodes[i].parent;
        }
        items.reverse();
        items
    }

    /// Graphviz DOT rendering (tuple labels via `label`, probabilities on
    /// edges).
    pub fn to_dot<F: Fn(u32) -> String>(&self, label: F) -> String {
        let mut out = String::from("digraph tpo {\n  rankdir=TB;\n  node [shape=circle];\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let text = match n.tuple {
                None => "⊥".to_string(),
                Some(t) => label(t),
            };
            let _ = writeln!(out, "  n{i} [label=\"{text}\"];");
        }
        for (i, n) in self.nodes.iter().enumerate() {
            for &c in &n.children {
                let _ = writeln!(out, "  n{i} -> n{c} [label=\"{:.3}\"];", self.nodes[c].prob);
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps() -> PathSet {
        PathSet::from_weighted(
            2,
            vec![(vec![0, 1], 0.5), (vec![0, 2], 0.2), (vec![1, 0], 0.3)],
        )
        .unwrap()
    }

    #[test]
    fn trie_structure() {
        let t = Tpo::from_path_set(&ps());
        // Nodes: root, 0, 0->1, 0->2, 1, 1->0 = 6.
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
        assert_eq!(t.num_orderings(), 3);
        assert_eq!(t.level(1).len(), 2);
        assert_eq!(t.level(2).len(), 3);
        assert_eq!(t.k(), 2);
    }

    #[test]
    fn prefix_probabilities_aggregate() {
        let t = Tpo::from_path_set(&ps());
        // The level-1 node for tuple 0 carries mass 0.7.
        let l1 = t.level(1);
        let n0 = l1
            .iter()
            .copied()
            .find(|&i| t.node(i).tuple == Some(0))
            .unwrap();
        assert!((t.node(n0).prob - 0.7).abs() < 1e-12);
        // Children of the root are sorted by descending mass.
        let root_children = &t.node(t.root()).children;
        assert_eq!(t.node(root_children[0]).tuple, Some(0));
    }

    #[test]
    fn path_reconstruction() {
        let t = Tpo::from_path_set(&ps());
        for &leaf in &t.leaves() {
            let path = t.path_to(leaf);
            assert_eq!(path.len(), 2);
            // Path must exist in the original set.
            assert!(ps().paths().iter().any(|p| p.items == path));
        }
        assert!(t.path_to(t.root()).is_empty());
    }

    #[test]
    fn parent_child_coherence() {
        let t = Tpo::from_path_set(&ps());
        for i in 0..t.len() {
            for &c in &t.node(i).children {
                assert_eq!(t.node(c).parent, Some(i));
                assert_eq!(t.node(c).depth, t.node(i).depth + 1);
                assert!(t.node(c).prob <= t.node(i).prob + 1e-12);
            }
        }
    }

    #[test]
    fn dot_export_contains_nodes_and_edges() {
        let t = Tpo::from_path_set(&ps());
        let dot = t.to_dot(|t| format!("t{t}"));
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("t0"));
        assert!(dot.contains("->"));
        assert!(dot.ends_with("}\n"));
    }
}
