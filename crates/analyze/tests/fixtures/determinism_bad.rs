//! Positive fixture: every determinism rule fires at least once.
use std::collections::{HashMap, HashSet};
use std::time::Instant;

pub fn hash_iteration_order_leaks(xs: &[u32]) -> Vec<u32> {
    let mut m: HashMap<u32, u32> = HashMap::new();
    let mut s: HashSet<u32> = HashSet::new();
    for &x in xs {
        m.insert(x, x * 2);
        s.insert(x);
    }
    m.into_values().chain(s.into_iter()).collect()
}

pub fn ad_hoc_threading(n: usize) -> usize {
    let cores = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let h = std::thread::spawn(move || n * 2);
    cores + h.join().unwrap_or(0)
}

pub fn reads_the_clock() -> bool {
    let t = Instant::now();
    t.elapsed().as_nanos() % 2 == 0
}

pub fn undisciplined_channel(n: u32) -> u32 {
    let (tx, rx) = std::sync::mpsc::channel();
    let (btx, _brx) = std::sync::mpsc::sync_channel(4);
    let _ = btx.send(n);
    let _ = tx.send(n);
    rx.recv().unwrap_or(0)
}
