//! Extension features beyond the paper's core: mixture score pdfs,
//! difficulty-aware workers, and the uncertainty-target stopping rule.

use crowd_topk::crowd::DifficultyWorker;
use crowd_topk::prelude::*;
use crowd_topk::prob::{ScoreDist, UncertainTable};
use crowd_topk::tpo::build::{build_exact, build_mc, ExactConfig, McConfig};

fn bimodal_table() -> UncertainTable {
    // Items whose quality depends on an unresolved categorical fact:
    // bimodal score pdfs with a shared ambiguous band.
    UncertainTable::new(
        (0..6)
            .map(|i| {
                let c = 0.15 * i as f64;
                ScoreDist::bimodal(
                    0.5,
                    ScoreDist::uniform_centered(c + 0.1, 0.15).unwrap(),
                    0.5,
                    ScoreDist::uniform_centered(c + 0.45, 0.15).unwrap(),
                )
                .unwrap()
            })
            .collect(),
    )
    .unwrap()
}

#[test]
fn mixture_tables_run_end_to_end() {
    let table = bimodal_table();
    assert!(table.all_continuous());
    let truth = GroundTruth::sample(&table, 11);
    let top = truth.top_k(3);
    let mut crowd = CrowdSimulator::new(truth, PerfectWorker, VotePolicy::Single, 15)
        .expect("valid vote policy");
    let report = CrowdTopK::new(table)
        .k(3)
        .budget(15)
        .algorithm(Algorithm::T1On)
        .monte_carlo(5_000, 3)
        .run_with_truth(&mut crowd, &top)
        .unwrap();
    assert!(report.final_distance().unwrap() <= report.initial_distance.unwrap() + 1e-9);
    assert!(report.final_orderings() < report.initial_orderings);
}

#[test]
fn mixture_engines_agree() {
    let table = bimodal_table();
    let exact = build_exact(&table, 2, &ExactConfig::default()).unwrap();
    let mc = build_mc(&table, 2, &McConfig::fixed(120_000, 5)).unwrap();
    let mut tv = 0.0;
    for p in exact.paths() {
        let q = mc
            .paths()
            .iter()
            .find(|m| m.items == p.items)
            .map(|m| m.prob)
            .unwrap_or(0.0);
        tv += (p.prob - q).abs();
    }
    for m in mc.paths() {
        if !exact.paths().iter().any(|p| p.items == m.items) {
            tv += m.prob;
        }
    }
    assert!(
        tv * 0.5 < 0.02,
        "mixture engines disagree: tv = {}",
        tv * 0.5
    );
}

#[test]
fn difficulty_workers_degrade_gracefully() {
    // A difficulty-aware crowd errs on close calls; the session must still
    // reduce distance, just less than a constant-accuracy crowd of the
    // same nominal eta.
    let table = UncertainTable::new(
        (0..10)
            .map(|i| ScoreDist::uniform_centered(0.1 * i as f64, 0.35).unwrap())
            .collect(),
    )
    .unwrap();
    const B: usize = 15;
    const RUNS: u64 = 8;
    let mut d_const = 0.0;
    let mut d_diff = 0.0;
    for run in 0..RUNS {
        let truth = GroundTruth::sample(&table, 900 + run);
        let top = truth.top_k(4);
        let run_with = |is_diff: bool| -> f64 {
            let mut q = CrowdTopK::new(table.clone())
                .k(4)
                .budget(B)
                .algorithm(Algorithm::T1On)
                .monte_carlo(4_000, run);
            q = q.selector_seed(run);
            if is_diff {
                let mut crowd = CrowdSimulator::new(
                    GroundTruth::sample(&table, 900 + run),
                    DifficultyWorker::new(0.9, 0.05, run).expect("positive scale"),
                    VotePolicy::Single,
                    B,
                )
                .expect("valid vote policy");
                q.run_with_truth(&mut crowd, &top)
                    .unwrap()
                    .final_distance()
                    .unwrap()
            } else {
                let mut crowd = CrowdSimulator::new(
                    GroundTruth::sample(&table, 900 + run),
                    NoisyWorker::new(0.9, run),
                    VotePolicy::Single,
                    B,
                )
                .expect("valid vote policy");
                q.run_with_truth(&mut crowd, &top)
                    .unwrap()
                    .final_distance()
                    .unwrap()
            }
        };
        d_const += run_with(false);
        d_diff += run_with(true);
    }
    let d_const = d_const / RUNS as f64;
    let d_diff = d_diff / RUNS as f64;
    // Difficulty-aware workers are *worse* than constant-accuracy ones at
    // the same nominal eta, because UR asks exactly the close-call
    // questions they bungle. Both must still be finite and sane.
    assert!(
        d_diff + 0.02 >= d_const,
        "difficulty workers unexpectedly beat constant: {d_diff:.4} vs {d_const:.4}"
    );
    assert!(d_diff < 0.5, "session collapsed: {d_diff:.4}");
}

#[test]
fn uncertainty_target_stops_early() {
    let table = UncertainTable::new(
        (0..8)
            .map(|i| ScoreDist::uniform_centered(0.1 * i as f64, 0.4).unwrap())
            .collect(),
    )
    .unwrap();
    let truth = GroundTruth::sample(&table, 4);
    let top = truth.top_k(3);
    let run = |target: Option<f64>| -> UrReport {
        let mut q = CrowdTopK::new(table.clone())
            .k(3)
            .budget(40)
            .algorithm(Algorithm::T1On)
            .monte_carlo(4_000, 1);
        if let Some(t) = target {
            q = q.uncertainty_target(t);
        }
        let mut crowd = CrowdSimulator::new(
            GroundTruth::sample(&table, 4),
            PerfectWorker,
            VotePolicy::Single,
            40,
        )
        .expect("valid vote policy");
        q.run_with_truth(&mut crowd, &top).unwrap()
    };
    let unbounded = run(None);
    let stopped = run(Some(0.3));
    assert!(
        stopped.questions_asked() < unbounded.questions_asked(),
        "target should save questions: {} vs {}",
        stopped.questions_asked(),
        unbounded.questions_asked()
    );
    assert!(
        stopped.final_uncertainty() <= 0.3 + 1e-9,
        "target not reached: {}",
        stopped.final_uncertainty()
    );
}

#[test]
fn uncertainty_target_applies_to_offline_and_incr() {
    let table = UncertainTable::new(
        (0..8)
            .map(|i| ScoreDist::uniform_centered(0.1 * i as f64, 0.4).unwrap())
            .collect(),
    )
    .unwrap();
    let truth = GroundTruth::sample(&table, 9);
    for algorithm in [
        Algorithm::TbOff,
        Algorithm::Incr {
            questions_per_round: 3,
        },
    ] {
        let mut crowd = CrowdSimulator::new(
            GroundTruth::sample(&table, 9),
            PerfectWorker,
            VotePolicy::Single,
            40,
        )
        .expect("valid vote policy");
        let report = CrowdTopK::new(table.clone())
            .k(3)
            .budget(40)
            .algorithm(algorithm.clone())
            .monte_carlo(4_000, 2)
            .uncertainty_target(0.25)
            .run_with_truth(&mut crowd, &truth.top_k(3))
            .unwrap();
        assert!(
            report.questions_asked() < 40,
            "{} ignored the target",
            algorithm.name()
        );
    }
}
