//! Worker models: how a crowd member turns the true pairwise order into an
//! answer.
//!
//! §III-C models a worker by an *accuracy* — the probability that the
//! returned answer is correct. The experiment harness uses
//! [`PerfectWorker`] for the noiseless setting and [`NoisyWorker`] /
//! [`WorkerPool`] for the noisy-crowd experiments. Every answer can also be
//! *attributed*: [`AnswerModel::vote_with_gap`] reports which member of the
//! model produced it as a [`Vote`], the raw material the `ctk-quality`
//! crate's per-worker accuracy estimation is built on.

use crate::error::CrowdError;
use crate::question::Question;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Identifies one worker within an answer model (e.g. the index of a pool
/// member). Single-worker models attribute everything to
/// [`WorkerId::SOLO`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkerId(pub u32);

impl WorkerId {
    /// The id single-worker models attribute their answers to.
    pub const SOLO: WorkerId = WorkerId(0);
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// One worker's raw (un-aggregated) verdict on a question, attributed to
/// whoever produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vote {
    /// Who answered.
    pub worker: WorkerId,
    /// `true` iff this worker said `i` ranks above `j`.
    pub yes: bool,
}

/// Turns the true answer of a question into the worker's (possibly wrong)
/// response.
///
/// `Send` is a supertrait so crowds built over any worker model can cross
/// thread boundaries (see the `Crowd` trait and the sharded service round
/// loop in `ctk-service`).
pub trait AnswerModel: Send {
    /// Produces the worker's answer given the correct one.
    fn answer(&mut self, q: &Question, truth: bool) -> bool;

    /// The model's (nominal) accuracy, used by the Bayesian update. For
    /// pools this is the average accuracy; for difficulty-aware workers it
    /// is the asymptotic (easy-pair) accuracy.
    fn accuracy(&self) -> f64;

    /// Like [`AnswerModel::answer`] but informed of the true score gap
    /// `|s_i - s_j|` of the compared pair. Models that err more on close
    /// calls override this; the default ignores the gap.
    fn answer_with_gap(&mut self, q: &Question, truth: bool, _gap: f64) -> bool {
        self.answer(q, truth)
    }

    /// Like [`AnswerModel::answer_with_gap`] but attributing the answer to
    /// the worker that produced it. Single-worker models keep the default
    /// ([`WorkerId::SOLO`]); pools override it to report the selected
    /// member. The returned answer is drawn exactly as
    /// [`AnswerModel::answer_with_gap`] would draw it, so attributed and
    /// unattributed asks consume identical randomness.
    fn vote_with_gap(&mut self, q: &Question, truth: bool, gap: f64) -> Vote {
        Vote {
            worker: WorkerId::SOLO,
            yes: self.answer_with_gap(q, truth, gap),
        }
    }
}

/// Always answers correctly (accuracy 1).
#[derive(Debug, Clone, Default)]
pub struct PerfectWorker;

impl AnswerModel for PerfectWorker {
    fn answer(&mut self, _q: &Question, truth: bool) -> bool {
        truth
    }

    fn accuracy(&self) -> f64 {
        1.0
    }
}

/// Answers correctly with fixed probability `accuracy`.
#[derive(Debug, Clone)]
pub struct NoisyWorker {
    accuracy: f64,
    rng: StdRng,
}

impl NoisyWorker {
    /// Creates a worker with the given accuracy (clamped to `[0.5, 1]`; an
    /// accuracy below a coin flip would be an adversarial worker, which the
    /// paper does not model) and RNG seed.
    pub fn new(accuracy: f64, seed: u64) -> Self {
        Self {
            accuracy: accuracy.clamp(0.5, 1.0),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates a worker whose accuracy may drop below a coin flip
    /// (clamped to `[0, 1]` only) — the adversarial/spammer model the
    /// `ctk-quality` estimation layer exists to detect. A worker at
    /// accuracy 0.5 is a pure spammer; below 0.5 it is systematically
    /// misleading.
    pub fn adversarial(accuracy: f64, seed: u64) -> Self {
        Self {
            accuracy: accuracy.clamp(0.0, 1.0),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl AnswerModel for NoisyWorker {
    fn answer(&mut self, _q: &Question, truth: bool) -> bool {
        if self.rng.gen::<f64>() < self.accuracy {
            truth
        } else {
            !truth
        }
    }

    fn accuracy(&self) -> f64 {
        self.accuracy
    }
}

/// A heterogeneous pool of workers; questions are assigned round-robin
/// (simulating a crowdsourcing platform distributing tasks). Generic over
/// the member model, defaulting to the classic [`NoisyWorker`] pool.
#[derive(Debug, Clone)]
pub struct WorkerPool<W = NoisyWorker> {
    workers: Vec<W>,
    cursor: usize,
}

impl WorkerPool<NoisyWorker> {
    /// Builds a pool from explicit accuracies.
    ///
    /// Fails with [`CrowdError::EmptyPool`] when no accuracies are given.
    pub fn new(accuracies: &[f64], seed: u64) -> Result<Self, CrowdError> {
        Self::from_workers(
            accuracies
                .iter()
                .enumerate()
                .map(|(i, &a)| NoisyWorker::new(a, seed.wrapping_add(i as u64)))
                .collect(),
        )
    }

    /// Builds a pool of `size` workers with accuracies drawn uniformly from
    /// `[lo, hi]` (deterministic given `seed`).
    ///
    /// Fails with [`CrowdError::EmptyPool`] when `size` is zero.
    pub fn uniform(size: usize, lo: f64, hi: f64, seed: u64) -> Result<Self, CrowdError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let accuracies: Vec<f64> = (0..size)
            .map(|_| rng.gen_range(lo.min(hi)..=hi.max(lo)))
            .collect();
        Self::new(&accuracies, seed.wrapping_add(0x9e37_79b9))
    }
}

impl<W: AnswerModel> WorkerPool<W> {
    /// Builds a pool from prebuilt member models (any [`AnswerModel`] —
    /// difficulty-aware workers, adversarial workers, mixtures).
    ///
    /// Fails with [`CrowdError::EmptyPool`] when `workers` is empty.
    pub fn from_workers(workers: Vec<W>) -> Result<Self, CrowdError> {
        if workers.is_empty() {
            return Err(CrowdError::EmptyPool);
        }
        Ok(Self { workers, cursor: 0 })
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Pools are never empty (enforced at construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Advances the round-robin cursor and returns the selected worker's
    /// index.
    fn next_index(&mut self) -> usize {
        let idx = self.cursor;
        self.cursor = (self.cursor + 1) % self.workers.len();
        idx
    }
}

impl<W: AnswerModel> AnswerModel for WorkerPool<W> {
    fn answer(&mut self, q: &Question, truth: bool) -> bool {
        let idx = self.next_index();
        self.workers[idx].answer(q, truth)
    }

    fn accuracy(&self) -> f64 {
        self.workers.iter().map(|w| w.accuracy()).sum::<f64>() / self.workers.len() as f64
    }

    /// Forwards the gap to the selected member. (Regression: the pool used
    /// to route `answer_with_gap` through `answer`, silently dropping the
    /// gap at the pool boundary — a pool of difficulty-aware workers
    /// behaved like its asymptotic-accuracy caricature.)
    fn answer_with_gap(&mut self, q: &Question, truth: bool, gap: f64) -> bool {
        let idx = self.next_index();
        self.workers[idx].answer_with_gap(q, truth, gap)
    }

    fn vote_with_gap(&mut self, q: &Question, truth: bool, gap: f64) -> Vote {
        let idx = self.next_index();
        Vote {
            worker: WorkerId(idx as u32),
            yes: self.workers[idx].answer_with_gap(q, truth, gap),
        }
    }
}

/// A worker whose accuracy depends on how close the compared scores are:
/// `eta(gap) = 0.5 + (eta_max - 0.5) * (1 - exp(-gap / scale))`.
///
/// Human judges are nearly random on ties and nearly perfect on obvious
/// pairs; this is the standard difficulty-aware noise model from the
/// crowdsourcing literature, provided as an extension beyond the paper's
/// constant-accuracy workers (the Bayesian update keeps using the nominal
/// `eta_max`, deliberately stress-testing model mismatch).
#[derive(Debug, Clone)]
pub struct DifficultyWorker {
    eta_max: f64,
    scale: f64,
    rng: StdRng,
}

impl DifficultyWorker {
    /// Creates a difficulty-aware worker. `eta_max` is the accuracy on
    /// well-separated pairs (clamped to `[0.5, 1]`); `scale > 0` is the
    /// score gap at which ~63% of the accuracy headroom is reached.
    ///
    /// Fails with [`CrowdError::InvalidDifficultyScale`] when `scale` is
    /// not positive and finite.
    pub fn new(eta_max: f64, scale: f64, seed: u64) -> Result<Self, CrowdError> {
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(CrowdError::InvalidDifficultyScale);
        }
        Ok(Self {
            eta_max: eta_max.clamp(0.5, 1.0),
            scale,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Accuracy on a pair with true score gap `gap`.
    pub fn accuracy_at(&self, gap: f64) -> f64 {
        0.5 + (self.eta_max - 0.5) * (1.0 - (-gap.abs() / self.scale).exp())
    }
}

impl AnswerModel for DifficultyWorker {
    fn answer(&mut self, q: &Question, truth: bool) -> bool {
        // No gap information: behave like the asymptotic worker.
        let eta = self.eta_max;
        let _ = q;
        if self.rng.gen::<f64>() < eta {
            truth
        } else {
            !truth
        }
    }

    fn accuracy(&self) -> f64 {
        self.eta_max
    }

    fn answer_with_gap(&mut self, _q: &Question, truth: bool, gap: f64) -> bool {
        if self.rng.gen::<f64>() < self.accuracy_at(gap) {
            truth
        } else {
            !truth
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> Question {
        Question::new(0, 1)
    }

    #[test]
    fn perfect_worker_never_errs() {
        let mut w = PerfectWorker;
        assert_eq!(w.accuracy(), 1.0);
        for truth in [true, false] {
            for _ in 0..10 {
                assert_eq!(w.answer(&q(), truth), truth);
            }
        }
    }

    #[test]
    fn noisy_worker_error_rate_matches_accuracy() {
        let mut w = NoisyWorker::new(0.8, 42);
        assert_eq!(w.accuracy(), 0.8);
        const N: usize = 20_000;
        let correct = (0..N).filter(|_| w.answer(&q(), true)).count();
        let rate = correct as f64 / N as f64;
        assert!((rate - 0.8).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn accuracy_clamped_to_half() {
        assert_eq!(NoisyWorker::new(0.2, 0).accuracy(), 0.5);
        assert_eq!(NoisyWorker::new(1.5, 0).accuracy(), 1.0);
    }

    #[test]
    fn adversarial_worker_can_be_systematically_wrong() {
        let mut w = NoisyWorker::adversarial(0.1, 3);
        assert_eq!(w.accuracy(), 0.1);
        assert_eq!(NoisyWorker::adversarial(-0.2, 0).accuracy(), 0.0);
        assert_eq!(NoisyWorker::adversarial(1.2, 0).accuracy(), 1.0);
        const N: usize = 20_000;
        let correct = (0..N).filter(|_| w.answer(&q(), true)).count();
        let rate = correct as f64 / N as f64;
        assert!((rate - 0.1).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn pool_round_robin_and_average_accuracy() {
        let mut pool = WorkerPool::new(&[1.0, 0.5], 7).expect("non-empty");
        assert_eq!(pool.len(), 2);
        assert!(!pool.is_empty());
        assert!((pool.accuracy() - 0.75).abs() < 1e-12);
        // The accuracy-1.0 worker answers every other question correctly.
        let answers: Vec<bool> = (0..6).map(|_| pool.answer(&q(), true)).collect();
        assert!(answers[0] && answers[2] && answers[4]);
    }

    #[test]
    fn empty_pools_are_errors_not_aborts() {
        assert_eq!(WorkerPool::new(&[], 0).unwrap_err(), CrowdError::EmptyPool);
        assert_eq!(
            WorkerPool::uniform(0, 0.6, 0.9, 1).unwrap_err(),
            CrowdError::EmptyPool
        );
        assert_eq!(
            WorkerPool::<NoisyWorker>::from_workers(Vec::new()).unwrap_err(),
            CrowdError::EmptyPool
        );
    }

    #[test]
    fn uniform_pool_accuracies_in_range() {
        let pool = WorkerPool::uniform(50, 0.6, 0.9, 3).expect("non-empty");
        assert_eq!(pool.len(), 50);
        let avg = pool.accuracy();
        assert!(avg > 0.6 && avg < 0.9, "avg = {avg}");
    }

    #[test]
    fn pool_votes_are_attributed_round_robin() {
        let mut pool = WorkerPool::new(&[1.0, 0.5, 0.9], 7).expect("non-empty");
        let votes: Vec<Vote> = (0..5)
            .map(|_| pool.vote_with_gap(&q(), true, 0.2))
            .collect();
        let ids: Vec<u32> = votes.iter().map(|v| v.worker.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 0, 1], "round-robin attribution");
        // The accuracy-1.0 worker (w0) always answers truthfully.
        assert!(votes[0].yes && votes[3].yes);
    }

    #[test]
    fn pool_forwards_gap_to_members() {
        // Regression: `answer_with_gap` on a pool used to drop the gap, so
        // difficulty-aware members behaved like their asymptotic selves.
        // A pool of difficulty workers must be near-random on ties and
        // near-eta_max on wide gaps.
        let pool = || {
            WorkerPool::from_workers(
                (0..4)
                    .map(|i| DifficultyWorker::new(0.95, 0.1, i).expect("positive scale"))
                    .collect(),
            )
            .expect("non-empty")
        };
        const N: usize = 20_000;
        let mut tie_pool = pool();
        let tie_rate = (0..N)
            .filter(|_| tie_pool.answer_with_gap(&q(), true, 0.0))
            .count() as f64
            / N as f64;
        let mut wide_pool = pool();
        let wide_rate = (0..N)
            .filter(|_| wide_pool.answer_with_gap(&q(), true, 10.0))
            .count() as f64
            / N as f64;
        assert!(
            (tie_rate - 0.5).abs() < 0.02,
            "ties ~ coin flip: {tie_rate}"
        );
        assert!(wide_rate > 0.92, "wide gaps ~ eta_max: {wide_rate}");
        // And attribution carries the same gap-forwarding path.
        let mut attr_pool = pool();
        let mut plain_pool = pool();
        for _ in 0..200 {
            let v = attr_pool.vote_with_gap(&q(), true, 0.3);
            let a = plain_pool.answer_with_gap(&q(), true, 0.3);
            assert_eq!(v.yes, a, "vote_with_gap must draw like answer_with_gap");
        }
    }

    #[test]
    fn difficulty_worker_errs_more_on_close_calls() {
        let w = DifficultyWorker::new(0.95, 0.1, 0).expect("positive scale");
        assert!(
            (w.accuracy_at(0.0) - 0.5).abs() < 1e-12,
            "ties are coin flips"
        );
        assert!(w.accuracy_at(0.05) < w.accuracy_at(0.2));
        assert!(w.accuracy_at(10.0) > 0.9499, "easy pairs approach eta_max");
        assert_eq!(w.accuracy(), 0.95);

        // Empirical check at a fixed gap.
        let mut w = DifficultyWorker::new(0.9, 0.1, 7).expect("positive scale");
        let expect = w.accuracy_at(0.1);
        const N: usize = 20_000;
        let correct = (0..N)
            .filter(|_| w.answer_with_gap(&q(), true, 0.1))
            .count();
        let rate = correct as f64 / N as f64;
        assert!((rate - expect).abs() < 0.01, "rate {rate} vs {expect}");
    }

    #[test]
    fn default_answer_with_gap_ignores_gap() {
        let mut w = PerfectWorker;
        assert!(w.answer_with_gap(&q(), true, 0.0));
        assert!(!w.answer_with_gap(&q(), false, 0.0));
        let v = w.vote_with_gap(&q(), true, 0.0);
        assert_eq!(v.worker, WorkerId::SOLO);
        assert!(v.yes);
    }

    #[test]
    fn difficulty_scale_must_be_positive_and_finite() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert_eq!(
                DifficultyWorker::new(0.9, bad, 0).unwrap_err(),
                CrowdError::InvalidDifficultyScale,
                "scale {bad} must be rejected"
            );
        }
    }

    #[test]
    fn workers_are_seed_deterministic() {
        let mut a = NoisyWorker::new(0.7, 5);
        let mut b = NoisyWorker::new(0.7, 5);
        for _ in 0..100 {
            assert_eq!(a.answer(&q(), true), b.answer(&q(), true));
        }
    }

    #[test]
    fn worker_id_display() {
        assert_eq!(format!("{}", WorkerId(3)), "w3");
        assert_eq!(WorkerId::SOLO, WorkerId(0));
    }
}
